"""Randomized optimality certification: SOAR against brute force.

These tests sweep many randomly generated small instances — random tree
shapes, random integer loads (including zero loads at internal switches),
random heterogeneous link rates, random availability sets and random budgets
— and assert that SOAR's cost equals the exhaustive optimum in both budget
semantics.  They are the library's strongest correctness evidence beyond the
paper's worked examples.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.bruteforce import solve_bruteforce
from repro.core.cost import utilization_cost
from repro.core.solver import Solver
from repro.core.tree import TreeNetwork
from repro.topology.generic import kary_tree, path_network, star_network

from tests.conftest import make_random_instance


def _random_available(tree: TreeNetwork, rng: np.random.Generator) -> TreeNetwork:
    """Restrict availability to a random non-empty subset of the switches."""
    switches = list(tree.switches)
    keep_mask = rng.random(len(switches)) < 0.7
    available = [s for s, keep in zip(switches, keep_mask) if keep]
    if not available:
        available = [switches[0]]
    return tree.with_available(available)


@pytest.mark.parametrize("seed", range(40))
def test_soar_matches_bruteforce_at_most_k(seed):
    rng = np.random.default_rng(seed)
    tree = make_random_instance(rng, max_switches=9)
    budget = int(rng.integers(0, tree.num_switches + 1))
    solution = Solver().solve(tree, budget)
    expected = solve_bruteforce(tree, budget)
    assert solution.cost == pytest.approx(expected.cost)
    assert solution.predicted_cost == pytest.approx(expected.cost)
    assert utilization_cost(tree, solution.blue_nodes) == pytest.approx(expected.cost)
    assert len(solution.blue_nodes) <= budget


@pytest.mark.parametrize("seed", range(40, 70))
def test_soar_matches_bruteforce_with_restricted_availability(seed):
    rng = np.random.default_rng(seed)
    tree = _random_available(make_random_instance(rng, max_switches=9), rng)
    budget = int(rng.integers(0, len(tree.available) + 1))
    solution = Solver().solve(tree, budget)
    expected = solve_bruteforce(tree, budget)
    assert solution.blue_nodes <= tree.available
    assert solution.cost == pytest.approx(expected.cost)


@pytest.mark.parametrize("seed", range(70, 95))
def test_soar_matches_bruteforce_exact_k(seed):
    rng = np.random.default_rng(seed)
    tree = make_random_instance(rng, max_switches=8)
    budget = int(rng.integers(0, tree.num_switches + 1))
    solution = Solver(exact_k=True).solve(tree, budget)
    expected = solve_bruteforce(tree, budget, exact_k=True)
    assert solution.cost == pytest.approx(expected.cost)


@pytest.mark.parametrize(
    "tree_builder",
    [
        lambda: path_network(6, leaf_load=4),
        lambda: star_network(6, leaf_loads=[1, 2, 3, 4, 5, 6]),
        lambda: kary_tree(3, 2, leaf_loads=list(range(1, 10))),
    ],
    ids=["path", "star", "ternary"],
)
@pytest.mark.parametrize("budget", [0, 1, 2, 3])
def test_soar_optimal_on_canonical_shapes(tree_builder, budget):
    tree = tree_builder()
    assert Solver().solve(tree, budget).cost == pytest.approx(solve_bruteforce(tree, budget).cost)


@pytest.mark.parametrize("seed", range(95, 110))
def test_soar_never_worse_than_heuristics(seed):
    """On mid-sized random instances SOAR must lower-bound every heuristic."""
    from repro.baselines.strategies import ALL_STRATEGIES

    rng = np.random.default_rng(seed)
    tree = make_random_instance(rng, max_switches=30)
    budget = int(rng.integers(0, 6))
    optimal = Solver().solve(tree, budget).cost
    for name, strategy in ALL_STRATEGIES.items():
        if name in ("AllBlue",):
            continue  # ignores the budget by design
        if name == "Random":
            blue = strategy(tree, budget, rng=rng)
        else:
            blue = strategy(tree, budget)
        blue = frozenset(blue) & tree.available
        if len(blue) > budget:
            continue
        assert optimal <= utilization_cost(tree, blue) + 1e-9, name

"""Invariant checks on every solve, driven by the ``repro.testing`` checkers.

These tests pin the *semantic* contract of the solver regardless of which
engine produced the tables:

* ``predicted_cost == cost`` on every solve (the DP optimum matches the
  cost recomputed from the Reduce message counts),
* ``|blue| <= budget`` and ``blue ⊆ Λ``,
* the optimal cost is monotonically non-increasing in the budget
  (at-most-k semantics),
* the ``all_red >= optimal >= all_blue`` sandwich on positive-load
  instances,
* structural gather-table invariants (``X = min(Y_blue, Y_red)``,
  monotonicity in ``l`` and in the budget).

The checkers themselves are also tested: a checker that cannot fail would
pin nothing.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.engine import ENGINES, gather
from repro.core.solver import Solver
from repro.experiments.motivating import motivating_tree
from repro.testing import (
    AVAILABILITY_PATTERNS,
    DYADIC_RATES,
    LOAD_TIE_PROFILES,
    NEAR_TIE_EPSILON,
    RATE_PROFILES,
    assert_budget_monotone,
    assert_cost_sandwich,
    assert_gather_consistent,
    assert_placement_feasible,
    assert_solution_consistent,
    bruteforce_subset_count,
    check_budget_sweep,
    check_instance,
    near_tie_stream,
    patterned_availability,
    random_budget,
    random_instance,
    random_rates,
    random_tie_loads,
)


class TestSolutionInvariants:
    @pytest.mark.parametrize("engine", sorted(ENGINES))
    @pytest.mark.parametrize("exact_k", [False, True])
    def test_paper_tree_every_budget(self, engine, exact_k):
        tree = motivating_tree()
        for budget in range(tree.num_switches + 1):
            solution = Solver(engine=engine, exact_k=exact_k).solve(tree, budget)
            assert_solution_consistent(tree, solution)

    def test_random_instances_predicted_equals_cost(self, session_rng):
        for _ in range(25):
            tree = random_instance(session_rng, max_switches=11)
            budget = random_budget(session_rng, tree)
            for exact_k in (False, True):
                solution = Solver(exact_k=exact_k).solve(tree, budget)
                assert_solution_consistent(tree, solution)

    def test_restricted_availability_respected(self, session_rng):
        for _ in range(20):
            tree = random_instance(session_rng, restrict_availability=True, max_switches=11)
            budget = random_budget(session_rng, tree)
            solution = Solver().solve(tree, budget)
            assert_placement_feasible(tree, solution.blue_nodes, budget)


class TestBudgetMonotonicity:
    def test_paper_tree_curve(self, paper_tree):
        costs = check_budget_sweep(paper_tree, paper_tree.num_switches)
        # Figure 3's specific values double-check the sweep itself.
        assert costs[1] == 35.0 and costs[2] == 20.0 and costs[3] == 15.0 and costs[4] == 11.0

    def test_random_instances_monotone(self, session_rng):
        for _ in range(15):
            tree = random_instance(session_rng, max_switches=10)
            check_budget_sweep(tree, min(len(tree.available), 6))


class TestCostSandwich:
    def test_positive_load_instances(self, session_rng):
        for _ in range(20):
            tree = random_instance(session_rng, load_profile="positive", max_switches=10)
            budget = random_budget(session_rng, tree)
            solution = Solver().solve(tree, budget)
            assert_cost_sandwich(tree, solution.cost)

    def test_zero_load_instances_skip_lower_bound(self, session_rng):
        # With zero loads the all-blue "lower bound" does not apply; the
        # checker must still validate the all-red upper bound.
        tree = random_instance(session_rng, load_profile="zero", max_switches=8)
        solution = Solver().solve(tree, 2)
        assert_cost_sandwich(tree, solution.cost)
        assert solution.cost == 0.0


class TestGatherTableInvariants:
    @pytest.mark.parametrize("engine", sorted(ENGINES))
    @pytest.mark.parametrize("exact_k", [False, True])
    def test_paper_tree_tables(self, engine, exact_k):
        tree = motivating_tree()
        gathered = gather(tree, 3, exact_k=exact_k, engine=engine)
        assert_gather_consistent(tree, gathered)

    def test_random_instances_tables(self, session_rng):
        for _ in range(10):
            tree = random_instance(session_rng, max_switches=10)
            budget = random_budget(session_rng, tree)
            for engine in ENGINES:
                assert_gather_consistent(tree, gather(tree, budget, engine=engine))


class TestCheckersCanFail:
    """Negative tests: every checker must reject a violated invariant."""

    def test_budget_monotone_rejects_increase(self):
        with pytest.raises(AssertionError, match="cost increased"):
            assert_budget_monotone({0: 10.0, 1: 12.0})

    def test_placement_feasible_rejects_stray_blue(self, paper_tree):
        restricted = paper_tree.with_available(["s1_0"])
        with pytest.raises(AssertionError, match="outside the availability"):
            assert_placement_feasible(restricted, {"s1_1"}, 2)

    def test_placement_feasible_rejects_overbudget(self, paper_tree):
        with pytest.raises(AssertionError, match="budget"):
            assert_placement_feasible(paper_tree, {"s1_0", "s1_1"}, 1)

    def test_sandwich_rejects_impossible_cost(self, paper_tree):
        with pytest.raises(AssertionError, match="exceeds the all-red"):
            assert_cost_sandwich(paper_tree, 1e9)
        with pytest.raises(AssertionError, match="all-blue lower bound"):
            assert_cost_sandwich(paper_tree, 0.5)

    def test_bruteforce_subset_count(self, paper_tree):
        # 7 switches: C(7,0) + C(7,1) + C(7,2) = 29 subsets for k = 2.
        assert bruteforce_subset_count(paper_tree, 2) == 29
        assert bruteforce_subset_count(paper_tree, 2, exact_k=True) == 21

    def test_check_instance_runs_bruteforce_when_small(self, paper_tree):
        solutions = check_instance(paper_tree, 2)
        assert solutions["flat"].cost == 20.0
        assert solutions["reference"].cost == 20.0


class TestNearTieRates:
    """Adversarial near-tie rate structures stressing argmin tie-breaking.

    Symmetric (``constant`` / ``sibling_tie``) and almost-symmetric
    (``near_tie``) rates make whole families of placements cost-equal or
    separated by margins of order 2^-8 — any ``<=`` vs ``<`` confusion in
    the convolution argmin or the colour decision changes which optimum is
    traced, which the differential check against brute force catches.
    """

    def test_rate_profiles_shapes(self, session_rng):
        parents = {0: "d", 1: 0, 2: 0, 3: 1, 4: 1}
        constant = random_rates(session_rng, parents, profile="constant")
        assert len(set(constant.values())) == 1
        siblings = random_rates(session_rng, parents, profile="sibling_tie")
        assert siblings[1] == siblings[2] and siblings[3] == siblings[4]
        near = random_rates(session_rng, parents, profile="near_tie")
        # One shared dyadic base, every rate equal to base * (1 + delta*eps)
        # with delta in {-1, 0, +1}.  Quantifying over the *known* dyadic
        # bases keeps the check falsifiable (e.g. a rate of 3.7 matches no
        # base), unlike deriving the candidate bases from the rates.
        assert any(
            all(
                rate
                in {
                    base,
                    base * (1.0 + NEAR_TIE_EPSILON),
                    base * (1.0 - NEAR_TIE_EPSILON),
                }
                for rate in near.values()
            )
            for base in DYADIC_RATES
        )
        with pytest.raises(ValueError, match="unknown rate profile"):
            random_rates(session_rng, parents, profile="nope")

    @pytest.mark.parametrize(
        "profile", [p for p in RATE_PROFILES if p != "dyadic"]
    )
    def test_tie_profiles_differential(self, session_rng, profile):
        for _ in range(12):
            tree = random_instance(
                session_rng, rate_profile=profile, max_switches=9
            )
            budget = random_budget(session_rng, tree)
            check_instance(tree, budget)
            check_instance(tree, budget, exact_k=True)

    def test_near_tie_stream_differential(self):
        for tree, budget in near_tie_stream(20211207, 18, max_switches=9):
            check_instance(tree, budget)

    def test_exact_ties_on_symmetric_binary_tree(self, session_rng):
        # Fully symmetric instance: constant rates, equal loads.  Every
        # same-level placement is exactly tied; the sweep must still be
        # monotone and consistent across engines and against brute force.
        tree = random_instance(
            session_rng,
            shape="binary",
            num_switches=7,
            rate_profile="constant",
            load_profile="positive",
            restrict_availability=False,
        ).with_loads({switch: 2 for switch in range(7)})
        check_budget_sweep(tree, 5)
        check_instance(tree, 3)


class TestNearTieLoadsAndAvailability:
    """Load-tie profiles and straddling Λ patterns (the ROADMAP item twinned
    with the rate profiles), stressing the batched colour kernel's
    tie-breaking: ``check_instance`` traces every colour kernel out of
    every engine's tables and requires identical blue sets."""

    def test_tie_load_shapes(self, session_rng):
        parents = {0: "d", 1: 0, 2: 0, 3: 1, 4: 1}
        constant = random_tie_loads(session_rng, parents, profile="constant")
        assert len(set(constant.values())) == 1 and min(constant.values()) >= 1
        siblings = random_tie_loads(session_rng, parents, profile="sibling_tie")
        assert siblings[1] == siblings[2] and siblings[3] == siblings[4]
        near = random_tie_loads(session_rng, parents, profile="near_tie")
        assert max(near.values()) - min(near.values()) <= 2
        assert min(near.values()) >= 0
        with pytest.raises(ValueError, match="unknown load-tie profile"):
            random_tie_loads(session_rng, parents, profile="nope")

    def test_availability_pattern_shapes(self, session_rng):
        tree = random_instance(
            session_rng, shape="binary", num_switches=15, restrict_availability=False
        )
        split = patterned_availability(session_rng, tree, "sibling_split")
        # Every sibling pair of the complete binary tree is split: exactly
        # one of the two children is admissible.
        for node in tree.switches:
            children = tree.children(node)
            if len(children) == 2:
                assert len(set(children) & set(split)) == 1
        stripe = patterned_availability(session_rng, tree, "level_stripe")
        assert len({tree.depth(node) % 2 for node in stripe}) <= 1
        with pytest.raises(ValueError, match="unknown availability pattern"):
            patterned_availability(session_rng, tree, "nope")

    @pytest.mark.parametrize("load_profile", LOAD_TIE_PROFILES)
    def test_tie_load_profiles_differential(self, session_rng, load_profile):
        for _ in range(8):
            tree = random_instance(
                session_rng, rate_profile="constant", max_switches=9
            )
            parents = {switch: tree.parent(switch) for switch in tree.switches}
            tree = tree.with_loads(
                random_tie_loads(session_rng, parents, profile=load_profile)
            )
            budget = random_budget(session_rng, tree)
            check_instance(tree, budget)
            check_instance(tree, budget, exact_k=True)

    @pytest.mark.parametrize(
        "pattern", [p for p in AVAILABILITY_PATTERNS if p != "independent"]
    )
    def test_straddling_availability_differential(self, session_rng, pattern):
        for _ in range(8):
            tree = random_instance(
                session_rng,
                rate_profile="sibling_tie",
                load_profile="positive",
                max_switches=9,
                restrict_availability=False,
            )
            tree = tree.with_available(
                patterned_availability(session_rng, tree, pattern)
            )
            budget = random_budget(session_rng, tree)
            check_instance(tree, budget)

    def test_symmetric_instance_straddled_availability(self, session_rng):
        # The fully symmetric worst case: constant rates, constant loads,
        # and a Λ that keeps exactly one child of every sibling pair — the
        # traced optimum must come entirely from the admissible side.
        tree = random_instance(
            session_rng,
            shape="binary",
            num_switches=15,
            rate_profile="constant",
            restrict_availability=False,
        ).with_loads({switch: 3 for switch in range(15)})
        tree = tree.with_available(
            patterned_availability(session_rng, tree, "sibling_split")
        )
        check_budget_sweep(tree, min(6, len(tree.available)))
        check_instance(tree, 3)


@pytest.mark.slow
class TestNearTieSweep:
    """Broad near-tie sweep (slow tier), the ROADMAP open item."""

    def test_hundred_near_tie_instances(self):
        for tree, budget in near_tie_stream(20212021, 100, max_switches=11):
            check_instance(tree, budget, bruteforce=False)
            assert_gather_consistent(tree, gather(tree, budget))


@pytest.mark.slow
class TestInvariantSweep:
    """Broad randomized invariant sweep (slow tier)."""

    def test_two_hundred_instances_all_invariants(self):
        rng = np.random.default_rng(424242)
        for _ in range(200):
            tree = random_instance(rng, max_switches=12)
            budget = random_budget(rng, tree)
            check_instance(tree, budget, bruteforce=False)
            for engine in ENGINES:
                assert_gather_consistent(tree, gather(tree, budget, engine=engine))

"""Edge-case tests for the SOAR dynamic program (gather + color internals)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.bruteforce import solve_bruteforce
from repro.core.color import soar_color
from repro.core.cost import utilization_cost
from repro.core.gather import soar_gather
from repro.core.solver import Solver
from repro.core.tree import TreeNetwork
from repro.topology.generic import kary_tree, path_network, star_network


class TestDegenerateShapes:
    def test_single_switch(self):
        tree = TreeNetwork({"r": "d"}, loads={"r": 5})
        assert Solver().solve(tree, 0).cost == 5.0
        solution = Solver().solve(tree, 1)
        assert solution.cost == 1.0
        assert solution.blue_nodes == frozenset({"r"})

    def test_single_switch_zero_load(self):
        tree = TreeNetwork({"r": "d"})
        solution = Solver().solve(tree, 1)
        assert solution.cost == 0.0
        assert solution.blue_nodes == frozenset()

    def test_deep_path_single_blue_placement(self):
        # On a path with load only at the far end, one blue node belongs at
        # the deepest switch: the single aggregated message then travels the
        # whole path instead of `load` messages doing so.
        tree = path_network(6, leaf_load=7)
        solution = Solver().solve(tree, 1)
        assert solution.blue_nodes == frozenset({5})
        assert solution.cost == pytest.approx(7.0 * 0 + 1.0 * 6)

    def test_path_blue_useless_when_load_is_one(self):
        tree = path_network(5, leaf_load=1)
        solution = Solver().solve(tree, 3)
        assert solution.cost == 5.0
        assert solution.blue_nodes == frozenset()

    def test_star_with_wide_fanout(self):
        tree = star_network(12, leaf_loads=[3] * 12)
        for budget in (0, 1, 3, 12):
            assert Solver().solve(tree, budget).cost == pytest.approx(
                solve_bruteforce(tree, budget).cost
            )

    def test_unary_chain_of_internal_loads(self):
        # Internal switches with their own servers along a single chain.
        tree = TreeNetwork(
            parents={"a": "d", "b": "a", "c": "b"},
            loads={"a": 2, "b": 3, "c": 4},
            rates={"a": 2.0, "b": 1.0, "c": 0.5},
        )
        for budget in range(4):
            assert Solver().solve(tree, budget).cost == pytest.approx(
                solve_bruteforce(tree, budget).cost
            )

    def test_high_fanout_internal_node(self):
        tree = kary_tree(5, 1, leaf_loads=[1, 2, 3, 4, 5])
        for budget in range(0, 7):
            assert Solver().solve(tree, budget).cost == pytest.approx(
                solve_bruteforce(tree, budget).cost
            )


class TestAvailabilityAtInternalNodes:
    def test_only_root_available(self, paper_tree):
        restricted = paper_tree.with_available({paper_tree.root})
        solution = Solver().solve(restricted, 3)
        assert solution.blue_nodes <= {paper_tree.root}
        assert solution.cost == pytest.approx(solve_bruteforce(restricted, 3).cost)

    def test_only_leaves_available(self, paper_tree):
        restricted = paper_tree.with_available(set(paper_tree.leaves()))
        solution = Solver().solve(restricted, 2)
        assert solution.blue_nodes <= set(paper_tree.leaves())
        assert solution.cost == pytest.approx(solve_bruteforce(restricted, 2).cost)

    def test_empty_budget_with_restricted_availability(self, paper_tree):
        restricted = paper_tree.with_available({"s2_0"})
        assert Solver().solve(restricted, 0).blue_nodes == frozenset()


class TestGatherColorContracts:
    def test_cost_for_budget_clamps(self, paper_tree):
        gathered = soar_gather(paper_tree, 2)
        assert gathered.cost_for_budget(100) == gathered.cost_for_budget(2)

    def test_narrow_table_clamps_and_fresh_gather_honours_budget(self, paper_tree):
        solver = Solver(engine="reference")
        narrow = solver.gather(paper_tree, 1)
        # A table only answers the budgets it carries: larger requests clamp.
        assert narrow.place(3).budget == 1
        # Honouring the larger budget takes a fresh gather.
        solution = solver.solve(paper_tree, 3)
        assert solution.cost == pytest.approx(15.0)
        assert solution.table.budget >= 3

    def test_color_with_smaller_budget_than_gather(self, loaded_bt16):
        gathered = soar_gather(loaded_bt16, 8)
        for budget in (0, 1, 4, 8):
            blue = soar_color(loaded_bt16, gathered, budget=budget)
            assert utilization_cost(loaded_bt16, blue) == pytest.approx(
                gathered.cost_for_budget(budget)
            )

    def test_gather_handles_heterogeneous_rates_on_path_to_root(self):
        # Rates chosen so aggregating in the middle of the path (not at the
        # leaf, not at the root) is uniquely optimal: the slow middle link
        # dominates and must carry as few messages as possible.
        tree = TreeNetwork(
            parents={"top": "d", "mid": "top", "leaf": "mid"},
            rates={"top": 10.0, "mid": 0.1, "leaf": 10.0},
            loads={"leaf": 9},
        )
        solution = Solver().solve(tree, 1)
        assert solution.blue_nodes == frozenset({"leaf"})
        # Placing it at "mid" instead would push 9 messages over the slow link.
        assert solution.cost < utilization_cost(tree, {"mid"})

    def test_numerical_stability_with_extreme_rates(self):
        rng = np.random.default_rng(0)
        parents = {0: "d"}
        for node in range(1, 12):
            parents[node] = int(rng.integers(0, node))
        rates = {node: float(10.0 ** rng.integers(-3, 4)) for node in parents}
        loads = {node: int(rng.integers(0, 5)) for node in parents}
        tree = TreeNetwork(parents, rates=rates, loads=loads)
        for budget in (0, 2, 5):
            assert Solver().solve(tree, budget).cost == pytest.approx(
                solve_bruteforce(tree, budget).cost, rel=1e-9
            )

"""End-to-end integration tests combining several subsystems.

Each test walks a realistic pipeline exactly the way a downstream user
would: generate a topology, apply a rate scheme, sample a workload, place
aggregation switches with SOAR, and then cross-check the outcome through an
independent path (brute force, the barrier formulation, the event-driven
dataplane, or the byte model).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.bytes_model import expected_byte_complexity
from repro.apps.paramserver import ParameterServerApplication
from repro.apps.wordcount import WordCountApplication
from repro.baselines.strategies import PAPER_STRATEGIES
from repro.core.bruteforce import solve_bruteforce
from repro.core.cost import all_red_cost, utilization_cost, utilization_cost_barrier
from repro.core.solver import Solver
from repro.online.scheduler import compare_strategies_online, generate_workload_sequence
from repro.simulation.dataplane import simulate_reduce
from repro.topology.binary_tree import bt_network
from repro.topology.generic import fat_tree_aggregation_tree
from repro.topology.scale_free import sf_network
from repro.workload.distributions import (
    PowerLawLoadDistribution,
    UniformLoadDistribution,
    sample_leaf_loads,
)
from repro.workload.rates import apply_rate_scheme


class TestDatacenterPipeline:
    """BT(n) + rate scheme + sampled loads, end to end."""

    @pytest.mark.parametrize("rate_scheme", ["constant", "linear", "exponential"])
    @pytest.mark.parametrize("distribution", [UniformLoadDistribution(), PowerLawLoadDistribution()])
    def test_soar_pipeline_consistency(self, rate_scheme, distribution):
        rng = np.random.default_rng(99)
        tree = apply_rate_scheme(bt_network(64), rate_scheme)
        tree = tree.with_loads(sample_leaf_loads(tree, distribution, rng=rng))

        solution = Solver().solve(tree, 8)
        # DP prediction, message-count evaluation and barrier evaluation agree.
        assert solution.cost == pytest.approx(solution.predicted_cost)
        assert solution.cost == pytest.approx(
            utilization_cost_barrier(tree, solution.blue_nodes)
        )
        # The dataplane's total busy time reproduces the same value.
        sim = simulate_reduce(tree, solution.blue_nodes)
        assert sim.total_busy_time == pytest.approx(solution.cost)
        # SOAR dominates every heuristic on this instance.
        for name, strategy in PAPER_STRATEGIES.items():
            assert solution.cost <= utilization_cost(tree, strategy(tree, 8)) + 1e-9, name

    def test_budget_sweep_crosschecked_with_bruteforce(self):
        rng = np.random.default_rng(5)
        tree = bt_network(16)
        tree = tree.with_loads(sample_leaf_loads(tree, PowerLawLoadDistribution(), rng=rng))
        sweep = Solver().sweep(tree, range(0, 4))
        for budget, solution in sweep.items():
            assert solution.cost == pytest.approx(solve_bruteforce(tree, budget).cost)


class TestFatTreeScenario:
    def test_fat_tree_reduce_with_limited_aggregation(self):
        tree = fat_tree_aggregation_tree(8, hosts_per_edge=4)
        baseline = all_red_cost(tree)
        solution = Solver().solve(tree, 4)
        assert solution.cost < baseline
        # With a budget matching the pod count, aggregating at (or below)
        # every pod is possible and the utilization collapses dramatically.
        full = Solver().solve(tree, 8)
        assert full.cost <= solution.cost
        assert full.cost <= 0.5 * baseline

    def test_fat_tree_byte_model(self):
        tree = fat_tree_aggregation_tree(4, hosts_per_edge=8)
        app = ParameterServerApplication(feature_dimension=2_000, dropout=0.5, rng=1)
        blue = Solver().solve(tree, 2).blue_nodes
        placed = expected_byte_complexity(tree, blue, app)
        all_red = expected_byte_complexity(tree, frozenset(), app)
        assert placed < all_red


class TestScaleFreeScenario:
    def test_scale_free_end_to_end(self):
        tree = sf_network(256, rng=13)
        solution = Solver().solve(tree, 16)
        assert solution.cost < all_red_cost(tree)
        sim = simulate_reduce(tree, solution.blue_nodes)
        assert sim.total_busy_time == pytest.approx(solution.cost)
        assert sim.servers_delivered == tree.total_load


class TestOnlineScenarioWithByteAccounting:
    def test_online_run_then_byte_accounting(self):
        tree = bt_network(32)
        workloads = generate_workload_sequence(tree, 8, rng=3)
        outcomes = compare_strategies_online(
            tree, workloads, PAPER_STRATEGIES, budget=4, capacity=2
        )
        app = WordCountApplication(vocabulary_size=2_000, shard_size=200, rng=4)
        # For every workload of the SOAR run, bytes under the chosen placement
        # are no worse than all-red bytes for the same workload.
        for item, loads in zip(outcomes["SOAR"].workloads, workloads):
            placed = expected_byte_complexity(tree, item.blue_nodes, app, loads=loads)
            baseline = expected_byte_complexity(tree, frozenset(), app, loads=loads)
            assert placed <= baseline + 1e-9

    def test_workload_isolation(self):
        """Different workloads on the same tree never interfere via state."""
        tree = bt_network(32)
        first_loads = {leaf: 3 for leaf in tree.leaves()}
        second_loads = {leaf: 7 for leaf in tree.leaves()}
        first = Solver().solve(tree.with_loads(first_loads), 4)
        second = Solver().solve(tree.with_loads(second_loads), 4)
        again = Solver().solve(tree.with_loads(first_loads), 4)
        assert first.cost == pytest.approx(again.cost)
        assert second.cost > first.cost

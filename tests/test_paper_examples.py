"""Golden tests against every worked example in the paper.

* Figure 1 — all-red vs all-blue message counts on the 6-server example,
* Figure 2 — Top / Max / Level / SOAR costs (27 / 24 / 21 / 20) at k = 2,
* Figure 3 — optimal costs 35 / 20 / 15 / 11 for k = 1..4 and the
  non-monotonicity of the optimal blue sets,
* Figure 4 — the barrier (tree-decomposition) view of a solution,
* Figure 5 — the SOAR-Gather dynamic-programming tables of the running
  example, re-derived by hand from Eq. (4) and compared entry by entry,
* Section 5.1 takeaway — the ordering of the second-best strategies under
  power-law vs uniform loads (exercised at reduced scale in
  ``benchmarks/bench_fig6_strategies.py``).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.cost import utilization_cost, utilization_cost_barrier
from repro.core.gather import soar_gather
from repro.core.reduce_op import total_messages
from repro.core.solver import Solver
from repro.core.tree import TreeNetwork
from repro.experiments.motivating import motivating_tree


class TestFigure1:
    """All-red sends 14 messages, all-blue sends 5 (one per edge)."""

    @pytest.fixture
    def tree(self) -> TreeNetwork:
        return TreeNetwork(
            parents={"r": "d", "left": "r", "mid": "r", "mid_l": "mid", "mid_r": "mid"},
            loads={"r": 1, "left": 2, "mid_l": 1, "mid_r": 2},
        )

    def test_all_red_message_count(self, tree):
        assert total_messages(tree, frozenset()) == 14

    def test_all_blue_message_count(self, tree):
        assert total_messages(tree, frozenset(tree.switches)) == 5

    def test_all_blue_needs_five_switches(self, tree):
        assert tree.num_switches == 5


class TestFigure2And3:
    def test_strategy_costs(self, paper_tree):
        # Figure 2: Top picks {r, right mid}, Max the two heaviest leaves,
        # Level the middle level, SOAR the optimal mixed placement.
        assert utilization_cost(paper_tree, {"s0_0", "s1_1"}) == 27.0
        assert utilization_cost(paper_tree, {"s2_1", "s2_2"}) == 24.0
        assert utilization_cost(paper_tree, {"s1_0", "s1_1"}) == 21.0
        assert utilization_cost(paper_tree, {"s1_1", "s2_1"}) == 20.0

    def test_optimal_costs_per_budget(self, paper_tree):
        for budget, expected in {1: 35.0, 2: 20.0, 3: 15.0, 4: 11.0}.items():
            assert Solver().solve(paper_tree, budget).cost == expected

    def test_uniqueness_of_optima(self, paper_tree):
        # The paper notes the optima for k = 2 and k = 3 are unique, while
        # k = 1 and k = 4 admit several optimal sets.  Count them by brute
        # force over all subsets of exactly k switches.
        from itertools import combinations

        def count_optima(budget: int) -> int:
            best = min(
                utilization_cost(paper_tree, set(subset))
                for subset in combinations(paper_tree.switches, budget)
            )
            return sum(
                1
                for subset in combinations(paper_tree.switches, budget)
                if utilization_cost(paper_tree, set(subset)) == best
            )

        assert count_optima(2) == 1
        assert count_optima(3) == 1
        assert count_optima(1) > 1
        assert count_optima(4) > 1

    def test_optimal_sets_not_monotone(self, paper_tree):
        # Figure 3: the unique optimum for k = 2 is {s1_1, s2_1} but the
        # unique optimum for k = 3 drops s1_1 entirely.
        assert Solver().solve(paper_tree, 2).blue_nodes == frozenset({"s1_1", "s2_1"})
        assert Solver().solve(paper_tree, 3).blue_nodes == frozenset({"s2_1", "s2_2", "s2_3"})
        assert "s1_1" not in Solver().solve(paper_tree, 3).blue_nodes


class TestFigure4BarrierDecomposition:
    """Eq. (3): the cost decomposes over closest-blue-ancestor distances."""

    def test_equation3_worked_example(self, paper_tree):
        blue = {"s1_1", "s2_1"}
        # The paper evaluates Eq. (3) on Figure 3b as (3 + 2) + (2*3 + 5 + 4) = 20.
        assert utilization_cost_barrier(paper_tree, blue) == 20.0
        assert utilization_cost(paper_tree, blue) == 20.0

    def test_decomposition_into_subtrees(self, paper_tree):
        # Detach the subtree rooted at each blue node (the blue node acts as
        # that piece's destination), and replace the blue node by a load-1
        # leaf in the remaining tree.  The piece costs sum to the total cost.
        blue = {"s1_1", "s2_1"}
        # Piece rooted at the blue leaf s2_1: no tree edges below it -> cost 0.
        piece_leaf_cost = 0.0
        # Piece rooted at the blue switch s1_1: its two leaves (loads 5, 4)
        # each cross one unit-rate edge towards s1_1.
        piece_s1_1_cost = 5.0 + 4.0
        # Remaining tree: s2_1 and s1_1 become leaves of load 1.
        upper_tree = TreeNetwork(
            parents={"s0_0": "d", "s1_0": "s0_0", "s2_0": "s1_0", "s2_1": "s1_0", "s1_1": "s0_0"},
            loads={"s2_0": 2, "s2_1": 1, "s1_1": 1},
        )
        total = piece_leaf_cost + piece_s1_1_cost + utilization_cost(upper_tree, frozenset())
        assert total == utilization_cost(paper_tree, blue)


class TestFigure5GatherTables:
    """The DP tables of the running example, derived by hand from Eq. (4).

    Node naming: ``a = s1_0`` is the internal switch above the leaves with
    loads (2, 6); ``b = s1_1`` is above the leaves with loads (5, 4);
    ``r = s0_0`` is the root.  All rates are 1 and k = 2.
    """

    @pytest.fixture
    def gathered(self, paper_tree):
        return soar_gather(paper_tree, 2)

    def test_leaf_tables(self, gathered):
        # A leaf with load L at depth 3: red row l*L, blue row l (for i >= 1).
        for leaf, load in (("s2_0", 2), ("s2_1", 6), ("s2_2", 5), ("s2_3", 4)):
            table = gathered.tables[leaf]
            expected_red = np.array([0.0, 1.0, 2.0, 3.0]) * load
            expected_blue = np.array([0.0, 1.0, 2.0, 3.0])
            assert table.x[:, 0] == pytest.approx(expected_red)
            assert table.x[:, 1] == pytest.approx(np.minimum(expected_red, expected_blue))

    def test_left_internal_node_table(self, gathered):
        # Node a (children loads 2 and 6), hand-derived from Eq. (4):
        #   X_a(l, 0) = 8 + 8l, X_a(l, 1) = min(8 + l, 3 + 3l, 7 + 7l),
        #   X_a(l, 2) = min(3 + l, 2 + 2l).
        expected = np.array(
            [
                [8.0, 3.0, 2.0],
                [16.0, 6.0, 4.0],
                [24.0, 9.0, 5.0],
            ]
        )
        assert gathered.tables["s1_0"].x == pytest.approx(expected)

    def test_right_internal_node_table(self, gathered):
        # Node b (children loads 5 and 4): X_b(l, 0) = 9 + 9l,
        # X_b(l, 1) = min(9 + l, 5 + 5l, 6 + 6l), X_b(l, 2) = min(5 + l, 2 + 2l).
        expected = np.array(
            [
                [9.0, 5.0, 2.0],
                [18.0, 10.0, 4.0],
                [27.0, 11.0, 6.0],
            ]
        )
        assert gathered.tables["s1_1"].x == pytest.approx(expected)

    def test_root_table(self, gathered):
        # Root r: X_r(0, .) = [34, 24, 16], X_r(1, .) = [51, 35, 20].
        expected = np.array(
            [
                [34.0, 24.0, 16.0],
                [51.0, 35.0, 20.0],
            ]
        )
        assert gathered.tables["s0_0"].x == pytest.approx(expected)

    def test_root_row_one_equals_figure3_costs(self, gathered):
        # X_r(1, k) is the minimum utilization with budget k (Eq. 6).
        assert gathered.cost_for_budget(0) == 51.0
        assert gathered.cost_for_budget(1) == 35.0
        assert gathered.cost_for_budget(2) == 20.0

    def test_blue_red_breakdown_at_root(self, gathered):
        # For (l = 1, i = 2) the red root achieves 20 while colouring the
        # root blue costs 25 (Section 4.3's worked derivation).
        table = gathered.tables["s0_0"]
        assert table.y_red[1, 2] == pytest.approx(20.0)
        assert table.y_blue[1, 2] == pytest.approx(25.0)
        # And for (l = 1, i = 1): red root relays 35, blue root also 35.
        assert table.y_red[1, 1] == pytest.approx(35.0)
        assert table.y_blue[1, 1] == pytest.approx(35.0)


class TestSection51Takeaways:
    """Qualitative claims of the strategy comparison at a reduced scale."""

    def test_soar_outperforms_other_strategies(self):
        from repro.baselines.strategies import PAPER_STRATEGIES

        rng = np.random.default_rng(2)
        from repro.topology.binary_tree import bt_network
        from repro.workload.distributions import PowerLawLoadDistribution, sample_leaf_loads

        tree = bt_network(64)
        tree = tree.with_loads(sample_leaf_loads(tree, PowerLawLoadDistribution(), rng=rng))
        costs = {
            name: utilization_cost(tree, strategy(tree, 8))
            for name, strategy in PAPER_STRATEGIES.items()
        }
        assert costs["SOAR"] == min(costs.values())

    def test_example_tree_is_bt8(self):
        tree = motivating_tree()
        assert tree.num_switches == 7
        assert tree.total_load == 17

"""Golden regression test: the Figure 5 gather tables, pinned entry by entry.

The running example of the paper (the 7-switch motivating tree, ``k = 2``)
is the one instance whose complete DP state — ``X``, ``Y^blue``, ``Y^red``,
colour choices, and the ``mCost`` argmin breadcrumbs — is small enough to
pin literally.  Any engine change that silently alters the DP semantics
(different tie-breaking, a shifted index, a reordered reduction) breaks
this file before it can corrupt the evaluation figures.

The values were derived from Eq. (4) / Algorithm 3 and cross-checked by
hand against the Figure 5 walkthrough; ``X_r(1, 2) = 20`` is the optimum
the paper reports for ``k = 2``.  Both engines must reproduce every entry
exactly (no tolerance: all quantities are small dyadic floats).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.engine import ENGINES, gather
from repro.experiments.motivating import motivating_tree

INF = np.inf

#: Complete expected gather state for the running example at k = 2.
#: Rows are the parameter l (distance to the closest blue ancestor), columns
#: the budget i.  Splits are listed per stage (children c_2..c_C).
GOLDEN = {
    # Leaf with load 2 at depth 3: red row l * 2, blue row l for i >= 1.
    "s2_0": {
        "x": [[0, 0, 0], [2, 1, 1], [4, 2, 2], [6, 3, 3]],
        "y_red": [[0, 0, 0], [2, 2, 2], [4, 4, 4], [6, 6, 6]],
        "y_blue": [[INF, 0, 0], [INF, 1, 1], [INF, 2, 2], [INF, 3, 3]],
        "choice": [[0, 0, 0], [0, 1, 1], [0, 1, 1], [0, 1, 1]],
        "splits_red": [],
        "splits_blue": [],
    },
    # Internal node above the leaves with loads (2, 6):
    #   X_a(l, 0) = 8 + 8l, X_a(l, 1) = min(8 + l, 3 + 3l, 7 + 7l),
    #   X_a(l, 2) = min(3 + l, 2 + 2l).
    "s1_0": {
        "x": [[8, 3, 2], [16, 6, 4], [24, 9, 5]],
        "y_red": [[8, 3, 2], [16, 6, 4], [24, 9, 6]],
        "y_blue": [[INF, 8, 3], [INF, 9, 4], [INF, 10, 5]],
        "choice": [[0, 0, 0], [0, 0, 0], [0, 0, 1]],
        # Red: one unit goes to the heavy child (load 6) as soon as i >= 1.
        "splits_red": [[[0, 1, 1], [0, 1, 1], [0, 1, 1]]],
        # Blue: the node itself consumes one unit; the heavy child gets the
        # second unit only at i = 2.
        "splits_blue": [[[0, 0, 1], [0, 0, 1], [0, 0, 1]]],
    },
    # Internal node above the leaves with loads (5, 4).
    "s1_1": {
        "x": [[9, 5, 2], [18, 10, 4], [27, 11, 6]],
        "y_red": [[9, 5, 2], [18, 10, 4], [27, 15, 6]],
        "y_blue": [[INF, 9, 5], [INF, 10, 6], [INF, 11, 7]],
        "choice": [[0, 0, 0], [0, 0, 0], [0, 1, 0]],
        "splits_red": [[[0, 0, 1], [0, 0, 1], [0, 0, 1]]],
        "splits_blue": [[[0, 0, 0], [0, 0, 0], [0, 0, 0]]],
    },
    # The root: X_r(1, 2) = 20 is the k = 2 optimum of Figures 3 and 5.
    "s0_0": {
        "x": [[34, 24, 16], [51, 35, 20]],
        "y_red": [[34, 24, 16], [51, 35, 20]],
        "y_blue": [[INF, 34, 24], [INF, 35, 25]],
        "choice": [[0, 0, 0], [0, 0, 0]],
        "splits_red": [[[0, 0, 1], [0, 1, 1]]],
        "splits_blue": [[[0, 0, 0], [0, 0, 0]]],
    },
}


@pytest.mark.parametrize("engine", sorted(ENGINES))
class TestFigure5Golden:
    @pytest.fixture
    def gathered(self, engine):
        return gather(motivating_tree(), 2, engine=engine)

    @pytest.mark.parametrize("node", sorted(GOLDEN))
    def test_tables_match_golden(self, gathered, node, engine):
        tables = gathered.tables[node]
        expected = GOLDEN[node]
        assert np.array_equal(tables.x, np.array(expected["x"], dtype=float)), node
        assert np.array_equal(tables.y_red, np.array(expected["y_red"], dtype=float))
        assert np.array_equal(tables.y_blue, np.array(expected["y_blue"], dtype=float))
        assert np.array_equal(tables.choice, np.array(expected["choice"]))
        assert len(tables.splits_red) == len(expected["splits_red"])
        for actual, pinned in zip(tables.splits_red, expected["splits_red"]):
            assert np.array_equal(actual, np.array(pinned))
        assert len(tables.splits_blue) == len(expected["splits_blue"])
        for actual, pinned in zip(tables.splits_blue, expected["splits_blue"]):
            assert np.array_equal(actual, np.array(pinned))

    def test_optimum_is_twenty(self, gathered, engine):
        assert gathered.optimal_cost == 20.0

    def test_breadcrumb_dtypes_and_shapes(self, gathered, engine):
        # The breadcrumb *format* is part of the contract: float64 tables of
        # shape (D(v) + 1, k + 1), uint8 choices, integer splits.
        tree = motivating_tree()
        for node in tree.switches:
            tables = gathered.tables[node]
            expected_shape = (tree.depth(node) + 1, 3)
            assert tables.x.shape == expected_shape
            assert tables.x.dtype == np.float64
            assert tables.choice.shape == expected_shape
            assert tables.choice.dtype == np.uint8
            assert len(tables.splits_red) == max(0, tree.num_children(node) - 1)
            for split in tables.splits_red + tables.splits_blue:
                assert split.shape == expected_shape
                assert np.issubdtype(split.dtype, np.integer)

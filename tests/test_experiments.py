"""Tests for the experiment harness: every figure module runs and its output
has the right shape and the qualitative properties the paper reports."""

from __future__ import annotations

import math

import pytest

from repro.experiments.fig6_strategies import run_fig6
from repro.experiments.fig7_online import run_fig7_capacity_sweep, run_fig7_workload_sweep
from repro.experiments.fig8_applications import default_applications, run_fig8
from repro.experiments.fig9_runtime import run_fig9
from repro.experiments.fig10_scaling import (
    BUDGET_RULES,
    run_fig10_required_fraction,
    run_fig10_utilization,
)
from repro.experiments.fig11_scalefree import run_fig11_example, run_fig11_scaling
from repro.experiments.harness import (
    ExperimentConfig,
    budgets_for_network,
    build_evaluation_network,
    repetition_seeds,
)
from repro.experiments.motivating import (
    FIGURE2_EXPECTED,
    FIGURE3_EXPECTED,
    motivating_tree,
    run_budget_sweep,
    run_strategy_comparison,
)
from repro.exceptions import ExperimentError

#: Small configuration so the whole module runs in a few seconds.
TINY = ExperimentConfig(network_size=32, repetitions=2, seed=11)


class TestHarness:
    def test_repetition_seeds_are_deterministic(self):
        first = [rng.integers(0, 1_000_000) for rng in repetition_seeds(TINY)]
        second = [rng.integers(0, 1_000_000) for rng in repetition_seeds(TINY)]
        assert first == second
        assert len(first) == TINY.repetitions

    def test_build_evaluation_network(self):
        rng = next(iter(repetition_seeds(TINY)))
        tree = build_evaluation_network(TINY, "linear", "uniform", rng)
        assert tree.num_switches == 31
        assert tree.total_load >= 4 * 16
        assert tree.rate(tree.root) == tree.height

    def test_build_rejects_tiny_network(self):
        rng = next(iter(repetition_seeds(TINY)))
        with pytest.raises(ExperimentError):
            build_evaluation_network(TINY.scaled(network_size=1), "constant", "uniform", rng)

    def test_budgets_for_network_clamps(self):
        tree = motivating_tree()
        assert budgets_for_network([1, 2, 100], tree) == [1, 2, 7]
        with pytest.raises(ExperimentError):
            budgets_for_network([], tree)

    def test_config_scaled(self):
        scaled = TINY.scaled(network_size=64, repetitions=5)
        assert scaled.network_size == 64
        assert scaled.repetitions == 5
        assert scaled.seed == TINY.seed


class TestMotivatingExample:
    def test_figure2_rows_match_paper(self):
        rows = {row["strategy"]: row for row in run_strategy_comparison()}
        for name, expected in FIGURE2_EXPECTED.items():
            assert rows[name]["utilization"] == pytest.approx(expected)
        assert rows["AllRed"]["utilization"] == pytest.approx(51.0)
        assert rows["AllBlue"]["utilization"] == pytest.approx(7.0)

    def test_figure3_rows_match_paper(self):
        rows = {row["k"]: row for row in run_budget_sweep()}
        for budget, expected in FIGURE3_EXPECTED.items():
            assert rows[budget]["utilization"] == pytest.approx(expected)


class TestFig6:
    def test_rows_and_optimality(self):
        rows = run_fig6(
            config=TINY,
            budgets=(1, 4),
            rate_schemes=("constant", "exponential"),
            distributions=("power-law",),
        )
        # 5 curves (Top/Max/Level/SOAR/All blue) x 2 budgets x 2 schemes.
        assert len(rows) == 5 * 2 * 2
        for row in rows:
            assert 0.0 <= row["normalized_utilization"] <= 1.0 + 1e-9

        def value(strategy, scheme, k):
            return next(
                r["normalized_utilization"]
                for r in rows
                if r["strategy"] == strategy and r["rate_scheme"] == scheme and r["k"] == k
            )

        for scheme in ("constant", "exponential"):
            for k in (1, 4):
                soar = value("SOAR", scheme, k)
                assert soar <= value("Top", scheme, k) + 1e-9
                assert soar <= value("Max", scheme, k) + 1e-9
                assert soar <= value("Level", scheme, k) + 1e-9
                assert value("All blue", scheme, k) <= soar + 1e-9

    def test_more_budget_helps(self):
        rows = run_fig6(
            config=TINY, budgets=(1, 8), rate_schemes=("constant",), distributions=("uniform",)
        )
        soar = {r["k"]: r["normalized_utilization"] for r in rows if r["strategy"] == "SOAR"}
        assert soar[8] <= soar[1] + 1e-9


class TestFig7:
    def test_workload_sweep_shape(self):
        rows = run_fig7_workload_sweep(
            config=TINY, budget=4, capacity=2, num_workloads=5, rate_schemes=("constant",)
        )
        strategies = {row["strategy"] for row in rows}
        assert strategies == {"Top", "Max", "Level", "SOAR"}
        assert len(rows) == 4 * 5
        for row in rows:
            assert 0.0 < row["normalized_utilization"] <= 1.0 + 1e-9

    def test_soar_best_in_online_setting(self):
        rows = run_fig7_workload_sweep(
            config=TINY, budget=4, capacity=2, num_workloads=6, rate_schemes=("constant",)
        )
        final = {
            row["strategy"]: row["normalized_utilization"]
            for row in rows
            if row["num_workloads"] == 6
        }
        assert final["SOAR"] <= min(final.values()) + 1e-9

    def test_capacity_sweep_improves_with_capacity(self):
        rows = run_fig7_capacity_sweep(
            config=TINY,
            budget=4,
            capacities=(1, 8),
            num_workloads=6,
            rate_schemes=("constant",),
        )
        soar = {row["capacity"]: row["normalized_utilization"] for row in rows if row["strategy"] == "SOAR"}
        assert soar[8] <= soar[1] + 1e-9


class TestFig8:
    def test_rows_and_shapes(self):
        applications = {
            "WC": default_applications()["WC"].__class__(
                vocabulary_size=2_000, shard_size=200, rng=1
            ),
            "PS": default_applications()["PS"].__class__(
                feature_dimension=1_000, dropout=0.5, rng=2
            ),
        }
        rows = run_fig8(
            config=TINY,
            budgets=(1, 4),
            distributions=("power-law",),
            applications=applications,
        )
        assert len(rows) == 2 * 1 * 2
        for row in rows:
            assert 0.0 < row["normalized_utilization"] <= 1.0 + 1e-9
            assert 0.0 < row["bytes_vs_all_red"] <= 1.0 + 1e-9
            assert row["bytes_vs_all_blue"] >= 1.0 - 1e-9

    def test_utilization_independent_of_application(self):
        rows = run_fig8(config=TINY, budgets=(2,), distributions=("uniform",))
        utilizations = {row["application"]: row["normalized_utilization"] for row in rows}
        assert utilizations["WC"] == pytest.approx(utilizations["PS"])


class TestFig9:
    def test_rows_and_scaling_shape(self):
        rows = run_fig9(sizes=(32, 64), budgets=(2, 8), config=TINY)
        assert len(rows) == 4
        for row in rows:
            assert row["gather_seconds"] > 0
            assert row["color_seconds"] >= 0
            assert row["color_seconds"] <= row["gather_seconds"]

    def test_gather_time_grows_with_k(self):
        rows = run_fig9(sizes=(128,), budgets=(2, 32), config=TINY)
        by_budget = {row["k"]: row["gather_seconds"] for row in rows}
        assert by_budget[32] >= by_budget[2]


class TestFig10:
    def test_utilization_rows(self):
        rows = run_fig10_utilization(sizes=(32, 64), config=TINY)
        rules = {row["budget_rule"] for row in rows}
        assert rules == set(BUDGET_RULES) | {"all-blue"}
        for row in rows:
            assert 0.0 < row["normalized_utilization"] <= 1.0 + 1e-9

    def test_sqrt_budget_beats_log_budget(self):
        rows = run_fig10_utilization(sizes=(64,), config=TINY)
        values = {row["budget_rule"]: row["normalized_utilization"] for row in rows}
        assert values["sqrt(n)"] <= values["log(n)"] + 1e-9

    def test_required_fraction_rows(self):
        rows = run_fig10_required_fraction(sizes=(64,), targets=(0.3, 0.5), config=TINY)
        assert len(rows) == 2
        by_target = {row["target_reduction"]: row for row in rows}
        assert by_target[0.3]["percent_blue_nodes"] <= by_target[0.5]["percent_blue_nodes"]
        for row in rows:
            assert not math.isnan(row["percent_blue_nodes"])
            assert 0.0 < row["percent_blue_nodes"] <= 100.0


class TestFig11:
    def test_example_rows(self):
        rows = run_fig11_example(size=64, budget=3, seed=5, samples=3)
        by_strategy = {row["strategy"]: row for row in rows}
        assert by_strategy["SOAR"]["utilization"] <= by_strategy["Max(degree)"]["utilization"]
        assert by_strategy["Max(degree)"]["utilization"] <= by_strategy["All red"]["utilization"]
        assert 0.0 <= by_strategy["saving vs Max"]["utilization"] <= 1.0
        assert 0.0 <= by_strategy["saving vs all-red"]["utilization"] <= 1.0

    def test_scaling_rows(self):
        rows = run_fig11_scaling(sizes=(32, 64), config=TINY)
        assert {row["budget_rule"] for row in rows} == set(BUDGET_RULES) | {"all-blue"}
        for row in rows:
            assert 0.0 < row["normalized_utilization"] <= 1.0 + 1e-9

# lint-fixture-module: repro.service.fixture_lockorder_good
"""Negative fixture: a consistent lock order and legal RLock re-entry.

Every path through ``Ordered`` takes ``_outer_lock`` before
``_inner_lock`` (directly nested, and via a call made while the outer
lock is held) — one global order, acyclic graph.  ``Cache`` re-enters a
``threading.RLock``, which is reentrant and must not be flagged.
"""

import threading


class Ordered:
    def __init__(self) -> None:
        self._outer_lock = threading.Lock()
        self._inner_lock = threading.Lock()
        self.value = 0

    def nested(self) -> int:
        with self._outer_lock:
            with self._inner_lock:
                return self.value

    def via_call(self) -> int:
        with self._outer_lock:
            return self.locked_leaf()

    def locked_leaf(self) -> int:
        with self._inner_lock:
            return self.value


class Cache:
    def __init__(self) -> None:
        self._lock = threading.RLock()
        self.entries: dict[str, int] = {}

    def outer(self, key: str) -> int:
        with self._lock:
            return self.inner(key)

    def inner(self, key: str) -> int:
        with self._lock:
            return self.entries.get(key, 0)

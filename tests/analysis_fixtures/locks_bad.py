# lint-fixture-module: repro.experiments.fixture_locks_bad
"""Positive fixture: protected-object mutations outside allowed contexts."""

from repro.online.capacity import CapacityTracker
from repro.service.state import FleetState


def poke_through_slot(service):
    # Mutating through the service's protected slot, no lock held.
    service.state._admitted_total = 0


def poke_subscript(service, tenant_id):
    # Subscript store through a protected slot chain.
    service._state._tenants[tenant_id] = None


def poke_annotated(state: FleetState):
    # Parameter annotated with a protected class.
    state._generation += 1


def poke_constructed():
    tracker = CapacityTracker({})
    # Local bound to a protected constructor call.
    tracker._residual.clear()
    tracker._residual = {}


def poke_delete(service):
    del service.state._tenants["t0"]

# lint-fixture-module: repro.core.fixture_determinism_good
"""Negative fixture: seeded RNG, ordered reductions, no wall clock."""

import hashlib

import numpy as np


def seeded(seed: int):
    rng = np.random.default_rng(seed)
    spawned = np.random.default_rng(np.random.SeedSequence(seed))
    return rng.random() + spawned.random()


def ordered_sum(loads: dict):
    blue = {1, 2, 3}
    # Sorting pins the reduction order: allowed.
    return sum(sorted(blue)) + sum(loads.values())


def ordered_digest(loads: dict):
    hasher = hashlib.sha256()
    for node in sorted(loads.items()):
        hasher.update(repr(node).encode())
    return hasher.hexdigest()


def list_reduction(values: list):
    # Lists carry their own order: allowed.
    return sum(values)

# lint-fixture-module: repro.service.fixture_excepts_good
"""Negative fixture: typed handlers, re-raise cleanup, pragma'd loop."""


class ReproError(Exception):
    pass


def typed_handler(handler, request):
    try:
        return handler(request)
    except (ReproError, ValueError) as exc:
        return exc


def cleanup_and_propagate(path, write):
    try:
        write(path)
    except BaseException:
        # Re-raising keeps the error flowing: allowed.
        path.unlink()
        raise


def request_loop(queue, handler):
    while True:
        request = queue.get()
        if request is None:
            return
        try:
            handler(request)
        except Exception:  # lint: allow(broad-except)
            continue

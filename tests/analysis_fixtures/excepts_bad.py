# lint-fixture-module: repro.service.fixture_excepts_bad
"""Positive fixture: broad handlers that swallow bugs in the service layer."""


def swallow_everything(handler, request):
    try:
        return handler(request)
    except Exception:
        return None


def bare_swallow(handler, request):
    try:
        return handler(request)
    except:  # noqa: E722
        return None


def tuple_smuggle(handler, request):
    try:
        return handler(request)
    except (ValueError, Exception) as exc:
        return exc


def base_swallow(handler, request):
    try:
        return handler(request)
    except BaseException as exc:
        return exc

# lint-fixture-module: repro.core.fixture_layering_bad
"""Positive fixture: a pure-layer module importing the layers above it."""

import repro.online.capacity
from repro.experiments import sweep
from repro.service.api import SoarService


def solve_via_service(tree, loads):
    service = SoarService(tree)
    return service, sweep, repro.online.capacity

# lint-fixture-module: repro.service.fixture_blocking_bad
"""Positive fixture: blocking operations inside critical sections.

``direct_fsync`` syscalls under the mutex; ``journal_append`` reaches
``os.fsync`` through a two-deep call chain (the WAL shape);
``compile_kernels`` spawns a subprocess (the compile-on-demand build
shape) under a write-mode RW acquisition.
"""

import os
import subprocess
import threading
from contextlib import contextmanager


class ReadWriteLock:
    def __init__(self) -> None:
        self._cond = threading.Condition()

    @contextmanager
    def read_locked(self):
        with self._cond:
            yield

    @contextmanager
    def write_locked(self):
        with self._cond:
            yield


class Journal:
    def __init__(self, handle) -> None:
        self._handle = handle

    def append(self, line: str) -> None:
        self._write_line(line)

    def _write_line(self, line: str) -> None:
        self._handle.write(line)
        self._handle.flush()
        os.fsync(self._handle.fileno())


class Service:
    def __init__(self, journal: Journal) -> None:
        self._lock = threading.Lock()
        self._fleet_lock = ReadWriteLock()
        self._journal = journal

    def direct_fsync(self, fd: int) -> None:
        with self._lock:
            os.fsync(fd)

    def journal_append(self, line: str) -> None:
        with self._lock:
            self._journal.append(line)

    def compile_kernels(self) -> None:
        with self._fleet_lock.write_locked():
            subprocess.run(["cc", "-O2", "kernel.c"])

# lint-fixture-module: repro.core.fixture_determinism_bad
"""Positive fixture: unseeded RNG, wall-clock reads, unordered reductions."""

import hashlib
import random
import time

import numpy as np


def fresh_entropy():
    rng = np.random.default_rng()  # unseeded: fresh OS entropy
    return rng.random() + random.random()


def legacy_global_state(n):
    np.random.seed(0)
    return np.random.rand(n)


def stamped():
    return time.time()


def unordered_sum(loads: dict):
    blue = {1, 2, 3}
    return sum(blue) + sum({node for node in loads})


def unordered_digest(loads: dict):
    hasher = hashlib.sha256()
    for node in loads.values():
        hasher.update(str(node).encode())
    return hasher.hexdigest()

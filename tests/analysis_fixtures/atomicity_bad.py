# lint-fixture-module: repro.service.fixture_atomicity_bad
"""Positive fixture: raise-capable calls between related field mutations.

``CapacityTracker.adopt`` interleaves a resolving (raising) call between
two field assignments; ``FleetState.drain_all`` mutates the registry and
makes a raise-capable call in the same loop body — an exception mid-loop
leaves earlier iterations applied.  Class names are the protected ones
(the rule is scoped to the shared fleet classes).
"""


class SnapshotError(Exception):
    pass


class CapacityTracker:
    def resolve(self, name):
        if name is None:
            raise SnapshotError("unknown switch")
        return name

    def adopt(self, names):
        self._initial = [self.resolve(n) for n in names]
        self._residual = [self.resolve(n) for n in names]

    def shift(self, value):
        self._admitted = value
        checked = self.resolve(value)
        self._released = checked


class FleetState:
    def parse(self, payload):
        if not payload:
            raise SnapshotError("empty payload")
        return payload

    def drain_all(self, records):
        for record in records:
            self.parse(record)
            del self._tenants[record]

# lint-fixture-module: repro.service.fixture_blocking_good
"""Negative fixture: I/O kept outside critical sections.

``flush_after`` computes under the mutex and performs the file I/O after
releasing it.  ``read_side_flush`` flushes under a shared *read*
acquisition — other readers proceed, so the rule leaves it alone (the
write side is the convoy hazard).  Pure computation under the write lock
is fine.
"""

import threading
from contextlib import contextmanager


class ReadWriteLock:
    def __init__(self) -> None:
        self._cond = threading.Condition()

    @contextmanager
    def read_locked(self):
        with self._cond:
            yield

    @contextmanager
    def write_locked(self):
        with self._cond:
            yield


class Service:
    def __init__(self, handle) -> None:
        self._lock = threading.Lock()
        self._fleet_lock = ReadWriteLock()
        self._handle = handle
        self._total = 0

    def flush_after(self, value: int) -> None:
        with self._lock:
            payload = self._format(value)
        self._handle.write(payload)
        self._handle.flush()

    def read_side_flush(self) -> None:
        with self._fleet_lock.read_locked():
            self._handle.flush()

    def pure_update(self, value: int) -> None:
        with self._fleet_lock.write_locked():
            self._total = self._total + value

    def _format(self, value: int) -> str:
        return f"{value}\n"

# lint-fixture-module: repro.service.fixture_layering_good
"""Negative fixture: the service layer may import the pure layers."""

from repro.core.engine import ENGINES
from repro.core.tree import TreeNetwork
from repro.topology import fat_tree


def build(k: int) -> tuple:
    return TreeNetwork, fat_tree, ENGINES, k

# lint-fixture-module: repro.experiments.fixture_locks_good
"""Negative fixture: every mutation sits in an allowed context."""

from repro.service.state import FleetState


class FleetStateLike:
    def __init__(self):
        self.generation = 0

    def bump(self):
        # Mutating unprotected objects is always fine.
        self.generation += 1


class FleetState:  # noqa: F811  (fixture shadows the import on purpose)
    def admit(self, tenant_id, record):
        # Inside a protected class's own method: allowed.
        self._tenants[tenant_id] = record
        self._admitted_total += 1


def under_writer_lock(service):
    with service._fleet_lock.write_locked():
        # Writer lock held: allowed.
        service.state._generation += 1


def under_cache_mutex(cache):
    with cache._lock:
        # The cache's own mutex: allowed.
        cache._entries["key"] = None


def _requires_write(func):
    return func


@_requires_write
def locked_by_contract(state: FleetState):
    # Decorator marks the caller as lock-holding: allowed.
    state._generation += 1


def read_only(state: FleetState):
    # Reads are never flagged.
    return state._generation

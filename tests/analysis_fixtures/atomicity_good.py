# lint-fixture-module: repro.service.fixture_atomicity_good
"""Negative fixture: exception-safe update sequences.

``register`` does all raise-capable validation *before* the first field
mutation; ``load`` builds into locals and commits with plain assignments
after the last raise-capable call; ``guarded`` wraps the interleaving in
``try``/``except`` (the author owns the rollback).  ``Helper`` has the
bad shape but is not a protected class, so the rule must ignore it.
"""


class SnapshotError(Exception):
    pass


class FleetState:
    def check(self, record):
        if record is None:
            raise SnapshotError("bad record")
        return record

    def register(self, record):
        checked = self.check(record)
        self._tenants[checked] = 1
        self._admitted += 1

    def load(self, payloads):
        tenants = {}
        for payload in payloads:
            tenants[payload] = self.check(payload)
        self._tenants = tenants
        self._count = len(tenants)

    def guarded(self, payload):
        try:
            self._first = self.check(payload)
            self._second = self.check(payload)
        except SnapshotError:
            self._first = None
            raise


class Helper:
    def check(self, record):
        if record is None:
            raise SnapshotError("bad record")
        return record

    def unprotected(self, value):
        self._first = value
        self.check(value)
        self._second = value

# lint-fixture-module: repro.service.fixture_lockorder_bad
"""Positive fixture: lock-order cycles and non-reentrant re-acquisition.

``Pair`` takes its two locks in opposite orders on two call paths — the
classic AB/BA deadlock; the rule must report the cycle with both
acquisition sites named.  ``Reentry`` re-acquires a plain (non-reentrant)
``threading.Lock`` through a call made while it is already held.
"""

import threading


class Pair:
    def __init__(self) -> None:
        self._alpha_lock = threading.Lock()
        self._beta_lock = threading.Lock()
        self.value = 0

    def forward(self) -> int:
        with self._alpha_lock:
            with self._beta_lock:
                return self.value

    def backward(self) -> int:
        with self._beta_lock:
            with self._alpha_lock:
                return self.value


class Reentry:
    def __init__(self) -> None:
        self._guard_lock = threading.Lock()
        self.count = 0

    def outer(self) -> int:
        with self._guard_lock:
            return self.inner_locked()

    def inner_locked(self) -> int:
        with self._guard_lock:
            return self.count

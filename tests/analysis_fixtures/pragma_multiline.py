# lint-fixture-module: repro.service.fixture_pragma_multiline
"""Regression fixture: pragmas on the first line of multi-line statements.

Each pragma sits on the *first* line of a statement that spans several
lines, while the finding it silences anchors to a *child* line (the
blocking ``flush`` call is an argument on the next line; the assignment
value sits below the target).  Span-based matching must suppress both;
the old exact-line matching missed them.  ``run_fixture`` over this file
must return no findings.
"""

import threading


class Spooler:
    def __init__(self, handle) -> None:
        self._lock = threading.Lock()
        self._handle = handle
        self._last = None

    def flush_spool(self) -> None:
        with self._lock:
            self.record(  # lint: allow(blocking-under-lock)
                self._handle.flush()
            )

    def record(self, value) -> None:
        self._last = value


def poke_counter(service) -> None:
    service.state._admitted_total = (  # lint: allow(lock-discipline)
        0
    )

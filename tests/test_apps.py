"""Tests for the WC / PS application models and the byte-complexity machinery."""

from __future__ import annotations

from collections import Counter

import numpy as np
import pytest

from repro.apps.base import evaluate_application
from repro.apps.bytes_model import (
    analytic_link_bytes,
    expected_byte_complexity,
    message_group_sizes,
    normalized_byte_complexity,
)
from repro.apps.paramserver import ParameterServerApplication, SparseGradient
from repro.apps.wordcount import (
    WordCountApplication,
    expected_distinct_words,
    zipf_probabilities,
)
from repro.core.reduce_op import link_message_counts
from repro.core.solver import Solver
from repro.exceptions import WorkloadError
from repro.topology.binary_tree import complete_binary_tree


@pytest.fixture
def small_loaded_tree():
    return complete_binary_tree(4, leaf_loads=[2, 3, 1, 2])


class TestZipfCorpus:
    def test_probabilities_sum_to_one(self):
        probabilities = zipf_probabilities(1000, 1.1)
        assert probabilities.sum() == pytest.approx(1.0)
        assert np.all(np.diff(probabilities) <= 0)

    def test_validation(self):
        with pytest.raises(WorkloadError):
            zipf_probabilities(0)
        with pytest.raises(WorkloadError):
            zipf_probabilities(10, exponent=0)

    def test_expected_distinct_words_bounds(self):
        probabilities = zipf_probabilities(500, 1.0)
        assert expected_distinct_words(0, probabilities) == 0.0
        one = expected_distinct_words(1, probabilities)
        many = expected_distinct_words(10_000, probabilities)
        assert one == pytest.approx(1.0)
        assert one < many <= 500.0

    def test_expected_distinct_words_monotone(self):
        probabilities = zipf_probabilities(200, 1.2)
        values = [expected_distinct_words(n, probabilities) for n in (1, 10, 100, 1000)]
        assert values == sorted(values)


class TestWordCountApplication:
    def test_produce_shapes(self):
        app = WordCountApplication(vocabulary_size=100, shard_size=50, rng=1)
        payloads = app.produce("s", 3)
        assert len(payloads) == 3
        for payload in payloads:
            assert isinstance(payload, Counter)
            assert sum(payload.values()) == 50
            assert all(0 <= word < 100 for word in payload)

    def test_combine_preserves_total_count(self):
        app = WordCountApplication(vocabulary_size=100, shard_size=40, rng=2)
        payloads = app.produce("s", 4)
        merged = app.combine(payloads)
        assert sum(merged.values()) == 4 * 40
        assert len(merged) <= sum(len(p) for p in payloads)

    def test_sizeof_counts_entries(self):
        app = WordCountApplication(vocabulary_size=10, shard_size=5, rng=3)
        payload = Counter({1: 2, 2: 3})
        assert app.sizeof(payload) == app.header_bytes + 2 * (app.key_bytes + app.count_bytes)

    def test_expected_message_bytes_grows_sublinearly(self):
        app = WordCountApplication(vocabulary_size=1_000, shard_size=500, rng=4)
        one = app.expected_message_bytes(1)
        four = app.expected_message_bytes(4)
        assert one < four < 4 * one  # aggregation helps but keys keep growing

    def test_corpus_statistics(self):
        stats = WordCountApplication(vocabulary_size=100, shard_size=10).corpus_statistics()
        assert stats["vocabulary_size"] == 100
        assert 0 < stats["expected_distinct_per_shard"] <= 10

    def test_invalid_shard_size(self):
        with pytest.raises(WorkloadError):
            WordCountApplication(shard_size=-1)


class TestParameterServerApplication:
    def test_produce_respects_dropout(self):
        app = ParameterServerApplication(feature_dimension=5_000, dropout=0.5, rng=5)
        gradients = app.produce("s", 2)
        assert len(gradients) == 2
        for gradient in gradients:
            assert gradient.dimension == 5_000
            assert 0.4 < gradient.nnz / 5_000 < 0.6

    def test_zero_dropout_is_dense(self):
        app = ParameterServerApplication(feature_dimension=100, dropout=0.0, rng=6)
        gradient = app.produce("s", 1)[0]
        assert gradient.nnz == 100

    def test_combine_unions_support(self):
        app = ParameterServerApplication(feature_dimension=1_000, dropout=0.5, rng=7)
        gradients = app.produce("s", 3)
        merged = app.combine(gradients)
        assert merged.nnz >= max(g.nnz for g in gradients)
        assert merged.nnz <= 1_000
        assert np.allclose(merged.values, sum(g.values for g in gradients))

    def test_sizeof_sparse_vs_dense(self):
        app = ParameterServerApplication(feature_dimension=1_000, dropout=0.5, dense_threshold=0.5)
        sparse = SparseGradient(mask=np.arange(1_000) < 100, values=np.zeros(1_000))
        dense = SparseGradient(mask=np.ones(1_000, dtype=bool), values=np.zeros(1_000))
        assert app.sizeof(sparse) == app.header_bytes + 100 * 8
        assert app.sizeof(dense) == app.header_bytes + 1_000 * 4

    def test_expected_active_fraction(self):
        app = ParameterServerApplication(dropout=0.5)
        assert app.expected_active_fraction(1) == pytest.approx(0.5)
        assert app.expected_active_fraction(2) == pytest.approx(0.75)
        assert app.expected_active_fraction(10) == pytest.approx(1.0, abs=1e-3)
        with pytest.raises(WorkloadError):
            app.expected_active_fraction(-1)

    def test_expected_message_bytes_saturates(self):
        app = ParameterServerApplication(feature_dimension=1_000, dropout=0.7)
        assert app.expected_message_bytes(0) == 0.0
        few = app.expected_message_bytes(1)
        many = app.expected_message_bytes(50)
        assert few < many
        # The aggregate of many workers switches to the dense encoding and
        # therefore saturates at header + dimension * value_bytes.
        assert many <= app.header_bytes + 1_000 * 4 + 1e-9

    def test_validation(self):
        with pytest.raises(WorkloadError):
            ParameterServerApplication(feature_dimension=0)
        with pytest.raises(WorkloadError):
            ParameterServerApplication(dropout=1.0)
        with pytest.raises(WorkloadError):
            ParameterServerApplication(dense_threshold=0.0)


class TestMessageGroupSizes:
    def test_all_red_groups_are_singletons(self, small_loaded_tree):
        groups = message_group_sizes(small_loaded_tree, frozenset())
        for switch, counter in groups.items():
            assert set(counter) <= {1}
        assert groups[small_loaded_tree.root][1] == small_loaded_tree.total_load

    def test_all_blue_one_group_per_link(self, small_loaded_tree):
        groups = message_group_sizes(
            small_loaded_tree, frozenset(small_loaded_tree.switches)
        )
        root_groups = groups[small_loaded_tree.root]
        assert sum(root_groups.values()) == 1
        assert list(root_groups) == [small_loaded_tree.total_load]

    def test_group_counts_match_message_counts(self, small_loaded_tree):
        blue = Solver().solve(small_loaded_tree, 2).blue_nodes
        groups = message_group_sizes(small_loaded_tree, blue)
        counts = link_message_counts(small_loaded_tree, blue)
        for switch, counter in groups.items():
            # Content-carrying counts differ only for empty blue subtrees.
            assert sum(counter.values()) <= counts[switch]
            servers = sum(size * count for size, count in counter.items())
            assert servers == small_loaded_tree.subtree_load(switch)

    def test_analytic_link_bytes_uses_group_model(self, small_loaded_tree):
        link_bytes = analytic_link_bytes(
            small_loaded_tree, frozenset(), lambda servers: 10.0 * servers
        )
        # All-red: every server message is 10 bytes and crosses depth(leaf) links.
        expected_root = 10.0 * small_loaded_tree.total_load
        assert link_bytes[small_loaded_tree.root] == pytest.approx(expected_root)


class TestByteComplexity:
    def test_sampled_and_analytic_agree_for_ps(self, small_loaded_tree):
        app = ParameterServerApplication(feature_dimension=2_000, dropout=0.5, rng=11)
        blue = Solver().solve(small_loaded_tree, 2).blue_nodes
        sampled = evaluate_application(small_loaded_tree, blue, app).total_bytes
        analytic = expected_byte_complexity(small_loaded_tree, blue, app)
        assert sampled == pytest.approx(analytic, rel=0.05)

    def test_sampled_and_analytic_agree_for_wc(self, small_loaded_tree):
        app = WordCountApplication(vocabulary_size=2_000, shard_size=300, rng=12)
        blue = frozenset(small_loaded_tree.switches)
        sampled = evaluate_application(small_loaded_tree, blue, app).total_bytes
        analytic = expected_byte_complexity(small_loaded_tree, blue, app)
        assert sampled == pytest.approx(analytic, rel=0.05)

    def test_aggregation_reduces_bytes(self, small_loaded_tree):
        app = WordCountApplication(vocabulary_size=1_000, shard_size=200, rng=13)
        all_red = expected_byte_complexity(small_loaded_tree, frozenset(), app)
        all_blue = expected_byte_complexity(
            small_loaded_tree, frozenset(small_loaded_tree.switches), app
        )
        assert all_blue < all_red

    def test_normalized_byte_complexity_references(self, small_loaded_tree):
        app = ParameterServerApplication(feature_dimension=500, dropout=0.5, rng=14)
        blue = Solver().solve(small_loaded_tree, 1).blue_nodes
        vs_red = normalized_byte_complexity(small_loaded_tree, blue, app, reference="all-red")
        vs_blue = normalized_byte_complexity(small_loaded_tree, blue, app, reference="all-blue")
        assert 0.0 < vs_red <= 1.0 + 1e-9
        assert vs_blue >= 1.0 - 1e-9
        with pytest.raises(ValueError):
            normalized_byte_complexity(small_loaded_tree, blue, app, reference="bogus")

    def test_wc_bytes_savings_lag_utilization_savings(self):
        """Figure 8b shape: WC byte savings are smaller than utilization savings."""
        tree = complete_binary_tree(8, leaf_loads=[4, 5, 6, 4, 5, 6, 4, 5])
        app = WordCountApplication(vocabulary_size=5_000, shard_size=1_000, rng=15)
        solution = Solver().solve(tree, 2)
        util_ratio = solution.cost / Solver().solve(tree, 0).cost
        byte_ratio = normalized_byte_complexity(tree, solution.blue_nodes, app)
        assert byte_ratio > util_ratio

    def test_ps_bytes_track_utilization(self):
        """Figure 8 shape: with 0.5 dropout PS bytes follow utilization closely."""
        tree = complete_binary_tree(8, leaf_loads=[4, 5, 6, 4, 5, 6, 4, 5])
        app = ParameterServerApplication(feature_dimension=10_000, dropout=0.5)
        solution = Solver().solve(tree, 4)
        util_ratio = solution.cost / Solver().solve(tree, 0).cost
        byte_ratio = normalized_byte_complexity(tree, solution.blue_nodes, app)
        assert abs(byte_ratio - util_ratio) < 0.25

    def test_evaluate_application_metadata(self, small_loaded_tree):
        app = ParameterServerApplication(feature_dimension=200, dropout=0.5, rng=16)
        evaluation = evaluate_application(small_loaded_tree, frozenset(), app)
        assert evaluation.application == "PS"
        assert evaluation.normalized_utilization == pytest.approx(1.0)
        assert evaluation.total_bytes > 0

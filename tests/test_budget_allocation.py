"""Tests for the multi-workload budget-splitting extension (Section 8 open problem)."""

from __future__ import annotations

import itertools

import pytest

from repro.core.solver import Solver
from repro.exceptions import InvalidBudgetError
from repro.online.budget_allocation import (
    allocate_budgets,
    workload_cost_curve,
)
from repro.online.scheduler import generate_workload_sequence
from repro.topology.binary_tree import bt_network, complete_binary_tree


@pytest.fixture
def tree():
    return bt_network(16)


def _exhaustive_best(tree, workloads, total_budget):
    """Reference: enumerate every split of the total budget across workloads."""
    best = float("inf")
    num = len(workloads)
    for split in itertools.product(range(total_budget + 1), repeat=num):
        if sum(split) > total_budget:
            continue
        cost = sum(
            Solver().solve(tree.with_loads(loads), budget).cost
            for loads, budget in zip(workloads, split)
        )
        best = min(best, cost)
    return best


class TestWorkloadCostCurve:
    def test_curve_matches_individual_solves(self, tree):
        loads = {leaf: 3 for leaf in tree.leaves()}
        curve = workload_cost_curve(tree, loads, 4)
        for budget, value in enumerate(curve):
            assert value == pytest.approx(Solver().solve(tree.with_loads(loads), budget).cost)

    def test_curve_is_non_increasing(self, tree):
        loads = {leaf: int(i) + 1 for i, leaf in enumerate(tree.leaves())}
        curve = workload_cost_curve(tree, loads, 6)
        assert all(b <= a + 1e-9 for a, b in zip(curve, curve[1:]))

    def test_curve_padded_beyond_clamp(self):
        tiny = complete_binary_tree(2, leaf_loads=[3, 4])
        curve = workload_cost_curve(tiny, tiny.loads, 10)
        assert len(curve) == 11
        assert curve[3] == curve[10]

    def test_negative_budget_rejected(self, tree):
        with pytest.raises(InvalidBudgetError):
            workload_cost_curve(tree, {}, -1)


class TestAllocateBudgets:
    def test_matches_exhaustive_split(self, tree):
        workloads = generate_workload_sequence(tree, 3, rng=7)
        allocation = allocate_budgets(tree, workloads, total_budget=4)
        assert sum(allocation.budgets) <= 4
        assert allocation.total_cost == pytest.approx(
            _exhaustive_best(tree, workloads, 4)
        )

    def test_never_worse_than_uniform_split(self, tree):
        workloads = generate_workload_sequence(tree, 4, rng=11)
        allocation = allocate_budgets(tree, workloads, total_budget=8)
        assert allocation.total_cost <= allocation.uniform_cost + 1e-9
        assert 0.0 <= allocation.improvement_over_uniform <= 1.0

    def test_skewed_workloads_get_more_budget(self, tree):
        # One heavy power-law-like workload versus one tiny uniform workload:
        # the optimal split should favour the heavy one.
        heavy = {leaf: 20 for leaf in tree.leaves()}
        light = {leaf: 1 for leaf in tree.leaves()}
        allocation = allocate_budgets(tree, [heavy, light], total_budget=6)
        assert allocation.budgets[0] >= allocation.budgets[1]

    def test_zero_budget(self, tree):
        workloads = generate_workload_sequence(tree, 2, rng=1)
        allocation = allocate_budgets(tree, workloads, total_budget=0)
        assert allocation.budgets == (0, 0)
        assert allocation.total_cost == pytest.approx(allocation.uniform_cost)

    def test_empty_workload_list(self, tree):
        allocation = allocate_budgets(tree, [], total_budget=5)
        assert allocation.budgets == ()
        assert allocation.total_cost == 0.0

    def test_negative_budget_rejected(self, tree):
        with pytest.raises(InvalidBudgetError):
            allocate_budgets(tree, [{}], total_budget=-1)

    def test_cost_curves_exposed(self, tree):
        workloads = generate_workload_sequence(tree, 2, rng=3)
        allocation = allocate_budgets(tree, workloads, total_budget=3)
        assert len(allocation.cost_curves) == 2
        assert all(len(curve) >= 4 for curve in allocation.cost_curves)

    def test_large_budget_saturates(self, tree):
        workloads = generate_workload_sequence(tree, 2, rng=5)
        generous = allocate_budgets(tree, workloads, total_budget=2 * tree.num_switches)
        # With unbounded budget every workload reaches its all-blue optimum.
        expected = sum(
            Solver().solve(tree.with_loads(loads), tree.num_switches).cost for loads in workloads
        )
        assert generous.total_cost == pytest.approx(expected)

"""API-equivalence suite: deprecated shims vs the staged ``Solver`` path.

Three contracts, each enforced on hundreds of seeded random instances:

* the deprecated free functions (:func:`repro.core.soar.solve`,
  :func:`~repro.core.soar.solve_budget_sweep`,
  :func:`~repro.core.soar.optimal_cost`) return **bit-identical**
  placements, costs, and predicted costs to the staged
  ``Solver`` / ``GatherTable`` / ``Placement`` path — same floats, not
  approximately-equal floats;
* the level-batched colour kernel traces exactly the same blue set as the
  per-node reference trace, out of both engines' tables, at every budget a
  table carries — including on adversarial near-tie instances where every
  argmin is a tie-break over the stored breadcrumbs;
* reusing a gather artifact under the wrong provenance raises
  (:class:`~repro.exceptions.SemanticsMismatchError` /
  :class:`~repro.exceptions.EngineMismatchError`) instead of silently
  tracing answers for a different problem — the regression tests pin the
  historical ``solve(..., gathered=...)`` hole.
"""

from __future__ import annotations

import warnings

import pytest

from repro.core.color import soar_color, soar_color_batched
from repro.core.engine import flat_gather, gather
from repro.core.gather import soar_gather
from repro.core.soar import optimal_cost, solve, solve_budget_sweep
from repro.core.solver import GatherTable, Solver
from repro.exceptions import (
    EngineMismatchError,
    SemanticsMismatchError,
    TableMismatchError,
)
from repro.testing import instance_stream, near_tie_stream

# The shims are exercised on purpose throughout this module.
pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")


def _assert_same_solution(legacy, placement) -> None:
    """Bitwise agreement between a legacy SoarSolution and a Placement."""
    assert legacy.cost == placement.cost
    assert legacy.predicted_cost == placement.predicted_cost
    assert legacy.blue_nodes == placement.blue_nodes
    assert legacy.budget == placement.budget


class TestShimEquivalence:
    """Deprecated entry points are bit-identical to the staged path."""

    @pytest.mark.parametrize("exact_k", [False, True])
    def test_two_hundred_instances_solve(self, exact_k):
        count = 0
        for tree, budget in instance_stream(seed=31337, count=200, max_switches=12):
            solver = Solver(exact_k=exact_k)
            _assert_same_solution(
                solve(tree, budget, exact_k=exact_k), solver.solve(tree, budget)
            )
            count += 1
        assert count == 200

    def test_sweep_and_cost_equivalence(self):
        for tree, budget in instance_stream(seed=4242, count=40, max_switches=12):
            budgets = range(min(budget, len(tree.available)) + 1)
            legacy = solve_budget_sweep(tree, budgets)
            staged = Solver().sweep(tree, budgets)
            assert set(legacy) == set(staged)
            for k in legacy:
                _assert_same_solution(legacy[k], staged[k])
            assert optimal_cost(tree, budget) == Solver().cost(tree, budget)

    def test_shim_table_reuse_is_identical(self, paper_tree):
        solver = Solver()
        table = solver.gather(paper_tree, 4)
        for budget in range(5):
            _assert_same_solution(
                solve(paper_tree, budget, gathered=table), table.place(budget)
            )

    def test_shim_regathers_when_table_too_narrow(self, paper_tree):
        narrow = Solver().gather(paper_tree, 1)
        solution = solve(paper_tree, 3, gathered=narrow)
        # The shim's historical contract: honour the larger budget by
        # re-gathering rather than clamping to the narrow table.
        assert solution.budget == 3
        assert solution.gather.budget >= 3
        _assert_same_solution(solution, Solver().solve(paper_tree, 3))

    def test_every_shim_warns(self, paper_tree):
        with pytest.warns(DeprecationWarning, match="solve.*deprecated"):
            solve(paper_tree, 2)
        with pytest.warns(DeprecationWarning, match="solve_budget_sweep.*deprecated"):
            solve_budget_sweep(paper_tree, [1, 2])
        with pytest.warns(DeprecationWarning, match="optimal_cost.*deprecated"):
            optimal_cost(paper_tree, 2)


class TestBatchedColorExactness:
    """The batched colour kernel is bit-identical to the reference trace."""

    @pytest.mark.parametrize("exact_k", [False, True])
    def test_random_instances_every_budget(self, exact_k):
        for tree, budget in instance_stream(seed=90210, count=60, max_switches=12):
            for build in (flat_gather, soar_gather):
                gathered = build(tree, budget, exact_k=exact_k)
                for k in range(gathered.budget + 1):
                    assert soar_color_batched(tree, gathered, budget=k) == soar_color(
                        tree, gathered, budget=k
                    ), f"kernels diverge at budget {k} on {build.__name__} tables"

    def test_near_tie_instances_breadcrumb_ties(self):
        # Symmetric rates/loads and straddled Λ make every colour decision
        # and split lookup a tie-break over the stored breadcrumbs; the two
        # kernels must still walk them identically.
        for tree, budget in near_tie_stream(20260730, 80, max_switches=11):
            gathered = gather(tree, budget)
            for k in range(gathered.budget + 1):
                assert soar_color_batched(tree, gathered, budget=k) == soar_color(
                    tree, gathered, budget=k
                )

    def test_kernels_agree_on_foreign_same_structure_tree(self, paper_tree):
        # The leaf colour rule reads the *caller's* loads and Λ, not
        # gather-time state: tracing tables against a modified same-root
        # network must keep the two kernels identical (regression — the
        # batched kernel once consulted the arrays cached at gather time).
        gathered = gather(paper_tree, 2)
        flattened = paper_tree.with_loads({s: 1 for s in paper_tree.switches})
        assert soar_color_batched(flattened, gathered) == soar_color(
            flattened, gathered
        )
        restricted = paper_tree.with_available({"s1_0"})
        assert soar_color_batched(restricted, gathered) == soar_color(
            restricted, gathered
        )

    def test_solver_color_selection_matches(self, loaded_bt16):
        batched = Solver(color="batched").solve(loaded_bt16, 5)
        reference = Solver(color="reference").solve(loaded_bt16, 5)
        assert batched.blue_nodes == reference.blue_nodes
        assert batched.cost == reference.cost


class TestReuseMismatchRegression:
    """Regression: mismatched ``gathered=`` reuse raises instead of lying.

    Historically ``solve(tree, k, exact_k=True, gathered=g)`` with tables
    gathered under ``exact_k=False`` silently traced the at-most-k optimum
    and reported it as the exactly-k answer (and vice versa), corrupting
    whole sweeps.  The artifact now carries its semantics and engine.
    """

    def _zero_load_tree(self):
        # exact-k and at-most-k genuinely differ here (a zero-load leaf
        # makes forced blue placements costly), so the historical bug
        # produced *wrong* numbers, not just impolite ones.
        from repro.core.tree import TreeNetwork

        return TreeNetwork(
            parents={"r": "d", "a": "r", "b": "r"},
            loads={"a": 5, "b": 0},
        )

    def test_semantics_mismatch_via_shim(self):
        tree = self._zero_load_tree()
        exact_tables = gather(tree, 3, exact_k=True)
        with pytest.raises(SemanticsMismatchError):
            solve(tree, 3, gathered=exact_tables)  # exact_k defaults to False
        at_most_tables = gather(tree, 3)
        with pytest.raises(SemanticsMismatchError):
            solve(tree, 3, exact_k=True, gathered=at_most_tables)
        # The honest reuses still work and differ from each other — which is
        # exactly why the silent mix-up used to corrupt sweeps.
        exact = solve(tree, 3, exact_k=True, gathered=exact_tables)
        at_most = solve(tree, 3, gathered=at_most_tables)
        assert exact.cost != at_most.cost

    def test_engine_mismatch_via_shim(self, paper_tree):
        reference_tables = soar_gather(paper_tree, 2)
        with pytest.raises(EngineMismatchError):
            solve(paper_tree, 2, gathered=reference_tables)  # engine="flat"
        matched = solve(paper_tree, 2, gathered=reference_tables, engine="reference")
        assert matched.cost == 20.0

    def test_require_on_the_artifact(self, paper_tree):
        table = Solver(engine="flat", exact_k=True).gather(paper_tree, 2)
        with pytest.raises(SemanticsMismatchError):
            table.require(exact_k=False)
        with pytest.raises(EngineMismatchError):
            table.require(engine="reference")
        table.require(engine="flat", exact_k=True)  # matching: no raise

    def test_mismatches_share_a_catchable_base(self, paper_tree):
        table = Solver(exact_k=True).gather(paper_tree, 2)
        with pytest.raises(TableMismatchError):
            table.require(exact_k=False)
        assert issubclass(EngineMismatchError, TableMismatchError)
        assert issubclass(SemanticsMismatchError, TableMismatchError)

    def test_gather_table_shim_interop(self, paper_tree):
        # A GatherTable artifact can be passed where legacy code expects
        # ``gathered=`` and keeps its provenance checks.
        table = Solver(engine="reference").gather(paper_tree, 3)
        assert isinstance(table, GatherTable)
        with pytest.raises(EngineMismatchError):
            solve(paper_tree, 2, gathered=table)  # engine="flat" default
        solution = solve(paper_tree, 2, gathered=table, engine="reference")
        _assert_same_solution(solution, table.place(2))


class TestWarningHygiene:
    """The library itself never routes through its own deprecated shims."""

    def test_internal_paths_warn_free(self, paper_tree):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            solver = Solver()
            table = solver.gather(paper_tree, 4)
            table.sweep(range(5))
            solver.solve_many([(paper_tree, 2), (paper_tree, 3)])

    def test_service_paths_warn_free(self, paper_tree):
        from repro.service import PlacementService, SolveRequest, SweepRequest

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            service = PlacementService(paper_tree, capacity=2)
            loads = {leaf: 3 for leaf in paper_tree.leaves()}
            service.submit(SolveRequest(loads=loads, budget=2))
            service.submit(SolveRequest(loads=loads, budget=2))
            service.submit(SweepRequest(loads=loads, budgets=(1, 2)))

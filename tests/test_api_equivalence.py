"""API-equivalence suite for the staged ``Solver`` path and its kernels.

Three contracts, each enforced on hundreds of seeded random instances:

* the level-batched colour kernel traces exactly the same blue set as the
  per-node reference trace, out of both engines' tables, at every budget a
  table carries — including on adversarial near-tie instances where every
  argmin is a tie-break over the stored breadcrumbs;
* reusing a gather artifact under the wrong provenance raises
  (:class:`~repro.exceptions.SemanticsMismatchError` /
  :class:`~repro.exceptions.EngineMismatchError`) instead of silently
  tracing answers for a different problem;
* no internal path emits a ``DeprecationWarning`` — the pre-``Solver``
  free-function shims (``solve`` / ``solve_budget_sweep`` /
  ``optimal_cost``) completed their deprecation cycle and were removed,
  and nothing may quietly grow a replacement.
"""

from __future__ import annotations

import warnings

import pytest

from repro.core.color import soar_color, soar_color_batched
from repro.core.engine import flat_gather, gather
from repro.core.gather import soar_gather
from repro.core.solver import GatherTable, Solver
from repro.exceptions import (
    EngineMismatchError,
    SemanticsMismatchError,
    TableMismatchError,
)
from repro.testing import instance_stream, near_tie_stream


class TestRemovedShims:
    """The deprecated free functions are gone, not just quietly broken."""

    def test_free_functions_removed(self):
        import repro
        import repro.core

        for name in ("solve", "solve_budget_sweep", "optimal_cost", "SoarSolution"):
            assert not hasattr(repro, name), name
            assert not hasattr(repro.core, name), name
        with pytest.raises(ModuleNotFoundError):
            import repro.core.soar  # noqa: F401


class TestBatchedColorExactness:
    """The batched colour kernel is bit-identical to the reference trace."""

    @pytest.mark.parametrize("exact_k", [False, True])
    def test_random_instances_every_budget(self, exact_k):
        for tree, budget in instance_stream(seed=90210, count=60, max_switches=12):
            for build in (flat_gather, soar_gather):
                gathered = build(tree, budget, exact_k=exact_k)
                for k in range(gathered.budget + 1):
                    assert soar_color_batched(tree, gathered, budget=k) == soar_color(
                        tree, gathered, budget=k
                    ), f"kernels diverge at budget {k} on {build.__name__} tables"

    def test_near_tie_instances_breadcrumb_ties(self):
        # Symmetric rates/loads and straddled Λ make every colour decision
        # and split lookup a tie-break over the stored breadcrumbs; the two
        # kernels must still walk them identically.
        for tree, budget in near_tie_stream(20260730, 80, max_switches=11):
            gathered = gather(tree, budget)
            for k in range(gathered.budget + 1):
                assert soar_color_batched(tree, gathered, budget=k) == soar_color(
                    tree, gathered, budget=k
                )

    def test_kernels_agree_on_foreign_same_structure_tree(self, paper_tree):
        # The leaf colour rule reads the *caller's* loads and Λ, not
        # gather-time state: tracing tables against a modified same-root
        # network must keep the two kernels identical (regression — the
        # batched kernel once consulted the arrays cached at gather time).
        gathered = gather(paper_tree, 2)
        flattened = paper_tree.with_loads({s: 1 for s in paper_tree.switches})
        assert soar_color_batched(flattened, gathered) == soar_color(
            flattened, gathered
        )
        restricted = paper_tree.with_available({"s1_0"})
        assert soar_color_batched(restricted, gathered) == soar_color(
            restricted, gathered
        )

    def test_solver_color_selection_matches(self, loaded_bt16):
        batched = Solver(color="batched").solve(loaded_bt16, 5)
        reference = Solver(color="reference").solve(loaded_bt16, 5)
        assert batched.blue_nodes == reference.blue_nodes
        assert batched.cost == reference.cost


class TestSolverKernelEquivalence:
    """Every (engine, color, cost_kernel) combination is bit-identical."""

    def test_kernel_grid_on_seeded_instances(self):
        configurations = [
            Solver(),
            Solver(engine="reference"),
            Solver(color="reference"),
            Solver(cost_kernel="reference"),
            Solver(engine="reference", color="reference", cost_kernel="reference"),
        ]
        for tree, budget in instance_stream(seed=31337, count=40, max_switches=12):
            baseline = configurations[0].solve(tree, budget)
            for solver in configurations[1:]:
                other = solver.solve(tree, budget)
                assert other.blue_nodes == baseline.blue_nodes
                assert other.cost == baseline.cost
                assert other.predicted_cost == baseline.predicted_cost
                assert other.budget == baseline.budget

    @pytest.mark.parametrize("exact_k", [False, True])
    def test_semantics_produce_distinct_tables_but_stable_answers(self, exact_k):
        for tree, budget in instance_stream(seed=4242, count=20, max_switches=10):
            solver = Solver(exact_k=exact_k)
            table = solver.gather(tree, budget)
            sweep = table.sweep(range(table.budget + 1))
            for k, placement in sweep.items():
                again = table.place(k)
                assert again.blue_nodes == placement.blue_nodes
                assert again.cost == placement.cost


class TestReuseMismatchRegression:
    """Mismatched artifact reuse raises instead of lying.

    Historically the free-function API silently traced tables gathered
    under one budget semantics as answers for the other (and engine
    provenance was unchecked), corrupting whole sweeps.  The artifact
    carries its semantics and engine and refuses the mismatch.
    """

    def _zero_load_tree(self):
        # exact-k and at-most-k genuinely differ here (a zero-load leaf
        # makes forced blue placements costly), so the historical bug
        # produced *wrong* numbers, not just impolite ones.
        from repro.core.tree import TreeNetwork

        return TreeNetwork(
            parents={"r": "d", "a": "r", "b": "r"},
            loads={"a": 5, "b": 0},
        )

    def test_semantics_mismatch_raises_and_honest_reuse_differs(self):
        tree = self._zero_load_tree()
        exact_table = Solver(exact_k=True).gather(tree, 3)
        at_most_table = Solver().gather(tree, 3)
        with pytest.raises(SemanticsMismatchError):
            exact_table.require(exact_k=False)
        with pytest.raises(SemanticsMismatchError):
            at_most_table.require(exact_k=True)
        # The honest reuses still work and differ from each other — which is
        # exactly why the silent mix-up used to corrupt sweeps.
        assert exact_table.place(3).cost != at_most_table.place(3).cost

    def test_engine_mismatch_on_the_artifact(self, paper_tree):
        reference_table = Solver(engine="reference").gather(paper_tree, 2)
        with pytest.raises(EngineMismatchError):
            reference_table.require(engine="flat")
        reference_table.require(engine="reference")  # matching: no raise
        assert reference_table.place(2).cost == 20.0

    def test_require_on_the_artifact(self, paper_tree):
        table = Solver(engine="flat", exact_k=True).gather(paper_tree, 2)
        with pytest.raises(SemanticsMismatchError):
            table.require(exact_k=False)
        with pytest.raises(EngineMismatchError):
            table.require(engine="reference")
        table.require(engine="flat", exact_k=True)  # matching: no raise

    def test_mismatches_share_a_catchable_base(self, paper_tree):
        table = Solver(exact_k=True).gather(paper_tree, 2)
        with pytest.raises(TableMismatchError):
            table.require(exact_k=False)
        assert issubclass(EngineMismatchError, TableMismatchError)
        assert issubclass(SemanticsMismatchError, TableMismatchError)

    def test_artifact_provenance_fields(self, paper_tree):
        table = Solver(engine="reference").gather(paper_tree, 3)
        assert isinstance(table, GatherTable)
        assert table.engine == "reference"
        assert table.fingerprint == paper_tree.fingerprint()


class TestWarningHygiene:
    """No internal path emits a DeprecationWarning."""

    def test_internal_paths_warn_free(self, paper_tree):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            solver = Solver()
            table = solver.gather(paper_tree, 4)
            table.sweep(range(5))
            solver.solve_many([(paper_tree, 2), (paper_tree, 3)])

    def test_service_paths_warn_free(self, paper_tree):
        from repro.service import PlacementService, SolveRequest, SweepRequest

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            service = PlacementService(paper_tree, capacity=2)
            loads = {leaf: 3 for leaf in paper_tree.leaves()}
            service.submit(SolveRequest(loads=loads, budget=2))
            service.submit(SolveRequest(loads=loads, budget=2))
            service.submit(SweepRequest(loads=loads, budgets=(1, 2)))

"""Tests for the multi-tenant placement service (:mod:`repro.service`).

Three layers of defence:

* **differential** — every placement answer the service produces over
  seeded churn traces must be bit-identical to a direct cold
  :meth:`repro.Solver.solve` / :meth:`repro.Solver.sweep` at the
  availability the service saw (same blue set, same cost floats);
* **unit** — the gather-table cache's LRU/upcast/invalidation mechanics and
  the capacity tracker's new release/drain operations, checked in
  isolation;
* **acceptance** (slow tier) — on a seeded 200-request churn trace over
  BT(1024), warm requests are ≥ 10x faster than cold solves and every
  response verifies.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.solver import Solver
from repro.core.tree import fingerprint_loads, fingerprint_nodes
from repro.exceptions import (
    AvailabilityError,
    CapacityError,
    InvalidBudgetError,
    WorkloadError,
)
from repro.online.capacity import CapacityTracker
from repro.service import (
    AdmitRequest,
    DrainRequest,
    GatherTableCache,
    PlacementService,
    ReleaseRequest,
    SolveRequest,
    StatsRequest,
    SweepRequest,
    TraceEvent,
    event_to_request,
    generate_churn_trace,
    read_trace,
    replay_trace,
    write_trace,
)
from repro.service.cache import CachedSolution, CacheKey
from repro.topology.binary_tree import bt_network, complete_binary_tree
from repro.workload.distributions import PowerLawLoadDistribution, sample_leaf_loads


def small_service(num_leaves: int = 8, capacity: int = 3, **kwargs) -> PlacementService:
    return PlacementService(complete_binary_tree(num_leaves), capacity, **kwargs)


def leaf_loads(tree, seed: int = 0) -> dict:
    return sample_leaf_loads(tree, PowerLawLoadDistribution(), rng=seed)


# --------------------------------------------------------------------------- #
# fingerprints
# --------------------------------------------------------------------------- #


class TestFingerprints:
    def test_fingerprint_ignores_dict_order_and_zeros(self):
        assert fingerprint_loads({"a": 1, "b": 2}) == fingerprint_loads({"b": 2, "a": 1})
        assert fingerprint_loads({"a": 1, "b": 0}) == fingerprint_loads({"a": 1})
        assert fingerprint_loads({"a": 1}) != fingerprint_loads({"a": 2})

    def test_tree_fingerprints_decompose(self):
        tree = complete_binary_tree(4, leaf_loads=[1, 2, 3, 4])
        same = complete_binary_tree(4, leaf_loads=[1, 2, 3, 4])
        assert tree.fingerprint() == same.fingerprint()
        assert tree.structure_fingerprint() == same.structure_fingerprint()

        reloaded = tree.with_loads({"s2_0": 5})
        assert reloaded.structure_fingerprint() == tree.structure_fingerprint()
        assert reloaded.loads_fingerprint() != tree.loads_fingerprint()
        assert reloaded.fingerprint() != tree.fingerprint()

        restricted = tree.with_available(["s0_0"])
        assert restricted.availability_fingerprint() != tree.availability_fingerprint()
        assert restricted.structure_fingerprint() == tree.structure_fingerprint()

        rerated = tree.with_rates({"s1_0": 2.0})
        assert rerated.structure_fingerprint() != tree.structure_fingerprint()

    def test_loads_fingerprint_matches_request_digest(self):
        # The service digests request loads without building a tree; the
        # digest must agree with the tree's own loads fingerprint.
        tree = complete_binary_tree(4)
        loads = {"s2_0": 3, "s2_3": 1}
        assert tree.with_loads(loads).loads_fingerprint() == fingerprint_loads(loads)

    def test_availability_fingerprint_matches_nodes_digest(self):
        tree = complete_binary_tree(4)
        assert tree.availability_fingerprint() == fingerprint_nodes(tree.switches)

    def test_with_available_patches_digest_by_delta(self):
        # Satellite: with_available resumes the memoized IncrementalDigest
        # and folds the delta in/out instead of recomputing over Λ.  The
        # patched digest must equal the from-scratch digest of the new Λ —
        # for removals, additions, mixed flips, and chains of them.
        tree = complete_binary_tree(8, leaf_loads=[1, 2, 3, 4, 5, 6, 7, 8])
        tree.fingerprint()  # memoize all digests so the patch path runs
        switches = sorted(tree.switches)
        current = tree
        rng = np.random.default_rng(8)
        for _ in range(12):
            flips = frozenset(
                switches[int(p)]
                for p in rng.choice(len(switches), size=int(rng.integers(1, 4)), replace=False)
            )
            current = current.with_available(current.available ^ flips)
            fresh = complete_binary_tree(8, leaf_loads=[1, 2, 3, 4, 5, 6, 7, 8]).with_loads(
                current.loads, available=current.available
            )
            assert current.availability_fingerprint() == fresh.availability_fingerprint()
            assert current.fingerprint() == fresh.fingerprint()
            assert current.availability_fingerprint() == fingerprint_nodes(
                current.available
            )

    def test_with_available_shares_structure(self):
        # with_available must not pay the O(n) constructor: the clone
        # shares every Λ-independent attribute and only swaps Λ.
        tree = complete_binary_tree(8)
        clone = tree.with_available(sorted(tree.available)[:5])
        assert clone.switches is tree.switches
        assert clone.loads == tree.loads
        assert clone.height == tree.height
        assert clone.available == frozenset(sorted(tree.available)[:5])
        with pytest.raises(AvailabilityError):
            tree.with_available(["not-a-switch"])


# --------------------------------------------------------------------------- #
# capacity tracker churn (release / drain)
# --------------------------------------------------------------------------- #


class TestCapacityRelease:
    def test_release_restores_capacity(self, small_tree):
        tracker = CapacityTracker(small_tree, 2)
        tracker.consume({"a", "r"})
        assert tracker.residual("a") == 1
        restored = tracker.release({"a", "r"})
        assert restored == {"a", "r"}
        assert tracker.residual("a") == 2 and tracker.residual("r") == 2

    def test_release_unknown_switch_raises(self, small_tree):
        tracker = CapacityTracker(small_tree, 2)
        with pytest.raises(CapacityError, match="unknown switches"):
            tracker.release({"nope"})

    def test_over_release_raises(self, small_tree):
        tracker = CapacityTracker(small_tree, 2)
        with pytest.raises(CapacityError, match="exceed initial capacity"):
            tracker.release({"a"})

    def test_drain_zeroes_and_pins_capacity(self, small_tree):
        tracker = CapacityTracker(small_tree, 2)
        tracker.consume({"a"})
        forfeited = tracker.drain("a")
        assert forfeited == 1
        assert tracker.residual("a") == 0
        assert "a" not in tracker.available()
        assert tracker.drained == {"a"}
        # Releasing a drained switch does not resurrect it.
        restored = tracker.release({"a"})
        assert restored == frozenset()
        assert tracker.residual("a") == 0
        # Consuming a drained switch fails like any exhausted switch.
        with pytest.raises(CapacityError, match="no residual"):
            tracker.consume({"a"})

    def test_drain_unknown_switch_raises(self, small_tree):
        tracker = CapacityTracker(small_tree, 2)
        with pytest.raises(CapacityError, match="not a switch"):
            tracker.drain("d")

    def test_utilization_excludes_drained_slots(self, small_tree):
        tracker = CapacityTracker(small_tree, 2)
        tracker.drain("a")
        # Forfeited slots are not "consumed": utilization stays zero.
        assert tracker.utilization_of_capacity() == 0.0
        tracker.consume({"r"})
        # 1 of the 4 remaining in-service slots (r and b, capacity 2 each).
        assert tracker.utilization_of_capacity() == 0.25

    def test_reset_forgets_drains(self, small_tree):
        tracker = CapacityTracker(small_tree, 1)
        tracker.drain("a")
        tracker.reset()
        assert tracker.drained == frozenset()
        assert "a" in tracker.available()


# --------------------------------------------------------------------------- #
# cache unit tests
# --------------------------------------------------------------------------- #


def _key(tag: str, exact_k: bool = False) -> CacheKey:
    return CacheKey(
        structure="s", available=f"a-{tag}", loads=f"l-{tag}", exact_k=exact_k, engine="flat"
    )


class _FakeTree:
    def __init__(self, available: frozenset) -> None:
        self.available = available


class _FakeTable:
    """Stand-in for a GatherTable: the cache only reads ``budget``,
    ``requested_budget``, and the Λ of the table's own workload network."""

    def __init__(
        self,
        budget: int,
        available: frozenset = frozenset(),
        requested_budget: int | None = None,
    ) -> None:
        self.budget = budget
        self.requested_budget = budget if requested_budget is None else requested_budget
        self.tree = _FakeTree(frozenset(available))


class TestGatherTableCache:
    def test_hit_miss_accounting(self):
        cache = GatherTableCache(max_entries=4)
        key = _key("x")
        assert cache.lookup(key, 2) is None
        cache.store(key, _FakeTable(4, frozenset({"a"})))
        assert cache.lookup(key, 2) is not None
        assert cache.stats.misses == 1 and cache.stats.table_hits == 1

    def test_budget_upcast_counted_and_replaced(self):
        cache = GatherTableCache(max_entries=4)
        key = _key("x")
        cache.store(key, _FakeTable(2))
        assert cache.lookup(key, 4) is None
        assert cache.stats.budget_upcasts == 1
        assert cache.stored_budget(key) == 2
        cache.store(key, _FakeTable(4))
        assert cache.stored_budget(key) == 4
        assert cache.lookup(key, 4).budget == 4
        # The wider table still answers narrower budgets.
        assert cache.lookup(key, 1).budget == 4

    def test_upcast_preserves_solution_memo(self):
        cache = GatherTableCache(max_entries=4)
        key = _key("x")
        cache.store(key, _FakeTable(2))
        memo = CachedSolution(frozenset({"b"}), 7.0, 7.0)
        cache.store_solution(key, 2, memo)
        cache.store(key, _FakeTable(8))
        assert cache.solution(key, 2) == memo
        assert cache.stats.solution_hits == 1

    def test_lru_eviction_order(self):
        cache = GatherTableCache(max_entries=2)
        first, second, third = _key("1"), _key("2"), _key("3")
        cache.store(first, _FakeTable(1))
        cache.store(second, _FakeTable(1))
        cache.lookup(first, 1)  # refresh "1": now "2" is the LRU victim
        cache.store(third, _FakeTable(1))
        assert first in cache and third in cache and second not in cache
        assert cache.stats.evictions == 1

    def test_invalidate_switches_is_selective(self):
        cache = GatherTableCache(max_entries=4)
        with_s = _key("with")
        without_s = _key("without")
        cache.store(with_s, _FakeTable(1, frozenset({"s", "t"})))
        cache.store(without_s, _FakeTable(1, frozenset({"t"})))
        dropped = cache.invalidate_switches({"s"})
        assert dropped == 1
        assert with_s not in cache and without_s in cache
        assert cache.stats.invalidations == 1

    def test_invalidate_all(self):
        cache = GatherTableCache(max_entries=4)
        cache.store(_key("1"), _FakeTable(1))
        cache.store(_key("2"), _FakeTable(1))
        assert cache.invalidate_all() == 2
        assert len(cache) == 0

    def test_rejects_nonpositive_size(self):
        with pytest.raises(ValueError):
            GatherTableCache(max_entries=0)

    def test_rejects_negative_repair_delta(self):
        with pytest.raises(ValueError):
            GatherTableCache(max_entries=4, max_repair_delta=-1)


def _avail_key(tag: str) -> CacheKey:
    """Keys of one repair family: they differ in availability alone."""
    return CacheKey(
        structure="s", available=f"a-{tag}", loads="l", exact_k=False, engine="flat"
    )


def _switch_index_snapshot(cache: GatherTableCache) -> dict:
    """White-box view of the reverse index, empty buckets dropped."""
    return {s: set(keys) for s, keys in cache._switch_index.items() if keys}


def _switch_index_expected(cache: GatherTableCache) -> dict:
    """The reverse index rebuilt from the live entries (ground truth)."""
    expected: dict = {}
    for key, entry in cache._entries.items():
        for switch in entry.available:
            expected.setdefault(switch, set()).add(key)
    return expected


class TestSwitchIndex:
    """Satellite: the switch→keys reverse index stays coherent with the
    entry map across stores, upcasts, LRU evictions, and invalidations."""

    def _assert_coherent(self, cache: GatherTableCache) -> None:
        assert _switch_index_snapshot(cache) == _switch_index_expected(cache)

    def test_index_tracks_store_and_replace(self):
        cache = GatherTableCache(max_entries=4)
        key = _avail_key("x")
        cache.store(key, _FakeTable(2, frozenset({"a", "b"})))
        self._assert_coherent(cache)
        assert _switch_index_snapshot(cache) == {"a": {key}, "b": {key}}
        # A replacement with a different Λ must drop the stale buckets.
        cache.store(key, _FakeTable(4, frozenset({"b", "c"})))
        self._assert_coherent(cache)
        assert "a" not in _switch_index_snapshot(cache)

    def test_index_tracks_eviction(self):
        cache = GatherTableCache(max_entries=2)
        first, second, third = _avail_key("1"), _avail_key("2"), _avail_key("3")
        cache.store(first, _FakeTable(1, frozenset({"s1"})))
        cache.store(second, _FakeTable(1, frozenset({"s2"})))
        cache.store(third, _FakeTable(1, frozenset({"s3"})))  # evicts "1"
        self._assert_coherent(cache)
        assert "s1" not in _switch_index_snapshot(cache)

    def test_index_tracks_invalidation(self):
        cache = GatherTableCache(max_entries=4)
        with_s = _avail_key("with")
        without_s = _avail_key("without")
        cache.store(with_s, _FakeTable(1, frozenset({"s", "t"})))
        cache.store(without_s, _FakeTable(1, frozenset({"t"})))
        assert cache.invalidate_switches({"s"}) == 1
        self._assert_coherent(cache)
        assert _switch_index_snapshot(cache) == {"t": {without_s}}
        assert cache.invalidate_all() == 1
        self._assert_coherent(cache)
        assert _switch_index_snapshot(cache) == {}

    def test_index_coherent_under_random_churn(self):
        rng = np.random.default_rng(42)
        cache = GatherTableCache(max_entries=3)
        switches = [f"sw{i}" for i in range(6)]
        for step in range(120):
            op = int(rng.integers(3))
            if op == 0:
                tag = str(int(rng.integers(8)))
                chosen = frozenset(
                    s for s in switches if rng.random() < 0.5
                )
                cache.store(_avail_key(tag), _FakeTable(1, chosen))
            elif op == 1:
                cache.invalidate_switches({switches[int(rng.integers(len(switches)))]})
            else:
                cache.lookup(_avail_key(str(int(rng.integers(8)))), 1)
            self._assert_coherent(cache)


class TestRepairCandidate:
    """The nearest-neighbor scan behind repair-instead-of-invalidate."""

    def test_disabled_cache_never_offers_candidates(self):
        cache = GatherTableCache(max_entries=4, max_repair_delta=0)
        assert not cache.repair_enabled
        cache.store(_avail_key("a"), _FakeTable(2, frozenset({"s"})))
        assert cache.repair_candidate(_avail_key("b"), 2, frozenset({"s", "t"})) is None
        assert cache.stats.repair_hits == 0

    def test_smallest_delta_wins(self):
        cache = GatherTableCache(max_entries=4)
        near_key, far_key = _avail_key("near"), _avail_key("far")
        near = _FakeTable(3, frozenset({"a", "b"}), requested_budget=3)
        far = _FakeTable(3, frozenset({"a", "b", "c", "d", "e"}), requested_budget=3)
        cache.store(far_key, far)
        cache.store(near_key, near)
        candidate = cache.repair_candidate(
            _avail_key("target"), 3, frozenset({"a", "b", "c"})
        )
        assert candidate is not None
        table, delta = candidate
        assert table is near and delta == frozenset({"c"})
        assert cache.stats.repair_hits == 1

    def test_tie_keeps_earliest_stored(self):
        cache = GatherTableCache(max_entries=4)
        first = _FakeTable(2, frozenset({"a"}))
        second = _FakeTable(2, frozenset({"b"}))
        cache.store(_avail_key("first"), first)
        cache.store(_avail_key("second"), second)
        candidate = cache.repair_candidate(_avail_key("t"), 2, frozenset({"a", "b"}))
        assert candidate is not None and candidate[0] is first

    def test_zero_delta_and_same_key_skipped(self):
        cache = GatherTableCache(max_entries=4)
        key = _avail_key("same")
        cache.store(key, _FakeTable(2, frozenset({"a"})))
        # The key itself is skipped, and another entry at the identical Λ
        # would be a zero-flip repair (i.e. not a repair at all).
        assert cache.repair_candidate(key, 2, frozenset({"a"})) is None

    def test_delta_above_cap_rejected(self):
        cache = GatherTableCache(max_entries=4, max_repair_delta=1)
        cache.store(_avail_key("far"), _FakeTable(2, frozenset({"a", "b", "c"})))
        # Budget-sound (min(2, |{d, e}|) == 2) but five flips away.
        assert cache.repair_candidate(_avail_key("t"), 2, frozenset({"d", "e"})) is None
        assert cache.stats.repair_hits == 0

    def test_narrow_table_rejected(self):
        cache = GatherTableCache(max_entries=4)
        cache.store(_avail_key("narrow"), _FakeTable(1, frozenset({"a", "b"})))
        assert cache.repair_candidate(_avail_key("t"), 2, frozenset({"a"})) is None

    def test_effective_budget_shift_rejected(self):
        cache = GatherTableCache(max_entries=4)
        # Stored at effective budget 4 = min(requested 4, |Λ| = 4); at the
        # target Λ of 3 switches the effective budget would narrow to 3,
        # so the tensor width no longer matches and repair must refuse.
        cache.store(
            _avail_key("wide"),
            _FakeTable(4, frozenset({"a", "b", "c", "d"}), requested_budget=4),
        )
        assert (
            cache.repair_candidate(_avail_key("t"), 3, frozenset({"a", "b", "c"}))
            is None
        )

    def test_other_family_not_scanned(self):
        cache = GatherTableCache(max_entries=4)
        cache.store(_key("other-loads"), _FakeTable(2, frozenset({"a"})))
        assert cache.repair_candidate(_avail_key("t"), 2, frozenset({"a", "b"})) is None

    def test_note_repair_counts(self):
        cache = GatherTableCache(max_entries=4)
        cache.note_repair()
        cache.note_repair()
        assert cache.stats.repairs == 2
        assert cache.stats.snapshot()["repairs"] == 2


# --------------------------------------------------------------------------- #
# service behaviour
# --------------------------------------------------------------------------- #


class TestPlacementService:
    def test_warm_solve_is_bit_identical_to_cold(self):
        service = small_service()
        tree = service.state.tree
        loads = leaf_loads(tree)
        cold = service.submit(SolveRequest(loads=loads, budget=3))
        warm = service.submit(SolveRequest(loads=loads, budget=3))
        assert not cold.cache_hit and warm.cache_hit
        reference = Solver().solve(tree.with_loads(loads), 3)
        for response in (cold, warm):
            assert response.cost == reference.cost
            assert response.predicted_cost == reference.predicted_cost
            assert response.blue_nodes == reference.blue_nodes

    def test_budget_upcasting_answers_smaller_budgets(self):
        service = small_service()
        loads = leaf_loads(service.state.tree)
        service.submit(SolveRequest(loads=loads, budget=5))
        small = service.submit(SolveRequest(loads=loads, budget=2))
        assert small.cache_hit
        reference = Solver().solve(service.state.tree.with_loads(loads), 2)
        assert small.cost == reference.cost and small.blue_nodes == reference.blue_nodes

    def test_sweep_matches_budget_sweep(self):
        service = small_service()
        tree = service.state.tree
        loads = leaf_loads(tree)
        response = service.submit(SweepRequest(loads=loads, budgets=(1, 2, 4)))
        reference = Solver().sweep(tree.with_loads(loads), (1, 2, 4))
        for budget, solution in reference.items():
            assert response.costs[budget] == solution.cost
            assert response.placements[budget] == solution.blue_nodes

    def test_admit_consumes_capacity_and_release_restores(self):
        service = small_service(capacity=1)
        loads = leaf_loads(service.state.tree)
        admitted = service.submit(AdmitRequest(tenant_id="t", loads=loads, budget=2))
        assert service.state.num_tenants == 1
        assert admitted.blue_nodes <= frozenset(service.state.tree.switches)
        for switch in admitted.blue_nodes:
            assert service.state.tracker.residual(switch) == 0
        released = service.submit(ReleaseRequest(tenant_id="t"))
        assert released.restored == admitted.blue_nodes
        assert service.state.num_tenants == 0
        assert service.available() == frozenset(service.state.tree.switches)

    def test_duplicate_tenant_rejected(self):
        service = small_service()
        loads = leaf_loads(service.state.tree)
        service.submit(AdmitRequest(tenant_id="t", loads=loads, budget=1))
        with pytest.raises(WorkloadError, match="already active"):
            service.submit(AdmitRequest(tenant_id="t", loads=loads, budget=1))

    def test_release_unknown_tenant_rejected(self):
        with pytest.raises(WorkloadError, match="no active tenant"):
            small_service().submit(ReleaseRequest(tenant_id="ghost"))

    def test_saturated_switch_leaves_availability(self):
        service = small_service(capacity=1)
        loads = leaf_loads(service.state.tree)
        admitted = service.submit(AdmitRequest(tenant_id="t", loads=loads, budget=2))
        assert admitted.blue_nodes
        available = service.available()
        assert not (admitted.blue_nodes & available)
        # The next solve must avoid the saturated switches entirely.
        follow_up = service.submit(SolveRequest(loads=loads, budget=2))
        assert not (follow_up.blue_nodes & admitted.blue_nodes)
        reference = Solver().solve(
            service.state.tree.with_loads(loads).with_available(available), 2
        )
        assert follow_up.cost == reference.cost
        assert follow_up.blue_nodes == reference.blue_nodes

    def test_drain_displaces_and_replaces_tenants(self):
        service = small_service(capacity=2)
        tree = service.state.tree
        loads = leaf_loads(tree)
        admitted = service.submit(AdmitRequest(tenant_id="t", loads=loads, budget=3))
        victim = sorted(admitted.blue_nodes, key=repr)[0]
        response = service.submit(DrainRequest(switch=victim))
        assert [item.tenant_id for item in response.displaced] == ["t"]
        replacement = response.displaced[0]
        assert victim in replacement.old_blue_nodes
        assert victim not in replacement.new_blue_nodes
        # The tenant is re-registered with its new placement, which cannot
        # beat the pre-drain optimum (Λ only shrank).
        record = service.state.tenant("t")
        assert record.blue_nodes == replacement.new_blue_nodes
        assert victim not in record.blue_nodes
        assert replacement.new_cost >= admitted.cost
        # Displacement is not a new admission: the lifetime counters keep
        # num_tenants == admitted_total - released_total.
        assert service.state.admitted_total == 1
        assert service.state.released_total == 0
        assert service.state.num_tenants == 1

    def test_drain_invalidates_only_affected_entries(self):
        # max_repair_delta=0 pins the legacy invalidate-on-drain policy;
        # under the default repair policy drains keep the affected entries
        # as repair sources (covered by TestCacheRepair below).
        service = small_service(num_leaves=8, capacity=4, max_repair_delta=0)
        tree = service.state.tree
        loads_a = leaf_loads(tree, seed=1)
        loads_b = leaf_loads(tree, seed=2)
        # Two full-availability entries (Λ contains the victim) and, after
        # draining another switch first, one entry whose Λ excludes it.
        service.submit(DrainRequest(switch="s3_7"))
        service.submit(SolveRequest(loads=loads_a, budget=2))
        service.submit(SolveRequest(loads=loads_b, budget=2))
        assert len(service.cache) == 2
        response = service.submit(DrainRequest(switch="s3_0"))
        # Both entries' Λ contained s3_0, so both are dead and dropped.
        assert response.invalidated_entries == 2
        assert len(service.cache) == 0
        # Entries whose Λ never contained the drained switch survive.
        service.submit(SolveRequest(loads=loads_a, budget=2))
        assert len(service.cache) == 1
        survivor = service.submit(DrainRequest(switch="s3_0"))
        # s3_0 was already drained: the cached entry's Λ excludes it, so
        # nothing is invalidated and the entry stays live.
        assert survivor.invalidated_entries == 0
        assert len(service.cache) == 1
        follow_up = service.submit(DrainRequest(switch="s3_1"))
        assert follow_up.invalidated_entries == 1  # Λ did contain s3_1

    def test_admit_on_saturated_fleet_raises_typed_error(self):
        # Drive the fleet to full saturation through ordinary admits, then
        # check the boundary: the next admit must fail with a typed
        # CapacityError instead of silently registering a tenant with an
        # empty placement (the pre-fix behaviour: Λ = {} clamped the
        # effective budget to 0 and the "admission" held zero switches).
        service = small_service(num_leaves=4, capacity=1)
        tree = service.state.tree
        # Strictly >1 load per leaf: aggregation then always pays at every
        # switch, so each admit consumes capacity and saturation is
        # reachable in at most |switches| admissions.
        loads = {leaf: 3 for leaf in tree.leaves()}
        count = 0
        for _ in range(2 * len(tree.switches)):
            if not service.available():
                break
            service.submit(
                AdmitRequest(tenant_id=f"t{count}", loads=loads, budget=len(tree.switches))
            )
            count += 1
        assert not service.available(), "trace failed to saturate the fleet"
        assert count > 0
        with pytest.raises(CapacityError, match="no aggregation capacity"):
            service.submit(AdmitRequest(tenant_id="overflow", loads=loads, budget=2))
        # The failed admit mutated nothing: counters and registry agree.
        assert "overflow" not in service.state.tenants()
        assert service.state.num_tenants == count
        assert service.state.admitted_total == count
        assert service.state.released_total == 0

    def test_drain_records_failed_replacement_instead_of_raising(self):
        # A tenant holding exactly the drained switch, with every other
        # switch drained: re-placement is infeasible (Λ empties), which
        # before the fix unwound _handle_drain mid-loop and corrupted the
        # registry.  Now the drain completes, reports the failure, and
        # keeps num_tenants == admitted_total - released_total.
        service = small_service(num_leaves=4, capacity=1)
        tree = service.state.tree
        victim = sorted(tree.switches, key=repr)[0]
        admitted = service.submit(
            AdmitRequest(tenant_id="t", loads={victim: 2}, budget=1)
        )
        assert admitted.blue_nodes == {victim}
        for switch in tree.switches:
            if switch != victim:
                service.submit(DrainRequest(switch=switch))
        response = service.submit(DrainRequest(switch=victim))
        assert response.displaced == ()
        assert [failure.tenant_id for failure in response.failed] == ["t"]
        assert "CapacityError" in response.failed[0].error
        assert response.failed[0].old_blue_nodes == {victim}
        state = service.state
        assert state.num_tenants == 0
        assert state.num_tenants == state.admitted_total - state.released_total
        assert state.released_total == 1

    def test_drain_partial_failure_keeps_earlier_replacements(self):
        # Two tenants displaced by one drain; the first re-placement
        # consumes the last capacity, so the second fails.  The response
        # must carry both outcomes and the registry must stay consistent.
        service = small_service(num_leaves=2, capacity=2)
        tree = service.state.tree
        switches = sorted(tree.switches, key=repr)
        root = tree.root
        # Both tenants hold only the root (budget 1 forces one switch).
        first = service.submit(AdmitRequest(tenant_id="a", loads={root: 3}, budget=1))
        second = service.submit(AdmitRequest(tenant_id="b", loads={root: 3}, budget=1))
        assert first.blue_nodes == second.blue_nodes == {root}
        # Leave exactly one slot of capacity elsewhere: drain nothing else,
        # but shrink the pool by saturating the non-root switches with
        # drains until a single re-placement can succeed.
        others = [switch for switch in switches if switch != root]
        for switch in others[1:]:
            service.submit(DrainRequest(switch=switch))
        survivor = others[0]
        # Saturate the surviving switch with two fillers (load 3 makes the
        # blue at the loaded switch strictly beneficial, so each filler
        # really consumes one of its two capacity slots).
        for name in ("filler", "filler2"):
            admitted = service.submit(
                AdmitRequest(tenant_id=name, loads={survivor: 3}, budget=1)
            )
            assert admitted.blue_nodes == {survivor}
        response = service.submit(DrainRequest(switch=root))
        # Both displaced; no capacity anywhere (survivor saturated by the
        # fillers, everything else drained): every displaced tenant is
        # accounted exactly once and the lifetime counters balance.
        outcomes = {item.tenant_id for item in response.displaced} | {
            failure.tenant_id for failure in response.failed
        }
        assert outcomes == {"a", "b"}
        state = service.state
        assert state.num_tenants == state.admitted_total - state.released_total
        assert len(response.failed) == 2  # survivor is saturated: both fail
        assert state.num_tenants == 2  # the fillers still stand

    def test_drain_mixed_outcome_keeps_successful_replacement(self):
        # The success-then-failure interleaving: two tenants displaced by
        # one drain, the first re-placement consumes the last capacity,
        # the second finds Λ empty.  The survivor's registration must
        # stand, the failure must be reported, and the counters balance.
        tree = complete_binary_tree(2)
        leaf = sorted(tree.leaves(), key=repr)[0]
        other_leaf = sorted(tree.leaves(), key=repr)[1]
        root = tree.root
        service = PlacementService(tree, capacity={leaf: 2, other_leaf: 0, root: 1})
        for name in ("a", "b"):
            admitted = service.submit(
                AdmitRequest(tenant_id=name, loads={leaf: 3}, budget=2)
            )
            assert admitted.blue_nodes == {leaf}
        response = service.submit(DrainRequest(switch=leaf))
        # Tenant "a" (arrival order) re-places onto the root — the loaded
        # leaf's messages pass through it, so the blue is beneficial and
        # consumes the root's single slot; "b" then finds Λ empty.
        assert [item.tenant_id for item in response.displaced] == ["a"]
        assert response.displaced[0].new_blue_nodes == {root}
        assert [failure.tenant_id for failure in response.failed] == ["b"]
        state = service.state
        assert sorted(state.tenants()) == ["a"]
        assert state.tenant("a").blue_nodes == {root}
        assert state.num_tenants == 1
        assert state.admitted_total == 2 and state.released_total == 1
        assert state.num_tenants == state.admitted_total - state.released_total

    def test_churn_trace_draining_to_infeasibility_replays_cleanly(self):
        # The trace-level pin of both fixes: a hand-written churn trace
        # that admits, saturates, and drains the fleet to infeasibility
        # must replay end-to-end (no mid-loop unwinding), with failures
        # reported on the drain response and counters consistent.
        tree = complete_binary_tree(4)
        switches = sorted(tree.switches, key=repr)
        root_name = str(tree.root)
        events = [
            TraceEvent(kind="admit", tenant="t0", budget=1, loads=((root_name, 2),)),
        ]
        events.extend(
            TraceEvent(kind="drain", switch=name)
            for name in map(str, switches)
            if name != root_name
        )
        events.append(TraceEvent(kind="drain", switch=root_name))
        events.append(TraceEvent(kind="stats"))
        report = replay_trace(tree, events, capacity=1)
        assert report.num_requests == len(events)
        drain_responses = [
            record.response
            for record in report.records
            if record.event.kind == "drain"
        ]
        assert [failure.tenant_id for failure in drain_responses[-1].failed] == ["t0"]
        stats = report.records[-1].response
        assert stats.fleet["active_tenants"] == 0
        assert stats.fleet["admitted_total"] - stats.fleet["released_total"] == 0

    def test_cache_stats_accounting_under_upcast_and_invalidation(self):
        # The full counter story across one scripted request sequence:
        # cold miss, memo hit, upcast (miss + budget_upcast), table hit,
        # then a drain that invalidates exactly the entries whose Λ held
        # the switch.  Repair is disabled so the drain actually invalidates
        # (the default policy keeps entries as repair sources instead).
        service = small_service(num_leaves=8, capacity=4, max_repair_delta=0)
        tree = service.state.tree
        loads = leaf_loads(tree)
        service.submit(SolveRequest(loads=loads, budget=2))  # cold gather
        service.submit(SolveRequest(loads=loads, budget=2))  # memo hit
        service.submit(SolveRequest(loads=loads, budget=4))  # upcast re-gather
        service.submit(SolveRequest(loads=loads, budget=3))  # table hit
        stats = service.cache.stats
        assert stats.misses == 2
        assert stats.budget_upcasts == 1
        assert stats.solution_hits == 1
        assert stats.table_hits == 1
        assert stats.hits == 2
        assert stats.lookups == 4
        assert stats.hit_rate == 0.5
        before = len(service.cache)
        assert before == 1
        response = service.submit(DrainRequest(switch=sorted(tree.switches, key=repr)[0]))
        assert response.invalidated_entries == 1
        assert stats.invalidations == 1
        assert len(service.cache) == 0
        # The upcast preserved the memo: a repeat of the small budget after
        # re-gathering hits the memo layer again, not the gather.
        service.submit(SolveRequest(loads=loads, budget=2))  # cold (new Λ)
        service.submit(SolveRequest(loads=loads, budget=2))  # memo hit
        assert stats.misses == 3 and stats.solution_hits == 2

    def test_stats_snapshot(self):
        service = small_service()
        loads = leaf_loads(service.state.tree)
        service.submit(SolveRequest(loads=loads, budget=2))
        service.submit(SolveRequest(loads=loads, budget=2))
        stats = service.submit(StatsRequest())
        assert stats.fleet["active_tenants"] == 0
        assert stats.cache["solution_hits"] == 1
        assert stats.requests == {"SolveRequest": 2, "StatsRequest": 1}

    def test_invalid_budget_rejected(self):
        service = small_service()
        loads = leaf_loads(service.state.tree)
        with pytest.raises(InvalidBudgetError):
            service.submit(SolveRequest(loads=loads, budget=-1))
        with pytest.raises(InvalidBudgetError):
            service.submit(SolveRequest(loads=loads, budget=1.5))
        # Sweeps apply the same validation per budget (no silent int()).
        with pytest.raises(InvalidBudgetError):
            service.submit(SweepRequest(loads=loads, budgets=(1, 2.5)))
        with pytest.raises(InvalidBudgetError):
            service.submit(SweepRequest(loads=loads, budgets=(-1,)))

    def test_submit_batch_serves_prefix_before_invalid_request(self):
        service = small_service()
        loads = leaf_loads(service.state.tree)
        with pytest.raises(InvalidBudgetError):
            service.submit_batch(
                [
                    SolveRequest(loads=loads, budget=2),
                    SolveRequest(loads=loads, budget=-1),
                ]
            )
        # The malformed request must not abort planning: the valid first
        # request was served (its solve reached the cache) before the
        # error surfaced at the second request's position, like serial
        # submission.
        assert service.cache.stats.lookups == 1
        assert service.submit(SolveRequest(loads=loads, budget=2)).cache_hit

    def test_invalid_loads_rejected(self):
        service = small_service()
        with pytest.raises(WorkloadError):
            service.submit(SolveRequest(loads={"s2_0": -3}, budget=1))

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown engine"):
            small_service(engine="warp")

    def test_submit_batch_matches_serial_and_plans_gathers(self):
        tree = complete_binary_tree(16)
        loads = leaf_loads(tree, seed=3)
        batch = [
            SolveRequest(loads=loads, budget=2),
            SolveRequest(loads=loads, budget=6),
            SweepRequest(loads=loads, budgets=(1, 3)),
            AdmitRequest(tenant_id="t", loads=loads, budget=2),
            SolveRequest(loads=loads, budget=4),
            StatsRequest(),
        ]
        batched_service = PlacementService(tree, capacity=4)
        serial_service = PlacementService(tree, capacity=4)
        batched = batched_service.submit_batch(batch)
        serial = [serial_service.submit(request) for request in batch]
        for got, expected in zip(batched, serial):
            if hasattr(got, "cost"):
                assert got.cost == expected.cost
                assert got.blue_nodes == expected.blue_nodes
            if hasattr(got, "costs"):
                assert got.costs == expected.costs
                assert got.placements == expected.placements
        # Planning means the k=2 request already gathered at k=6; the
        # serial service pays an upcast re-gather instead.
        assert batched_service.cache.stats.budget_upcasts == 0
        assert serial_service.cache.stats.budget_upcasts >= 1


# --------------------------------------------------------------------------- #
# repair-instead-of-invalidate (the PR 9 tentpole at the service layer)
# --------------------------------------------------------------------------- #


class TestCacheRepair:
    """Drains keep cache entries as repair sources under the default policy.

    The next solve at the drained Λ is answered by delta-repairing the
    nearest cached table instead of a cold re-gather — bit-identically to
    the legacy invalidate-on-drain policy, which stays available via
    ``max_repair_delta=0``.
    """

    def _churn(self, **kwargs):
        """Solve, drain, solve, drain, solve; return the solve responses."""
        service = small_service(num_leaves=8, capacity=4, **kwargs)
        loads = leaf_loads(service.state.tree, seed=1)
        responses = [service.submit(SolveRequest(loads=loads, budget=2))]
        drains = [service.submit(DrainRequest(switch="s3_0"))]
        responses.append(service.submit(SolveRequest(loads=loads, budget=2)))
        drains.append(service.submit(DrainRequest(switch="s3_1")))
        responses.append(service.submit(SolveRequest(loads=loads, budget=2)))
        return service, responses, drains

    def test_drain_keeps_entries_and_solves_repair(self):
        service, responses, drains = self._churn()
        # Under the repair policy drains invalidate nothing: the affected
        # entries are one availability flip from being useful again.
        assert [drain.invalidated_entries for drain in drains] == [0, 0]
        assert [response.cache_source for response in responses] == [
            "gather",
            "repair",
            "repair",
        ]
        # A repair is cheaper than a gather but it is not a cache hit.
        assert not any(response.cache_hit for response in responses)
        stats = service.cache.stats
        assert stats.repair_hits == 2 and stats.repairs == 2
        assert stats.snapshot()["repair_hits"] == 2

    def test_repaired_answers_match_legacy_invalidate_policy(self):
        _, repaired, _ = self._churn()
        legacy_service, legacy, legacy_drains = self._churn(max_repair_delta=0)
        # The legacy policy really does invalidate on drain...
        assert any(drain.invalidated_entries > 0 for drain in legacy_drains)
        assert legacy_service.cache.stats.repairs == 0
        assert [response.cache_source for response in legacy] == ["gather"] * 3
        # ... and both policies serve bit-identical answers.
        for fast, slow in zip(repaired, legacy):
            assert fast.blue_nodes == slow.blue_nodes
            assert fast.cost == slow.cost

    def test_repaired_answers_match_direct_solver(self):
        service, responses, _ = self._churn()
        loads = leaf_loads(service.state.tree, seed=1)
        workload = service.state.tree.with_loads(
            loads, available=service.available()
        )
        direct = Solver().solve(workload, 2)
        assert responses[-1].blue_nodes == direct.blue_nodes
        assert responses[-1].cost == direct.cost

    def test_delta_cap_falls_back_to_cold_gather(self):
        service = small_service(num_leaves=8, capacity=4, max_repair_delta=1)
        loads = leaf_loads(service.state.tree, seed=1)
        service.submit(SolveRequest(loads=loads, budget=2))
        service.submit(DrainRequest(switch="s3_0"))
        service.submit(DrainRequest(switch="s3_1"))
        # Two flips from the only cached entry but the cap is one: the
        # solve must fall back to a cold gather, not stretch the repair.
        response = service.submit(SolveRequest(loads=loads, budget=2))
        assert response.cache_source == "gather"
        assert service.cache.stats.repair_hits == 0
        assert service.cache.stats.repairs == 0

    def test_repair_policy_knob_validated(self):
        with pytest.raises(ValueError):
            small_service(max_repair_delta=-2)


# --------------------------------------------------------------------------- #
# trace round-trip
# --------------------------------------------------------------------------- #


class TestTraces:
    def test_jsonl_roundtrip(self, tmp_path):
        tree = complete_binary_tree(8)
        trace = generate_churn_trace(tree, 40, seed=5, budget=3)
        path = write_trace(trace, tmp_path / "trace.jsonl")
        assert read_trace(path) == trace

    def test_trace_header_identifies_network(self, tmp_path):
        from repro.service import check_trace_compatible, trace_header

        tree = complete_binary_tree(8)
        trace = generate_churn_trace(tree, 20, seed=5, budget=3)
        path = write_trace(trace, tmp_path / "trace.jsonl", tree=tree)
        # The header is metadata: reading skips it, the events round-trip.
        assert read_trace(path) == trace
        header = trace_header(path)
        assert header["structure"] == tree.structure_fingerprint()
        check_trace_compatible(tree, header)  # same network: fine
        # BT names nest across sizes, so without the header this mismatch
        # would replay silently; with it, it must be refused.
        bigger = complete_binary_tree(16)
        with pytest.raises(WorkloadError, match="different network"):
            check_trace_compatible(bigger, header)
        # Headerless traces (hand-written) stay accepted.
        bare = write_trace(trace, tmp_path / "bare.jsonl")
        assert trace_header(bare) is None
        check_trace_compatible(bigger, trace_header(bare))

    def test_event_resolution_rejects_unknown_switch(self):
        tree = complete_binary_tree(4)
        event = TraceEvent(kind="solve", budget=1, loads=(("nope", 2),))
        with pytest.raises(WorkloadError, match="unknown switch"):
            event_to_request(tree, event)

    def test_generate_trace_is_deterministic(self):
        tree = complete_binary_tree(8)
        assert generate_churn_trace(tree, 30, seed=9) == generate_churn_trace(
            tree, 30, seed=9
        )
        assert generate_churn_trace(tree, 30, seed=9) != generate_churn_trace(
            tree, 30, seed=10
        )

    def test_generated_trace_releases_only_active_tenants(self):
        tree = complete_binary_tree(8)
        trace = generate_churn_trace(tree, 120, seed=11)
        active: set[str] = set()
        for event in trace:
            if event.kind == "admit":
                assert event.tenant not in active
                active.add(event.tenant)
            elif event.kind == "release":
                assert event.tenant in active
                active.remove(event.tenant)


class TestPercentile:
    """Nearest-rank percentile of the replay report (issue 6 regression).

    The old implementation indexed at ``round(fraction * (n - 1))`` —
    Python's banker's rounding, so p50 of a 2-sample rounded *down* to the
    min while p50 of a 4-sample rounded *up*: inconsistent ranks exactly
    in the small per-kind samples ``kind_rows`` produces.  The ceil-based
    nearest-rank definition is monotone in n.
    """

    def test_empty_sample_is_zero(self):
        from repro.service.driver import _percentile

        assert _percentile([], 0.50) == 0.0

    @pytest.mark.parametrize(
        "values, expected",
        [
            ([7.0], 7.0),
            ([1.0, 2.0], 1.0),
            ([1.0, 2.0, 3.0], 2.0),
            ([1.0, 2.0, 3.0, 4.0], 2.0),  # round(1.5) rounded *up* to 3.0 here
            ([1.0, 2.0, 3.0, 4.0, 5.0], 3.0),
        ],
    )
    def test_median_nearest_rank(self, values, expected):
        from repro.service.driver import _percentile

        assert _percentile(values, 0.50) == expected

    @pytest.mark.parametrize("n", [1, 2, 3, 5, 10, 19])
    def test_p95_of_small_samples_is_the_max(self, n):
        # ceil(0.95 n) == n for every n < 20: p95 of a small sample is its
        # maximum, never an interior element.
        from repro.service.driver import _percentile

        values = [float(i) for i in range(1, n + 1)]
        assert _percentile(values, 0.95) == float(n)

    def test_p100_and_p0_clamp_to_the_ends(self):
        from repro.service.driver import _percentile

        values = [1.0, 2.0, 3.0]
        assert _percentile(values, 1.0) == 3.0
        assert _percentile(values, 0.0) == 1.0


# --------------------------------------------------------------------------- #
# differential churn replays
# --------------------------------------------------------------------------- #


class TestDifferentialReplay:
    """Service answers == cold solver answers, across seeded churn traces."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_churn_trace_bit_identical(self, seed):
        tree = complete_binary_tree(16)
        trace = generate_churn_trace(tree, 80, seed=seed, budget=4, workload_pool=4)
        report = replay_trace(tree, trace, capacity=3, verify=True)
        assert report.num_requests == 80
        placement_requests = sum(
            1 for event in trace if event.kind in ("solve", "sweep", "admit")
        )
        assert report.verified == placement_requests

    def test_replay_with_both_engines_agree(self):
        tree = complete_binary_tree(8)
        trace = generate_churn_trace(tree, 50, seed=3, budget=3)
        flat = replay_trace(tree, trace, capacity=3, engine="flat", verify=True)
        reference = replay_trace(tree, trace, capacity=3, engine="reference", verify=True)
        for left, right in zip(flat.records, reference.records):
            if hasattr(left.response, "cost"):
                assert left.response.cost == right.response.cost
                assert left.response.blue_nodes == right.response.blue_nodes

    def test_replay_hits_cache_on_recurring_pool(self):
        tree = complete_binary_tree(16)
        trace = generate_churn_trace(tree, 100, seed=4, budget=4, workload_pool=3)
        report = replay_trace(tree, trace, capacity=4, verify=True)
        assert report.hit_rate > 0.3

    def test_replay_into_existing_service_keeps_state(self):
        tree = complete_binary_tree(8)
        service = PlacementService(tree, capacity=3)
        trace = generate_churn_trace(tree, 30, seed=6, budget=3)
        replay_trace(tree, trace, service=service, verify=True)
        admits = sum(1 for event in trace if event.kind == "admit")
        releases = sum(1 for event in trace if event.kind == "release")
        assert service.state.admitted_total >= admits
        assert service.state.num_tenants == service.state.admitted_total - releases


@pytest.mark.slow
class TestServiceAcceptance:
    """The acceptance bars: BT(1024) churn with ≥ 10x warm speedup and full
    bit-identity, plus the ≥ 3x colour-only (table-hit) improvement of the
    artifact warm path over the legacy warm path."""

    def test_bt1024_churn_trace_warm_speedup_and_bit_identity(self):
        tree = bt_network(1024)
        trace = generate_churn_trace(tree, 200, seed=2021, budget=16, workload_pool=8)
        report = replay_trace(tree, trace, capacity=4, verify=True)
        placement_requests = sum(
            1 for event in trace if event.kind in ("solve", "sweep", "admit")
        )
        assert report.verified == placement_requests
        assert report.hit_rate > 0.2
        assert report.warm_speedup >= 10.0, (
            f"warm requests only {report.warm_speedup:.1f}x faster than cold"
        )
        # The summary row now reports the per-layer warm split.
        summary = report.summary_row()
        assert "table_hit_mean_ms" in summary and "memo_hit_mean_ms" in summary

    def test_bt1024_table_hit_beats_legacy_warm_path_3x(self):
        # The warm hit, three generations deep: GatherTable.place (batched
        # trace + flat cost kernel) versus the PR 3 path (batched trace +
        # per-node cost recompute) versus what PR 2's warm path did for the
        # same hit (rebuild the workload network, per-node reference trace,
        # per-node cost).  Same bits out of all three; ≥ 2x over PR 3 and
        # ≥ 3x over legacy, with the flat cost kernel itself ahead of the
        # per-node walk.
        from benchmarks.bench_service import warm_path_rows

        rows = warm_path_rows(1024)
        assert rows[0]["warm_path_speedup"] >= 3.0, (
            f"table-hit path only {rows[0]['warm_path_speedup']:.2f}x faster "
            "than the legacy warm path"
        )
        assert rows[0]["warm_speedup_vs_pr3"] >= 2.0, (
            f"table-hit path only {rows[0]['warm_speedup_vs_pr3']:.2f}x faster "
            "than the PR 3 warm path"
        )
        assert rows[0]["cost_kernel_speedup"] > 1.0

    def test_long_churn_differential_sweep(self):
        rng = np.random.default_rng(77)
        for _ in range(3):
            tree = complete_binary_tree(32)
            trace = generate_churn_trace(
                tree, 150, seed=int(rng.integers(1 << 30)), budget=6, workload_pool=5
            )
            report = replay_trace(tree, trace, capacity=2, verify=True)
            assert report.verified > 0

"""Property-based tests (hypothesis) on the core data structures and invariants."""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.bruteforce import solve_bruteforce
from repro.core.cost import (
    all_blue_cost,
    all_red_cost,
    utilization_cost,
    utilization_cost_barrier,
)
from repro.core.reduce_op import link_message_counts, total_messages
from repro.core.solver import Solver
from repro.core.tree import TreeNetwork
from repro.simulation.dataplane import simulate_reduce

# --------------------------------------------------------------------------- #
# strategies generating random φ-BIC instances
# --------------------------------------------------------------------------- #


@st.composite
def tree_instances(draw, max_switches: int = 12, max_load: int = 5):
    """Generate a random tree network with random rates and loads.

    Switch ``i`` (for ``i >= 1``) attaches to a uniformly random earlier
    switch, which generates every labelled rooted tree shape with positive
    probability while keeping construction linear.
    """
    num_switches = draw(st.integers(min_value=1, max_value=max_switches))
    parents = {0: "d"}
    for node in range(1, num_switches):
        parents[node] = draw(st.integers(min_value=0, max_value=node - 1))
    rates = {
        node: draw(st.sampled_from([0.25, 0.5, 1.0, 2.0, 8.0])) for node in range(num_switches)
    }
    loads = {
        node: draw(st.integers(min_value=0, max_value=max_load)) for node in range(num_switches)
    }
    return TreeNetwork(parents, rates=rates, loads=loads)


@st.composite
def instances_with_placement(draw):
    """A random instance together with a random valid placement."""
    tree = draw(tree_instances())
    switches = list(tree.switches)
    blue = draw(st.sets(st.sampled_from(switches), max_size=len(switches)))
    return tree, frozenset(blue)


common_settings = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


# --------------------------------------------------------------------------- #
# cost-model invariants
# --------------------------------------------------------------------------- #


@common_settings
@given(instances_with_placement())
def test_barrier_formulation_equals_edge_formulation(data):
    tree, blue = data
    assert abs(utilization_cost(tree, blue) - utilization_cost_barrier(tree, blue)) < 1e-9


@common_settings
@given(instances_with_placement())
def test_utilization_bounded_by_extremes(data):
    tree, blue = data
    cost = utilization_cost(tree, blue)
    assert cost >= 0.0
    # A blue switch always emits one message (the paper's Algorithm 1
    # convention), so a blue node above an *empty* subtree can add cost that
    # the all-red solution would not pay.  Whenever every blue subtree
    # actually carries load, aggregation can only help.
    if all(tree.subtree_load(node) > 0 for node in blue):
        assert cost <= all_red_cost(tree) + 1e-9
    # The optimal bounded placement, by contrast, is always at least as good
    # as all-red regardless of where the load sits.
    assert Solver().solve(tree, len(blue)).cost <= all_red_cost(tree) + 1e-9


@common_settings
@given(instances_with_placement())
def test_message_counts_are_consistent(data):
    tree, blue = data
    counts = link_message_counts(tree, blue)
    assert set(counts) == set(tree.switches)
    for switch, count in counts.items():
        children_out = sum(counts[child] for child in tree.children(switch))
        arrived = children_out + tree.load(switch)
        if switch in blue:
            assert count == 1
        else:
            assert count == arrived
    assert total_messages(tree, blue) == sum(counts.values())


@common_settings
@given(instances_with_placement())
def test_dataplane_busy_time_matches_phi(data):
    tree, blue = data
    # The dataplane skips messages from empty blue subtrees, so compare
    # against the analytic cost only when every blue subtree carries load;
    # otherwise busy time is a lower bound.
    result = simulate_reduce(tree, blue)
    analytic = utilization_cost(tree, blue)
    empty_blue = any(tree.subtree_load(node) == 0 for node in blue)
    if empty_blue:
        assert result.total_busy_time <= analytic + 1e-9
    else:
        assert abs(result.total_busy_time - analytic) < 1e-9
    assert result.servers_delivered == tree.total_load


# --------------------------------------------------------------------------- #
# SOAR invariants
# --------------------------------------------------------------------------- #


@common_settings
@given(tree_instances(max_switches=8), st.integers(min_value=0, max_value=8))
def test_soar_is_optimal(tree, budget):
    solution = Solver().solve(tree, budget)
    expected = solve_bruteforce(tree, budget)
    assert abs(solution.cost - expected.cost) < 1e-9
    assert abs(solution.cost - solution.predicted_cost) < 1e-9
    assert len(solution.blue_nodes) <= budget


@common_settings
@given(tree_instances(max_switches=14))
def test_soar_costs_monotone_in_budget(tree):
    budgets = range(0, min(tree.num_switches, 6) + 1)
    sweep = Solver().sweep(tree, budgets)
    costs = [sweep[k].cost for k in sorted(sweep)]
    for earlier, later in zip(costs, costs[1:]):
        assert later <= earlier + 1e-9
    # Budget 0 equals all-red; full budget equals the all-blue optimum bound.
    assert abs(costs[0] - all_red_cost(tree)) < 1e-9
    assert costs[-1] <= all_red_cost(tree) + 1e-9


@common_settings
@given(tree_instances(max_switches=14), st.integers(min_value=0, max_value=6))
def test_soar_placement_respects_availability(tree, budget):
    rng = np.random.default_rng(0)
    switches = list(tree.switches)
    keep = [s for s in switches if rng.random() < 0.6] or [switches[0]]
    restricted = tree.with_available(keep)
    solution = Solver().solve(restricted, budget)
    assert solution.blue_nodes <= frozenset(keep)
    assert solution.cost <= all_red_cost(restricted) + 1e-9


@common_settings
@given(tree_instances(max_switches=12))
def test_full_budget_reaches_all_blue_optimum(tree):
    # With budget n, SOAR is at least as good as colouring everything blue.
    solution = Solver().solve(tree, tree.num_switches)
    assert solution.cost <= all_blue_cost(tree) + 1e-9


@common_settings
@given(tree_instances(max_switches=12), st.integers(min_value=0, max_value=5))
def test_soar_beats_every_singleton_heuristic(tree, budget):
    """The optimal cost lower-bounds any specific placement of size <= budget."""
    solution = Solver().solve(tree, budget)
    switches = sorted(tree.switches, key=repr)[: max(budget, 0)]
    assert solution.cost <= utilization_cost(tree, frozenset(switches)) + 1e-9

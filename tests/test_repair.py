"""Differential verification of incremental gather-table repair (PR 9).

A repaired table must be *bit-identical* to a cold gather at the new
availability — tables, argmin breadcrumbs, traced placements, costs — on
both backend legs (numpy flat and compiled), for chains of
repair-of-repair, and for every budget semantics.  Where repair is
unsound (structure or load changes, a shifted effective budget, results
without flat tensors) it must refuse with
:class:`~repro.exceptions.RepairError` so callers fall back to a cold
gather instead of serving a wrong answer.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.color import soar_color, soar_color_batched
from repro.core.engine import REPAIRERS, flat_gather, gather, repair
from repro.core.engine_compiled import HAVE_COMPILED, compiled_gather
from repro.core.flat import LazyNodeTables, dirty_ancestor_positions
from repro.core.solver import Solver
from repro.exceptions import AvailabilityError, RepairError
from repro.testing import (
    assert_tables_equal,
    instance_stream,
    near_tie_stream,
)
from repro.topology.binary_tree import bt_network
from repro.workload.distributions import PowerLawLoadDistribution, sample_leaf_loads

requires_compiled = pytest.mark.skipif(
    not HAVE_COMPILED, reason="C backend unavailable (no compiler); numpy fallback active"
)

#: Engines with a registered repairer; "compiled" stays registered under the
#: numpy fallback (REPRO_NO_COMPILED or no compiler), so both legs always run.
REPAIR_ENGINES = ("flat", "compiled")

COLD_GATHERS = {"flat": flat_gather, "compiled": compiled_gather}


def _random_delta(rng, tree, max_flips=3):
    """A random non-empty availability delta over the tree's switches."""
    switches = list(tree.switches)
    flips = int(rng.integers(1, min(max_flips, len(switches)) + 1))
    picks = rng.choice(len(switches), size=flips, replace=False)
    return frozenset(switches[int(p)] for p in picks)


def _assert_repair_matches_cold(engine, result, new_tree):
    """Repair ``result`` towards ``new_tree`` and compare to a cold gather."""
    repaired = repair(result, new_tree)
    cold = COLD_GATHERS[engine](
        new_tree, result.requested_budget, exact_k=result.exact_k
    )
    assert repaired.engine == engine
    assert_tables_equal(cold, repaired)
    assert soar_color(new_tree, repaired) == soar_color(new_tree, cold)
    assert soar_color_batched(new_tree, repaired) == soar_color_batched(new_tree, cold)
    for budget in range(result.budget + 1):
        assert repaired.cost_for_budget(budget) == cold.cost_for_budget(budget)
    return repaired


class TestRepairBitIdentity:
    """Repair equals cold gather on seeded instance streams, both legs."""

    @pytest.mark.parametrize("engine", REPAIR_ENGINES)
    @pytest.mark.parametrize("exact_k", [False, True])
    def test_instance_stream(self, engine, exact_k):
        rng = np.random.default_rng(90210 + int(exact_k))
        repaired_count = 0
        for tree, budget in instance_stream(
            seed=4590 + int(exact_k), count=30, max_switches=12
        ):
            result = gather(tree, budget, exact_k=exact_k, engine=engine)
            delta = _random_delta(rng, tree)
            new_tree = tree.with_available(tree.available ^ delta)
            try:
                _assert_repair_matches_cold(engine, result, new_tree)
            except RepairError:
                # Legitimate refusal: the delta moved |Λ| across the
                # requested budget, so the tensor width changed.
                assert min(budget, len(new_tree.available)) != result.budget
                continue
            repaired_count += 1
        assert repaired_count >= 15  # the stream must mostly exercise repair

    @pytest.mark.parametrize("engine", REPAIR_ENGINES)
    def test_near_tie_stream(self, engine):
        # Symmetric rates and loads make every argmin a tie-break — where
        # a repair replaying the convolution in a different order would
        # diverge first.
        rng = np.random.default_rng(777)
        repaired_count = 0
        for tree, budget in near_tie_stream(seed=9182, count=20, max_switches=12):
            result = gather(tree, budget, engine=engine)
            delta = _random_delta(rng, tree)
            new_tree = tree.with_available(tree.available ^ delta)
            try:
                _assert_repair_matches_cold(engine, result, new_tree)
            except RepairError:
                assert min(budget, len(new_tree.available)) != result.budget
                continue
            repaired_count += 1
        assert repaired_count >= 10

    @pytest.mark.parametrize("engine", REPAIR_ENGINES)
    def test_chained_repairs_track_cold_gathers(self, engine):
        """Satellite: 50+ chained repair-of-repair steps stay bit-identical.

        The table is only ever repaired (never re-gathered), so any drift
        — a stale breadcrumb, a missed ancestor, an un-repaired don't-care
        cell that later becomes load-bearing — compounds and surfaces as a
        mismatch against the per-step cold gather.
        """
        rng = np.random.default_rng(1123)
        tree = bt_network(32)
        loads = sample_leaf_loads(tree, PowerLawLoadDistribution(), rng=7)
        workload = tree.with_loads(loads)
        budget = 4
        floor = budget + 4  # keep |Λ| clear of the budget so repair stays sound

        solver = Solver(engine=engine)
        table = solver.gather(workload, budget)
        assert table.repair_generation == 0 and table.repaired_from is None

        current = workload
        generation = 0
        for _ in range(60):
            delta = _random_delta(rng, current)
            available = current.available ^ delta
            if len(available) < floor:
                delta = frozenset(delta - current.available)  # adds only
                if not delta:
                    continue
                available = current.available | delta
            previous_fingerprint = table.fingerprint
            table = table.repair(delta)
            current = table.tree
            generation += 1
            assert current.available == available
            assert table.repair_generation == generation
            assert table.repaired_from == previous_fingerprint
            cold = solver.gather(tree.with_loads(loads, available=available), budget)
            assert_tables_equal(cold.result, table.result)
            assert cold.place(budget).blue_nodes == table.place(budget).blue_nodes
            assert cold.place(budget).cost == table.place(budget).cost
        assert table.repair_generation >= 50

    def test_numpy_fallback_leg_bit_identical(self):
        """Satellite: the compiled registry entry repairs under the numpy
        fallback too (fresh interpreter, REPRO_NO_COMPILED=1)."""
        import os
        import subprocess
        import sys

        env = dict(os.environ, REPRO_NO_COMPILED="1")
        script = (
            "import numpy as np\n"
            "from repro.core.engine_compiled import HAVE_COMPILED\n"
            "from repro.core.engine import REPAIRERS, gather, repair\n"
            "from repro.testing import assert_tables_equal, instance_stream\n"
            "assert not HAVE_COMPILED\n"
            "assert set(REPAIRERS) == {'flat', 'compiled'}\n"
            "rng = np.random.default_rng(5)\n"
            "checked = 0\n"
            "for tree, budget in instance_stream(seed=31, count=10, max_switches=10):\n"
            "    switches = list(tree.switches)\n"
            "    pick = switches[int(rng.integers(len(switches)))]\n"
            "    new_tree = tree.with_available(tree.available ^ {pick})\n"
            "    result = gather(tree, budget, engine='compiled')\n"
            "    try:\n"
            "        repaired = repair(result, new_tree)\n"
            "    except Exception:\n"
            "        continue\n"
            "    cold = gather(new_tree, budget, engine='compiled')\n"
            "    assert_tables_equal(cold, repaired)\n"
            "    checked += 1\n"
            "assert checked >= 5\n"
        )
        subprocess.run(
            [sys.executable, "-c", script], check=True, env=env, cwd="/root/repo"
        )


class TestRepairRefusals:
    """Unsound repairs must raise RepairError, never return wrong tables."""

    @pytest.fixture()
    def workload(self):
        tree = bt_network(8)
        loads = sample_leaf_loads(tree, PowerLawLoadDistribution(), rng=3)
        return tree.with_loads(loads)

    def test_reference_engine_has_no_repairer(self, workload):
        result = gather(workload, 2, engine="reference")
        new_tree = workload.with_available(
            workload.available - {next(iter(sorted(workload.available)))}
        )
        with pytest.raises(RepairError, match="reference"):
            repair(result, new_tree)

    def test_repairer_registry_matches_flat_backends(self):
        assert set(REPAIRERS) == {"flat", "compiled"}

    def test_load_change_refused(self, workload):
        result = flat_gather(workload, 2)
        leaves = [s for s in workload.switches if not workload.children(s)]
        patched = workload.with_loads(
            {**workload.loads, leaves[0]: workload.loads[leaves[0]] + 1}
        )
        with pytest.raises(RepairError, match="load"):
            repair(result, patched)

    def test_structure_change_refused(self, workload):
        result = flat_gather(workload, 2)
        other = bt_network(16)
        other = other.with_loads(
            sample_leaf_loads(other, PowerLawLoadDistribution(), rng=3)
        )
        with pytest.raises(RepairError, match="structure"):
            repair(result, other)

    def test_effective_budget_shift_refused(self, workload):
        # |Λ| = 3 with requested budget 5 → effective 3; removing one more
        # available switch narrows the tensor width, so repair must refuse.
        small = workload.with_available(sorted(workload.available)[:3])
        result = flat_gather(small, 5)
        assert result.budget == 3
        shrunk = small.with_available(sorted(small.available)[:2])
        with pytest.raises(RepairError, match="budget"):
            repair(result, shrunk)

    def test_non_switch_delta_refused(self, workload):
        result = flat_gather(workload, 2)
        with pytest.raises(RepairError, match="switch"):
            dirty_ancestor_positions(
                workload, result.flat.index, {"no-such-switch"}
            )

    def test_table_repair_with_unknown_switch(self, workload):
        table = Solver().gather(workload, 2)
        with pytest.raises(AvailabilityError):
            table.repair({"no-such-switch"})


class TestLazyNodeTables:
    """The repaired result's table mapping materializes views on demand."""

    @pytest.fixture()
    def repaired(self):
        tree = bt_network(8)
        loads = sample_leaf_loads(tree, PowerLawLoadDistribution(), rng=11)
        workload = tree.with_loads(loads)
        result = flat_gather(workload, 3)
        switch = sorted(workload.available)[0]
        new_tree = workload.with_available(workload.available ^ {switch})
        return repair(result, new_tree), flat_gather(new_tree, 3)

    def test_is_lazy_and_complete(self, repaired):
        lazy, cold = repaired
        tables = lazy.tables
        assert isinstance(tables, LazyNodeTables)
        assert dict.__len__(tables) == 0  # nothing materialized up front
        assert len(tables) == len(cold.tables)
        assert set(tables) == set(cold.tables)

    def test_access_materializes_and_caches(self, repaired):
        lazy, _ = repaired
        tables = lazy.tables
        node = lazy.root
        first = tables[node]
        assert dict.__len__(tables) == 1
        assert tables[node] is first  # cached, not rebuilt

    def test_get_and_contains(self, repaired):
        lazy, _ = repaired
        tables = lazy.tables
        node = lazy.root
        assert node in tables
        assert "no-such-node" not in tables
        assert tables.get("no-such-node") is None
        assert tables.get("no-such-node", "sentinel") == "sentinel"
        assert tables.get(node) is tables[node]

    def test_views_match_cold_tables(self, repaired):
        lazy, cold = repaired
        assert_tables_equal(cold, lazy)

    def test_mapping_protocol_materializes(self, repaired):
        lazy, cold = repaired
        tables = lazy.tables
        assert sorted(tables.keys()) == sorted(cold.tables.keys())
        assert len(list(tables.values())) == len(cold.tables)
        assert {k for k, _ in tables.items()} == set(cold.tables)
        # Equality against a same-valued dict works via the dict identity
        # shortcut once materialized.
        assert tables == dict(tables.items())

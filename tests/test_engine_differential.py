"""Differential verification of the flat gather engine against the reference.

The flat engine (:mod:`repro.core.engine`) re-implements SOAR-Gather on
contiguous ``(l, i, node)`` tensors but evaluates the identical
floating-point operations in the identical order, so everything it produces
— tables, argmin breadcrumbs, traced placements, costs — must be
*bit-identical* to the per-node reference implementation, and both must be
certified optimal by brute force on small instances.

Quick tier: a few dozen instances per tree shape.  Slow tier (``-m slow``):
500+ seeded instances across the whole generator space in both budget
semantics, plus instances of a few hundred nodes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.color import soar_color, soar_color_batched, soar_color_compiled
from repro.core.engine import (
    ENGINES,
    NUMPY_KERNELS,
    flat_gather,
    gather,
    subtree_available_counts,
)
from repro.core.flat import flat_order
from repro.core.engine_compiled import (
    COMPILED_KERNELS,
    HAVE_COMPILED,
    compiled_gather,
)
from repro.core.gather import soar_gather
from repro.core.solver import Solver
from repro.experiments.motivating import motivating_tree
from repro.testing import (
    SHAPES,
    assert_tables_equal,
    check_instance,
    instance_stream,
    near_tie_stream,
    random_budget,
    random_instance,
)

requires_compiled = pytest.mark.skipif(
    not HAVE_COMPILED, reason="C backend unavailable (no compiler); numpy fallback active"
)


def _assert_engines_identical(tree, budget, exact_k):
    """Tables, placements, and costs must match bit for bit."""
    reference = soar_gather(tree, budget, exact_k=exact_k)
    flat = flat_gather(tree, budget, exact_k=exact_k)
    compiled = compiled_gather(tree, budget, exact_k=exact_k)
    assert_tables_equal(reference, flat)
    assert_tables_equal(reference, compiled)
    traced = soar_color(tree, reference)
    assert traced == soar_color(tree, flat)
    assert traced == soar_color(tree, compiled)
    # ... and the batched/compiled colour kernels trace the same set out of
    # every engine's tables.
    assert soar_color_batched(tree, reference) == traced
    assert soar_color_batched(tree, flat) == traced
    assert soar_color_compiled(tree, compiled) == traced


class TestEngineDispatch:
    def test_unknown_engine_rejected(self, paper_tree):
        with pytest.raises(ValueError, match="unknown gather engine"):
            gather(paper_tree, 2, engine="warp")
        with pytest.raises(ValueError, match="unknown gather engine"):
            Solver(engine="warp")

    def test_registry_contains_all_engines(self):
        assert set(ENGINES) == {"flat", "reference", "compiled"}

    def test_results_record_their_engine(self, paper_tree):
        for engine in ENGINES:
            assert gather(paper_tree, 2, engine=engine).engine == engine

    def test_solver_accepts_every_engine(self, paper_tree):
        for engine in ENGINES:
            assert Solver(engine=engine).solve(paper_tree, 2).cost == 20.0

    def test_sweep_accepts_every_engine(self, paper_tree):
        for engine in ENGINES:
            sweep = Solver(engine=engine).sweep(paper_tree, range(1, 5))
            assert [sweep[k].cost for k in (1, 2, 3, 4)] == [35.0, 20.0, 15.0, 11.0]


class TestSubtreeAvailability:
    """Regression for the level walk stopping at level 2 (issue 6).

    The accumulation used to iterate ``range(height, 1, -1)``, so depth-1
    counts never folded into the root — unobservable through the
    convolution cap (the root is never a convolution child) but a landmine
    for any kernel that reuses the array.  The root entry must be exactly
    ``|Λ|``, and every entry the true subtree count.
    """

    def _counts_for(self, tree):
        order = flat_order(tree)
        index = {node: i for i, node in enumerate(order)}
        n = len(order)
        depth = np.fromiter((tree.depth(v) for v in order), dtype=np.int64, count=n)
        parent = np.fromiter(
            (index.get(tree.parent(v), -1) for v in order), dtype=np.int64, count=n
        )
        avail = np.fromiter((v in tree.available for v in order), dtype=bool, count=n)
        counts = subtree_available_counts(depth, parent, avail, tree.height)
        return order, index, counts

    def test_root_count_is_full_availability(self, paper_tree):
        _, index, counts = self._counts_for(paper_tree)
        assert counts[index[paper_tree.root]] == len(paper_tree.available)

    def test_every_entry_is_the_true_subtree_count(self, session_rng):
        for _ in range(10):
            tree = random_instance(
                session_rng, restrict_availability=True, max_switches=12
            )
            order, index, counts = self._counts_for(tree)
            assert counts[index[tree.root]] == len(tree.available)

            def subtree_count(node):
                total = int(node in tree.available)
                for child in tree.children(node):
                    total += subtree_count(child)
                return total

            for node in order:
                assert counts[index[node]] == subtree_count(node), node


class TestCompiledBackend:
    """The compiled engine specifically: activation, fallback, near-ties."""

    @requires_compiled
    def test_c_kernels_are_active(self):
        # When a compiler exists the "compiled" entry must run the C
        # kernel set, not silently fall back to numpy.
        assert COMPILED_KERNELS is not NUMPY_KERNELS

    def test_disable_env_forces_numpy_fallback(self):
        # A fresh interpreter with REPRO_NO_COMPILED set must keep the
        # "compiled" registry entry callable and bit-identical.
        import os
        import subprocess
        import sys

        env = dict(os.environ, REPRO_NO_COMPILED="1")
        script = (
            "from repro.core.engine_compiled import HAVE_COMPILED\n"
            "from repro.core.engine import ENGINES, flat_gather, gather\n"
            "from repro.experiments.motivating import motivating_tree\n"
            "from repro.testing import assert_tables_equal\n"
            "assert not HAVE_COMPILED\n"
            "assert 'compiled' in ENGINES\n"
            "tree = motivating_tree()\n"
            "result = gather(tree, 2, engine='compiled')\n"
            "assert result.engine == 'compiled'\n"
            "assert_tables_equal(flat_gather(tree, 2), result)\n"
        )
        subprocess.run([sys.executable, "-c", script], check=True, env=env)

    @pytest.mark.parametrize("exact_k", [False, True])
    def test_near_tie_instances_bit_identical(self, exact_k):
        # Symmetric rates and loads make every convolution argmin and
        # colour decision a tie-break — exactly where a compiled kernel
        # with a subtly different scan order would diverge first.
        count = 0
        for tree, budget in near_tie_stream(
            seed=20260807 + int(exact_k), count=25, max_switches=12
        ):
            flat = flat_gather(tree, budget, exact_k=exact_k)
            compiled = compiled_gather(tree, budget, exact_k=exact_k)
            assert_tables_equal(flat, compiled)
            traced = soar_color_batched(tree, flat)
            assert soar_color_compiled(tree, compiled) == traced
            assert soar_color(tree, compiled) == traced
            count += 1
        assert count == 25


class TestPaperExample:
    @pytest.mark.parametrize("exact_k", [False, True])
    def test_motivating_tree_all_budgets(self, exact_k):
        tree = motivating_tree()
        for budget in range(tree.num_switches + 2):
            _assert_engines_identical(tree, budget, exact_k)


class TestRandomizedQuick:
    """A focused sweep per tree shape; runs in the quick tier."""

    @pytest.mark.parametrize("shape", SHAPES)
    @pytest.mark.parametrize("exact_k", [False, True])
    def test_shape_against_reference_and_bruteforce(self, shape, exact_k):
        # str hashes are salted per process; derive the seed stably instead.
        rng = np.random.default_rng([SHAPES.index(shape), int(exact_k)])
        for _ in range(12):
            tree = random_instance(rng, shape=shape, max_switches=10)
            budget = random_budget(rng, tree)
            _assert_engines_identical(tree, budget, exact_k)
            check_instance(tree, budget, exact_k=exact_k)

    def test_zero_load_instances(self, session_rng):
        for _ in range(10):
            tree = random_instance(session_rng, load_profile="zero", max_switches=9)
            budget = random_budget(session_rng, tree)
            for exact_k in (False, True):
                _assert_engines_identical(tree, budget, exact_k)

    def test_skewed_load_instances(self, session_rng):
        for _ in range(10):
            tree = random_instance(session_rng, load_profile="skewed", max_switches=9)
            budget = random_budget(session_rng, tree)
            for exact_k in (False, True):
                _assert_engines_identical(tree, budget, exact_k)
                check_instance(tree, budget, exact_k=exact_k)

    def test_restricted_availability_instances(self, session_rng):
        for _ in range(15):
            tree = random_instance(
                session_rng, restrict_availability=True, max_switches=9
            )
            budget = random_budget(session_rng, tree)
            for exact_k in (False, True):
                _assert_engines_identical(tree, budget, exact_k)
                check_instance(tree, budget, exact_k=exact_k)

    def test_skewed_rates_instances(self, session_rng):
        rates = (0.0625, 0.125, 8.0, 16.0)  # four-orders-of-magnitude spread
        for _ in range(10):
            tree = random_instance(session_rng, rate_choices=rates, max_switches=9)
            budget = random_budget(session_rng, tree)
            for exact_k in (False, True):
                _assert_engines_identical(tree, budget, exact_k)


@pytest.mark.slow
class TestRandomizedSlow:
    """The acceptance sweep: 500+ seeded instances, both budget semantics."""

    def test_five_hundred_instances_cost_and_placement(self):
        count = 0
        for tree, budget in instance_stream(seed=20211207, count=500, max_switches=12):
            for exact_k in (False, True):
                # check_instance asserts flat cost == reference cost, equal
                # placements, feasibility, and brute-force optimality on
                # instances small enough to enumerate.
                check_instance(tree, budget, exact_k=exact_k)
            count += 1
        assert count == 500

    def test_table_equality_sample(self):
        # Bitwise table equality is costlier than cost equality, so the
        # full-table comparison runs on a 100-instance subsample.
        for tree, budget in instance_stream(seed=77, count=100, max_switches=12):
            for exact_k in (False, True):
                _assert_engines_identical(tree, budget, exact_k)

    @pytest.mark.parametrize("shape", ["uniform", "kary", "scale_free", "binary"])
    def test_medium_instances_match_reference(self, shape):
        rng = np.random.default_rng([SHAPES.index(shape), 99])
        for num_switches in (120, 250, 400):
            tree = random_instance(
                rng, shape=shape, num_switches=num_switches, load_profile="mixed"
            )
            budget = int(rng.integers(1, 16))
            for exact_k in (False, True):
                _assert_engines_identical(tree, budget, exact_k)

    def test_deep_path_instances(self):
        # Path networks stress the parameter axis (depth = n) and must not
        # recurse; both engines are iterative.
        rng = np.random.default_rng(5)
        tree = random_instance(rng, shape="path", num_switches=300)
        for exact_k in (False, True):
            _assert_engines_identical(tree, 8, exact_k)

    def test_wide_star_instances(self):
        # Star networks stress the stage loop (one node, hundreds of
        # children -> hundreds of convolution stages).
        rng = np.random.default_rng(6)
        tree = random_instance(rng, shape="star", num_switches=300)
        for exact_k in (False, True):
            _assert_engines_identical(tree, 8, exact_k)

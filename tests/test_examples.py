"""Smoke tests for the runnable example scripts.

The examples are real scripts with their own ``main()``; the tests import
each one (verifying it is importable and documented) and execute the fast
ones end to end, asserting they print the headline numbers they promise.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

EXAMPLE_FILES = sorted(path.name for path in EXAMPLES_DIR.glob("*.py"))


def _load_example(name: str):
    path = EXAMPLES_DIR / name
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


def test_at_least_three_examples_exist():
    assert len(EXAMPLE_FILES) >= 3
    assert "quickstart.py" in EXAMPLE_FILES


@pytest.mark.parametrize("name", EXAMPLE_FILES)
def test_examples_are_importable_and_documented(name):
    module = _load_example(name)
    assert module.__doc__ and "Run with" in module.__doc__
    assert callable(module.main)


def test_quickstart_output(capsys):
    module = _load_example("quickstart.py")
    module.main()
    output = capsys.readouterr().out
    assert "all-red utilization (no aggregation): 51" in output
    assert "20.0" in output  # SOAR's optimal cost at k = 2
    assert "Optimal utilization per budget" in output


def test_online_multitenant_output(capsys):
    module = _load_example("online_multitenant.py")
    module.main()
    output = capsys.readouterr().out
    assert "SOAR" in output and "Top" in output
    assert "End-of-sequence summary" in output


def test_service_churn_output(capsys):
    module = _load_example("service_churn.py")
    module.main()
    output = capsys.readouterr().out
    assert "Admitting 6 tenants" in output
    assert "cache hit" in output
    assert "Drained switch" in output
    assert "churn-trace replay" in output


def test_scalefree_upgrade_planning_output(capsys):
    module = _load_example("scalefree_upgrade_planning.py")
    module.main()
    output = capsys.readouterr().out
    assert "Max degree" in output
    assert "Incremental upgrade" in output

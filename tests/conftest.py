"""Shared fixtures for the SOAR reproduction test-suite.

Test tiers
----------
The suite has two tiers:

* **quick** — everything not marked ``slow``; runs in a few seconds and is
  the tier CI gates merges on.  Select it with ``pytest -m "not slow"``.
* **slow** — the heavyweight randomized differential sweeps (hundreds of
  instances per test, trees up to a few hundred nodes).  Run them alone
  with ``pytest -m slow``; a plain ``pytest`` run executes both tiers.
"""

from __future__ import annotations

import zlib

import numpy as np
import pytest

from repro.core.tree import TreeNetwork
from repro.experiments.motivating import motivating_tree
from repro.topology.binary_tree import complete_binary_tree


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "slow: heavyweight randomized differential sweeps; deselect with -m 'not slow'",
    )


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic random generator, freshly seeded for every test."""
    return np.random.default_rng(1234)


#: Session-wide base seed every randomized test derives from (the paper's
#: CoNEXT session date).
SESSION_SEED: int = 20211207


@pytest.fixture(scope="session")
def session_seed() -> np.random.SeedSequence:
    """The session-wide seed sequence all randomized tests derive from."""
    return np.random.SeedSequence(SESSION_SEED)


@pytest.fixture
def session_rng(session_seed, request) -> np.random.Generator:
    """A generator derived from the session seed and the test's own id.

    Different tests explore different instance streams, but each test's
    stream depends only on the session seed and its nodeid — so a failure
    reproduces when the test is rerun in isolation or the suite is
    reordered.
    """
    node_key = zlib.crc32(request.node.nodeid.encode())
    return np.random.default_rng([session_seed.entropy, node_key])


@pytest.fixture
def paper_tree() -> TreeNetwork:
    """The 7-switch motivating-example tree of Figures 2 and 3."""
    return motivating_tree()


@pytest.fixture
def small_tree() -> TreeNetwork:
    """A 3-switch tree with uneven rates, handy for hand-computed expectations.

    Layout::

        d <- r (rate 2) <- a (rate 1, load 3)
                        <- b (rate 4, load 1)
    """
    return TreeNetwork(
        parents={"r": "d", "a": "r", "b": "r"},
        rates={"r": 2.0, "a": 1.0, "b": 4.0},
        loads={"a": 3, "b": 1},
    )


@pytest.fixture
def loaded_bt16() -> TreeNetwork:
    """A BT(16) tree (15 switches) with deterministic skewed leaf loads."""
    loads = [1, 9, 2, 8, 3, 7, 4, 6]
    return complete_binary_tree(8, leaf_loads=loads)


def make_random_instance(
    rng: np.random.Generator,
    max_switches: int = 10,
    max_load: int = 6,
    rate_choices=(0.5, 1.0, 2.0, 4.0),
) -> TreeNetwork:
    """Build a small random tree instance for randomized comparison tests.

    Retained for the older tests; new randomized tests should prefer the
    richer generators in :mod:`repro.testing`.
    """
    num_switches = int(rng.integers(1, max_switches + 1))
    parents = {0: "d"}
    for node in range(1, num_switches):
        parents[node] = int(rng.integers(0, node))
    rates = {node: float(rng.choice(rate_choices)) for node in parents}
    loads = {node: int(rng.integers(0, max_load + 1)) for node in parents}
    return TreeNetwork(parents, rates=rates, loads=loads)

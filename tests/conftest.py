"""Shared fixtures for the SOAR reproduction test-suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.tree import TreeNetwork
from repro.experiments.motivating import motivating_tree
from repro.topology.binary_tree import complete_binary_tree


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic random generator for tests that need randomness."""
    return np.random.default_rng(1234)


@pytest.fixture
def paper_tree() -> TreeNetwork:
    """The 7-switch motivating-example tree of Figures 2 and 3."""
    return motivating_tree()


@pytest.fixture
def small_tree() -> TreeNetwork:
    """A 3-switch tree with uneven rates, handy for hand-computed expectations.

    Layout::

        d <- r (rate 2) <- a (rate 1, load 3)
                        <- b (rate 4, load 1)
    """
    return TreeNetwork(
        parents={"r": "d", "a": "r", "b": "r"},
        rates={"r": 2.0, "a": 1.0, "b": 4.0},
        loads={"a": 3, "b": 1},
    )


@pytest.fixture
def loaded_bt16() -> TreeNetwork:
    """A BT(16) tree (15 switches) with deterministic skewed leaf loads."""
    loads = [1, 9, 2, 8, 3, 7, 4, 6]
    return complete_binary_tree(8, leaf_loads=loads)


def make_random_instance(
    rng: np.random.Generator,
    max_switches: int = 10,
    max_load: int = 6,
    rate_choices=(0.5, 1.0, 2.0, 4.0),
) -> TreeNetwork:
    """Build a small random tree instance for randomized comparison tests."""
    num_switches = int(rng.integers(1, max_switches + 1))
    parents = {0: "d"}
    for node in range(1, num_switches):
        parents[node] = int(rng.integers(0, node))
    rates = {node: float(rng.choice(rate_choices)) for node in parents}
    loads = {node: int(rng.integers(0, max_load + 1)) for node in parents}
    return TreeNetwork(parents, rates=rates, loads=loads)

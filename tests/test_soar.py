"""Tests for the SOAR algorithm: gather tables, colouring, and the staged solver API."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.bruteforce import solve_bruteforce
from repro.core.color import soar_color
from repro.core.cost import utilization_cost
from repro.core.gather import BLUE, RED, normalize_budget, soar_gather
from repro.core.solver import GatherTable, Placement, Solver
from repro.core.tree import TreeNetwork
from repro.exceptions import InvalidBudgetError, PlacementError
from repro.topology.binary_tree import complete_binary_tree


class TestGatherTables:
    def test_table_shapes(self, paper_tree):
        gathered = soar_gather(paper_tree, 3)
        for switch in paper_tree.switches:
            table = gathered.tables[switch]
            assert table.x.shape == (paper_tree.depth(switch) + 1, 4)
            assert table.y_blue.shape == table.x.shape
            assert table.y_red.shape == table.x.shape
            assert table.choice.shape == table.x.shape

    def test_leaf_base_case(self, paper_tree):
        gathered = soar_gather(paper_tree, 2)
        table = gathered.tables["s2_1"]  # leaf with load 6, depth 3, unit rates
        # i = 0: red leaf contributes L(v) * l for every distance l.
        assert table.x[:, 0] == pytest.approx([0.0, 6.0, 12.0, 18.0])
        # i >= 1: a blue leaf contributes l.
        assert table.x[:, 1] == pytest.approx([0.0, 1.0, 2.0, 3.0])
        assert table.x[:, 2] == pytest.approx([0.0, 1.0, 2.0, 3.0])

    def test_leaf_base_case_with_rates(self, small_tree):
        gathered = soar_gather(small_tree, 1)
        table = gathered.tables["b"]  # load 1, rho(b) = 0.25, rho(r) = 0.5
        assert table.x[:, 0] == pytest.approx([0.0, 0.25, 0.75])
        assert table.x[:, 1] == pytest.approx([0.0, 0.25, 0.75])

    def test_unavailable_leaf_cannot_be_blue(self, paper_tree):
        restricted = paper_tree.with_available(set(paper_tree.switches) - {"s2_1"})
        gathered = soar_gather(restricted, 2)
        table = gathered.tables["s2_1"]
        assert np.all(np.isinf(table.y_blue))
        assert table.x[:, 1] == pytest.approx(table.x[:, 0])

    def test_root_table_matches_bruteforce_for_every_budget(self, paper_tree):
        gathered = soar_gather(paper_tree, 4)
        for budget in range(5):
            expected = solve_bruteforce(paper_tree, budget).cost
            assert gathered.cost_for_budget(budget) == pytest.approx(expected)

    def test_optimal_cost_property(self, paper_tree):
        gathered = soar_gather(paper_tree, 2)
        assert gathered.optimal_cost == pytest.approx(20.0)

    def test_x_is_monotone_in_budget(self, loaded_bt16):
        gathered = soar_gather(loaded_bt16, 6)
        for table in gathered.tables.values():
            diffs = np.diff(table.x, axis=1)
            assert np.all(diffs <= 1e-9)

    def test_x_is_monotone_in_distance(self, loaded_bt16):
        # Farther blue ancestors can only cost more (rho is non-negative).
        gathered = soar_gather(loaded_bt16, 4)
        for table in gathered.tables.values():
            diffs = np.diff(table.x, axis=0)
            assert np.all(diffs >= -1e-9)

    def test_choice_consistent_with_y_tables(self, loaded_bt16):
        gathered = soar_gather(loaded_bt16, 4)
        for table in gathered.tables.values():
            blue_better = table.y_blue < table.y_red
            assert np.array_equal(table.choice == BLUE, blue_better)
            assert np.array_equal(table.choice == RED, ~blue_better)

    def test_budget_clamped_to_available(self, paper_tree):
        restricted = paper_tree.with_available({"s1_0", "s1_1"})
        gathered = soar_gather(restricted, 10)
        assert gathered.budget == 2
        assert gathered.requested_budget == 10

    def test_normalize_budget_validation(self, paper_tree):
        with pytest.raises(InvalidBudgetError):
            normalize_budget(paper_tree, -1)
        with pytest.raises(InvalidBudgetError):
            normalize_budget(paper_tree, 1.5)  # type: ignore[arg-type]
        with pytest.raises(InvalidBudgetError):
            normalize_budget(paper_tree, True)  # type: ignore[arg-type]
        assert normalize_budget(paper_tree, 100) == paper_tree.num_switches


class TestColor:
    def test_budget_zero_yields_empty_set(self, paper_tree):
        gathered = soar_gather(paper_tree, 0)
        assert soar_color(paper_tree, gathered) == frozenset()

    def test_traceback_cost_matches_table(self, loaded_bt16):
        gathered = soar_gather(loaded_bt16, 5)
        for budget in range(6):
            blue = soar_color(loaded_bt16, gathered, budget=budget)
            assert len(blue) <= budget
            assert utilization_cost(loaded_bt16, blue) == pytest.approx(
                gathered.cost_for_budget(budget)
            )

    def test_rejects_budget_above_gathered(self, paper_tree):
        gathered = soar_gather(paper_tree, 2)
        with pytest.raises(PlacementError):
            soar_color(paper_tree, gathered, budget=5)
        with pytest.raises(PlacementError):
            soar_color(paper_tree, gathered, budget=-1)

    def test_rejects_foreign_tables(self, paper_tree, small_tree):
        gathered = soar_gather(small_tree, 1)
        with pytest.raises(PlacementError):
            soar_color(paper_tree, gathered)

    def test_respects_availability(self, paper_tree):
        restricted = paper_tree.with_available({"s2_0", "s2_3"})
        gathered = soar_gather(restricted, 2)
        blue = soar_color(restricted, gathered)
        assert blue <= restricted.available


class TestSolver:
    def test_figure3_budget_sweep(self, paper_tree):
        solver = Solver()
        expected = {0: 51.0, 1: 35.0, 2: 20.0, 3: 15.0, 4: 11.0}
        for budget, cost in expected.items():
            solution = solver.solve(paper_tree, budget)
            assert solution.cost == pytest.approx(cost)
            assert solution.predicted_cost == pytest.approx(cost)
            assert solution.num_blue <= budget

    def test_figure3_unique_solutions(self, paper_tree):
        solver = Solver()
        # The paper notes the optimal sets for k = 2 and k = 3 are unique.
        assert solver.solve(paper_tree, 2).blue_nodes == frozenset({"s1_1", "s2_1"})
        assert solver.solve(paper_tree, 3).blue_nodes == frozenset(
            {"s2_1", "s2_2", "s2_3"}
        )

    def test_non_monotone_blue_sets(self, paper_tree):
        # Figure 3: the optimal set for k = 3 is not a superset of k = 2.
        table = Solver().gather(paper_tree, 3)
        assert not table.place(2).blue_nodes <= table.place(3).blue_nodes

    def test_solution_within_availability(self, paper_tree):
        restricted = paper_tree.with_available({"s1_0", "s2_3"})
        solution = Solver().solve(restricted, 2)
        assert solution.blue_nodes <= restricted.available
        assert solution.cost == pytest.approx(solve_bruteforce(restricted, 2).cost)

    def test_budget_larger_than_network(self, paper_tree):
        solution = Solver().solve(paper_tree, 100)
        assert solution.cost == pytest.approx(7.0)  # all-blue cost
        assert solution.table.budget == paper_tree.num_switches
        assert solution.table.requested_budget == 100

    def test_cost_helper(self, paper_tree):
        assert Solver().cost(paper_tree, 2) == pytest.approx(20.0)

    def test_rejects_unknown_engine_and_color(self):
        with pytest.raises(ValueError, match="unknown gather engine"):
            Solver(engine="warp")
        with pytest.raises(ValueError, match="unknown colour kernel"):
            Solver(color="warp")

    def test_sweep_shares_one_table(self, paper_tree):
        sweep = Solver().sweep(paper_tree, [0, 1, 2, 3, 4])
        assert {k: s.cost for k, s in sweep.items()} == pytest.approx(
            {0: 51.0, 1: 35.0, 2: 20.0, 3: 15.0, 4: 11.0}
        )
        tables = {id(s.table) for s in sweep.values()}
        assert len(tables) == 1

    def test_sweep_rejects_negative(self, paper_tree):
        with pytest.raises(InvalidBudgetError):
            Solver().sweep(paper_tree, [-1, 2])

    def test_sweep_empty(self, paper_tree):
        assert Solver().sweep(paper_tree, []) == {}

    def test_table_reuse_across_budgets(self, paper_tree):
        table = Solver().gather(paper_tree, 4)
        for budget in range(5):
            placement = table.place(budget)
            assert placement.cost == pytest.approx(
                solve_bruteforce(paper_tree, budget).cost
            )
            assert placement.table is table

    def test_table_records_provenance(self, paper_tree):
        table = Solver(engine="reference", exact_k=True).gather(paper_tree, 3)
        assert isinstance(table, GatherTable)
        assert table.engine == "reference" and table.exact_k is True
        assert table.fingerprint == paper_tree.fingerprint()
        assert table.root == paper_tree.root

    def test_solve_many_groups_same_tree(self, paper_tree, loaded_bt16):
        solver = Solver()
        placements = solver.solve_many(
            [(paper_tree, 2), (loaded_bt16, 3), (paper_tree, 4)]
        )
        assert [p.budget for p in placements] == [2, 3, 4]
        # Same-tree instances share one gather artifact (at the widest budget).
        assert placements[0].table is placements[2].table
        assert placements[0].table is not placements[1].table
        assert placements[0].cost == pytest.approx(20.0)
        assert placements[2].cost == pytest.approx(11.0)

    def test_sweep_many(self, paper_tree, loaded_bt16):
        results = Solver().sweep_many(
            [(paper_tree, (1, 2)), (loaded_bt16, (0, 4))]
        )
        assert [sorted(sweep) for sweep in results] == [[1, 2], [0, 4]]
        assert results[0][2].cost == pytest.approx(20.0)

    def test_costs_monotone_in_budget(self, loaded_bt16):
        sweep = Solver().sweep(loaded_bt16, range(0, 10))
        costs = [sweep[k].cost for k in sorted(sweep)]
        assert all(a >= b - 1e-9 for a, b in zip(costs, costs[1:]))

    def test_internal_switch_loads_supported(self):
        tree = TreeNetwork(
            parents={"r": "d", "a": "r", "b": "r", "c": "a"},
            loads={"r": 2, "a": 1, "b": 4, "c": 3},
        )
        for budget in range(4):
            assert Solver().solve(tree, budget).cost == pytest.approx(
                solve_bruteforce(tree, budget).cost
            )

    def test_zero_load_tree(self):
        tree = complete_binary_tree(4)
        solution = Solver().solve(tree, 2)
        assert solution.cost == 0.0
        assert solution.blue_nodes == frozenset()

    def test_placement_is_a_placement(self, paper_tree):
        assert isinstance(Solver().solve(paper_tree, 2), Placement)


class TestExactKMode:
    def test_exact_matches_bruteforce_exact(self, paper_tree):
        solver = Solver(exact_k=True)
        for budget in range(1, 5):
            solution = solver.solve(paper_tree, budget)
            expected = solve_bruteforce(paper_tree, budget, exact_k=True)
            assert solution.cost == pytest.approx(expected.cost)

    def test_with_semantics(self, paper_tree):
        solver = Solver()
        assert solver.with_semantics(True).exact_k is True
        assert solver.with_semantics(True).engine == solver.engine

    def test_exact_uses_full_budget_on_positive_loads(self, paper_tree):
        solution = Solver(exact_k=True).solve(paper_tree, 3)
        assert solution.num_blue == 3

    def test_at_most_never_worse_than_exact(self, loaded_bt16):
        for budget in range(0, 8):
            at_most = Solver().solve(loaded_bt16, budget).cost
            exact = Solver(exact_k=True).solve(loaded_bt16, budget).cost
            assert at_most <= exact + 1e-9

    def test_exact_mode_zero_load_leaf(self):
        # With a zero-load leaf, forcing exactly k blue nodes can cost more
        # than the at-most-k optimum; both must still match their brute force.
        tree = TreeNetwork(
            parents={"r": "d", "a": "r", "b": "r"},
            loads={"a": 5, "b": 0},
        )
        for budget in range(0, 3):
            assert Solver().solve(tree, budget).cost == pytest.approx(
                solve_bruteforce(tree, budget).cost
            )
            assert Solver(exact_k=True).solve(tree, budget).cost == pytest.approx(
                solve_bruteforce(tree, budget, exact_k=True).cost
            )


class TestBruteForce:
    def test_rejects_negative_budget(self, paper_tree):
        with pytest.raises(InvalidBudgetError):
            solve_bruteforce(paper_tree, -1)

    def test_subset_guard(self, loaded_bt16):
        with pytest.raises(InvalidBudgetError):
            solve_bruteforce(loaded_bt16, 7, max_subsets=10)

    def test_respects_availability(self, paper_tree):
        restricted = paper_tree.with_available({"s2_0"})
        result = solve_bruteforce(restricted, 3)
        assert result.blue_nodes <= restricted.available

    def test_examined_count(self, small_tree):
        result = solve_bruteforce(small_tree, 1)
        # 1 empty subset + 3 singletons.
        assert result.subsets_examined == 4

"""Differential suite for the cost kernels and the incremental digests.

Two subsystems under test, both introduced for the service's warm path:

* **COST_KERNELS** — every registry entry must return the *bit-identical*
  Eq. (1) value (same float, not approximately equal) as the per-node
  :func:`~repro.core.cost.utilization_cost` walk, on the full seeded
  generator space: random shapes/loads/Λ, the adversarial near-tie rate
  and load profiles, and straddling availability patterns.  The barrier
  re-formulation of Lemma 4.2 cross-checks the values a third way.

* **Incremental digests** — the Λ fingerprint the capacity tracker
  maintains across admit/release/drain churn, and the per-tenant loads
  digests carried on :class:`~repro.service.state.TenantRecord`, must
  always equal the full recomputes (:func:`fingerprint_nodes` /
  :func:`fingerprint_loads`) they replace.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.cost import (
    COMPILED_COST,
    COST_KERNELS,
    FLAT_COST,
    REFERENCE_COST,
    evaluate_cost,
    per_link_utilization,
    per_link_utilization_flat,
    utilization_cost,
    utilization_cost_barrier,
    utilization_cost_flat,
)
from repro.core.flat import cost_model_for
from repro.core.solver import Solver
from repro.core.tree import (
    IncrementalDigest,
    fingerprint_loads,
    fingerprint_nodes,
)
from repro.exceptions import PlacementError
from repro.online.capacity import CapacityTracker
from repro.service import PlacementService
from repro.service.events import event_to_request, generate_churn_trace
from repro.testing import costs_close, instance_stream, near_tie_stream
from repro.topology.binary_tree import bt_network, complete_binary_tree
from repro.workload.distributions import PowerLawLoadDistribution, sample_leaf_loads


def _candidate_placements(tree, budget, rng):
    """A few feasible blue sets per instance: optimal, empty, random ⊆ Λ."""
    yield Solver().solve(tree, budget).blue_nodes
    yield frozenset()
    available = sorted(tree.available, key=repr)
    if available:
        count = int(rng.integers(0, len(available) + 1))
        picks = rng.choice(len(available), size=count, replace=False)
        yield frozenset(available[int(i)] for i in picks)


class TestCostKernelDifferential:
    """Every COST_KERNELS entry == utilization_cost, bit for bit."""

    def test_registry_shape(self):
        assert set(COST_KERNELS) == {FLAT_COST, REFERENCE_COST, COMPILED_COST}

    def test_random_instances_all_kernels(self):
        rng = np.random.default_rng(0xC057)
        for tree, budget in instance_stream(seed=20260730, count=150, max_switches=12):
            model = cost_model_for(tree)
            for blue in _candidate_placements(tree, budget, rng):
                expected = utilization_cost(tree, blue)
                for name, kernel in COST_KERNELS.items():
                    assert kernel(tree, blue) == expected, name
                    assert kernel(tree, blue, model=model) == expected, name
                # Lemma 4.2 cross-check (tolerance-based: arbitrary rates).
                assert costs_close(expected, utilization_cost_barrier(tree, blue))

    def test_near_tie_and_straddling_instances(self):
        # Symmetric rates/loads and straddled Λ: the exact values are
        # decided by summation order alone, so any reduction reorder in
        # the flat kernel shows up here first.
        for tree, budget in near_tie_stream(0xBEEF, 100, max_switches=11):
            blue = Solver().solve(tree, budget).blue_nodes
            expected = utilization_cost(tree, blue)
            assert utilization_cost_flat(tree, blue) == expected
            assert evaluate_cost(tree, blue, cost=FLAT_COST) == expected
            assert costs_close(expected, utilization_cost_barrier(tree, blue))

    def test_per_link_breakdown_identical(self):
        rng = np.random.default_rng(7)
        for tree, budget in instance_stream(seed=99, count=60, max_switches=12):
            model = cost_model_for(tree)
            for blue in _candidate_placements(tree, budget, rng):
                reference = per_link_utilization(tree, blue)
                flat = per_link_utilization_flat(tree, blue, model=model)
                assert flat == reference
                # Same insertion (post-order) key order, not just same items.
                assert list(flat) == list(reference)

    def test_loads_override_matches_reference(self):
        tree = bt_network(64)
        model = cost_model_for(tree)
        rng = np.random.default_rng(3)
        for seed in range(5):
            loads = sample_leaf_loads(tree, PowerLawLoadDistribution(), rng=seed)
            workload = tree.with_loads(loads)
            blue = Solver().solve(workload, 6).blue_nodes
            expected = utilization_cost(workload, blue, loads=loads)
            # Explicit loads mapping against the shared structural model...
            assert utilization_cost_flat(workload, blue, loads=loads, model=model) == expected
            # ...and the foreign-tree path re-deriving loads from the tree.
            assert utilization_cost_flat(workload, blue, model=model) == expected
            # Partial mappings behave like the reference's .get(s, 0).
            partial = {node: value for node, value in loads.items() if rng.random() < 0.5}
            assert utilization_cost_flat(tree, blue, loads=partial, model=model) == (
                utilization_cost(tree, blue, loads=partial)
            )

    def test_validation_parity(self, paper_tree):
        restricted = paper_tree.with_available({"s1_0"})
        with pytest.raises(PlacementError):
            utilization_cost_flat(restricted, {"s1_1"})
        # validate=False skips the Λ check in both kernels identically.
        assert utilization_cost_flat(restricted, {"s1_1"}, validate=False) == (
            utilization_cost(restricted, {"s1_1"}, validate=False)
        )

    def test_unknown_kernel_rejected(self, paper_tree):
        with pytest.raises(ValueError, match="unknown cost kernel"):
            evaluate_cost(paper_tree, frozenset(), cost="warp")
        with pytest.raises(ValueError, match="unknown cost kernel"):
            Solver(cost_kernel="warp")

    def test_placement_cost_matches_reference_kernel(self):
        # The solver-bound kernels: a flat-cost Placement and a
        # reference-cost Placement carry the identical float.
        for tree, budget in instance_stream(seed=555, count=30, max_switches=12):
            flat = Solver().solve(tree, budget)
            reference = Solver(cost_kernel=REFERENCE_COST).solve(tree, budget)
            assert flat.cost == reference.cost
            assert flat.blue_nodes == reference.blue_nodes
            assert flat.cost == utilization_cost(tree, flat.blue_nodes)

    def test_gather_table_caches_one_model_per_result(self, loaded_bt16):
        table = Solver().gather(loaded_bt16, 4)
        first = table.cost_model()
        table.sweep(range(5))
        assert table.cost_model() is first
        assert Solver(cost_kernel=REFERENCE_COST).gather(loaded_bt16, 2).cost_model() is None


class TestIncrementalDigest:
    """The additive multiset digest equals the full recompute under churn."""

    def test_add_remove_roundtrip(self):
        # fingerprint_nodes digests the *reprs* of the node ids, so the
        # incremental twin must add/remove the same canonical strings.
        digest = IncrementalDigest()
        empty = digest.hexdigest()
        digest.add(repr("a"))
        digest.add(repr("b"))
        assert digest.hexdigest() == fingerprint_nodes(["b", "a"])
        digest.remove(repr("b"))
        assert digest.hexdigest() == fingerprint_nodes(["a"])
        digest.remove(repr("a"))
        assert digest.hexdigest() == empty

    def test_order_independence_and_zero_skip(self):
        assert fingerprint_loads({"a": 1, "b": 2}) == fingerprint_loads({"b": 2, "a": 1})
        assert fingerprint_loads({"a": 1, "b": 0}) == fingerprint_loads({"a": 1})
        assert fingerprint_loads({"a": 1}) != fingerprint_loads({"a": 2})

    def test_tracker_digest_tracks_full_recompute(self, paper_tree):
        tracker = CapacityTracker(paper_tree, 2)

        def check():
            assert tracker.availability_fingerprint() == fingerprint_nodes(
                tracker.available()
            )

        check()
        tracker.consume({"s1_0", "s2_0"})
        check()
        tracker.consume({"s1_0"})  # exhausts s1_0
        check()
        tracker.release({"s1_0", "s2_0"})
        check()
        tracker.drain("s2_1")
        check()
        tracker.release({"s1_0"})
        check()
        tracker.reset()
        check()

    def test_tracker_available_is_cached_object(self, paper_tree):
        tracker = CapacityTracker(paper_tree, 2)
        first = tracker.available()
        assert tracker.available() is first
        tracker.consume({"s1_0"})  # residual 2 -> 1: Λ unchanged
        assert tracker.available() is first
        tracker.consume({"s1_0"})  # residual 1 -> 0: Λ shrinks
        assert tracker.available() is not first

    def test_incremental_vs_full_across_churn_trace(self):
        # The satellite acceptance: replay a seeded admit/release/drain
        # churn trace through the service and, after every event, compare
        # the incrementally-maintained digests against full recomputes.
        tree = complete_binary_tree(16)
        service = PlacementService(tree, capacity=3)
        trace = generate_churn_trace(tree, 120, seed=42, budget=4, workload_pool=4)
        mutations = 0
        for event in trace:
            service.submit(event_to_request(tree, event))
            assert service.state.availability_fingerprint() == fingerprint_nodes(
                service.state.available()
            )
            for record in service.state.tenants().values():
                assert record.loads_fp == fingerprint_loads(record.loads)
            if event.kind in ("admit", "release", "drain"):
                mutations += 1
        assert mutations > 10  # the trace actually churned

    def test_service_availability_fingerprint_keys_cache_correctly(self):
        # Same Λ reached twice -> same digest -> old entries live again.
        tree = complete_binary_tree(8)
        service = PlacementService(tree, capacity=1)
        loads = sample_leaf_loads(tree, PowerLawLoadDistribution(), rng=1)
        before = service.state.availability_fingerprint()
        service.submit(event_to_request(tree, generate_churn_trace(tree, 1, seed=0)[0]))
        from repro.service import AdmitRequest, ReleaseRequest, SolveRequest

        service.submit(AdmitRequest(tenant_id="t", loads=loads, budget=2))
        assert service.state.availability_fingerprint() != before
        service.submit(ReleaseRequest(tenant_id="t"))
        assert service.state.availability_fingerprint() == before
        cold = service.submit(SolveRequest(loads=loads, budget=2))
        warm = service.submit(SolveRequest(loads=loads, budget=2))
        assert warm.cache_hit and warm.cost == cold.cost


@pytest.mark.slow
class TestCostKernelSweep:
    """Wider randomized sweep (slow tier): every kernel, every budget."""

    def test_exhaustive_budget_sweep_all_kernels(self):
        rng = np.random.default_rng(11)
        for tree, budget in instance_stream(seed=314159, count=120, max_switches=14):
            table = Solver().gather(tree, budget)
            model = cost_model_for(tree)
            for k in range(table.budget + 1):
                placement = table.place(k)
                expected = utilization_cost(tree, placement.blue_nodes)
                assert placement.cost == expected
                for kernel in COST_KERNELS.values():
                    assert kernel(tree, placement.blue_nodes, model=model) == expected

    def test_near_tie_load_profiles_with_models(self):
        for tree, budget in near_tie_stream(
            0xD15EA5E, 150, equalize_loads_probability=1.0, max_switches=12
        ):
            model = cost_model_for(tree)
            blue = Solver().solve(tree, budget).blue_nodes
            assert utilization_cost_flat(tree, blue, model=model) == utilization_cost(
                tree, blue
            )

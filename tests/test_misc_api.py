"""Tests for small public helpers not covered by the module-focused suites."""

from __future__ import annotations

import pytest

from repro.core.cost import byte_cost
from repro.core.reduce_op import ReduceTrace
from repro.experiments.fig11_scalefree import isqrt_budget
from repro.online.capacity import CapacityTracker
from repro.topology.binary_tree import complete_binary_tree


class TestByteCost:
    def test_sums_per_link_bytes(self, paper_tree):
        link_bytes = {switch: 10.0 for switch in paper_tree.switches}
        assert byte_cost(link_bytes, paper_tree) == 10.0 * paper_tree.num_switches

    def test_rejects_unknown_switch(self, paper_tree):
        with pytest.raises(KeyError):
            byte_cost({"ghost": 1.0}, paper_tree)


class TestReduceTraceDefaults:
    def test_empty_trace_totals(self):
        trace = ReduceTrace()
        assert trace.total_bytes == 0.0
        assert trace.total_messages == 0
        assert trace.result is None


class TestCapacityResidualSnapshot:
    def test_residual_capacities_is_a_copy(self, paper_tree):
        tracker = CapacityTracker(paper_tree, 2)
        snapshot = tracker.residual_capacities()
        snapshot["s1_0"] = 0
        assert tracker.residual("s1_0") == 2

    def test_snapshot_reflects_consumption(self, paper_tree):
        tracker = CapacityTracker(paper_tree, 2)
        tracker.consume({"s1_0"})
        assert tracker.residual_capacities()["s1_0"] == 1


class TestBudgetRules:
    def test_isqrt_budget(self):
        assert isqrt_budget(256) == 16
        assert isqrt_budget(2) == 1
        assert isqrt_budget(4096) == 64


class TestTreeReprAndLevels:
    def test_levels_cover_all_switches(self):
        tree = complete_binary_tree(8)
        levels = tree.levels()
        flattened = [switch for level in levels for switch in level]
        assert sorted(map(str, flattened)) == sorted(map(str, tree.switches))

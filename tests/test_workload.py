"""Tests for the workload generators: load distributions and rate schemes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import WorkloadError
from repro.topology.binary_tree import bt_network, complete_binary_tree
from repro.workload.distributions import (
    LOAD_DISTRIBUTIONS,
    PowerLawLoadDistribution,
    UniformLoadDistribution,
    make_distribution,
    sample_leaf_loads,
    uniform_node_loads,
    with_sampled_leaf_loads,
)
from repro.workload.rates import (
    RATE_SCHEMES,
    apply_rate_scheme,
    constant_rate,
    exponential_rate,
    linear_rate,
)


class TestUniformDistribution:
    def test_default_matches_paper(self):
        distribution = UniformLoadDistribution()
        assert distribution.low == 4
        assert distribution.high == 6
        assert distribution.mean == pytest.approx(5.0)
        # Discrete uniform on {4, 5, 6}: variance (3^2 - 1) / 12 = 2/3.
        assert distribution.variance == pytest.approx(2.0 / 3.0)

    def test_samples_within_range(self, rng):
        samples = UniformLoadDistribution().sample(10_000, rng=rng)
        assert samples.min() >= 4
        assert samples.max() <= 6
        assert samples.mean() == pytest.approx(5.0, abs=0.05)

    def test_validation(self):
        with pytest.raises(WorkloadError):
            UniformLoadDistribution(low=-1, high=3)
        with pytest.raises(WorkloadError):
            UniformLoadDistribution(low=5, high=2)


class TestPowerLawDistribution:
    def test_default_matches_paper_statistics(self):
        distribution = PowerLawLoadDistribution()
        assert distribution.minimum == 1
        assert distribution.maximum == 63
        # Paper: mean 5, variance 97.1, support (1, 63).
        assert distribution.mean == pytest.approx(5.0, abs=0.6)
        assert 60.0 <= distribution.variance <= 160.0

    def test_samples_within_support(self, rng):
        distribution = PowerLawLoadDistribution()
        samples = distribution.sample(20_000, rng=rng)
        assert samples.min() >= 1
        assert samples.max() <= 63
        assert samples.mean() == pytest.approx(distribution.mean, rel=0.15)

    def test_skewness(self, rng):
        # A power law should produce many small values and a heavy tail.
        samples = PowerLawLoadDistribution().sample(20_000, rng=rng)
        assert np.median(samples) < samples.mean()
        assert (samples == 1).mean() > 0.3

    def test_validation(self):
        with pytest.raises(WorkloadError):
            PowerLawLoadDistribution(minimum=0)
        with pytest.raises(WorkloadError):
            PowerLawLoadDistribution(minimum=10, maximum=5)
        with pytest.raises(WorkloadError):
            PowerLawLoadDistribution(alpha=0)


class TestDistributionHelpers:
    def test_registry(self):
        assert set(LOAD_DISTRIBUTIONS) == {"uniform", "power-law"}
        assert isinstance(make_distribution("uniform"), UniformLoadDistribution)
        assert isinstance(make_distribution("power-law"), PowerLawLoadDistribution)
        with pytest.raises(WorkloadError):
            make_distribution("gaussian")

    def test_sample_leaf_loads_only_touches_leaves(self, rng):
        tree = bt_network(32)
        loads = sample_leaf_loads(tree, UniformLoadDistribution(), rng=rng)
        assert set(loads) == set(tree.leaves())
        assert all(4 <= value <= 6 for value in loads.values())

    def test_with_sampled_leaf_loads(self, rng):
        tree = with_sampled_leaf_loads(bt_network(32), UniformLoadDistribution(), rng=rng)
        assert tree.total_load >= 4 * 16
        assert all(tree.load(s) == 0 for s in tree.switches if not tree.is_leaf(s))

    def test_sampling_deterministic_for_same_seed(self):
        tree = bt_network(32)
        first = sample_leaf_loads(tree, PowerLawLoadDistribution(), rng=123)
        second = sample_leaf_loads(tree, PowerLawLoadDistribution(), rng=123)
        assert first == second

    def test_uniform_node_loads(self):
        tree = bt_network(16)
        loads = uniform_node_loads(tree, load=2)
        assert set(loads) == set(tree.switches)
        assert all(value == 2 for value in loads.values())
        with pytest.raises(WorkloadError):
            uniform_node_loads(tree, load=-1)


class TestRateSchemes:
    def test_constant(self):
        tree = complete_binary_tree(4)
        assert all(constant_rate(tree, s) == 1.0 for s in tree.switches)

    def test_linear_rates_grow_towards_root(self):
        tree = complete_binary_tree(8)  # leaves at depth 4
        assert linear_rate(tree, "s3_0") == 1.0
        assert linear_rate(tree, "s2_0") == 2.0
        assert linear_rate(tree, "s1_0") == 3.0
        assert linear_rate(tree, "s0_0") == 4.0

    def test_exponential_rates_double_per_level(self):
        tree = complete_binary_tree(8)
        assert exponential_rate(tree, "s3_0") == 1.0
        assert exponential_rate(tree, "s2_0") == 2.0
        assert exponential_rate(tree, "s1_0") == 4.0
        assert exponential_rate(tree, "s0_0") == 8.0

    def test_apply_rate_scheme_by_name(self):
        tree = apply_rate_scheme(complete_binary_tree(8), "exponential")
        assert tree.rate("s0_0") == 8.0
        assert tree.rho("s0_0") == pytest.approx(1.0 / 8.0)

    def test_apply_rate_scheme_by_callable(self):
        tree = apply_rate_scheme(complete_binary_tree(4), lambda t, s: 5.0)
        assert all(tree.rate(s) == 5.0 for s in tree.switches)

    def test_unknown_scheme(self):
        with pytest.raises(KeyError):
            apply_rate_scheme(complete_binary_tree(4), "quadratic")

    def test_registry_names(self):
        assert set(RATE_SCHEMES) == {"constant", "linear", "exponential"}

    def test_rate_scheme_reduces_core_cost(self):
        """Faster core links shrink the relative cost of the upper tree."""
        from repro.core.cost import all_red_cost

        flat = complete_binary_tree(8, leaf_loads=[2] * 8)
        fast_core = apply_rate_scheme(flat, "exponential")
        assert all_red_cost(fast_core) < all_red_cost(flat)

"""Tests for the contending placement strategies (Top, Max, Level, ...)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.strategies import (
    ALL_STRATEGIES,
    PAPER_STRATEGIES,
    all_blue,
    all_red,
    bottom_strategy,
    get_strategy,
    level_strategy,
    max_degree_strategy,
    max_load_strategy,
    random_strategy,
    soar_strategy,
    top_strategy,
)
from repro.core.cost import utilization_cost
from repro.exceptions import InvalidBudgetError
from repro.topology.binary_tree import complete_binary_tree
from repro.topology.scale_free import scale_free_tree


class TestFigure2GoldenValues:
    """The motivating example: each strategy's cost as reported by the paper."""

    @pytest.mark.parametrize(
        "strategy,expected",
        [(top_strategy, 27.0), (max_load_strategy, 24.0), (level_strategy, 21.0), (soar_strategy, 20.0)],
        ids=["Top", "Max", "Level", "SOAR"],
    )
    def test_cost(self, paper_tree, strategy, expected):
        blue = strategy(paper_tree, 2)
        assert utilization_cost(paper_tree, blue) == pytest.approx(expected)

    def test_top_picks_root_first(self, paper_tree):
        assert paper_tree.root in top_strategy(paper_tree, 1)

    def test_max_picks_heaviest_leaves(self, paper_tree):
        assert max_load_strategy(paper_tree, 2) == frozenset({"s2_1", "s2_2"})

    def test_level_picks_middle_level(self, paper_tree):
        assert level_strategy(paper_tree, 2) == frozenset({"s1_0", "s1_1"})

    def test_level_picks_leaf_level_with_larger_budget(self, paper_tree):
        assert level_strategy(paper_tree, 4) == frozenset({"s2_0", "s2_1", "s2_2", "s2_3"})


class TestStrategyContracts:
    """Generic invariants every bounded strategy must satisfy."""

    @pytest.mark.parametrize("name", [n for n in ALL_STRATEGIES if n != "AllBlue"])
    @pytest.mark.parametrize("budget", [0, 1, 3, 7])
    def test_budget_respected(self, loaded_bt16, name, budget):
        strategy = ALL_STRATEGIES[name]
        blue = strategy(loaded_bt16, budget)
        assert len(blue) <= max(budget, 0)

    @pytest.mark.parametrize("name", [n for n in ALL_STRATEGIES if n not in ("AllBlue",)])
    def test_availability_respected(self, loaded_bt16, name):
        restricted = loaded_bt16.with_available({"s1_0", "s3_2", "s3_7"})
        strategy = ALL_STRATEGIES[name]
        blue = strategy(restricted, 2)
        assert frozenset(blue) <= restricted.available

    @pytest.mark.parametrize(
        "strategy",
        [top_strategy, max_load_strategy, max_degree_strategy, level_strategy, bottom_strategy],
    )
    def test_negative_budget_rejected(self, paper_tree, strategy):
        with pytest.raises(InvalidBudgetError):
            strategy(paper_tree, -1)

    def test_all_red_and_all_blue(self, paper_tree):
        assert all_red(paper_tree) == frozenset()
        assert all_blue(paper_tree) == frozenset(paper_tree.switches)

    def test_zero_budget_returns_empty(self, paper_tree):
        for name, strategy in PAPER_STRATEGIES.items():
            assert strategy(paper_tree, 0) == frozenset(), name

    def test_strategies_deterministic(self, loaded_bt16):
        for name in ("Top", "Max", "Level", "MaxDegree", "Bottom"):
            strategy = ALL_STRATEGIES[name]
            assert strategy(loaded_bt16, 3) == strategy(loaded_bt16, 3)


class TestIndividualStrategies:
    def test_top_prefers_shallow_then_heavy(self, paper_tree):
        # Depth first; within the same depth the heavier subtree wins.
        assert top_strategy(paper_tree, 2) == frozenset({"s0_0", "s1_1"})

    def test_bottom_prefers_deepest(self, paper_tree):
        blue = bottom_strategy(paper_tree, 4)
        assert blue == frozenset({"s2_0", "s2_1", "s2_2", "s2_3"})

    def test_max_degree_on_scale_free(self):
        tree = scale_free_tree(60, rng=3, node_load=1)
        blue = max_degree_strategy(tree, 3)
        degrees = {s: tree.num_children(s) + 1 for s in tree.switches}
        threshold = sorted(degrees.values(), reverse=True)[2]
        assert all(degrees[s] >= threshold for s in blue)

    def test_level_on_incomplete_budget(self, loaded_bt16):
        # Budget of one can only afford the root level.
        assert level_strategy(loaded_bt16, 1) == frozenset({loaded_bt16.root})

    def test_level_skips_unavailable_levels(self, paper_tree):
        restricted = paper_tree.with_available({"s2_0", "s2_1", "s2_2", "s2_3"})
        assert level_strategy(restricted, 2) == frozenset()
        assert level_strategy(restricted, 4) == frozenset({"s2_0", "s2_1", "s2_2", "s2_3"})

    def test_random_strategy_reproducible_with_seed(self, loaded_bt16):
        first = random_strategy(loaded_bt16, 4, rng=9)
        second = random_strategy(loaded_bt16, 4, rng=9)
        assert first == second
        assert len(first) == 4

    def test_random_strategy_with_generator(self, loaded_bt16, rng):
        blue = random_strategy(loaded_bt16, 3, rng=rng)
        assert len(blue) == 3

    def test_soar_strategy_is_optimal(self, paper_tree):
        blue = soar_strategy(paper_tree, 2)
        assert utilization_cost(paper_tree, blue) == pytest.approx(20.0)


class TestRegistry:
    def test_get_strategy_case_insensitive(self):
        assert get_strategy("soar") is soar_strategy
        assert get_strategy("TOP") is top_strategy

    def test_get_strategy_unknown(self):
        with pytest.raises(KeyError):
            get_strategy("does-not-exist")

    def test_paper_strategies_subset_of_all(self):
        assert set(PAPER_STRATEGIES) <= set(ALL_STRATEGIES)
        assert set(PAPER_STRATEGIES) == {"Top", "Max", "Level", "SOAR"}


class TestStrategiesOnLargerTree:
    def test_relative_order_on_powerlaw_load(self):
        # A strongly skewed load should favour Max over Top (as in Fig. 6,
        # power-law row), and SOAR must beat both.
        rng = np.random.default_rng(5)
        loads = [int(v) for v in rng.pareto(1.2, size=32) * 3 + 1]
        tree = complete_binary_tree(32, leaf_loads=loads)
        budget = 8
        costs = {
            name: utilization_cost(tree, strategy(tree, budget))
            for name, strategy in PAPER_STRATEGIES.items()
        }
        assert costs["SOAR"] <= min(costs.values()) + 1e-9
        assert costs["Max"] <= costs["Top"]

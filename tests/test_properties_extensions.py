"""Property-based tests for the online extension and the byte model."""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.apps.bytes_model import analytic_link_bytes, message_group_sizes
from repro.core.reduce_op import link_message_counts
from repro.core.solver import Solver
from repro.online.budget_allocation import allocate_budgets
from repro.online.capacity import CapacityTracker
from repro.topology.binary_tree import complete_binary_tree

common_settings = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def loaded_binary_trees(draw):
    """A small complete binary tree with random leaf loads."""
    num_leaves = draw(st.sampled_from([2, 4, 8]))
    loads = draw(
        st.lists(
            st.integers(min_value=0, max_value=9),
            min_size=num_leaves,
            max_size=num_leaves,
        )
    )
    return complete_binary_tree(num_leaves, leaf_loads=loads)


@common_settings
@given(loaded_binary_trees(), st.integers(min_value=0, max_value=10))
def test_group_sizes_conserve_servers(tree, budget):
    blue = Solver().solve(tree, budget).blue_nodes
    groups = message_group_sizes(tree, blue)
    counts = link_message_counts(tree, blue)
    for switch, counter in groups.items():
        servers = sum(size * count for size, count in counter.items())
        # Every server below a link is represented exactly once in the
        # messages crossing that link.
        assert servers == tree.subtree_load(switch)
        # The content-carrying message count never exceeds the analytic one.
        assert sum(counter.values()) <= counts[switch]


@common_settings
@given(loaded_binary_trees(), st.integers(min_value=0, max_value=10))
def test_linear_size_model_bytes_proportional_to_messages(tree, budget):
    """With a constant per-message size the byte model reduces to message counts."""
    blue = Solver().solve(tree, budget).blue_nodes
    link_bytes = analytic_link_bytes(tree, blue, lambda servers: 100.0)
    groups = message_group_sizes(tree, blue)
    for switch, value in link_bytes.items():
        assert value == 100.0 * sum(groups[switch].values())


@common_settings
@given(
    loaded_binary_trees(),
    st.lists(st.sets(st.integers(min_value=0, max_value=6), max_size=4), min_size=1, max_size=5),
)
def test_capacity_tracker_never_overcommits(tree, index_sets):
    tracker = CapacityTracker(tree, 2)
    switches = list(tree.switches)
    for index_set in index_sets:
        requested = frozenset(switches[i % len(switches)] for i in index_set)
        allowed = requested & tracker.available()
        tracker.consume(allowed)
    for switch in switches:
        assert tracker.residual(switch) >= 0
    used = sum(2 - tracker.residual(s) for s in switches)
    assert used == sum(len(assignment) for assignment in tracker.assignments)


@common_settings
@given(
    st.lists(
        st.lists(st.integers(min_value=0, max_value=8), min_size=4, max_size=4),
        min_size=1,
        max_size=3,
    ),
    st.integers(min_value=0, max_value=6),
)
def test_budget_allocation_dominates_every_uniform_split(leaf_load_lists, total_budget):
    tree = complete_binary_tree(4)
    leaves = list(tree.leaves())
    workloads = [dict(zip(leaves, loads)) for loads in leaf_load_lists]
    allocation = allocate_budgets(tree, workloads, total_budget)
    assert sum(allocation.budgets) <= total_budget
    assert allocation.total_cost <= allocation.uniform_cost + 1e-9
    # The reported total cost matches re-solving each workload at its budget.
    recomputed = sum(
        Solver().solve(tree.with_loads(loads), budget).cost
        for loads, budget in zip(workloads, allocation.budgets)
    )
    assert abs(recomputed - allocation.total_cost) < 1e-9

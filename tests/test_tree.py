"""Unit tests for the tree network substrate (repro.core.tree)."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.core.tree import TreeNetwork
from repro.exceptions import (
    AvailabilityError,
    InvalidLoadError,
    InvalidRateError,
    TreeStructureError,
)


class TestConstruction:
    def test_minimal_single_switch(self):
        tree = TreeNetwork({"r": "d"})
        assert tree.root == "r"
        assert tree.destination == "d"
        assert tree.num_switches == 1
        assert tree.height == 1

    def test_switches_are_postorder(self, paper_tree):
        order = {switch: index for index, switch in enumerate(paper_tree.switches)}
        for switch in paper_tree.switches:
            parent = paper_tree.parent(switch)
            if parent != paper_tree.destination:
                assert order[switch] < order[parent]

    def test_root_is_last_in_postorder(self, paper_tree):
        assert paper_tree.switches[-1] == paper_tree.root

    def test_rejects_destination_with_parent(self):
        with pytest.raises(TreeStructureError):
            TreeNetwork({"d": "r", "r": "d"})

    def test_rejects_empty_tree(self):
        with pytest.raises(TreeStructureError):
            TreeNetwork({})

    def test_rejects_two_roots(self):
        with pytest.raises(TreeStructureError):
            TreeNetwork({"r1": "d", "r2": "d"})

    def test_rejects_unknown_parent(self):
        with pytest.raises(TreeStructureError):
            TreeNetwork({"r": "d", "a": "ghost"})

    def test_rejects_self_parent(self):
        with pytest.raises(TreeStructureError):
            TreeNetwork({"r": "d", "a": "a"})

    def test_rejects_cycle(self):
        with pytest.raises(TreeStructureError):
            TreeNetwork({"r": "d", "a": "b", "b": "a"})

    def test_rejects_non_positive_rate(self):
        with pytest.raises(InvalidRateError):
            TreeNetwork({"r": "d"}, rates={"r": 0.0})
        with pytest.raises(InvalidRateError):
            TreeNetwork({"r": "d"}, rates={"r": -1.0})

    def test_rejects_rate_for_unknown_switch(self):
        with pytest.raises(InvalidRateError):
            TreeNetwork({"r": "d"}, rates={"ghost": 1.0})

    def test_rejects_negative_load(self):
        with pytest.raises(InvalidLoadError):
            TreeNetwork({"r": "d"}, loads={"r": -1})

    def test_rejects_fractional_load(self):
        with pytest.raises(InvalidLoadError):
            TreeNetwork({"r": "d"}, loads={"r": 1.5})

    def test_rejects_load_for_unknown_switch(self):
        with pytest.raises(InvalidLoadError):
            TreeNetwork({"r": "d"}, loads={"ghost": 2})

    def test_rejects_unknown_available_switch(self):
        with pytest.raises(AvailabilityError):
            TreeNetwork({"r": "d"}, available={"ghost"})

    def test_default_availability_is_all_switches(self, paper_tree):
        assert paper_tree.available == frozenset(paper_tree.switches)

    def test_from_edges(self):
        tree = TreeNetwork.from_edges([("r", "d"), ("a", "r"), ("b", "r")], loads={"a": 2})
        assert tree.num_switches == 3
        assert tree.load("a") == 2

    def test_from_edges_rejects_duplicate_child(self):
        with pytest.raises(TreeStructureError):
            TreeNetwork.from_edges([("r", "d"), ("a", "r"), ("a", "r")])


class TestAccessors:
    def test_parent_children(self, small_tree):
        assert small_tree.parent("a") == "r"
        assert small_tree.parent("r") == "d"
        assert set(small_tree.children("r")) == {"a", "b"}
        assert small_tree.children("a") == ()
        assert small_tree.num_children("r") == 2

    def test_parent_of_unknown_raises(self, small_tree):
        with pytest.raises(TreeStructureError):
            small_tree.parent("ghost")

    def test_is_leaf_and_leaves(self, small_tree):
        assert small_tree.is_leaf("a")
        assert small_tree.is_leaf("b")
        assert not small_tree.is_leaf("r")
        assert set(small_tree.leaves()) == {"a", "b"}

    def test_loads_and_rates(self, small_tree):
        assert small_tree.load("a") == 3
        assert small_tree.load("r") == 0
        assert small_tree.rate("b") == 4.0
        assert small_tree.rho("b") == pytest.approx(0.25)
        assert small_tree.total_load == 4

    def test_depth(self, small_tree):
        assert small_tree.depth("d") == 0
        assert small_tree.depth("r") == 1
        assert small_tree.depth("a") == 2
        assert small_tree.height == 2

    def test_contains_and_len(self, small_tree):
        assert "a" in small_tree
        assert "d" in small_tree
        assert "ghost" not in small_tree
        assert len(small_tree) == 3

    def test_is_switch(self, small_tree):
        assert small_tree.is_switch("a")
        assert not small_tree.is_switch("d")
        assert not small_tree.is_switch("ghost")


class TestPathsAndSubtrees:
    def test_ancestor_at(self, small_tree):
        assert small_tree.ancestor_at("a", 0) == "a"
        assert small_tree.ancestor_at("a", 1) == "r"
        assert small_tree.ancestor_at("a", 2) == "d"

    def test_ancestor_at_out_of_range(self, small_tree):
        with pytest.raises(TreeStructureError):
            small_tree.ancestor_at("a", 3)
        with pytest.raises(TreeStructureError):
            small_tree.ancestor_at("a", -1)

    def test_ancestors(self, small_tree):
        assert small_tree.ancestors("a") == ("r", "d")
        assert small_tree.ancestors("r") == ("d",)

    def test_path_rho(self, small_tree):
        # rho(a) = 1, rho(r) = 0.5
        assert small_tree.path_rho("a", 0) == pytest.approx(0.0)
        assert small_tree.path_rho("a", 1) == pytest.approx(1.0)
        assert small_tree.path_rho("a", 2) == pytest.approx(1.5)

    def test_path_rho_prefix_matches_path_rho(self, paper_tree):
        for switch in paper_tree.switches:
            prefix = paper_tree.path_rho_prefix(switch)
            assert len(prefix) == paper_tree.depth(switch) + 1
            for distance, value in enumerate(prefix):
                assert value == pytest.approx(paper_tree.path_rho(switch, distance))

    def test_rho_to_destination(self, small_tree):
        assert small_tree.rho_to_destination("a") == pytest.approx(1.5)
        assert small_tree.rho_to_destination("d") == 0.0

    def test_subtree(self, paper_tree):
        subtree = paper_tree.subtree("s1_0")
        assert set(subtree) == {"s1_0", "s2_0", "s2_1"}
        assert set(paper_tree.subtree(paper_tree.root)) == set(paper_tree.switches)

    def test_subtree_load(self, paper_tree):
        assert paper_tree.subtree_load("s1_0") == 8
        assert paper_tree.subtree_load("s1_1") == 9
        assert paper_tree.subtree_load(paper_tree.root) == 17

    def test_levels(self, paper_tree):
        levels = paper_tree.levels()
        assert [len(level) for level in levels] == [1, 2, 4]
        assert levels[0] == [paper_tree.root]


class TestDerivedCopies:
    def test_with_loads_replaces(self, small_tree):
        updated = small_tree.with_loads({"b": 5})
        assert updated.load("b") == 5
        assert updated.load("a") == 0  # full replacement
        assert small_tree.load("a") == 3  # original untouched

    def test_with_available(self, small_tree):
        restricted = small_tree.with_available({"a"})
        assert restricted.available == frozenset({"a"})
        assert small_tree.available == frozenset({"r", "a", "b"})

    def test_with_rates_patches(self, small_tree):
        updated = small_tree.with_rates({"a": 10.0})
        assert updated.rate("a") == 10.0
        assert updated.rate("b") == 4.0  # untouched rates kept

    def test_copies_share_topology(self, small_tree):
        updated = small_tree.with_loads({"a": 1})
        assert updated.switches == small_tree.switches
        assert updated.parent("a") == "r"


class TestNetworkxInterop:
    def test_roundtrip(self, paper_tree):
        graph = paper_tree.to_networkx()
        assert graph.number_of_nodes() == paper_tree.num_switches + 1
        assert graph.number_of_edges() == paper_tree.num_switches
        assert graph.nodes["s2_1"]["load"] == 6

    def test_from_networkx(self):
        graph = nx.Graph()
        graph.add_edge("r", "a", rate=2.0)
        graph.add_edge("r", "b")
        graph.nodes["a"]["load"] = 3
        tree = TreeNetwork.from_networkx(graph, root="r")
        assert tree.root == "r"
        assert tree.load("a") == 3
        assert tree.rate("a") == 2.0
        assert tree.rate("b") == 1.0

    def test_from_networkx_rejects_non_tree(self):
        graph = nx.cycle_graph(4)
        with pytest.raises(TreeStructureError):
            TreeNetwork.from_networkx(graph, root=0)

    def test_from_networkx_rejects_unknown_root(self):
        graph = nx.path_graph(3)
        with pytest.raises(TreeStructureError):
            TreeNetwork.from_networkx(graph, root=99)

    def test_from_networkx_rejects_destination_collision(self):
        graph = nx.path_graph(3)
        with pytest.raises(TreeStructureError):
            TreeNetwork.from_networkx(graph, root=0, destination=2)

    def test_deep_tree_does_not_recurse(self):
        # A path of 5000 switches must not hit the recursion limit.
        parents = {0: "d"}
        for node in range(1, 5000):
            parents[node] = node - 1
        tree = TreeNetwork(parents)
        assert tree.height == 5000
        assert tree.depth(4999) == 5000

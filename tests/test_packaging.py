"""Tests for the public package surface: exports, versioning, docstrings."""

from __future__ import annotations

import importlib

import pytest

import repro


PUBLIC_MODULES = [
    "repro.core",
    "repro.core.tree",
    "repro.core.reduce_op",
    "repro.core.cost",
    "repro.core.gather",
    "repro.core.color",
    "repro.core.flat",
    "repro.core.bruteforce",
    "repro.baselines",
    "repro.baselines.strategies",
    "repro.topology",
    "repro.topology.binary_tree",
    "repro.topology.scale_free",
    "repro.topology.generic",
    "repro.workload",
    "repro.workload.distributions",
    "repro.workload.rates",
    "repro.online",
    "repro.online.capacity",
    "repro.online.scheduler",
    "repro.apps",
    "repro.apps.wordcount",
    "repro.apps.paramserver",
    "repro.apps.bytes_model",
    "repro.simulation",
    "repro.simulation.dataplane",
    "repro.simulation.events",
    "repro.experiments",
    "repro.utils",
    "repro.cli",
    "repro.exceptions",
    "repro.analysis",
    "repro.analysis.core",
    "repro.analysis.baseline",
    "repro.analysis.runner",
    "repro.analysis.rules_locks",
    "repro.analysis.rules_determinism",
    "repro.analysis.rules_layering",
    "repro.analysis.rules_registry",
    "repro.analysis.rules_ffi",
    "repro.analysis.rules_excepts",
    "repro.analysis.callgraph",
    "repro.analysis.summaries",
    "repro.analysis.formats",
    "repro.analysis.rules_lockorder",
    "repro.analysis.rules_blocking",
    "repro.analysis.rules_atomicity",
]


def test_version_is_semver():
    assert isinstance(repro.__version__, str)
    major, minor, patch = repro.__version__.split(".")
    assert major.isdigit() and minor.isdigit() and patch.isdigit()


@pytest.mark.parametrize("module_name", PUBLIC_MODULES)
def test_module_imports_and_has_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__, f"{module_name} is missing a module docstring"


def test_top_level_exports_resolve():
    for name in repro.__all__:
        assert hasattr(repro, name), name


@pytest.mark.parametrize(
    "package_name",
    ["repro.core", "repro.baselines", "repro.topology", "repro.workload", "repro.online",
     "repro.apps", "repro.simulation", "repro.experiments", "repro.utils",
     "repro.analysis"],
)
def test_package_all_exports_resolve(package_name):
    package = importlib.import_module(package_name)
    assert hasattr(package, "__all__") and package.__all__
    for name in package.__all__:
        assert hasattr(package, name), f"{package_name}.{name}"


def test_public_callables_have_docstrings():
    from repro.core import cost, solver, tree

    for obj in (
        solver.Solver.solve,
        solver.GatherTable.place,
        cost.evaluate_cost,
        cost.utilization_cost_flat,
        tree.TreeNetwork,
        tree.TreeNetwork.with_loads,
    ):
        assert obj.__doc__


def test_exceptions_hierarchy():
    from repro import exceptions

    subclasses = [
        exceptions.TreeStructureError,
        exceptions.InvalidRateError,
        exceptions.InvalidLoadError,
        exceptions.InvalidBudgetError,
        exceptions.AvailabilityError,
        exceptions.PlacementError,
        exceptions.CapacityError,
        exceptions.WorkloadError,
        exceptions.SimulationError,
        exceptions.ExperimentError,
    ]
    for subclass in subclasses:
        assert issubclass(subclass, exceptions.ReproError)
        assert subclass.__doc__

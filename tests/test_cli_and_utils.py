"""Tests for the command-line interface and the shared utilities."""

from __future__ import annotations

import csv

import pytest

from repro.cli import build_parser, main
from repro.utils.stats import mean_and_stderr, summarize
from repro.utils.tables import format_value, render_table, rows_to_csv, write_csv


class TestTables:
    ROWS = [
        {"name": "SOAR", "k": 2, "cost": 20.0},
        {"name": "Top", "k": 2, "cost": 27.123456},
    ]

    def test_render_table_alignment(self):
        text = render_table(self.ROWS, title="demo")
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "SOAR" in text
        assert "27.1235" in text  # default 4-digit precision

    def test_render_table_subset_of_columns(self):
        text = render_table(self.ROWS, columns=["name"])
        assert "cost" not in text

    def test_render_empty(self):
        assert "(no data)" in render_table([], title="empty")
        assert render_table([]) == "(no data)"

    def test_format_value(self):
        assert format_value(1.23456, precision=2) == "1.23"
        assert format_value(True) == "True"
        assert format_value("x") == "x"

    def test_rows_to_csv(self):
        text = rows_to_csv(self.ROWS)
        parsed = list(csv.DictReader(text.splitlines()))
        assert parsed[0]["name"] == "SOAR"
        assert parsed[1]["cost"].startswith("27.12")
        assert rows_to_csv([]) == ""

    def test_write_csv(self, tmp_path):
        path = write_csv(self.ROWS, tmp_path / "sub" / "out.csv")
        assert path.exists()
        assert "SOAR" in path.read_text()


class TestStats:
    def test_mean_and_stderr(self):
        mean, stderr = mean_and_stderr([2.0, 4.0, 6.0])
        assert mean == pytest.approx(4.0)
        assert stderr == pytest.approx((4.0 / 3) ** 0.5, rel=1e-6)

    def test_single_sample_has_zero_stderr(self):
        assert mean_and_stderr([5.0]) == (5.0, 0.0)

    def test_empty_sample(self):
        assert mean_and_stderr([]) == (0.0, 0.0)

    def test_summarize(self):
        summary = summarize([1.0, 3.0])
        assert summary["mean"] == 2.0
        assert summary["min"] == 1.0
        assert summary["max"] == 3.0
        assert summary["count"] == 2.0


class TestCli:
    def test_parser_lists_all_figures(self):
        parser = build_parser()
        for command in ("fig2", "fig3", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "all"):
            args = parser.parse_args([command, "--quick"])
            assert args.command == command
            assert args.quick

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_fig2_output(self, capsys):
        assert main(["fig2"]) == 0
        output = capsys.readouterr().out
        assert "SOAR" in output
        assert "20.0000" in output

    def test_fig3_output(self, capsys):
        assert main(["fig3"]) == 0
        output = capsys.readouterr().out
        assert "35.0000" in output and "11.0000" in output

    def test_fig6_quick_with_csv(self, tmp_path, capsys):
        csv_path = tmp_path / "fig6.csv"
        code = main(
            [
                "fig6",
                "--quick",
                "--network-size",
                "16",
                "--repetitions",
                "1",
                "--csv",
                str(csv_path),
            ]
        )
        assert code == 0
        assert csv_path.exists()
        output = capsys.readouterr().out
        assert "normalized_utilization" in output

    def test_fig9_quick(self, capsys):
        assert main(["fig9", "--quick", "--repetitions", "1"]) == 0
        assert "gather_seconds" in capsys.readouterr().out

    def test_fig11_quick(self, capsys):
        assert (
            main(["fig11", "--quick", "--network-size", "32", "--repetitions", "1"]) == 0
        )
        assert "Max(degree)" in capsys.readouterr().out

"""Tests for crash safety and concurrency (:mod:`repro.service.persistence`).

Three layers:

* **unit** — journal append/read mechanics, snapshot (de)serialization of
  the capacity tracker and fleet state, and the typed refusals
  (:class:`~repro.exceptions.PersistenceError`) for foreign networks,
  unknown versions, tampered digests, and mismatched journals;
* **differential** — the headline guarantee: killing a journaled service
  mid-trace and restoring it (snapshot + journal tail) yields responses
  payload-identical to the uninterrupted run, across seeded churn traces
  (and via journal-only recovery with no snapshot at all);
* **concurrency** — a 4-worker replay of a seeded trace (both the thread
  pool and the Λ-epoch process pool of ``mode="process"``) is
  payload-identical to the serial replay, and hammering ``submit`` from
  many threads against a churning fleet never corrupts the registry.
"""

from __future__ import annotations

import threading

import pytest

from repro.exceptions import PersistenceError
from repro.online.capacity import CapacityTracker
from repro.service import (
    AdmitRequest,
    DrainRequest,
    Journal,
    PlacementService,
    ReleaseRequest,
    SolveRequest,
    StatsRequest,
    TraceEvent,
    event_to_request,
    generate_churn_trace,
    node_index,
    read_snapshot,
    replay_trace,
    request_to_event,
    response_payload,
    write_snapshot,
)
from repro.service.persistence import SNAPSHOT_VERSION
from repro.topology.binary_tree import complete_binary_tree
from repro.workload.distributions import PowerLawLoadDistribution, sample_leaf_loads


def leaf_loads(tree, seed: int = 0) -> dict:
    return sample_leaf_loads(tree, PowerLawLoadDistribution(), rng=seed)


def churn_requests(tree, count: int, seed: int, budget: int = 4, pool: int = 4):
    index = node_index(tree)
    trace = generate_churn_trace(tree, count, seed=seed, budget=budget, workload_pool=pool)
    return trace, [event_to_request(tree, event, index) for event in trace]


# --------------------------------------------------------------------------- #
# journal mechanics
# --------------------------------------------------------------------------- #


class TestJournal:
    def test_append_and_read_roundtrip(self, tmp_path):
        tree = complete_binary_tree(4)
        journal = Journal(tmp_path / "j.jsonl", tree=tree)
        events = [
            TraceEvent(kind="admit", tenant="a", budget=2, loads=(("s2_0", 3),)),
            TraceEvent(kind="release", tenant="a"),
            TraceEvent(kind="drain", switch="s2_0"),
        ]
        for event in events:
            journal.append(event)
        assert journal.event_count == 3
        assert journal.events() == events
        journal.close()
        # Reopening continues the count and the structure identity.
        reopened = Journal(tmp_path / "j.jsonl", tree=tree)
        assert reopened.event_count == 3
        assert reopened.structure == tree.structure_fingerprint()

    def test_rejects_non_mutating_events(self, tmp_path):
        journal = Journal(tmp_path / "j.jsonl")
        with pytest.raises(PersistenceError, match="only mutating"):
            journal.append(TraceEvent(kind="solve", budget=2))

    def test_rejects_foreign_network(self, tmp_path):
        small = complete_binary_tree(4)
        Journal(tmp_path / "j.jsonl", tree=small).close()
        with pytest.raises(PersistenceError, match="different network"):
            Journal(tmp_path / "j.jsonl", tree=complete_binary_tree(8))

    def test_rejects_full_trace_as_journal(self, tmp_path):
        from repro.service import write_trace

        tree = complete_binary_tree(4)
        trace = [TraceEvent(kind="solve", budget=2, loads=(("s2_0", 3),))]
        path = write_trace(trace, tmp_path / "trace.jsonl", tree=tree)
        with pytest.raises(PersistenceError, match="non-mutating"):
            Journal(path, tree=tree)

    def test_fresh_service_rejects_used_journal(self, tmp_path):
        tree = complete_binary_tree(4)
        journal = Journal(tmp_path / "j.jsonl", tree=tree)
        journal.append(TraceEvent(kind="release", tenant="ghost"))
        with pytest.raises(PersistenceError, match="describe exactly"):
            PlacementService(tree, capacity=2, journal=journal)

    def test_append_failure_detaches_journal_and_raises_typed(self, tmp_path):
        # If the journal write fails *after* the mutation applied, the
        # journal has a hole: the service must detach it (so the hole
        # cannot grow) and surface a PersistenceError instead of serving
        # on with a silently divergent journal.
        tree = complete_binary_tree(4)
        journal = Journal(tmp_path / "j.jsonl", tree=tree)
        service = PlacementService(tree, capacity=2, journal=journal)
        loads = leaf_loads(tree)
        service.submit(AdmitRequest(tenant_id="a", loads=loads, budget=2))

        def broken_append(event):
            raise OSError("disk full")

        journal.append = broken_append
        with pytest.raises(PersistenceError, match="journal append failed"):
            service.submit(AdmitRequest(tenant_id="b", loads=loads, budget=2))
        # The mutation itself was applied; journaling is now off.
        assert "b" in service.state.tenants()
        assert service.journal is None
        assert service.mutation_seq == 2
        # Subsequent mutations serve normally, un-journaled.
        service.submit(ReleaseRequest(tenant_id="b"))
        assert service.mutation_seq == 3

    def test_failed_requests_are_not_journaled(self, tmp_path):
        from repro.exceptions import WorkloadError

        tree = complete_binary_tree(4)
        journal = Journal(tmp_path / "j.jsonl", tree=tree)
        service = PlacementService(tree, capacity=2, journal=journal)
        with pytest.raises(WorkloadError):
            service.submit(ReleaseRequest(tenant_id="ghost"))
        assert journal.event_count == 0 and service.mutation_seq == 0
        service.submit(
            AdmitRequest(tenant_id="t", loads=leaf_loads(tree), budget=2)
        )
        assert journal.event_count == 1 and service.mutation_seq == 1


# --------------------------------------------------------------------------- #
# snapshot (de)serialization
# --------------------------------------------------------------------------- #


class TestSnapshotState:
    def test_tracker_state_roundtrip_preserves_digest(self, small_tree):
        tracker = CapacityTracker(small_tree, 2)
        tracker.consume({"a", "r"})
        tracker.drain("b")
        tracker.release({"a"})
        clone = CapacityTracker(small_tree, 2)
        clone.load_state(tracker.state_dict(), node_index(small_tree))
        assert clone.available() == tracker.available()
        assert clone.availability_fingerprint() == tracker.availability_fingerprint()
        assert clone.residual_capacities() == tracker.residual_capacities()
        assert clone.drained == tracker.drained
        assert clone.assignments == tracker.assignments

    def test_snapshot_roundtrip_through_disk(self, tmp_path):
        tree = complete_binary_tree(8)
        service = PlacementService(tree, capacity=3)
        loads = leaf_loads(tree)
        service.submit(AdmitRequest(tenant_id="a", loads=loads, budget=3))
        service.submit(SolveRequest(loads=loads, budget=3))
        service.submit(DrainRequest(switch="s3_7"))
        path = write_snapshot(service.snapshot(), tmp_path / "snap.json")
        restored = PlacementService.restore(tree, read_snapshot(path))
        assert restored.mutation_seq == service.mutation_seq == 2
        assert restored.state.tenants().keys() == service.state.tenants().keys()
        record, expected = restored.state.tenant("a"), service.state.tenant("a")
        assert record == expected  # loads, blue set, costs, digest — all of it
        assert (
            restored.state.availability_fingerprint()
            == service.state.availability_fingerprint()
        )
        assert restored.state.tracker.drained == service.state.tracker.drained
        assert restored.state.admitted_total == service.state.admitted_total

    def test_prewarm_restores_cache_hits(self, tmp_path):
        tree = complete_binary_tree(8)
        service = PlacementService(tree, capacity=3)
        loads = leaf_loads(tree)
        service.submit(SolveRequest(loads=loads, budget=3))
        snapshot = service.snapshot()
        assert snapshot["hot_workloads"]
        warmed = PlacementService.restore(tree, snapshot)
        assert len(warmed.cache) == 1
        assert warmed.submit(SolveRequest(loads=loads, budget=3)).cache_hit
        cold = PlacementService.restore(tree, snapshot, prewarm=False)
        assert len(cold.cache) == 0
        assert not cold.submit(SolveRequest(loads=loads, budget=3)).cache_hit

    def test_unknown_version_rejected(self):
        tree = complete_binary_tree(4)
        snapshot = PlacementService(tree, capacity=2).snapshot()
        snapshot["version"] = SNAPSHOT_VERSION + 1
        with pytest.raises(PersistenceError, match="version"):
            PlacementService.restore(tree, snapshot)

    def test_foreign_network_rejected(self):
        snapshot = PlacementService(complete_binary_tree(4), capacity=2).snapshot()
        with pytest.raises(PersistenceError, match="different network"):
            PlacementService.restore(complete_binary_tree(8), snapshot)

    def test_tampered_fleet_state_rejected(self):
        tree = complete_binary_tree(4)
        service = PlacementService(tree, capacity=2)
        service.submit(AdmitRequest(tenant_id="a", loads=leaf_loads(tree), budget=2))
        snapshot = service.snapshot()
        # Hand-edit a residual: the restored Λ digest no longer matches.
        victim = next(iter(snapshot["fleet"]["capacity"]["residual"]))
        snapshot["fleet"]["capacity"]["residual"][victim] = 0
        with pytest.raises(PersistenceError, match="digest"):
            PlacementService.restore(tree, snapshot)

    def test_journal_shorter_than_snapshot_rejected(self, tmp_path):
        tree = complete_binary_tree(4)
        journal = Journal(tmp_path / "j.jsonl", tree=tree)
        service = PlacementService(tree, capacity=2, journal=journal)
        service.submit(AdmitRequest(tenant_id="a", loads=leaf_loads(tree), budget=2))
        snapshot = service.snapshot()
        with pytest.raises(PersistenceError, match="does not cover"):
            PlacementService.restore(tree, snapshot, journal=[])

    def test_failed_write_never_clobbers_previous_snapshot(self, tmp_path, monkeypatch):
        # Regression: write_snapshot used to open the target directly, so a
        # crash mid-write left a truncated, unparseable file — destroying
        # the one good snapshot it was meant to refresh.  The write must be
        # atomic: stage to a temp file, fsync, then rename over the target.
        tree = complete_binary_tree(8)
        service = PlacementService(tree, capacity=3)
        path = tmp_path / "snap.json"
        write_snapshot(service.snapshot(), path)
        before = path.read_text()

        service.submit(AdmitRequest(tenant_id="a", loads=leaf_loads(tree), budget=3))
        def explode(*args, **kwargs):
            raise OSError("simulated crash mid-write")

        monkeypatch.setattr("repro.service.persistence.json.dump", explode)
        with pytest.raises(OSError, match="mid-write"):
            write_snapshot(service.snapshot(), path)
        monkeypatch.undo()

        # The previous snapshot is byte-identical, still restorable, and no
        # staging debris is left behind.
        assert path.read_text() == before
        assert [entry.name for entry in tmp_path.iterdir()] == ["snap.json"]
        assert PlacementService.restore(tree, read_snapshot(path)).mutation_seq == 0

        # A successful write still replaces the content (and only then).
        write_snapshot(service.snapshot(), path)
        assert path.read_text() != before
        assert PlacementService.restore(tree, read_snapshot(path)).mutation_seq == 1

    def test_request_event_roundtrip(self):
        tree = complete_binary_tree(4)
        index = node_index(tree)
        loads = leaf_loads(tree)
        for request in (
            SolveRequest(loads=loads, budget=2),
            AdmitRequest(tenant_id="t", loads=loads, budget=3, exact_k=True),
            ReleaseRequest(tenant_id="t"),
            DrainRequest(switch="s2_0"),
            StatsRequest(),
        ):
            event = request_to_event(request)
            assert event_to_request(tree, event, index) == request


# --------------------------------------------------------------------------- #
# kill/restore differential
# --------------------------------------------------------------------------- #


class TestKillRestoreDifferential:
    """Snapshot + journal tail == never went down, bit for bit."""

    @pytest.mark.parametrize("seed", [0, 1, 7])
    def test_mid_trace_restore_is_payload_identical(self, tmp_path, seed):
        tree = complete_binary_tree(16)
        trace, requests = churn_requests(tree, 90, seed=seed)
        uninterrupted = PlacementService(tree, capacity=3)
        expected = [response_payload(uninterrupted.submit(req)) for req in requests]

        snap_at, kill_at = len(requests) // 3, 2 * len(requests) // 3
        journal = Journal(tmp_path / "fleet.jsonl", tree=tree)
        doomed = PlacementService(tree, capacity=3, journal=journal)
        for request in requests[:snap_at]:
            doomed.submit(request)
        snapshot = doomed.snapshot()
        for request in requests[snap_at:kill_at]:
            doomed.submit(request)
        journal.close()  # the crash

        restored = PlacementService.restore(
            tree, snapshot, journal=Journal(tmp_path / "fleet.jsonl", tree=tree)
        )
        assert restored.mutation_seq == doomed.mutation_seq
        got = [response_payload(restored.submit(req)) for req in requests[kill_at:]]
        assert got == expected[kill_at:]
        # The restored service kept journaling: a second crash-and-restore
        # (journal-only this time, from the very beginning) still agrees.
        assert restored.journal is not None
        assert restored.journal.event_count == restored.mutation_seq

    def test_restored_service_serves_fresh_generated_traffic(self, tmp_path):
        # The operational resume flow behind `serve-replay --restore`: a
        # restored fleet must accept a freshly *generated* trace — the
        # tenant numbering is offset past the restored registry, so the
        # new admits cannot collide with tenants the fleet still holds.
        from repro.experiments.harness import ExperimentConfig
        from repro.experiments.service_replay import run_service_replay

        config = ExperimentConfig(network_size=16, repetitions=1, seed=3)
        _, _ = run_service_replay(
            num_requests=30,
            budget=3,
            capacity=3,
            config=config,
            journal_path=tmp_path / "fleet.jsonl",
            snapshot_path=tmp_path / "fleet.json",
        )
        report, rows = run_service_replay(
            num_requests=30,
            budget=3,
            capacity=3,
            config=config,
            journal_path=tmp_path / "fleet.jsonl",
            restore_path=tmp_path / "fleet.json",
            workers=4,
        )
        assert report.num_requests == 30
        assert rows[0]["workers"] == 4

    def test_journal_only_recovery(self, tmp_path):
        tree = complete_binary_tree(16)
        _, requests = churn_requests(tree, 60, seed=3)
        journal = Journal(tmp_path / "fleet.jsonl", tree=tree)
        original = PlacementService(tree, capacity=3, journal=journal)
        for request in requests:
            original.submit(request)
        journal.close()

        recovered = PlacementService.restore(
            tree, None, tmp_path / "fleet.jsonl", capacity=3
        )
        assert recovered.mutation_seq == original.mutation_seq
        assert recovered.state.tenants() == original.state.tenants()
        assert (
            recovered.state.availability_fingerprint()
            == original.state.availability_fingerprint()
        )
        assert recovered.state.admitted_total == original.state.admitted_total
        assert recovered.state.released_total == original.state.released_total

    def test_journal_only_recovery_requires_capacity(self, tmp_path):
        tree = complete_binary_tree(4)
        Journal(tmp_path / "j.jsonl", tree=tree).close()
        with pytest.raises(PersistenceError, match="capacity"):
            PlacementService.restore(tree, None, tmp_path / "j.jsonl")

    def test_restore_replays_drain_failures_identically(self, tmp_path):
        # A journaled drain whose re-placements failed must fail the same
        # way on replay (the failure path is part of the deterministic
        # history, not an anomaly the journal papers over).
        tree = complete_binary_tree(4)
        switches = sorted(tree.switches, key=repr)
        root = tree.root
        journal = Journal(tmp_path / "j.jsonl", tree=tree)
        service = PlacementService(tree, capacity=1, journal=journal)
        service.submit(AdmitRequest(tenant_id="t", loads={root: 3}, budget=1))
        for switch in switches:
            if switch != root:
                service.submit(DrainRequest(switch=switch))
        response = service.submit(DrainRequest(switch=root))
        assert [failure.tenant_id for failure in response.failed] == ["t"]
        journal.close()
        recovered = PlacementService.restore(
            tree, None, tmp_path / "j.jsonl", capacity=1
        )
        state = recovered.state
        assert state.num_tenants == 0
        assert state.admitted_total == 1 and state.released_total == 1
        assert (
            state.availability_fingerprint()
            == service.state.availability_fingerprint()
        )


# --------------------------------------------------------------------------- #
# concurrency
# --------------------------------------------------------------------------- #


class TestConcurrentReplay:
    @pytest.mark.parametrize("seed", [4, 11])
    def test_four_workers_match_serial_payloads(self, seed):
        tree = complete_binary_tree(16)
        trace = generate_churn_trace(tree, 80, seed=seed, budget=4, workload_pool=3)
        serial = replay_trace(tree, trace, capacity=3)
        concurrent = replay_trace(tree, trace, capacity=3, workers=4)
        assert concurrent.workers == 4
        assert [response_payload(r.response) for r in serial.records] == [
            response_payload(r.response) for r in concurrent.records
        ]

    def test_concurrent_replay_verifies_against_cold_solves(self):
        tree = complete_binary_tree(16)
        trace = generate_churn_trace(tree, 60, seed=5, budget=4, workload_pool=3)
        report = replay_trace(tree, trace, capacity=3, verify=True, workers=4)
        placements = sum(
            1 for event in trace if event.kind in ("solve", "sweep", "admit")
        )
        assert report.verified == placements

    @pytest.mark.parametrize("seed", [4, 11])
    def test_four_processes_match_serial_payloads(self, seed):
        # The Λ-epoch process pool: every solve/sweep runs on a replica
        # process synced to that epoch's fleet snapshot, yet the payloads
        # must be bit-identical to the serial replay — across a trace that
        # actually churns availability (admits, releases, and drains all
        # change Λ mid-trace, closing epochs).
        tree = complete_binary_tree(16)
        trace = generate_churn_trace(tree, 80, seed=seed, budget=4, workload_pool=3)
        kinds = {event.kind for event in trace}
        assert {"admit", "release", "drain", "solve", "sweep"} <= kinds
        serial = replay_trace(tree, trace, capacity=3)
        assert serial.mode == "serial"
        concurrent = replay_trace(tree, trace, capacity=3, workers=4, mode="process")
        assert concurrent.workers == 4 and concurrent.mode == "process"
        assert [response_payload(r.response) for r in serial.records] == [
            response_payload(r.response) for r in concurrent.records
        ]

    def test_process_replay_verifies_against_cold_solves(self):
        # verify=True re-solves every placement at the Λ the *parent* saw
        # when it buffered the request — proving the replicas answered from
        # the right epoch, not just self-consistently.
        tree = complete_binary_tree(16)
        trace = generate_churn_trace(tree, 60, seed=5, budget=4, workload_pool=3)
        report = replay_trace(
            tree, trace, capacity=3, verify=True, workers=2, mode="process"
        )
        placements = sum(
            1 for event in trace if event.kind in ("solve", "sweep", "admit")
        )
        assert report.verified == placements

    def test_unknown_mode_rejected(self):
        tree = complete_binary_tree(8)
        trace = generate_churn_trace(tree, 5, seed=1, budget=2)
        with pytest.raises(ValueError, match="unknown replay mode"):
            replay_trace(tree, trace, capacity=2, workers=2, mode="fiber")

    def test_hammered_submit_keeps_registry_consistent(self):
        # 8 threads of mixed read traffic while the main thread churns
        # tenants: no exception may escape, every read must see a
        # consistent fleet, and the final counters must balance.
        tree = complete_binary_tree(8)
        service = PlacementService(tree, capacity=4)
        loads = leaf_loads(tree)
        errors: list[BaseException] = []

        def reader() -> None:
            try:
                for _ in range(20):
                    response = service.submit(SolveRequest(loads=loads, budget=3))
                    assert response.cost > 0
                    stats = service.submit(StatsRequest())
                    fleet = stats.fleet
                    assert (
                        fleet["active_tenants"]
                        == fleet["admitted_total"] - fleet["released_total"]
                    )
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=reader) for _ in range(8)]
        for thread in threads:
            thread.start()
        for round_id in range(10):
            service.submit(
                AdmitRequest(tenant_id=f"t{round_id}", loads=loads, budget=2)
            )
            service.submit(ReleaseRequest(tenant_id=f"t{round_id}"))
        for thread in threads:
            thread.join()
        assert not errors, errors
        state = service.state
        assert state.num_tenants == 0
        assert state.admitted_total == 10 and state.released_total == 10

"""Tests for the Reduce message accounting and the utilization cost metrics."""

from __future__ import annotations

import pytest

from repro.core.cost import (
    all_blue_cost,
    all_red_cost,
    closest_blue_ancestor_distance,
    cost_reduction,
    normalized_utilization,
    per_link_utilization,
    utilization_cost,
    utilization_cost_barrier,
)
from repro.core.reduce_op import (
    link_message_counts,
    messages_received_at_destination,
    run_reduce,
    total_messages,
    validate_placement,
)
from repro.core.tree import TreeNetwork
from repro.exceptions import PlacementError
from repro.topology.binary_tree import complete_binary_tree


@pytest.fixture
def figure1_tree() -> TreeNetwork:
    """The 6-server example of Figure 1.

    Destination ``d`` above root ``r``.  Server x4 attaches directly to the
    root; a leaf switch holds x1, x2; an internal switch has two leaf
    children holding x3 and x5, x6.  With unit rates, the all-red solution
    sends 14 messages over the 5 edges (2 + 1 + 2 + 3 + 6, as annotated in
    Figure 1a) and the all-blue solution sends 5 (Figure 1b).
    """
    return TreeNetwork(
        parents={"r": "d", "left": "r", "mid": "r", "mid_l": "mid", "mid_r": "mid"},
        loads={"r": 1, "left": 2, "mid_l": 1, "mid_r": 2},
    )


class TestLinkMessageCounts:
    def test_all_red_figure1(self, figure1_tree):
        counts = link_message_counts(figure1_tree, frozenset())
        assert counts["left"] == 2
        assert counts["mid_l"] == 1
        assert counts["mid_r"] == 2
        assert counts["mid"] == 3
        assert counts["r"] == 6
        assert total_messages(figure1_tree, frozenset()) == 14

    def test_all_blue_figure1(self, figure1_tree):
        blue = frozenset(figure1_tree.switches)
        counts = link_message_counts(figure1_tree, blue)
        assert all(count == 1 for count in counts.values())
        assert total_messages(figure1_tree, blue) == 5

    def test_red_forwards_children_plus_local(self):
        tree = TreeNetwork(
            parents={"r": "d", "a": "r"},
            loads={"r": 2, "a": 3},
        )
        counts = link_message_counts(tree, frozenset())
        assert counts["a"] == 3
        assert counts["r"] == 5

    def test_blue_aggregates_to_single_message(self):
        tree = TreeNetwork(
            parents={"r": "d", "a": "r"},
            loads={"r": 2, "a": 3},
        )
        counts = link_message_counts(tree, {"r"})
        assert counts["a"] == 3
        assert counts["r"] == 1

    def test_loads_override(self, paper_tree):
        counts = link_message_counts(paper_tree, frozenset(), loads={"s2_0": 10})
        assert counts["s2_0"] == 10
        assert counts["s2_1"] == 0
        assert counts[paper_tree.root] == 10

    def test_messages_at_destination(self, paper_tree):
        assert messages_received_at_destination(paper_tree, frozenset()) == 17
        assert messages_received_at_destination(paper_tree, {paper_tree.root}) == 1


class TestValidatePlacement:
    def test_accepts_valid(self, paper_tree):
        assert validate_placement(paper_tree, {"s1_0"}, budget=2) == frozenset({"s1_0"})

    def test_rejects_non_switch(self, paper_tree):
        with pytest.raises(PlacementError):
            validate_placement(paper_tree, {"ghost"})
        with pytest.raises(PlacementError):
            validate_placement(paper_tree, {paper_tree.destination})

    def test_rejects_over_budget(self, paper_tree):
        with pytest.raises(PlacementError):
            validate_placement(paper_tree, {"s1_0", "s1_1"}, budget=1)

    def test_rejects_outside_availability(self, paper_tree):
        restricted = paper_tree.with_available({"s1_0"})
        with pytest.raises(PlacementError):
            validate_placement(restricted, {"s1_1"})
        assert validate_placement(restricted, {"s1_1"}, enforce_available=False)


class TestUtilizationCost:
    def test_motivating_example_all_red(self, paper_tree):
        # 17 servers, each message travels 3 unit-rate hops.
        assert all_red_cost(paper_tree) == pytest.approx(51.0)

    def test_motivating_example_all_blue(self, paper_tree):
        # One message per edge: 7 edges.
        assert all_blue_cost(paper_tree) == pytest.approx(7.0)

    def test_figure2_strategy_costs(self, paper_tree):
        assert utilization_cost(paper_tree, {"s0_0", "s1_1"}) == pytest.approx(27.0)  # Top
        assert utilization_cost(paper_tree, {"s2_1", "s2_2"}) == pytest.approx(24.0)  # Max
        assert utilization_cost(paper_tree, {"s1_0", "s1_1"}) == pytest.approx(21.0)  # Level
        assert utilization_cost(paper_tree, {"s1_1", "s2_1"}) == pytest.approx(20.0)  # SOAR

    def test_rates_weight_messages(self, small_tree):
        # all red: a sends 3 msgs over rho=1 then 3 over rho(r)=0.5;
        #          b sends 1 msg over rho=0.25 then 1 over rho(r)=0.5.
        expected = 3 * 1.0 + 1 * 0.25 + 4 * 0.5
        assert all_red_cost(small_tree) == pytest.approx(expected)

    def test_per_link_utilization(self, small_tree):
        per_link = per_link_utilization(small_tree, frozenset())
        assert per_link["a"] == pytest.approx(3.0)
        assert per_link["b"] == pytest.approx(0.25)
        assert per_link["r"] == pytest.approx(2.0)

    def test_barrier_formulation_matches(self, paper_tree, small_tree):
        for tree in (paper_tree, small_tree):
            for blue in (frozenset(), {tree.root}, frozenset(tree.leaves())):
                assert utilization_cost_barrier(tree, blue) == pytest.approx(
                    utilization_cost(tree, blue)
                )

    def test_closest_blue_ancestor_distance(self, paper_tree):
        blue = frozenset({"s1_0"})
        assert closest_blue_ancestor_distance(paper_tree, "s2_0", blue) == 1
        assert closest_blue_ancestor_distance(paper_tree, "s2_2", blue) == 3
        assert closest_blue_ancestor_distance(paper_tree, "s1_0", blue) == 2
        assert closest_blue_ancestor_distance(paper_tree, paper_tree.root, blue) == 1

    def test_normalized_utilization_and_reduction(self, paper_tree):
        normalized = normalized_utilization(paper_tree, {"s1_1", "s2_1"})
        assert normalized == pytest.approx(20.0 / 51.0)
        assert cost_reduction(paper_tree, {"s1_1", "s2_1"}) == pytest.approx(1 - 20.0 / 51.0)

    def test_zero_load_network(self):
        tree = TreeNetwork({"r": "d", "a": "r"})
        assert all_red_cost(tree) == 0.0
        assert normalized_utilization(tree, frozenset()) == 0.0

    def test_all_blue_respects_availability_flag(self, paper_tree):
        restricted = paper_tree.with_available({"s1_0"})
        unrestricted = all_blue_cost(restricted)
        respected = all_blue_cost(restricted, respect_availability=True)
        assert respected >= unrestricted


class TestContentCarryingReduce:
    @staticmethod
    def _produce(switch, count):
        return [{switch: 1} for _ in range(count)]

    @staticmethod
    def _combine(payloads):
        merged: dict = {}
        for payload in payloads:
            for key, value in payload.items():
                merged[key] = merged.get(key, 0) + value
        return merged

    @staticmethod
    def _sizeof(payload):
        return 10.0 * len(payload)

    def test_message_counts_match_analytic_model(self, paper_tree):
        blue = {"s1_1", "s2_1"}
        trace = run_reduce(paper_tree, blue, self._produce, self._combine, self._sizeof)
        analytic = link_message_counts(paper_tree, blue)
        assert trace.link_messages == analytic

    def test_result_aggregates_all_servers(self, paper_tree):
        trace = run_reduce(
            paper_tree, {"s1_0"}, self._produce, self._combine, self._sizeof
        )
        assert trace.result is not None
        assert sum(trace.result.values()) == paper_tree.total_load

    def test_bytes_decrease_with_aggregation(self, paper_tree):
        red = run_reduce(paper_tree, frozenset(), self._produce, self._combine, self._sizeof)
        blue = run_reduce(
            paper_tree,
            frozenset(paper_tree.switches),
            self._produce,
            self._combine,
            self._sizeof,
        )
        assert blue.total_bytes < red.total_bytes

    def test_empty_blue_subtree_sends_nothing(self):
        tree = TreeNetwork(
            parents={"r": "d", "a": "r", "b": "r"},
            loads={"a": 2},  # b's subtree is empty
        )
        trace = run_reduce(tree, {"b"}, self._produce, self._combine, self._sizeof)
        assert trace.link_messages["b"] == 0
        assert trace.link_bytes["b"] == 0.0

    def test_produce_count_mismatch_raises(self, paper_tree):
        def bad_produce(switch, count):
            return [{switch: 1}]  # always one payload regardless of count

        with pytest.raises(PlacementError):
            run_reduce(paper_tree, frozenset(), bad_produce, self._combine, self._sizeof)

    def test_trace_totals(self):
        tree = complete_binary_tree(2, leaf_loads=[1, 1])
        trace = run_reduce(tree, frozenset(), self._produce, self._combine, self._sizeof)
        assert trace.total_messages == sum(trace.link_messages.values())
        assert trace.total_bytes == sum(trace.link_bytes.values())
        assert trace.messages_at_destination == 2

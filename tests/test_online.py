"""Tests for the online multi-workload extension (capacity tracking + scheduling)."""

from __future__ import annotations

import pytest

from repro.baselines.strategies import PAPER_STRATEGIES, soar_strategy, top_strategy
from repro.exceptions import CapacityError
from repro.online.capacity import CapacityTracker
from repro.online.scheduler import (
    compare_strategies_online,
    generate_workload_sequence,
    run_online_sequence,
)
from repro.topology.binary_tree import bt_network, complete_binary_tree


class TestCapacityTracker:
    def test_scalar_capacity(self, paper_tree):
        tracker = CapacityTracker(paper_tree, 2)
        assert tracker.residual("s1_0") == 2
        assert tracker.available() == frozenset(paper_tree.switches)

    def test_mapping_capacity(self, paper_tree):
        tracker = CapacityTracker(paper_tree, {"s1_0": 1})
        assert tracker.residual("s1_0") == 1
        assert tracker.residual("s1_1") == 0
        assert tracker.available() == frozenset({"s1_0"})

    def test_consume_decrements(self, paper_tree):
        tracker = CapacityTracker(paper_tree, 1)
        tracker.consume({"s1_0", "s2_0"})
        assert tracker.residual("s1_0") == 0
        assert tracker.residual("s1_1") == 1
        assert "s1_0" not in tracker.available()
        assert tracker.num_assigned_workloads == 1
        assert tracker.assignments == (frozenset({"s1_0", "s2_0"}),)

    def test_consume_exhausted_raises(self, paper_tree):
        tracker = CapacityTracker(paper_tree, 1)
        tracker.consume({"s1_0"})
        with pytest.raises(CapacityError):
            tracker.consume({"s1_0"})

    def test_consume_unknown_switch_raises(self, paper_tree):
        tracker = CapacityTracker(paper_tree, 1)
        with pytest.raises(CapacityError):
            tracker.consume({"ghost"})

    def test_invalid_capacities(self, paper_tree):
        with pytest.raises(CapacityError):
            CapacityTracker(paper_tree, -1)
        with pytest.raises(CapacityError):
            CapacityTracker(paper_tree, {"s1_0": -2})
        with pytest.raises(CapacityError):
            CapacityTracker(paper_tree, {"ghost": 1})

    def test_available_tree_restricts_lambda(self, paper_tree):
        tracker = CapacityTracker(paper_tree, {"s1_0": 1, "s1_1": 1})
        tracker.consume({"s1_0"})
        available_tree = tracker.available_tree()
        assert available_tree.available == frozenset({"s1_1"})

    def test_reset(self, paper_tree):
        tracker = CapacityTracker(paper_tree, 1)
        tracker.consume({"s1_0"})
        tracker.reset()
        assert tracker.residual("s1_0") == 1
        assert tracker.num_assigned_workloads == 0

    def test_utilization_of_capacity(self, paper_tree):
        tracker = CapacityTracker(paper_tree, 2)
        assert tracker.utilization_of_capacity() == 0.0
        tracker.consume({"s1_0", "s1_1"})
        assert tracker.utilization_of_capacity() == pytest.approx(2 / 14)

    def test_zero_capacity_network(self, paper_tree):
        tracker = CapacityTracker(paper_tree, 0)
        assert tracker.available() == frozenset()
        assert tracker.utilization_of_capacity() == 0.0


class TestWorkloadSequence:
    def test_sequence_length_and_leaf_keys(self):
        tree = bt_network(32)
        sequence = generate_workload_sequence(tree, 5, rng=1)
        assert len(sequence) == 5
        for workload in sequence:
            assert set(workload) == set(tree.leaves())
            assert all(value >= 1 for value in workload.values())

    def test_sequence_reproducible(self):
        tree = bt_network(32)
        assert generate_workload_sequence(tree, 4, rng=9) == generate_workload_sequence(
            tree, 4, rng=9
        )

    def test_mix_probability_extremes(self):
        tree = bt_network(32)
        uniform_only = generate_workload_sequence(tree, 6, rng=3, mix_probability=1.0)
        assert all(4 <= value <= 6 for workload in uniform_only for value in workload.values())


class TestOnlineRun:
    def test_budget_and_capacity_respected(self, rng):
        tree = bt_network(32)
        workloads = generate_workload_sequence(tree, 10, rng=rng)
        result = run_online_sequence(
            tree, workloads, soar_strategy, budget=3, capacity=2, strategy_name="SOAR"
        )
        assert len(result.workloads) == 10
        usage: dict = {}
        for item in result.workloads:
            assert len(item.blue_nodes) <= 3
            for switch in item.blue_nodes:
                usage[switch] = usage.get(switch, 0) + 1
        assert all(count <= 2 for count in usage.values())

    def test_costs_are_positive_and_normalized(self, rng):
        tree = bt_network(32)
        workloads = generate_workload_sequence(tree, 6, rng=rng)
        result = run_online_sequence(
            tree, workloads, top_strategy, budget=4, capacity=2, strategy_name="Top"
        )
        assert result.total_cost > 0
        assert 0.0 < result.normalized_cost <= 1.0
        for item in result.workloads:
            assert 0.0 < item.normalized_cost <= 1.0

    def test_zero_capacity_degenerates_to_all_red(self, rng):
        tree = bt_network(32)
        workloads = generate_workload_sequence(tree, 4, rng=rng)
        result = run_online_sequence(
            tree, workloads, soar_strategy, budget=4, capacity=0, strategy_name="SOAR"
        )
        assert result.normalized_cost == pytest.approx(1.0)
        assert all(not item.blue_nodes for item in result.workloads)

    def test_soar_beats_heuristics_online(self):
        tree = bt_network(64)
        workloads = generate_workload_sequence(tree, 12, rng=17)
        outcomes = compare_strategies_online(
            tree, workloads, PAPER_STRATEGIES, budget=8, capacity=3
        )
        soar = outcomes["SOAR"].normalized_cost
        for name, outcome in outcomes.items():
            assert soar <= outcome.normalized_cost + 1e-9, name

    def test_normalized_cost_increases_with_more_workloads(self):
        # With bounded capacity, later workloads find fewer available
        # switches, so the cumulative normalized cost trends upward.
        tree = complete_binary_tree(16)
        workloads = generate_workload_sequence(tree, 20, rng=3)
        result = run_online_sequence(
            tree, workloads, soar_strategy, budget=8, capacity=1, strategy_name="SOAR"
        )
        early = sum(i.cost for i in result.workloads[:5]) / sum(
            i.all_red_cost for i in result.workloads[:5]
        )
        late = result.normalized_cost
        assert late >= early - 1e-9

    def test_compare_strategies_use_same_arrivals(self):
        tree = bt_network(32)
        workloads = generate_workload_sequence(tree, 5, rng=2)
        outcomes = compare_strategies_online(
            tree, workloads, {"Top": top_strategy, "SOAR": soar_strategy}, budget=4, capacity=2
        )
        top_baseline = [item.all_red_cost for item in outcomes["Top"].workloads]
        soar_baseline = [item.all_red_cost for item in outcomes["SOAR"].workloads]
        assert top_baseline == soar_baseline

    @pytest.mark.parametrize(
        "capacity,budget,batch_size",
        [(1, 8, 4), (2, 6, 4), (3, 4, 8), (4, 3, 2)],
    )
    def test_batched_soar_bit_identical_to_serial(self, capacity, budget, batch_size):
        # The speculative solve_many batching must replicate the serial
        # greedy order exactly — tight capacities force Λ to churn inside
        # chunks, exercising the mid-chunk discard-and-resolve path.
        tree = complete_binary_tree(16)
        workloads = generate_workload_sequence(tree, 18, rng=13)
        serial = run_online_sequence(
            tree, workloads, soar_strategy, budget, capacity, "SOAR", batch_size=1
        )
        batched = run_online_sequence(
            tree, workloads, soar_strategy, budget, capacity, "SOAR",
            batch_size=batch_size,
        )
        assert len(serial.workloads) == len(batched.workloads) == len(workloads)
        for left, right in zip(serial.workloads, batched.workloads):
            assert left.index == right.index
            assert left.blue_nodes == right.blue_nodes
            assert left.cost == right.cost
            assert left.all_red_cost == right.all_red_cost
            assert left.available_switches == right.available_switches

"""Tests for the topology generators."""

from __future__ import annotations

import pytest

from repro.core.tree import TreeNetwork
from repro.exceptions import TreeStructureError
from repro.topology.binary_tree import bt_network, complete_binary_tree, leaf_switches
from repro.topology.generic import (
    fat_tree_aggregation_tree,
    kary_tree,
    path_network,
    random_recursive_tree,
    random_tree,
    star_network,
)
from repro.topology.scale_free import (
    degree_sequence,
    preferential_attachment_parents,
    scale_free_tree,
    sf_network,
)


class TestCompleteBinaryTree:
    def test_structure(self):
        tree = complete_binary_tree(8)
        assert tree.num_switches == 15
        assert tree.height == 4  # destination at depth 0, leaves at depth 4
        assert len(tree.leaves()) == 8
        assert all(tree.num_children(s) in (0, 2) for s in tree.switches)

    def test_leaf_loads_sequence(self):
        tree = complete_binary_tree(4, leaf_loads=[1, 2, 3, 4])
        assert [tree.load(leaf) for leaf in leaf_switches(tree)] == [1, 2, 3, 4]
        assert tree.load("s0_0") == 0

    def test_leaf_loads_mapping(self):
        tree = complete_binary_tree(4, leaf_loads={"s2_0": 9, "s1_1": 2})
        assert tree.load("s2_0") == 9
        assert tree.load("s1_1") == 2

    def test_wrong_number_of_loads(self):
        with pytest.raises(TreeStructureError):
            complete_binary_tree(4, leaf_loads=[1, 2])

    def test_rejects_non_power_of_two(self):
        for bad in (0, 3, 6, 12):
            with pytest.raises(TreeStructureError):
                complete_binary_tree(bad)

    def test_single_leaf(self):
        tree = complete_binary_tree(1, leaf_loads=[5])
        assert tree.num_switches == 1
        assert tree.load(tree.root) == 5

    def test_bt_network_counts_destination(self):
        tree = bt_network(256)
        assert tree.num_switches == 255
        assert len(tree.leaves()) == 128

    def test_bt_network_rejects_bad_sizes(self):
        for bad in (1, 3, 100):
            with pytest.raises(TreeStructureError):
                bt_network(bad)

    def test_leaf_switches_order(self):
        tree = complete_binary_tree(8)
        names = list(leaf_switches(tree))
        assert names == [f"s3_{i}" for i in range(8)]


class TestKaryAndFatTree:
    def test_kary_tree(self):
        tree = kary_tree(3, 2, leaf_loads=list(range(9)))
        assert tree.num_switches == 1 + 3 + 9
        assert all(tree.num_children(s) in (0, 3) for s in tree.switches)
        assert tree.load("s2_4") == 4

    def test_kary_validation(self):
        with pytest.raises(TreeStructureError):
            kary_tree(0, 2)
        with pytest.raises(TreeStructureError):
            kary_tree(2, -1)
        with pytest.raises(TreeStructureError):
            kary_tree(2, 2, leaf_loads=[1])

    def test_kary_height_zero(self):
        tree = kary_tree(4, 0)
        assert tree.num_switches == 1

    def test_fat_tree(self):
        tree = fat_tree_aggregation_tree(4, hosts_per_edge=3)
        # 1 core + 4 aggregation + 4 * 2 edge switches.
        assert tree.num_switches == 1 + 4 + 8
        assert tree.total_load == 8 * 3
        assert tree.height == 3

    def test_fat_tree_validation(self):
        with pytest.raises(TreeStructureError):
            fat_tree_aggregation_tree(3)
        with pytest.raises(TreeStructureError):
            fat_tree_aggregation_tree(4, hosts_per_edge=-1)


class TestScaleFree:
    def test_parent_map_is_valid_tree(self, rng):
        parents = preferential_attachment_parents(50, rng)
        assert set(parents) == set(range(1, 50))
        assert all(parent < node for node, parent in parents.items())

    def test_scale_free_tree_properties(self):
        tree = scale_free_tree(128, rng=11, node_load=1)
        assert tree.num_switches == 128
        assert tree.total_load == 128
        assert isinstance(tree, TreeNetwork)

    def test_sf_network_counts_destination(self):
        tree = sf_network(128, rng=11)
        assert tree.num_switches == 127

    def test_reproducible_with_seed(self):
        first = scale_free_tree(60, rng=21)
        second = scale_free_tree(60, rng=21)
        assert first.switches == second.switches
        assert all(first.parent(s) == second.parent(s) for s in first.switches)

    def test_degree_sequence_is_skewed(self):
        tree = scale_free_tree(200, rng=5)
        degrees = degree_sequence(tree)
        assert degrees[0] >= 8  # a hub emerges
        assert degrees == sorted(degrees, reverse=True)
        # Degree sum of the switch-only tree plus uplink to d:
        assert sum(degrees) == 2 * (tree.num_switches - 1) + 1

    def test_validation(self):
        with pytest.raises(TreeStructureError):
            scale_free_tree(0)
        with pytest.raises(TreeStructureError):
            sf_network(1)

    def test_explicit_loads_override(self):
        tree = scale_free_tree(10, rng=1, loads={0: 7})
        assert tree.load(0) == 7
        assert tree.total_load == 7


class TestGenericGenerators:
    def test_path_network(self):
        tree = path_network(5, leaf_load=2)
        assert tree.height == 5
        assert tree.total_load == 2
        assert tree.load(4) == 2

    def test_star_network(self):
        tree = star_network(6, leaf_loads=[1, 2, 3, 4, 5, 6])
        assert tree.num_switches == 7
        assert tree.height == 2
        assert tree.total_load == 21

    def test_random_recursive_tree(self):
        tree = random_recursive_tree(40, rng=4, node_load=1)
        assert tree.num_switches == 40
        assert tree.total_load == 40

    def test_random_tree_sizes(self):
        for size in (1, 2, 3, 10, 25):
            tree = random_tree(size, rng=size)
            assert tree.num_switches == size

    def test_generators_validate_sizes(self):
        with pytest.raises(TreeStructureError):
            path_network(0)
        with pytest.raises(TreeStructureError):
            star_network(0)
        with pytest.raises(TreeStructureError):
            random_recursive_tree(0)
        with pytest.raises(TreeStructureError):
            random_tree(0)

    def test_random_tree_reproducible(self):
        first = random_tree(20, rng=77)
        second = random_tree(20, rng=77)
        assert all(first.parent(s) == second.parent(s) for s in first.switches)

"""Tests for the event-driven software dataplane."""

from __future__ import annotations

import pytest

from repro.core.cost import utilization_cost
from repro.core.solver import Solver
from repro.exceptions import SimulationError
from repro.simulation.dataplane import simulate_reduce
from repro.simulation.events import EventQueue
from repro.topology.binary_tree import complete_binary_tree
from repro.workload.rates import apply_rate_scheme


class TestEventQueue:
    def test_events_pop_in_time_order(self):
        queue = EventQueue()
        queue.schedule(3.0, "c")
        queue.schedule(1.0, "a")
        queue.schedule(2.0, "b")
        assert [queue.pop().kind for _ in range(3)] == ["a", "b", "c"]
        assert queue.now == 3.0
        assert queue.processed == 3

    def test_fifo_tie_breaking(self):
        queue = EventQueue()
        queue.schedule(1.0, "first")
        queue.schedule(1.0, "second")
        assert queue.pop().kind == "first"
        assert queue.pop().kind == "second"

    def test_cannot_schedule_in_the_past(self):
        queue = EventQueue()
        queue.schedule(5.0, "later")
        queue.pop()
        with pytest.raises(SimulationError):
            queue.schedule(1.0, "too-late")

    def test_pop_empty_raises(self):
        with pytest.raises(SimulationError):
            EventQueue().pop()

    def test_len_and_bool(self):
        queue = EventQueue()
        assert not queue
        queue.schedule(1.0, "x")
        assert queue and len(queue) == 1


class TestDataplane:
    def test_busy_time_equals_utilization_all_red(self, paper_tree):
        result = simulate_reduce(paper_tree, frozenset())
        assert result.total_busy_time == pytest.approx(utilization_cost(paper_tree, frozenset()))

    def test_busy_time_equals_utilization_for_soar_placement(self, paper_tree):
        for budget in (1, 2, 3, 4):
            blue = Solver().solve(paper_tree, budget).blue_nodes
            result = simulate_reduce(paper_tree, blue)
            assert result.total_busy_time == pytest.approx(utilization_cost(paper_tree, blue))

    def test_busy_time_with_heterogeneous_rates(self, small_tree):
        for blue in (frozenset(), frozenset({"r"}), frozenset({"a", "r"})):
            result = simulate_reduce(small_tree, blue)
            assert result.total_busy_time == pytest.approx(utilization_cost(small_tree, blue))

    def test_all_servers_accounted_for(self, paper_tree):
        result = simulate_reduce(paper_tree, {"s1_0"})
        assert result.servers_delivered == paper_tree.total_load
        assert result.messages_delivered >= 1

    def test_all_blue_delivers_single_message(self, paper_tree):
        result = simulate_reduce(paper_tree, frozenset(paper_tree.switches))
        assert result.messages_delivered == 1

    def test_completion_time_positive_and_bounded(self, paper_tree):
        result = simulate_reduce(paper_tree, frozenset())
        # Completion cannot beat the depth of the farthest message and cannot
        # exceed the total busy time (links work in parallel).
        assert result.completion_time >= 3.0
        assert result.completion_time <= result.total_busy_time

    def test_aggregation_reduces_completion_time_under_congestion(self):
        tree = complete_binary_tree(8, leaf_loads=[8] * 8)
        red = simulate_reduce(tree, frozenset())
        blue = simulate_reduce(tree, frozenset(tree.switches))
        assert blue.completion_time < red.completion_time

    def test_bottleneck_is_root_link_when_red(self, paper_tree):
        result = simulate_reduce(paper_tree, frozenset())
        assert result.link_busy[paper_tree.root] == result.bottleneck_busy_time

    def test_faster_links_shrink_completion(self, paper_tree):
        fast = apply_rate_scheme(paper_tree, "exponential")
        slow_result = simulate_reduce(paper_tree, frozenset())
        fast_result = simulate_reduce(fast, frozenset())
        assert fast_result.completion_time < slow_result.completion_time

    def test_message_size_scales_times(self, paper_tree):
        small = simulate_reduce(paper_tree, frozenset(), message_size=1.0)
        large = simulate_reduce(paper_tree, frozenset(), message_size=2.0)
        assert large.total_busy_time == pytest.approx(2.0 * small.total_busy_time)

    def test_aggregate_size_override(self, paper_tree):
        bigger_aggregates = simulate_reduce(
            paper_tree, {paper_tree.root}, aggregate_size=3.0
        )
        default = simulate_reduce(paper_tree, {paper_tree.root})
        assert bigger_aggregates.link_busy[paper_tree.root] > default.link_busy[paper_tree.root]

    def test_injection_jitter_reproducible(self, paper_tree):
        first = simulate_reduce(paper_tree, frozenset(), injection_jitter=1.0, rng=5)
        second = simulate_reduce(paper_tree, frozenset(), injection_jitter=1.0, rng=5)
        assert first.completion_time == pytest.approx(second.completion_time)

    def test_jitter_does_not_change_busy_time(self, paper_tree):
        jittered = simulate_reduce(paper_tree, frozenset(), injection_jitter=2.0, rng=6)
        assert jittered.total_busy_time == pytest.approx(
            utilization_cost(paper_tree, frozenset())
        )

    def test_invalid_message_size(self, paper_tree):
        with pytest.raises(SimulationError):
            simulate_reduce(paper_tree, frozenset(), message_size=0.0)

    def test_blue_switch_with_empty_subtree_is_silent(self):
        tree = complete_binary_tree(4, leaf_loads=[3, 0, 0, 2])
        # Make the zero-load leaf blue; the run must terminate and deliver
        # every server exactly once.
        result = simulate_reduce(tree, {"s2_1"})
        assert result.servers_delivered == 5
        assert result.link_messages["s2_1"] == 0

    def test_message_counts_match_analytic_model(self, loaded_bt16):
        from repro.core.reduce_op import link_message_counts

        blue = Solver().solve(loaded_bt16, 4).blue_nodes
        result = simulate_reduce(loaded_bt16, blue)
        assert result.link_messages == link_message_counts(loaded_bt16, blue)

"""Tests for the codebase-specific static-analysis pass (repro.analysis).

Each rule family is exercised two ways: its positive fixture under
``tests/analysis_fixtures/`` must produce findings (the rule catches the
hazard it exists for) and its negative fixture must produce none (the
allowed idioms stay quiet).  The project-wide checks — registry
coherence and the C/ctypes FFI contract — are additionally regression
tested by perturbing copies of the real inputs: a linter that passes a
broken contract is worse than no linter.
"""

from __future__ import annotations

import importlib.util
import json
import re
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis import (
    RULES,
    Finding,
    check_ffi,
    check_registries,
    lint_project,
    lint_source,
    load_baseline,
    run_fixture,
    split_findings,
    write_baseline,
)
from repro.analysis.runner import find_project_root, main as lint_main

FIXTURES = Path(__file__).parent / "analysis_fixtures"
REPO_ROOT = find_project_root(Path(__file__).parent)


def rule_ids(findings: list[Finding]) -> set[str]:
    return {finding.rule for finding in findings}


def fixture_findings(name: str, rule: str) -> list[Finding]:
    return [f for f in run_fixture(FIXTURES / name) if f.rule == rule]


# --------------------------------------------------------------------------- #
# framework
# --------------------------------------------------------------------------- #


def test_all_rule_families_registered():
    assert {
        "lock-discipline",
        "determinism-rng",
        "determinism-clock",
        "determinism-order",
        "registry-coherence",
        "layering",
        "ffi-contract",
        "broad-except",
    } <= set(RULES)


def test_findings_carry_location_rule_and_hint():
    finding = fixture_findings("locks_bad.py", "lock-discipline")[0]
    assert finding.line > 0
    assert finding.hint
    rendered = finding.format()
    assert re.match(r".+:\d+: \[lock-discipline\] ", rendered)
    assert "(fix: " in rendered


def test_allow_pragma_suppresses_exactly_that_rule(tmp_path):
    source = (
        "# lint-fixture-module: repro.core.pragma_fixture\n"
        "import numpy as np\n"
        "rng = np.random.default_rng()  # lint: allow(determinism-rng)\n"
        "other = np.random.default_rng()\n"
    )
    path = tmp_path / "pragma_fixture.py"
    path.write_text(source)
    findings = run_fixture(path)
    assert len([f for f in findings if f.rule == "determinism-rng"]) == 1
    assert findings[0].line == 4


def test_fixture_module_header_controls_scoped_rules(tmp_path):
    source = "import time\nstamp = time.time()\n"
    bare = tmp_path / "no_header.py"
    bare.write_text(source)
    assert not fixture_rule_hits(bare, "determinism-clock")
    scoped = tmp_path / "with_header.py"
    scoped.write_text("# lint-fixture-module: repro.core.clocked\n" + source)
    assert fixture_rule_hits(scoped, "determinism-clock")


def fixture_rule_hits(path: Path, rule: str) -> list[Finding]:
    return [f for f in run_fixture(path) if f.rule == rule]


# --------------------------------------------------------------------------- #
# lock discipline
# --------------------------------------------------------------------------- #


def test_lock_discipline_flags_unprotected_mutations():
    findings = fixture_findings("locks_bad.py", "lock-discipline")
    assert len(findings) == 5
    flagged = "\n".join(f.snippet for f in findings)
    assert "service.state._admitted_total" in flagged
    assert "del service.state._tenants" in flagged


def test_lock_discipline_allows_methods_locks_and_decorator():
    assert fixture_findings("locks_good.py", "lock-discipline") == []


# --------------------------------------------------------------------------- #
# determinism
# --------------------------------------------------------------------------- #


def test_determinism_rules_flag_the_hazards():
    findings = run_fixture(FIXTURES / "determinism_bad.py")
    assert {"determinism-rng", "determinism-clock", "determinism-order"} <= rule_ids(
        findings
    )
    rng = [f for f in findings if f.rule == "determinism-rng"]
    assert len(rng) == 4  # default_rng(), random.random(), np.seed, np.rand
    order = [f for f in findings if f.rule == "determinism-order"]
    assert len(order) == 3  # two set sums + one dict-fed hasher loop


def test_determinism_rules_allow_seeded_and_sorted():
    findings = run_fixture(FIXTURES / "determinism_good.py")
    assert rule_ids(findings) & {
        "determinism-rng",
        "determinism-clock",
        "determinism-order",
    } == set()


def test_wall_clock_rule_scoped_to_pure_layers():
    source = "# lint-fixture-module: repro.service.latency\nimport time\nt = time.time()\n"
    findings = lint_source(
        FIXTURES / "determinism_good.py", module="repro.service.latency", text=source
    )
    assert "determinism-clock" not in rule_ids(findings)


# --------------------------------------------------------------------------- #
# layering
# --------------------------------------------------------------------------- #


def test_layering_flags_upward_imports():
    findings = fixture_findings("layering_bad.py", "layering")
    assert len(findings) == 3
    messages = "\n".join(f.message for f in findings)
    for target in ("repro.service.api", "repro.online.capacity", "repro.experiments"):
        assert target in messages


def test_layering_allows_downward_imports():
    assert fixture_findings("layering_good.py", "layering") == []


# --------------------------------------------------------------------------- #
# broad excepts
# --------------------------------------------------------------------------- #


def test_broad_except_flags_swallowing_handlers():
    findings = fixture_findings("excepts_bad.py", "broad-except")
    assert len(findings) == 4  # Exception, bare, tuple-smuggled, BaseException


def test_broad_except_allows_typed_reraise_and_pragma():
    assert fixture_findings("excepts_good.py", "broad-except") == []


def test_broad_except_scoped_to_service_layer(tmp_path):
    path = tmp_path / "core_like.py"
    path.write_text(
        "# lint-fixture-module: repro.experiments.harness\n"
        "def f(g):\n"
        "    try:\n"
        "        return g()\n"
        "    except Exception:\n"
        "        return None\n"
    )
    assert fixture_rule_hits(path, "broad-except") == []


# --------------------------------------------------------------------------- #
# registry coherence
# --------------------------------------------------------------------------- #


GOOD_REGISTRIES = dict(
    engines={"flat": 1, "reference": 1, "compiled": 1},
    color_kernels={"batched": 1, "reference": 1, "compiled": 1},
    cost_kernels={"flat": 1, "reference": 1, "compiled": 1},
    color_fallbacks={"flat": "batched"},
    cost_fallbacks={},
)


def test_registry_check_passes_on_coherent_registries():
    assert check_registries(**GOOD_REGISTRIES) == []
    assert (
        check_registries(
            **GOOD_REGISTRIES,
            defaults={"engine": "flat", "color": "batched", "cost": "flat"},
        )
        == []
    )


def test_registry_check_flags_unresolvable_engine():
    broken = dict(GOOD_REGISTRIES, color_fallbacks={})
    findings = check_registries(**broken)
    assert any("'flat' has no colour kernel" in f.message for f in findings)


def test_registry_check_flags_bad_fallbacks_and_defaults():
    findings = check_registries(
        **dict(GOOD_REGISTRIES, color_fallbacks={"flat": "nope", "ghost": "batched"})
    )
    messages = "\n".join(f.message for f in findings)
    assert "unknown kernel 'nope'" in messages
    assert "unknown engine 'ghost'" in messages
    findings = check_registries(
        **GOOD_REGISTRIES, defaults={"engine": "turbo", "color": None, "cost": None}
    )
    assert any("DEFAULT_ENGINE = 'turbo'" in f.message for f in findings)


def test_live_registries_are_coherent():
    assert RULES["registry-coherence"].check_project(REPO_ROOT) == []


# --------------------------------------------------------------------------- #
# FFI contract
# --------------------------------------------------------------------------- #


C_PATH = REPO_ROOT / "src" / "repro" / "core" / "_gather_kernels.c"
PY_PATH = REPO_ROOT / "src" / "repro" / "core" / "engine_compiled.py"


def test_ffi_contract_passes_on_shipped_sources():
    assert check_ffi(C_PATH.read_text(), PY_PATH.read_text()) == []


def test_ffi_contract_covers_every_repro_symbol():
    from repro.analysis import parse_c_prototypes, parse_ctypes_decls

    c_symbols = set(parse_c_prototypes(C_PATH.read_text()))
    py_symbols = set(parse_ctypes_decls(PY_PATH.read_text()))
    declared = {
        match.group(0)
        for match in re.finditer(r"repro_\w+", C_PATH.read_text())
    }
    assert c_symbols == declared  # the regex parser misses no repro_* symbol
    assert c_symbols == py_symbols


def test_ffi_contract_fails_on_perturbed_c_copy(tmp_path):
    c_text = C_PATH.read_text()
    # Add a parameter to one kernel's declaration(s): arity mismatch.
    perturbed = c_text.replace(
        "repro_sequential_sum(", "repro_sequential_sum(int64_t injected_arg, "
    )
    assert perturbed != c_text
    copy = tmp_path / "_gather_kernels.c"
    copy.write_text(perturbed)
    findings = check_ffi(copy.read_text(), PY_PATH.read_text())
    assert any("arity mismatch" in f.message for f in findings)


def test_ffi_contract_fails_on_kind_restype_and_symbol_drift():
    c_text = C_PATH.read_text()
    py_text = PY_PATH.read_text()
    # Pointer element type drift: double* -> int64_t* on the C side.
    kind_drift = c_text.replace(
        "double repro_sequential_sum(const double *values",
        "double repro_sequential_sum(const int64_t *values",
    )
    assert kind_drift != c_text
    findings = check_ffi(kind_drift, py_text)
    assert any("kind mismatch" in f.message for f in findings)
    # Return-type drift: double repro_sequential_sum -> void.
    ret_drift = re.sub(
        r"\bdouble\s+(repro_sequential_sum)", r"void \1", c_text
    )
    assert ret_drift != c_text
    findings = check_ffi(ret_drift, py_text)
    assert any("return-type mismatch" in f.message for f in findings)
    # Symbol drift: rename a kernel on the C side only.
    renamed = c_text.replace("repro_strict_less", "repro_strictly_less")
    findings = check_ffi(renamed, py_text)
    messages = "\n".join(f.message for f in findings)
    assert "repro_strictly_less has no ctypes prototype" in messages
    assert "repro_strict_less has no declaration" in messages


# --------------------------------------------------------------------------- #
# baseline
# --------------------------------------------------------------------------- #


def test_shipped_baseline_is_empty():
    baseline = load_baseline(REPO_ROOT / "lint_baseline.json")
    assert baseline == set()


def test_baseline_roundtrip_and_split(tmp_path):
    known = Finding(
        rule="determinism-rng", path="src/x.py", line=3, message="m", hint="h",
        snippet="rng = np.random.default_rng()",
    )
    fresh = Finding(
        rule="layering", path="src/y.py", line=9, message="m2", hint="h2",
        snippet="import repro.service",
    )
    stale_key = ("broad-except", "src/z.py", "except Exception:")
    path = tmp_path / "baseline.json"
    write_baseline([known], path)
    baseline = load_baseline(path) | {stale_key}
    new, old, stale = split_findings([known, fresh], baseline)
    assert new == [fresh]
    assert old == [known]
    assert stale == {stale_key}
    payload = json.loads(path.read_text())
    assert payload["version"] == 1


# --------------------------------------------------------------------------- #
# whole-tree gate and CLI
# --------------------------------------------------------------------------- #


def test_shipped_tree_is_lint_clean():
    findings, errors = lint_project(REPO_ROOT)
    assert errors == []
    assert findings == []


def test_runner_cli_exit_codes(tmp_path, capsys, monkeypatch):
    monkeypatch.chdir(REPO_ROOT)
    assert lint_main(["--list-rules"]) == 0
    assert lint_main([]) == 0
    out = capsys.readouterr().out
    assert "lint clean" in out
    # A bad file surfaces as a new finding -> exit 1.
    bad = tmp_path / "bad.py"
    bad.write_text("import numpy as np\nrng = np.random.default_rng()\n")
    assert lint_main([str(bad)]) == 1
    # --strict fails on stale baseline entries.
    stale = tmp_path / "stale.json"
    stale.write_text(json.dumps({
        "version": 1,
        "findings": [{"rule": "layering", "path": "gone.py", "snippet": "x"}],
    }))
    assert lint_main([str(FIXTURES / "layering_good.py"), "--baseline", str(stale)]) == 0
    assert (
        lint_main(
            [str(FIXTURES / "layering_good.py"), "--baseline", str(stale), "--strict"]
        )
        == 1
    )


def test_cli_lint_subcommand():
    result = subprocess.run(
        [sys.executable, "-m", "repro.cli", "lint", "--list-rules"],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
        env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
    )
    assert result.returncode == 0
    assert "ffi-contract" in result.stdout


# --------------------------------------------------------------------------- #
# mypy gate (typing debt lives in mypy.ini, not inline ignores)
# --------------------------------------------------------------------------- #


def test_no_inline_type_ignores_in_core_and_service():
    offenders = []
    for layer in ("core", "service"):
        for path in (REPO_ROOT / "src" / "repro" / layer).rglob("*.py"):
            if "type: ignore" in path.read_text():
                offenders.append(str(path))
    assert offenders == []


@pytest.mark.skipif(
    importlib.util.find_spec("mypy") is None, reason="mypy not installed"
)
def test_mypy_clean_on_configured_layers():
    result = subprocess.run(
        [sys.executable, "-m", "mypy", "--config-file", "mypy.ini",
         "src/repro/core", "src/repro/service"],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
    )
    assert result.returncode == 0, result.stdout + result.stderr

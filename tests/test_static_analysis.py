"""Tests for the codebase-specific static-analysis pass (repro.analysis).

Each rule family is exercised two ways: its positive fixture under
``tests/analysis_fixtures/`` must produce findings (the rule catches the
hazard it exists for) and its negative fixture must produce none (the
allowed idioms stay quiet).  The project-wide checks — registry
coherence and the C/ctypes FFI contract — are additionally regression
tested by perturbing copies of the real inputs: a linter that passes a
broken contract is worse than no linter.  The interprocedural families
(lock-order, blocking-under-lock, atomicity) get the same treatment at
whole-program scope: doctored copies of the real service code, linted in
their real call-graph context, must flip the tree from clean to firing.
"""

from __future__ import annotations

import importlib.util
import json
import re
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.analysis import (
    PARSE_COUNTS,
    RULES,
    Finding,
    ProjectIndex,
    check_ffi,
    check_registries,
    filter_suppressed,
    lint_project,
    lint_source,
    load_baseline,
    lock_graph_dot,
    render_findings,
    run_fixture,
    split_findings,
    write_baseline,
)
from repro.analysis.core import SourceModule
from repro.analysis.runner import (
    find_project_root,
    iter_source_files,
    main as lint_main,
)

FIXTURES = Path(__file__).parent / "analysis_fixtures"
REPO_ROOT = find_project_root(Path(__file__).parent)


def rule_ids(findings: list[Finding]) -> set[str]:
    return {finding.rule for finding in findings}


def fixture_findings(name: str, rule: str) -> list[Finding]:
    return [f for f in run_fixture(FIXTURES / name) if f.rule == rule]


# --------------------------------------------------------------------------- #
# framework
# --------------------------------------------------------------------------- #


def test_all_rule_families_registered():
    assert {
        "lock-discipline",
        "determinism-rng",
        "determinism-clock",
        "determinism-order",
        "registry-coherence",
        "layering",
        "ffi-contract",
        "broad-except",
        "lock-order",
        "blocking-under-lock",
        "atomicity",
    } <= set(RULES)


def test_findings_carry_location_rule_and_hint():
    finding = fixture_findings("locks_bad.py", "lock-discipline")[0]
    assert finding.line > 0
    assert finding.hint
    rendered = finding.format()
    assert re.match(r".+:\d+: \[lock-discipline\] ", rendered)
    assert "(fix: " in rendered


def test_allow_pragma_suppresses_exactly_that_rule(tmp_path):
    source = (
        "# lint-fixture-module: repro.core.pragma_fixture\n"
        "import numpy as np\n"
        "rng = np.random.default_rng()  # lint: allow(determinism-rng)\n"
        "other = np.random.default_rng()\n"
    )
    path = tmp_path / "pragma_fixture.py"
    path.write_text(source)
    findings = run_fixture(path)
    assert len([f for f in findings if f.rule == "determinism-rng"]) == 1
    assert findings[0].line == 4


def test_fixture_module_header_controls_scoped_rules(tmp_path):
    source = "import time\nstamp = time.time()\n"
    bare = tmp_path / "no_header.py"
    bare.write_text(source)
    assert not fixture_rule_hits(bare, "determinism-clock")
    scoped = tmp_path / "with_header.py"
    scoped.write_text("# lint-fixture-module: repro.core.clocked\n" + source)
    assert fixture_rule_hits(scoped, "determinism-clock")


def fixture_rule_hits(path: Path, rule: str) -> list[Finding]:
    return [f for f in run_fixture(path) if f.rule == rule]


# --------------------------------------------------------------------------- #
# lock discipline
# --------------------------------------------------------------------------- #


def test_lock_discipline_flags_unprotected_mutations():
    findings = fixture_findings("locks_bad.py", "lock-discipline")
    assert len(findings) == 5
    flagged = "\n".join(f.snippet for f in findings)
    assert "service.state._admitted_total" in flagged
    assert "del service.state._tenants" in flagged


def test_lock_discipline_allows_methods_locks_and_decorator():
    assert fixture_findings("locks_good.py", "lock-discipline") == []


# --------------------------------------------------------------------------- #
# determinism
# --------------------------------------------------------------------------- #


def test_determinism_rules_flag_the_hazards():
    findings = run_fixture(FIXTURES / "determinism_bad.py")
    assert {"determinism-rng", "determinism-clock", "determinism-order"} <= rule_ids(
        findings
    )
    rng = [f for f in findings if f.rule == "determinism-rng"]
    assert len(rng) == 4  # default_rng(), random.random(), np.seed, np.rand
    order = [f for f in findings if f.rule == "determinism-order"]
    assert len(order) == 3  # two set sums + one dict-fed hasher loop


def test_determinism_rules_allow_seeded_and_sorted():
    findings = run_fixture(FIXTURES / "determinism_good.py")
    assert rule_ids(findings) & {
        "determinism-rng",
        "determinism-clock",
        "determinism-order",
    } == set()


def test_wall_clock_rule_scoped_to_pure_layers():
    source = "# lint-fixture-module: repro.service.latency\nimport time\nt = time.time()\n"
    findings = lint_source(
        FIXTURES / "determinism_good.py", module="repro.service.latency", text=source
    )
    assert "determinism-clock" not in rule_ids(findings)


# --------------------------------------------------------------------------- #
# layering
# --------------------------------------------------------------------------- #


def test_layering_flags_upward_imports():
    findings = fixture_findings("layering_bad.py", "layering")
    assert len(findings) == 3
    messages = "\n".join(f.message for f in findings)
    for target in ("repro.service.api", "repro.online.capacity", "repro.experiments"):
        assert target in messages


def test_layering_allows_downward_imports():
    assert fixture_findings("layering_good.py", "layering") == []


# --------------------------------------------------------------------------- #
# broad excepts
# --------------------------------------------------------------------------- #


def test_broad_except_flags_swallowing_handlers():
    findings = fixture_findings("excepts_bad.py", "broad-except")
    assert len(findings) == 4  # Exception, bare, tuple-smuggled, BaseException


def test_broad_except_allows_typed_reraise_and_pragma():
    assert fixture_findings("excepts_good.py", "broad-except") == []


def test_broad_except_scoped_to_service_layer(tmp_path):
    path = tmp_path / "core_like.py"
    path.write_text(
        "# lint-fixture-module: repro.experiments.harness\n"
        "def f(g):\n"
        "    try:\n"
        "        return g()\n"
        "    except Exception:\n"
        "        return None\n"
    )
    assert fixture_rule_hits(path, "broad-except") == []


# --------------------------------------------------------------------------- #
# registry coherence
# --------------------------------------------------------------------------- #


GOOD_REGISTRIES = dict(
    engines={"flat": 1, "reference": 1, "compiled": 1},
    color_kernels={"batched": 1, "reference": 1, "compiled": 1},
    cost_kernels={"flat": 1, "reference": 1, "compiled": 1},
    color_fallbacks={"flat": "batched"},
    cost_fallbacks={},
)


def test_registry_check_passes_on_coherent_registries():
    assert check_registries(**GOOD_REGISTRIES) == []
    assert (
        check_registries(
            **GOOD_REGISTRIES,
            defaults={"engine": "flat", "color": "batched", "cost": "flat"},
        )
        == []
    )


def test_registry_check_flags_unresolvable_engine():
    broken = dict(GOOD_REGISTRIES, color_fallbacks={})
    findings = check_registries(**broken)
    assert any("'flat' has no colour kernel" in f.message for f in findings)


def test_registry_check_flags_bad_fallbacks_and_defaults():
    findings = check_registries(
        **dict(GOOD_REGISTRIES, color_fallbacks={"flat": "nope", "ghost": "batched"})
    )
    messages = "\n".join(f.message for f in findings)
    assert "unknown kernel 'nope'" in messages
    assert "unknown engine 'ghost'" in messages
    findings = check_registries(
        **GOOD_REGISTRIES, defaults={"engine": "turbo", "color": None, "cost": None}
    )
    assert any("DEFAULT_ENGINE = 'turbo'" in f.message for f in findings)


def test_live_registries_are_coherent():
    assert RULES["registry-coherence"].check_project(REPO_ROOT) == []


# --------------------------------------------------------------------------- #
# FFI contract
# --------------------------------------------------------------------------- #


C_PATH = REPO_ROOT / "src" / "repro" / "core" / "_gather_kernels.c"
PY_PATH = REPO_ROOT / "src" / "repro" / "core" / "engine_compiled.py"


def test_ffi_contract_passes_on_shipped_sources():
    assert check_ffi(C_PATH.read_text(), PY_PATH.read_text()) == []


def test_ffi_contract_covers_every_repro_symbol():
    from repro.analysis import parse_c_prototypes, parse_ctypes_decls

    c_symbols = set(parse_c_prototypes(C_PATH.read_text()))
    py_symbols = set(parse_ctypes_decls(PY_PATH.read_text()))
    declared = {
        match.group(0)
        for match in re.finditer(r"repro_\w+", C_PATH.read_text())
    }
    assert c_symbols == declared  # the regex parser misses no repro_* symbol
    assert c_symbols == py_symbols


def test_ffi_contract_fails_on_perturbed_c_copy(tmp_path):
    c_text = C_PATH.read_text()
    # Add a parameter to one kernel's declaration(s): arity mismatch.
    perturbed = c_text.replace(
        "repro_sequential_sum(", "repro_sequential_sum(int64_t injected_arg, "
    )
    assert perturbed != c_text
    copy = tmp_path / "_gather_kernels.c"
    copy.write_text(perturbed)
    findings = check_ffi(copy.read_text(), PY_PATH.read_text())
    assert any("arity mismatch" in f.message for f in findings)


def test_ffi_contract_fails_on_kind_restype_and_symbol_drift():
    c_text = C_PATH.read_text()
    py_text = PY_PATH.read_text()
    # Pointer element type drift: double* -> int64_t* on the C side.
    kind_drift = c_text.replace(
        "double repro_sequential_sum(const double *values",
        "double repro_sequential_sum(const int64_t *values",
    )
    assert kind_drift != c_text
    findings = check_ffi(kind_drift, py_text)
    assert any("kind mismatch" in f.message for f in findings)
    # Return-type drift: double repro_sequential_sum -> void.
    ret_drift = re.sub(
        r"\bdouble\s+(repro_sequential_sum)", r"void \1", c_text
    )
    assert ret_drift != c_text
    findings = check_ffi(ret_drift, py_text)
    assert any("return-type mismatch" in f.message for f in findings)
    # Symbol drift: rename a kernel on the C side only.
    renamed = c_text.replace("repro_strict_less", "repro_strictly_less")
    findings = check_ffi(renamed, py_text)
    messages = "\n".join(f.message for f in findings)
    assert "repro_strictly_less has no ctypes prototype" in messages
    assert "repro_strict_less has no declaration" in messages


# --------------------------------------------------------------------------- #
# interprocedural: lock order / deadlock
# --------------------------------------------------------------------------- #


def test_lock_order_flags_cycle_with_both_sites_and_reacquisition():
    findings = fixture_findings("lockorder_bad.py", "lock-order")
    assert sorted(f.line for f in findings) == [21, 40]
    cycle = next(f for f in findings if "lock-order cycle" in f.message)
    assert "Pair._alpha_lock" in cycle.message
    assert "Pair._beta_lock" in cycle.message
    # Both acquisition sites are named, file:line each.
    assert cycle.message.count("lockorder_bad.py:") >= 2
    reentry = next(f for f in findings if "re-acquired" in f.message)
    assert "Reentry._guard_lock" in reentry.message
    assert "self-deadlock" in reentry.message


def test_lock_order_allows_consistent_order_and_rlock_reentry():
    assert fixture_findings("lockorder_good.py", "lock-order") == []


def test_lock_graph_dot_renders_fixture_edges():
    parsed = SourceModule.parse(
        FIXTURES / "lockorder_bad.py", module="repro.service.fixture_lockorder_bad"
    )
    dot = lock_graph_dot(ProjectIndex.build([parsed]))
    assert dot.startswith("digraph lock_order")
    assert '"Pair._alpha_lock" -> "Pair._beta_lock"' in dot
    assert '"Pair._beta_lock" -> "Pair._alpha_lock"' in dot


# --------------------------------------------------------------------------- #
# interprocedural: blocking under lock
# --------------------------------------------------------------------------- #


def test_blocking_rule_flags_direct_transitive_and_subprocess():
    findings = fixture_findings("blocking_bad.py", "blocking-under-lock")
    assert sorted(f.line for f in findings) == [52, 56, 60]
    by_line = {f.line: f for f in findings}
    assert "os.fsync" in by_line[52].message
    assert "chain:" in by_line[56].message  # the two-deep WAL shape
    assert "Journal._write_line" in by_line[56].message
    assert "subprocess.run" in by_line[60].message
    assert "write" in by_line[60].message  # write-mode acquisition named


def test_blocking_rule_allows_io_outside_lock_and_read_side():
    assert fixture_findings("blocking_good.py", "blocking-under-lock") == []


# --------------------------------------------------------------------------- #
# interprocedural: atomicity (mutate-then-raise)
# --------------------------------------------------------------------------- #


def test_atomicity_flags_interleaved_mutations_and_loops():
    findings = fixture_findings("atomicity_bad.py", "atomicity")
    assert sorted(f.line for f in findings) == [24, 28, 40]
    messages = "\n".join(f.message for f in findings)
    assert "raise-capable" in messages
    assert "loop body" in messages  # the drain_all loop shape


def test_atomicity_allows_validated_staged_and_guarded_updates():
    assert fixture_findings("atomicity_good.py", "atomicity") == []


# --------------------------------------------------------------------------- #
# interprocedural: perturbed copies of the real service code
# --------------------------------------------------------------------------- #

API_PATH = REPO_ROOT / "src" / "repro" / "service" / "api.py"
STATE_PATH = REPO_ROOT / "src" / "repro" / "service" / "state.py"

_TREE_CACHE: dict[str, SourceModule] = {}


def tree_findings(rule: str, overrides: dict[Path, str] | None = None) -> list[Finding]:
    """Run one interprocedural rule over the real src tree.

    ``overrides`` replaces the text of specific files before indexing —
    the perturbation tests lint doctored copies of the real service code
    in its real whole-program context.  Unmodified files reuse a shared
    parse cache (the perturbations only ever touch one file).
    """
    if not _TREE_CACHE:
        for path in iter_source_files([REPO_ROOT / "src"]):
            _TREE_CACHE[str(path)] = SourceModule.parse(path)
    overrides = {str(k): v for k, v in (overrides or {}).items()}
    modules = [
        SourceModule.parse(path, text=overrides[path])
        if path in overrides
        else parsed
        for path, parsed in _TREE_CACHE.items()
    ]
    project = ProjectIndex.build(modules)
    findings = RULES[rule].check_interprocedural(project)
    by_path = {m.path: m for m in modules}
    kept: list[Finding] = []
    for finding in findings:
        module = by_path.get(finding.path)
        kept.extend(filter_suppressed(module, [finding]) if module else [finding])
    return kept


def test_real_tree_lock_graph_is_acyclic():
    assert tree_findings("lock-order") == []


def test_real_tree_blocking_and_atomicity_clean():
    assert tree_findings("blocking-under-lock") == []
    assert tree_findings("atomicity") == []


def test_lock_order_fires_on_reversed_acquisition_in_api_copy():
    probe = (
        "    def _reversed_probe(self):\n"
        "        with self._counts_lock:\n"
        "            with self._fleet_lock.write_locked():\n"
        "                return None\n\n"
    )
    api_text = API_PATH.read_text()
    perturbed = api_text.replace("    def submit(", probe + "    def submit(", 1)
    assert perturbed != api_text
    findings = tree_findings("lock-order", {API_PATH: perturbed})
    cycle = next(f for f in findings if "lock-order cycle" in f.message)
    assert "PlacementService._counts_lock" in cycle.message
    assert "PlacementService._fleet_lock" in cycle.message
    assert cycle.message.count("api.py:") >= 2  # both sites named


def test_blocking_fires_when_journal_pragma_is_stripped():
    api_text = API_PATH.read_text()
    stripped = api_text.replace("  # lint: allow(blocking-under-lock)", "")
    assert stripped != api_text
    findings = tree_findings("blocking-under-lock", {API_PATH: stripped})
    assert len(findings) == 1
    assert findings[0].path.endswith("api.py")
    assert "Journal._write_line" in findings[0].message
    assert "_fleet_lock[write]" in findings[0].message


def test_atomicity_fires_on_interleaved_drain_in_state_copy():
    state_text = STATE_PATH.read_text()
    two_phase = (
        "        for record in displaced:\n"
        "            self._tracker.release(record.blue_nodes)\n"
        "        for record in displaced:\n"
    )
    interleaved = (
        "        for record in displaced:\n"
        "            self._tracker.release(record.blue_nodes)\n"
    )
    assert two_phase in state_text
    perturbed = state_text.replace(two_phase, interleaved, 1)
    findings = tree_findings("atomicity", {STATE_PATH: perturbed})
    assert any(
        f.path.endswith("state.py") and "drain" in f.message for f in findings
    )


# --------------------------------------------------------------------------- #
# multi-line pragma spans
# --------------------------------------------------------------------------- #


def test_pragma_on_multiline_statement_header_suppresses_child_lines():
    assert run_fixture(FIXTURES / "pragma_multiline.py") == []


def test_stripped_pragmas_restore_the_findings(tmp_path):
    text = (FIXTURES / "pragma_multiline.py").read_text()
    stripped = re.sub(r"\s*# lint: allow\([a-z-]+\)", "", text)
    assert stripped != text
    copy = tmp_path / "pragma_multiline.py"
    copy.write_text(stripped)
    findings = run_fixture(copy)
    assert "blocking-under-lock" in rule_ids(findings)
    assert "lock-discipline" in rule_ids(findings)


# --------------------------------------------------------------------------- #
# shared-AST pipeline: parse-once, --jobs, --timing
# --------------------------------------------------------------------------- #


def test_full_tree_lint_parses_each_file_exactly_once():
    PARSE_COUNTS.clear()
    findings, errors = lint_project(REPO_ROOT)
    assert errors == []
    assert findings == []
    targets = {str(p) for p in iter_source_files([REPO_ROOT / "src"])}
    counted = {path: n for path, n in PARSE_COUNTS.items() if path in targets}
    assert set(counted) == targets
    over_parsed = {path: n for path, n in counted.items() if n != 1}
    assert over_parsed == {}


def test_jobs_fanout_matches_serial_run_and_keeps_parent_parse_counts():
    serial, serial_errors = lint_project(REPO_ROOT)
    PARSE_COUNTS.clear()
    fanned, fanned_errors = lint_project(REPO_ROOT, jobs=2)
    assert fanned_errors == serial_errors == []
    assert fanned == serial
    # Workers parse in their own interpreters; the parent still parses
    # each file exactly once (for the interprocedural phase).
    assert all(n == 1 for n in PARSE_COUNTS.values())


def test_shared_parse_phase_beats_per_rule_reparse(tmp_path):
    timings: dict[str, float] = {}
    lint_project(REPO_ROOT, timings=timings)
    assert set(timings) == {
        "parse", "module-rules", "project-rules", "interprocedural"
    }
    # The PR 9 layout re-visited the tree per rule; one shared sweep must
    # stay within a loose multiple of a single parse sweep (scheduler
    # noise allowed for — this is a regression tripwire, not a benchmark).
    tick = time.perf_counter()
    for path in iter_source_files([REPO_ROOT / "src"]):
        SourceModule.parse(path)
    one_sweep = time.perf_counter() - tick
    assert timings["parse"] <= one_sweep * 3 + 0.5


def test_timing_flag_prints_phases(capsys, monkeypatch):
    monkeypatch.chdir(REPO_ROOT)
    assert lint_main(["--strict", "--timing"]) == 0
    out = capsys.readouterr().out
    for phase in ("parse", "module-rules", "project-rules", "interprocedural"):
        assert f"timing: {phase} " in out
    total = float(re.search(r"timing: total (\d+\.\d+)s", out).group(1))
    assert total < 30.0  # loose wall-clock ceiling for the full tree


# --------------------------------------------------------------------------- #
# output formats
# --------------------------------------------------------------------------- #

GOLDEN_FINDINGS = [
    Finding(
        rule="lock-order",
        path="src/repro/service/api.py",
        line=10,
        message="lock-order cycle: A -> B -> A",
        hint="acquire locks in one global order",
        snippet="with self._b:",
        end_line=12,
    ),
    Finding(
        rule="determinism-rng",
        path="src/x.py",
        line=3,
        message="unseeded RNG: 100% bad",
        hint="pass a seed",
        snippet="rng = np.random.default_rng()",
    ),
]


def test_text_format_golden():
    assert render_findings(GOLDEN_FINDINGS, "text") == (
        "src/repro/service/api.py:10: [lock-order] lock-order cycle: "
        "A -> B -> A  (fix: acquire locks in one global order)\n"
        "src/x.py:3: [determinism-rng] unseeded RNG: 100% bad  (fix: pass a seed)"
    )


def test_github_format_golden():
    assert render_findings(GOLDEN_FINDINGS, "github") == (
        "::error file=src/repro/service/api.py,line=10,endLine=12,"
        "title=lock-order::lock-order cycle: A -> B -> A\n"
        "::error file=src/x.py,line=3,endLine=3,"
        "title=determinism-rng::unseeded RNG: 100%25 bad"
    )


def test_sarif_format_golden():
    document = json.loads(render_findings(GOLDEN_FINDINGS, "sarif"))
    assert document["version"] == "2.1.0"
    run = document["runs"][0]
    assert run["tool"]["driver"]["name"] == "soar-repro-lint"
    rule_index = {r["id"] for r in run["tool"]["driver"]["rules"]}
    assert rule_index == {"determinism-rng", "lock-order"}
    first = run["results"][0]
    assert first["ruleId"] == "lock-order"
    region = first["locations"][0]["physicalLocation"]["region"]
    assert (region["startLine"], region["endLine"]) == (10, 12)
    with pytest.raises(ValueError):
        render_findings(GOLDEN_FINDINGS, "yaml")


def test_format_flag_switches_runner_output(tmp_path, capsys, monkeypatch):
    monkeypatch.chdir(REPO_ROOT)
    bad = tmp_path / "bad.py"
    bad.write_text("import numpy as np\nrng = np.random.default_rng()\n")
    assert lint_main([str(bad), "--format", "github"]) == 1
    out = capsys.readouterr().out
    assert "::error file=" in out
    assert "title=determinism-rng" in out
    assert lint_main([str(bad), "--format", "sarif"]) == 1
    out = capsys.readouterr().out
    document = json.loads(out)  # sarif mode prints only the document
    assert len(document["runs"][0]["results"]) == 1
    assert lint_main(["--format", "sarif"]) == 0
    document = json.loads(capsys.readouterr().out)
    assert document["runs"][0]["results"] == []


def test_lock_graph_dot_artifact_written_for_real_tree(tmp_path):
    dot_path = tmp_path / "artifacts" / "lock_order.dot"
    findings, errors = lint_project(REPO_ROOT, dot_path=dot_path)
    assert errors == []
    assert findings == []
    dot = dot_path.read_text()
    assert dot.startswith("digraph lock_order")
    assert "PlacementService._fleet_lock" in dot
    # Edge labels are repo-relative (portable CI artifacts).
    assert str(REPO_ROOT) not in dot


# --------------------------------------------------------------------------- #
# baseline
# --------------------------------------------------------------------------- #


def test_shipped_baseline_is_empty():
    baseline = load_baseline(REPO_ROOT / "lint_baseline.json")
    assert baseline == set()


def test_baseline_roundtrip_and_split(tmp_path):
    known = Finding(
        rule="determinism-rng", path="src/x.py", line=3, message="m", hint="h",
        snippet="rng = np.random.default_rng()",
    )
    fresh = Finding(
        rule="layering", path="src/y.py", line=9, message="m2", hint="h2",
        snippet="import repro.service",
    )
    stale_key = ("broad-except", "src/z.py", "except Exception:")
    path = tmp_path / "baseline.json"
    write_baseline([known], path)
    baseline = load_baseline(path) | {stale_key}
    new, old, stale = split_findings([known, fresh], baseline)
    assert new == [fresh]
    assert old == [known]
    assert stale == {stale_key}
    payload = json.loads(path.read_text())
    assert payload["version"] == 1


# --------------------------------------------------------------------------- #
# whole-tree gate and CLI
# --------------------------------------------------------------------------- #


def test_shipped_tree_is_lint_clean():
    findings, errors = lint_project(REPO_ROOT)
    assert errors == []
    assert findings == []


def test_runner_cli_exit_codes(tmp_path, capsys, monkeypatch):
    monkeypatch.chdir(REPO_ROOT)
    assert lint_main(["--list-rules"]) == 0
    assert lint_main([]) == 0
    out = capsys.readouterr().out
    assert "lint clean" in out
    # A bad file surfaces as a new finding -> exit 1.
    bad = tmp_path / "bad.py"
    bad.write_text("import numpy as np\nrng = np.random.default_rng()\n")
    assert lint_main([str(bad)]) == 1
    # --strict fails on stale baseline entries.
    stale = tmp_path / "stale.json"
    stale.write_text(json.dumps({
        "version": 1,
        "findings": [{"rule": "layering", "path": "gone.py", "snippet": "x"}],
    }))
    assert lint_main([str(FIXTURES / "layering_good.py"), "--baseline", str(stale)]) == 0
    assert (
        lint_main(
            [str(FIXTURES / "layering_good.py"), "--baseline", str(stale), "--strict"]
        )
        == 1
    )


def test_cli_lint_subcommand():
    result = subprocess.run(
        [sys.executable, "-m", "repro.cli", "lint", "--list-rules"],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
        env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
    )
    assert result.returncode == 0
    assert "ffi-contract" in result.stdout


# --------------------------------------------------------------------------- #
# mypy gate (typing debt lives in mypy.ini, not inline ignores)
# --------------------------------------------------------------------------- #


def test_no_inline_type_ignores_in_core_and_service():
    offenders = []
    for layer in ("core", "service"):
        for path in (REPO_ROOT / "src" / "repro" / layer).rglob("*.py"):
            if "type: ignore" in path.read_text():
                offenders.append(str(path))
    assert offenders == []


@pytest.mark.skipif(
    importlib.util.find_spec("mypy") is None, reason="mypy not installed"
)
def test_mypy_clean_on_configured_layers():
    result = subprocess.run(
        [sys.executable, "-m", "mypy", "--config-file", "mypy.ini",
         "src/repro/core", "src/repro/service"],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
    )
    assert result.returncode == 0, result.stdout + result.stderr

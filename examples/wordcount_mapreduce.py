#!/usr/bin/env python3
"""Word-count (MapReduce) case study: bytes on the wire with in-network combiners.

This example mirrors Section 5.3's WC use case.  A rack-level tree network
(BT(64)) carries the shuffle phase of a distributed word count: every server
sends its local word-count shard towards the destination, and switches
selected by SOAR merge shards in flight exactly like MapReduce combiners.

The script reports, for a range of aggregation budgets:

* the network utilization (messages weighted by link time),
* the byte complexity of the sampled synthetic Zipf corpus,
* the analytic expected byte complexity (closed form, no sampling),

all normalized to the no-aggregation (all-red) baseline.

Run with::

    python examples/wordcount_mapreduce.py
"""

from __future__ import annotations

import numpy as np

from repro import Solver, bt_network, with_sampled_leaf_loads
from repro.apps import (
    WordCountApplication,
    evaluate_application,
    expected_byte_complexity,
)
from repro.core import all_red_cost
from repro.utils import render_table
from repro.workload import PowerLawLoadDistribution


def main() -> None:
    rng = np.random.default_rng(2021)

    # A 63-switch binary tree whose 32 leaves are top-of-rack switches with
    # a skewed (power-law) number of servers each.
    tree = with_sampled_leaf_loads(bt_network(64), PowerLawLoadDistribution(), rng=rng)
    print(f"network: {tree.num_switches} switches, {tree.total_load} servers")

    # The synthetic corpus: Zipf-distributed word popularities. Each server
    # holds a shard of word occurrences and emits its local counts.
    application = WordCountApplication(
        vocabulary_size=20_000, shard_size=1_000, zipf_exponent=1.1, rng=rng
    )
    stats = application.corpus_statistics()
    print(
        "corpus: vocabulary={vocabulary_size:.0f}, shard={shard_size:.0f} words, "
        "expected distinct words per shard={expected_distinct_per_shard:.0f}".format(**stats)
    )
    print()

    budgets = [0, 1, 2, 4, 8, 16]
    solutions = Solver().sweep(tree, budgets)

    baseline_utilization = all_red_cost(tree)
    baseline_bytes_sampled = evaluate_application(tree, frozenset(), application).total_bytes
    baseline_bytes_analytic = expected_byte_complexity(tree, frozenset(), application)

    rows = []
    for budget in budgets:
        solution = solutions[budget]
        evaluation = evaluate_application(tree, solution.blue_nodes, application)
        analytic = expected_byte_complexity(tree, solution.blue_nodes, application)
        rows.append(
            {
                "k": budget,
                "norm. utilization": solution.cost / baseline_utilization,
                "norm. bytes (sampled)": evaluation.total_bytes / baseline_bytes_sampled,
                "norm. bytes (analytic)": analytic / baseline_bytes_analytic,
                "blue switches": len(solution.blue_nodes),
            }
        )

    print(
        render_table(
            rows,
            title="Word count on BT(64): utilization vs bytes, normalized to all-red",
        )
    )
    print()
    print(
        "Observation (matches Figure 8b): because merged word-count messages keep\n"
        "growing with the number of distinct words, byte savings lag behind the\n"
        "utilization savings — yet a handful of combiners already removes most of\n"
        "the shuffle traffic."
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Incremental-upgrade planning on an irregular (scale-free) topology.

Two scenarios the paper motivates in its introduction and Appendix B:

1. **Irregular topologies.**  On a random preferential-attachment tree
   (a scale-free network, SF(128)) the "obvious" heuristic — upgrade the
   highest-degree switches — is far from optimal.  The script compares it
   against SOAR for a small budget.

2. **Incremental upgrades with restricted availability.**  Only a subset Λ
   of switches can physically host an aggregation engine (e.g. only the
   newer line cards).  SOAR takes Λ into account directly; the script shows
   how the achievable savings shrink as Λ shrinks, and that SOAR still
   extracts the optimum from whatever is available.

Run with::

    python examples/scalefree_upgrade_planning.py
"""

from __future__ import annotations

import numpy as np

from repro import Solver, scale_free_tree, utilization_cost
from repro.baselines import max_degree_strategy, random_strategy
from repro.core import all_red_cost
from repro.utils import render_table


def main() -> None:
    rng = np.random.default_rng(2021)
    tree = scale_free_tree(127, rng=rng, node_load=1)
    budget = 4
    solver = Solver()
    baseline = all_red_cost(tree)
    print(
        f"scale-free network: {tree.num_switches} switches, height {tree.height}, "
        f"all-red utilization {baseline:.0f}\n"
    )

    # --- Scenario 1: degree heuristic vs SOAR ---------------------------- #
    degree_blue = max_degree_strategy(tree, budget)
    random_blue = random_strategy(tree, budget, rng=rng)
    soar_solution = solver.solve(tree, budget)
    rows = [
        {
            "strategy": "Max degree",
            "utilization": utilization_cost(tree, degree_blue),
            "normalized": utilization_cost(tree, degree_blue) / baseline,
        },
        {
            "strategy": "Random",
            "utilization": utilization_cost(tree, random_blue),
            "normalized": utilization_cost(tree, random_blue) / baseline,
        },
        {
            "strategy": "SOAR",
            "utilization": soar_solution.cost,
            "normalized": soar_solution.cost / baseline,
        },
    ]
    print(render_table(rows, title=f"Placing k={budget} aggregation switches on SF(128)"))
    print()

    # --- Scenario 2: restricted availability ------------------------------ #
    switches = sorted(tree.switches, key=repr)
    rows = []
    for fraction in (1.0, 0.5, 0.25, 0.1):
        count = max(1, int(len(switches) * fraction))
        available = rng.choice(len(switches), size=count, replace=False)
        restricted = tree.with_available([switches[int(i)] for i in available])
        solution = solver.solve(restricted, budget)
        rows.append(
            {
                "fraction of switches upgradeable": fraction,
                "|Λ|": count,
                "optimal utilization": solution.cost,
                "normalized": solution.cost / baseline,
                "blue switches used": solution.num_blue,
            }
        )
    print(
        render_table(
            rows,
            title=f"Incremental upgrade: SOAR with k={budget} under restricted availability Λ",
        )
    )
    print()
    print(
        "Even when only 10% of the switches can host aggregation, placing the\n"
        "budget optimally inside that subset recovers a large share of the savings —\n"
        "the planning question the φ-BIC formulation was designed to answer."
    )


if __name__ == "__main__":
    main()

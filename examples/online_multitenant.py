#!/usr/bin/env python3
"""Online multi-tenant aggregation: sharing bounded switch capacity.

This example mirrors Section 5.2: a cloud provider offers in-network
aggregation as a service.  Tenants (workloads) arrive one at a time, each
asking for up to ``k`` aggregation switches, and every switch can serve at
most ``a(s)`` tenants.  The provider must decide, per tenant, which switches
to dedicate — without knowledge of future arrivals.

The script streams a mixed sequence of uniform and power-law tenants through
SOAR and the baseline strategies over the same arrivals and the same
capacity budget, then prints how the cumulative normalized utilization
degrades as capacity fills up.

Run with::

    python examples/online_multitenant.py
"""

from __future__ import annotations

from repro import bt_network
from repro.baselines import PAPER_STRATEGIES
from repro.online import compare_strategies_online, generate_workload_sequence
from repro.utils import render_table
from repro.workload import apply_rate_scheme


def main() -> None:
    tree = apply_rate_scheme(bt_network(128), "constant")
    budget = 8           # aggregation switches granted to each tenant
    capacity = 3         # how many tenants a single switch can serve
    num_tenants = 24

    workloads = generate_workload_sequence(tree, num_tenants, rng=42)
    outcomes = compare_strategies_online(
        tree, workloads, PAPER_STRATEGIES, budget=budget, capacity=capacity
    )

    print(
        f"network: {tree.num_switches} switches | per-tenant budget k={budget} | "
        f"switch capacity a(s)={capacity} | {num_tenants} tenants\n"
    )

    # Cumulative normalized utilization after every 4 tenants.
    checkpoints = list(range(4, num_tenants + 1, 4))
    rows = []
    for checkpoint in checkpoints:
        row = {"tenants handled": checkpoint}
        for name, outcome in outcomes.items():
            subset = outcome.workloads[:checkpoint]
            cost = sum(item.cost for item in subset)
            baseline = sum(item.all_red_cost for item in subset)
            row[name] = cost / baseline if baseline else 0.0
        rows.append(row)
    print(
        render_table(
            rows,
            title="Cumulative utilization normalized to all-red (lower is better)",
        )
    )
    print()

    # How much aggregation capacity is left per strategy at the end.
    rows = []
    for name, outcome in outcomes.items():
        used = sum(len(item.blue_nodes) for item in outcome.workloads)
        rows.append(
            {
                "strategy": name,
                "switch-slots used": used,
                "total utilization": outcome.total_cost,
                "normalized": outcome.normalized_cost,
            }
        )
    print(render_table(rows, title="End-of-sequence summary"))
    print()
    print(
        "As in Figure 7, SOAR stays ahead of every heuristic for the whole arrival\n"
        "sequence, and the gap is widest while aggregation capacity is still\n"
        "plentiful; once capacity is exhausted every strategy converges towards the\n"
        "all-red cost."
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Quickstart: solve the paper's motivating example with the staged API.

Builds the 7-switch complete binary tree of Figures 2 and 3 (leaf loads
2, 6, 5, 4, unit link rates), compares the simple placement strategies
against SOAR for a budget of two aggregation switches, and sweeps the
budget from 0 to 4 to show how quickly a handful of aggregation switches
shrinks the network utilization.

SOAR is a two-phase algorithm, and the API mirrors it: ``Solver()`` binds
the configuration, ``solver.gather(tree, max_budget)`` runs the expensive
dynamic program once, and the returned ``GatherTable`` answers *every*
budget up to the gathered one — ``table.cost(k)`` is a lookup,
``table.place(k)`` a cheap colour trace.  The whole budget sweep below
costs one gather.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import Solver, complete_binary_tree, utilization_cost
from repro.baselines import level_strategy, max_load_strategy, top_strategy
from repro.core import all_blue_cost, all_red_cost, per_link_utilization
from repro.utils import render_table


def main() -> None:
    # The example network: four racks with 2, 6, 5 and 4 servers behind
    # top-of-rack switches, aggregated through a binary tree towards the
    # destination server d.
    tree = complete_binary_tree(4, leaf_loads=[2, 6, 5, 4])

    print("=== The φ-BIC instance ===")
    print(f"switches: {tree.num_switches}, total servers: {tree.total_load}")
    print(f"all-red utilization (no aggregation): {all_red_cost(tree):.0f}")
    print(f"all-blue utilization (aggregate everywhere): {all_blue_cost(tree):.0f}")
    print()

    # One gather at the largest budget we will ever ask about answers
    # everything below: the strategy comparison, the sweep, the inspection.
    solver = Solver()
    table = solver.gather(tree, max_budget=4)

    # --- Figure 2: strategies vs SOAR at k = 2 -------------------------- #
    budget = 2
    strategies = {
        "Top": top_strategy(tree, budget),
        "Max": max_load_strategy(tree, budget),
        "Level": level_strategy(tree, budget),
        "SOAR": table.place(budget).blue_nodes,
    }
    rows = [
        {
            "strategy": name,
            "blue switches": ", ".join(sorted(map(str, blue))),
            "utilization": utilization_cost(tree, blue),
        }
        for name, blue in strategies.items()
    ]
    print(render_table(rows, title=f"Placement strategies with k = {budget} (Figure 2)"))
    print()

    # --- Figure 3: the budget sweep (colour traces off the same table) --- #
    sweep = table.sweep(range(0, 5))
    rows = [
        {
            "k": k,
            "optimal utilization": solution.cost,
            "blue switches": ", ".join(sorted(map(str, solution.blue_nodes))),
        }
        for k, solution in sorted(sweep.items())
    ]
    print(render_table(rows, title="Optimal utilization per budget (Figure 3)"))
    print()

    # --- A look inside one solution -------------------------------------- #
    solution = table.place(2)
    link_rows = [
        {"link": f"{switch} -> {tree.parent(switch)}", "messages x rho": value}
        for switch, value in sorted(per_link_utilization(tree, solution.blue_nodes).items())
    ]
    print(render_table(link_rows, title="Per-link utilization of the optimal k = 2 placement"))


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Distributed-ML case study: gradient aggregation towards a parameter server.

This example mirrors Section 5.3's PS use case and adds the latency
perspective the paper discusses qualitatively: worker servers send sparse
gradient updates (10 000 features, 0.5 dropout) towards a parameter server;
switches chosen by SOAR sum gradients in flight.

For a range of budgets the script reports the normalized utilization, the
normalized byte complexity, and — using the event-driven software dataplane —
the Reduce completion time, showing the trade-off between saving bandwidth
(aggregating switches wait for their whole subtree) and finishing early.

Run with::

    python examples/distributed_ml_paramserver.py
"""

from __future__ import annotations

import numpy as np

from repro import Solver, bt_network, with_sampled_leaf_loads
from repro.apps import ParameterServerApplication, expected_byte_complexity
from repro.core import all_red_cost
from repro.simulation import simulate_reduce
from repro.utils import render_table
from repro.workload import UniformLoadDistribution, apply_rate_scheme


def main() -> None:
    rng = np.random.default_rng(7)

    # BT(64) with link rates that grow towards the core (the "linear" scheme
    # of the paper) and 4-6 workers behind every top-of-rack switch.
    tree = apply_rate_scheme(bt_network(64), "linear")
    tree = with_sampled_leaf_loads(tree, UniformLoadDistribution(), rng=rng)
    print(f"network: {tree.num_switches} switches, {tree.total_load} workers")

    application = ParameterServerApplication(feature_dimension=10_000, dropout=0.5, rng=rng)
    print(
        f"gradients: {application.feature_dimension} features, "
        f"dropout {application.dropout}, "
        f"~{application.expected_message_bytes(1) / 1024:.1f} KiB per worker update"
    )
    print()

    budgets = [0, 1, 2, 4, 8, 16, 32]
    solutions = Solver().sweep(tree, budgets)

    baseline_utilization = all_red_cost(tree)
    baseline_bytes = expected_byte_complexity(tree, frozenset(), application)
    baseline_sim = simulate_reduce(tree, frozenset())

    rows = []
    for budget in budgets:
        solution = solutions[budget]
        sim = simulate_reduce(tree, solution.blue_nodes)
        placement_bytes = expected_byte_complexity(tree, solution.blue_nodes, application)
        rows.append(
            {
                "k": budget,
                "norm. utilization": solution.cost / baseline_utilization,
                "norm. bytes": placement_bytes / baseline_bytes,
                "completion time": sim.completion_time,
                "completion vs all-red": sim.completion_time / baseline_sim.completion_time,
                "bottleneck link busy": sim.bottleneck_busy_time,
            }
        )

    print(
        render_table(
            rows,
            title="Gradient aggregation on BT(64), linear link rates (normalized to all-red)",
        )
    )
    print()
    print(
        "Observations: (i) with 0.5 dropout the byte curve tracks the utilization\n"
        "curve closely (Figure 8 of the paper: PS message sizes barely grow up the\n"
        "tree); (ii) the dataplane simulation shows aggregation also shortens the\n"
        "completion time because far fewer messages queue on the core links."
    )


if __name__ == "__main__":
    main()

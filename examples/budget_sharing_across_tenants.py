#!/usr/bin/env python3
"""Sharing a global aggregation budget across tenants (Section 8 extension).

The paper's discussion section asks how a provider should split its overall
in-network computing capacity across workloads when tenants do not all
deserve the same number of aggregation switches.  This example answers that
question offline: given a batch of tenant workloads with very different
skew, it compares

* a naive *even split* of the total budget across tenants, against
* the *optimal split* computed by ``repro.online.allocate_budgets`` from the
  per-tenant cost curves that a single SOAR-Gather run per tenant provides.

Run with::

    python examples/budget_sharing_across_tenants.py
"""

from __future__ import annotations

import numpy as np

from repro import bt_network
from repro.core import all_red_cost
from repro.online import allocate_budgets
from repro.utils import render_table
from repro.workload import PowerLawLoadDistribution, UniformLoadDistribution
from repro.workload.distributions import sample_leaf_loads


def main() -> None:
    rng = np.random.default_rng(2024)
    tree = bt_network(64)

    # Six tenants: three with smooth (uniform) load, three highly skewed.
    uniform = UniformLoadDistribution()
    skewed = PowerLawLoadDistribution()
    tenants = []
    labels = []
    for index in range(3):
        tenants.append(sample_leaf_loads(tree, uniform, rng=rng))
        labels.append(f"uniform-{index}")
    for index in range(3):
        tenants.append(sample_leaf_loads(tree, skewed, rng=rng))
        labels.append(f"skewed-{index}")

    total_budget = 18  # aggregation-switch assignments available in total
    allocation = allocate_budgets(tree, tenants, total_budget)

    rows = []
    even_share = total_budget // len(tenants)
    for label, loads, budget, curve in zip(
        labels, tenants, allocation.budgets, allocation.cost_curves
    ):
        baseline = all_red_cost(tree.with_loads(loads))
        rows.append(
            {
                "tenant": label,
                "total servers": sum(loads.values()),
                "budget (optimal split)": budget,
                "budget (even split)": even_share,
                "norm. cost at optimal budget": curve[budget] / baseline,
                "norm. cost at even budget": curve[even_share] / baseline,
            }
        )
    print(render_table(rows, title=f"Splitting {total_budget} aggregation switches across 6 tenants"))
    print()
    print(
        f"total utilization, optimal split: {allocation.total_cost:.1f}\n"
        f"total utilization, even split:    {allocation.uniform_cost:.1f}\n"
        f"improvement over the even split:  {100 * allocation.improvement_over_uniform:.1f}%"
    )
    print()
    print(
        "Skewed tenants benefit more from each extra aggregation switch, so the\n"
        "optimal split gives them a larger share of the budget — the per-tenant\n"
        "cost curves produced by SOAR-Gather make this a simple dynamic program."
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""The placement service under tenant churn: cache reuse in action.

This example runs the long-lived multi-tenant placement service of
:mod:`repro.service` through a day in the life of an aggregation provider:

1. a wave of tenants is admitted (each gets an optimal SOAR placement and
   consumes switch capacity),
2. recurring tenants keep re-querying the same workloads — these hit the
   gather-table cache and are answered without recomputing anything,
3. some tenants depart (capacity returns, previously-seen availability
   states make old cache entries live again),
4. a switch is drained for maintenance — the tenants using it are
   displaced, automatically re-placed on the remaining fleet, and the cache
   entries that mention the drained switch (and only those) are dropped,
5. the service "crashes" and is rebuilt from a snapshot plus the
   write-ahead journal tail — the restored fleet answers bit-identically
   to the one that never went down.

Along the way the script prints the service's own statistics: cache hit
rate, warm/cold latency, and the fleet's capacity utilization.  Every
answer the service gives is bit-identical to a cold ``repro.Solver().solve`` on
the equivalent instance — the test-suite's differential replays enforce
this invariant continuously.

Run with::

    python examples/service_churn.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import bt_network
from repro.service import (
    AdmitRequest,
    DrainRequest,
    Journal,
    PlacementService,
    ReleaseRequest,
    SolveRequest,
    StatsRequest,
    generate_churn_trace,
    replay_trace,
)
from repro.utils import render_table
from repro.workload import PowerLawLoadDistribution, apply_rate_scheme
from repro.workload.distributions import sample_leaf_loads


def main() -> None:
    tree = apply_rate_scheme(bt_network(256), "constant")
    # Capacity 8: six 8-switch tenants cannot saturate any switch, so the
    # availability set Λ — part of every cache key — stays stable through
    # the arrival wave and the re-queries below all hit.  (Drop this to 3
    # and watch some re-queries go cold: every saturation changes Λ, and
    # the service correctly refuses to reuse tables from a different Λ.)
    capacity = 8
    service = PlacementService(tree, capacity=capacity)
    budget = 8

    # --- 1. a wave of arrivals ------------------------------------------ #
    workloads = {
        f"tenant-{index}": sample_leaf_loads(
            tree, PowerLawLoadDistribution(), rng=index
        )
        for index in range(6)
    }
    print(f"Admitting 6 tenants (budget k={budget}, capacity a(s)={capacity}):")
    for tenant_id, loads in workloads.items():
        response = service.submit(
            AdmitRequest(tenant_id=tenant_id, loads=loads, budget=budget)
        )
        print(
            f"  {tenant_id}: cost {response.cost:8.1f}  "
            f"blue switches {len(response.blue_nodes):2d}  "
            f"{'cache hit' if response.cache_hit else 'cold solve'}"
        )

    # --- 2. recurring queries hit the cache ----------------------------- #
    print("\nRe-querying every tenant's workload (should be all cache hits):")
    for tenant_id, loads in workloads.items():
        response = service.submit(SolveRequest(loads=loads, budget=budget))
        print(
            f"  {tenant_id}: {'cache hit' if response.cache_hit else 'cold solve'} "
            f"in {1e3 * response.elapsed_s:.2f} ms"
        )

    # --- 3. departures free capacity ------------------------------------ #
    for tenant_id in ("tenant-1", "tenant-4"):
        released = service.submit(ReleaseRequest(tenant_id=tenant_id))
        print(f"\n{tenant_id} departed; {len(released.restored)} switch slots restored")

    # --- 4. drain a switch used by someone ------------------------------ #
    victim = next(
        switch
        for record in service.state.tenants().values()
        for switch in sorted(record.blue_nodes, key=repr)
    )
    drained = service.submit(DrainRequest(switch=victim))
    print(f"\nDrained switch {victim!r}:")
    for move in drained.displaced:
        print(
            f"  {move.tenant_id} displaced: cost {move.old_cost:.1f} -> "
            f"{move.new_cost:.1f} on {len(move.new_blue_nodes)} switches"
        )
    print(f"  {drained.invalidated_entries} cache entries invalidated (only those whose Λ held {victim!r})")

    # --- 5. crash safety: snapshot + journal tail ------------------------ #
    print("\nCrash drill: a journaled twin of the fleet goes down and comes back.")
    with tempfile.TemporaryDirectory() as workdir:
        journal = Journal(Path(workdir) / "fleet.jsonl", tree=tree)
        twin = PlacementService(tree, capacity=capacity, journal=journal)
        for tenant_id in ("tenant-0", "tenant-2", "tenant-3"):
            twin.submit(
                AdmitRequest(tenant_id=tenant_id, loads=workloads[tenant_id], budget=budget)
            )
        snapshot = twin.snapshot()  # operator checkpoint (journal seq 3)
        twin.submit(
            AdmitRequest(tenant_id="tenant-5", loads=workloads["tenant-5"], budget=budget)
        )
        twin.submit(ReleaseRequest(tenant_id="tenant-2"))
        before_crash = twin.submit(SolveRequest(loads=workloads["tenant-0"], budget=budget))
        journal.close()  # the "crash": the process is gone, the files remain

        restored = PlacementService.restore(
            tree, snapshot, journal=Journal(Path(workdir) / "fleet.jsonl", tree=tree)
        )
        after_restore = restored.submit(
            SolveRequest(loads=workloads["tenant-0"], budget=budget)
        )
        print(
            f"  snapshot at seq {snapshot['seq']}, journal tail of "
            f"{restored.mutation_seq - snapshot['seq']} events replayed"
        )
        print(
            f"  tenants {sorted(restored.state.tenants())} restored; "
            f"Λ digest matches: "
            f"{restored.state.availability_fingerprint() == twin.state.availability_fingerprint()}"
        )
        print(
            "  solve after restore is bit-identical: "
            f"{after_restore.blue_nodes == before_crash.blue_nodes and after_restore.cost == before_crash.cost}"
        )
        print(
            f"  cache pre-warmed from the snapshot's hot workloads: "
            f"{len(restored.cache)} entries"
        )

    # --- service statistics --------------------------------------------- #
    stats = service.submit(StatsRequest())
    print()
    print(render_table([dict(stats.fleet)], title="Fleet state"))
    print()
    print(render_table([dict(stats.cache)], title="Gather-table cache"))

    # --- and at scale: a replayed churn trace --------------------------- #
    trace = generate_churn_trace(tree, 120, seed=42, budget=budget, workload_pool=6)
    report = replay_trace(tree, trace, capacity=capacity)
    print()
    print(
        render_table(
            [report.summary_row()],
            title="120-request churn-trace replay (fresh service)",
        )
    )
    print(
        "\nWarm requests ride the gather-table cache (budget upcasting included),\n"
        "so repeated placement queries cost a table lookup plus at most a colour\n"
        "trace — the cold/warm ratio above is the speedup the service layer adds\n"
        "on top of the flat gather engine."
    )


if __name__ == "__main__":
    main()

"""Application case studies: word count (WC) and parameter server (PS)."""

from repro.apps.base import Application, ApplicationEvaluation, evaluate_application
from repro.apps.bytes_model import (
    analytic_link_bytes,
    expected_byte_complexity,
    message_group_sizes,
    normalized_byte_complexity,
)
from repro.apps.paramserver import ParameterServerApplication, SparseGradient
from repro.apps.wordcount import (
    WordCountApplication,
    expected_distinct_words,
    zipf_probabilities,
)

__all__ = [
    "Application",
    "ApplicationEvaluation",
    "ParameterServerApplication",
    "SparseGradient",
    "WordCountApplication",
    "analytic_link_bytes",
    "evaluate_application",
    "expected_byte_complexity",
    "expected_distinct_words",
    "message_group_sizes",
    "normalized_byte_complexity",
    "zipf_probabilities",
]

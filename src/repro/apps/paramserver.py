"""Parameter-server (PS) use case: distributed-ML gradient aggregation.

The paper's PS case study has worker servers send gradient updates over a
10 000-dimensional feature space to a parameter server, applying a dropout
rate of 0.5 so that each worker's update touches only about half of the
coordinates (the paper explicitly does *not* train a real network — only
the messages matter — and we follow the same substitution).

A worker's message is a sparse gradient: the set of active coordinates with
their values.  Aggregation sums gradients, so the aggregate's support is the
union of the supports; with a 0.5 dropout the union saturates quickly, which
is why the paper observes byte complexity tracking utilization closely for
PS (message sizes barely grow up the tree) in contrast to WC.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.tree import NodeId
from repro.exceptions import WorkloadError

#: Default wire size of one sparse entry: a 4-byte coordinate index plus a
#: 4-byte float32 value.
DEFAULT_INDEX_BYTES: int = 4
DEFAULT_VALUE_BYTES: int = 4
DEFAULT_HEADER_BYTES: int = 32


@dataclass
class SparseGradient:
    """A sparse gradient message: active-coordinate mask plus dense values.

    ``mask`` is a boolean array over the feature space; ``values`` holds the
    gradient restricted to the active coordinates (zero elsewhere).  Keeping
    the mask dense makes merging a cheap vectorized OR / add even for tens of
    thousands of features.
    """

    mask: np.ndarray
    values: np.ndarray

    @property
    def nnz(self) -> int:
        """Number of active coordinates."""
        return int(self.mask.sum())

    @property
    def dimension(self) -> int:
        """Size of the feature space."""
        return int(self.mask.shape[0])


@dataclass
class ParameterServerApplication:
    """Synthetic sparse-gradient workload.

    Parameters
    ----------
    feature_dimension:
        Size of the gradient vector (the paper uses 10 000).
    dropout:
        Probability that a coordinate is dropped from a worker's update
        (the paper uses 0.5); ``dropout = 0`` sends dense gradients, which
        makes byte complexity exactly proportional to message complexity.
    rng:
        ``numpy`` generator or seed.
    index_bytes, value_bytes, header_bytes:
        Wire-format constants for the sparse encoding.
    dense_threshold:
        When the fraction of active coordinates exceeds this threshold the
        message is encoded densely (values only, no indices), as a real
        system would; this caps the aggregate's size at
        ``header + dimension * value_bytes``.
    """

    feature_dimension: int = 10_000
    dropout: float = 0.5
    rng: np.random.Generator | int | None = None
    index_bytes: int = DEFAULT_INDEX_BYTES
    value_bytes: int = DEFAULT_VALUE_BYTES
    header_bytes: int = DEFAULT_HEADER_BYTES
    dense_threshold: float = 0.5
    name: str = "PS"
    _generator: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.feature_dimension < 1:
            raise WorkloadError(
                f"feature dimension must be >= 1, got {self.feature_dimension}"
            )
        if not 0.0 <= self.dropout < 1.0:
            raise WorkloadError(f"dropout must be in [0, 1), got {self.dropout}")
        if not 0.0 < self.dense_threshold <= 1.0:
            raise WorkloadError(
                f"dense threshold must be in (0, 1], got {self.dense_threshold}"
            )
        self._generator = (
            self.rng
            if isinstance(self.rng, np.random.Generator)
            else np.random.default_rng(self.rng)
        )

    # -- Application protocol ------------------------------------------- #

    def produce(self, switch: NodeId, count: int) -> list[SparseGradient]:
        """Sample one sparse gradient per server attached to ``switch``."""
        payloads: list[SparseGradient] = []
        for _ in range(count):
            mask = self._generator.random(self.feature_dimension) >= self.dropout
            values = np.zeros(self.feature_dimension, dtype=np.float64)
            active = int(mask.sum())
            if active:
                values[mask] = self._generator.standard_normal(active)
            payloads.append(SparseGradient(mask=mask, values=values))
        return payloads

    def combine(self, payloads: list[SparseGradient]) -> SparseGradient:
        """Sum gradients; the aggregate's support is the union of supports."""
        mask = np.zeros(self.feature_dimension, dtype=bool)
        values = np.zeros(self.feature_dimension, dtype=np.float64)
        for payload in payloads:
            mask |= payload.mask
            values += payload.values
        return SparseGradient(mask=mask, values=values)

    def sizeof(self, payload: SparseGradient) -> float:
        """Wire size of a gradient message.

        Sparse encoding (index + value per active coordinate) while the
        density stays below ``dense_threshold``; dense encoding (values
        only) above it.
        """
        nnz = payload.nnz
        density = nnz / self.feature_dimension
        sparse_bytes = nnz * (self.index_bytes + self.value_bytes)
        dense_bytes = self.feature_dimension * self.value_bytes
        body = dense_bytes if density > self.dense_threshold else sparse_bytes
        return float(self.header_bytes + body)

    # -- analytic helpers ------------------------------------------------ #

    def expected_active_fraction(self, workers: int) -> float:
        """Expected fraction of coordinates active in the sum of ``workers`` updates."""
        if workers < 0:
            raise WorkloadError(f"workers must be non-negative, got {workers}")
        return 1.0 - self.dropout**workers

    def expected_message_bytes(self, workers: int) -> float:
        """Expected wire size of the aggregate of ``workers`` gradients."""
        if workers == 0:
            return 0.0
        fraction = self.expected_active_fraction(workers)
        nnz = fraction * self.feature_dimension
        sparse_bytes = nnz * (self.index_bytes + self.value_bytes)
        dense_bytes = self.feature_dimension * self.value_bytes
        body = dense_bytes if fraction > self.dense_threshold else sparse_bytes
        return self.header_bytes + body

"""Word-count (WC) use case: big-data aggregation with growing messages.

The paper's WC case study performs a distributed word count over a
Wikipedia dump (54 M words, 800 K unique) and measures how many bytes cross
the network when the per-server word-count shards are aggregated in-network.
Wikipedia text is not available offline, so the reproduction substitutes a
synthetic corpus whose word popularities follow a Zipf law — the property of
natural-language text the byte complexity actually depends on: partial
counts over popular words collapse when merged, while the long tail keeps
message sizes growing towards the root.

Each server holds a shard of ``shard_size`` word occurrences; its message is
the dictionary ``{word_id: count}`` over its shard.  Merging messages sums
the dictionaries (the number of distinct keys, i.e. the message size, grows
sub-additively).  Message size on the wire is ``header + entries *
(key_bytes + count_bytes)``.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

import numpy as np

from repro.core.tree import NodeId
from repro.exceptions import WorkloadError

#: Default on-the-wire size of one dictionary entry: an 8-byte word key
#: (hash / dictionary id) plus an 8-byte count.
DEFAULT_KEY_BYTES: int = 8
DEFAULT_COUNT_BYTES: int = 8
#: Default per-message header (source id, sequence number, entry count).
DEFAULT_HEADER_BYTES: int = 32


def zipf_probabilities(vocabulary_size: int, exponent: float = 1.1) -> np.ndarray:
    """Return the Zipf(``exponent``) probability of each of the vocabulary words."""
    if vocabulary_size < 1:
        raise WorkloadError(f"vocabulary size must be >= 1, got {vocabulary_size}")
    if exponent <= 0:
        raise WorkloadError(f"Zipf exponent must be positive, got {exponent}")
    ranks = np.arange(1, vocabulary_size + 1, dtype=np.float64)
    weights = ranks**-exponent
    return weights / weights.sum()


def expected_distinct_words(
    shard_size: int,
    probabilities: np.ndarray,
) -> float:
    """Expected number of distinct words in a shard of ``shard_size`` draws.

    Classic occupancy computation: a word with probability ``p`` is absent
    from the shard with probability ``(1 - p)^shard_size``.
    """
    if shard_size < 0:
        raise WorkloadError(f"shard size must be non-negative, got {shard_size}")
    if shard_size == 0:
        return 0.0
    absent = np.power(1.0 - probabilities, shard_size)
    return float(np.sum(1.0 - absent))


@dataclass
class WordCountApplication:
    """Synthetic Zipf-corpus word-count workload.

    Parameters
    ----------
    vocabulary_size:
        Number of distinct words in the corpus.  The paper's corpus has
        800 K unique words; the default is scaled down so the Reduce over a
        ``BT(256)`` network runs in seconds, and can be raised freely.
    shard_size:
        Number of word occurrences each server contributes.  The paper's
        54 M words spread over its servers correspond to tens of thousands
        of words per server; the default again is scaled down.
    zipf_exponent:
        Popularity skew of the corpus (≈ 1 for natural language).
    rng:
        ``numpy`` generator or seed controlling shard sampling.
    key_bytes, count_bytes, header_bytes:
        Wire-format constants.
    """

    vocabulary_size: int = 50_000
    shard_size: int = 2_000
    zipf_exponent: float = 1.1
    rng: np.random.Generator | int | None = None
    key_bytes: int = DEFAULT_KEY_BYTES
    count_bytes: int = DEFAULT_COUNT_BYTES
    header_bytes: int = DEFAULT_HEADER_BYTES
    name: str = "WC"
    _probabilities: np.ndarray = field(init=False, repr=False)
    _generator: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.shard_size < 0:
            raise WorkloadError(f"shard size must be non-negative, got {self.shard_size}")
        self._probabilities = zipf_probabilities(self.vocabulary_size, self.zipf_exponent)
        self._generator = (
            self.rng
            if isinstance(self.rng, np.random.Generator)
            else np.random.default_rng(self.rng)
        )

    # -- Application protocol ------------------------------------------- #

    def produce(self, switch: NodeId, count: int) -> list[Counter]:
        """Sample one word-count shard per server attached to ``switch``."""
        payloads: list[Counter] = []
        for _ in range(count):
            draws = self._generator.choice(
                self.vocabulary_size, size=self.shard_size, p=self._probabilities
            )
            words, counts = np.unique(draws, return_counts=True)
            payloads.append(Counter(dict(zip(words.tolist(), counts.tolist()))))
        return payloads

    def combine(self, payloads: list[Counter]) -> Counter:
        """Merge shards by summing word counts."""
        merged: Counter = Counter()
        for payload in payloads:
            merged.update(payload)
        return merged

    def sizeof(self, payload: Counter) -> float:
        """Wire size: header plus one (key, count) entry per distinct word."""
        return float(
            self.header_bytes + len(payload) * (self.key_bytes + self.count_bytes)
        )

    # -- analytic helpers ------------------------------------------------ #

    def expected_message_bytes(self, servers: int) -> float:
        """Expected wire size of the aggregate of ``servers`` shards.

        Uses the occupancy formula on a combined shard of
        ``servers * shard_size`` draws — the analytic counterpart used by
        the fast byte-model experiments.
        """
        distinct = expected_distinct_words(servers * self.shard_size, self._probabilities)
        return self.header_bytes + distinct * (self.key_bytes + self.count_bytes)

    def corpus_statistics(self) -> dict[str, float]:
        """Summary statistics of the synthetic corpus (for documentation/tests)."""
        return {
            "vocabulary_size": float(self.vocabulary_size),
            "shard_size": float(self.shard_size),
            "zipf_exponent": float(self.zipf_exponent),
            "expected_distinct_per_shard": expected_distinct_words(
                self.shard_size, self._probabilities
            ),
        }

"""Analytic byte-complexity model.

Running the content-carrying Reduce of :mod:`repro.core.reduce_op` gives the
exact byte complexity of one sampled workload, but it materializes every
message.  For the large sweeps of Figure 8 (``BT(256)``, budgets up to 64,
several repetitions) the library also provides an *analytic* model that
computes the expected byte complexity directly:

1. For a placement ``U``, every message crossing a link aggregates the
   contributions of a well-defined set of servers: either a single server
   whose message has not met a blue switch yet, or all the servers below a
   blue switch whose aggregate has not been re-aggregated since.
   :func:`message_group_sizes` computes, per link, the multiset of such
   group sizes in one post-order pass.
2. Applications expose ``expected_message_bytes(servers)`` — the expected
   wire size of a message aggregating ``servers`` independent contributions
   (the word-count occupancy formula, the parameter-server union formula).
   By linearity of expectation, summing the expected size of every group on
   every link gives the expected byte complexity.

The sampled and analytic paths agree (the test-suite checks they are close),
and the analytic path is orders of magnitude faster.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable, Mapping
from typing import Callable, Protocol

from repro.core.reduce_op import validate_placement
from repro.core.tree import NodeId, TreeNetwork


class SizeModel(Protocol):
    """Anything that can predict the expected size of an aggregate message."""

    def expected_message_bytes(self, servers: int) -> float:
        """Expected wire size (bytes) of a message aggregating ``servers`` inputs."""


def message_group_sizes(
    tree: TreeNetwork,
    blue_nodes: Iterable[NodeId],
    loads: Mapping[NodeId, int] | None = None,
) -> dict[NodeId, Counter]:
    """Return, for every link, the multiset of aggregation-group sizes crossing it.

    The result maps each switch ``s`` to a :class:`collections.Counter`
    whose keys are group sizes (number of servers aggregated into one
    message) and whose values are how many messages of that group size cross
    the link ``(s, p(s))``.  The total message count per link equals
    :func:`repro.core.reduce_op.link_message_counts` except that messages
    aggregating zero servers are not sent (a blue switch with an empty
    subtree stays silent), matching the content-carrying Reduce.
    """
    blue = validate_placement(tree, blue_nodes)
    load_of = tree.load if loads is None else lambda s: int(loads.get(s, 0))

    per_link: dict[NodeId, Counter] = {}
    inbox: dict[NodeId, Counter] = {}
    for switch in tree.switches:  # post-order
        groups: Counter = inbox.pop(switch, Counter())
        local = load_of(switch)
        if local:
            groups[1] += local

        if switch in blue and groups:
            total_servers = sum(size * count for size, count in groups.items())
            groups = Counter({total_servers: 1})

        per_link[switch] = groups
        parent = tree.parent(switch)
        if parent != tree.destination:
            destination_box = inbox.setdefault(parent, Counter())
            destination_box.update(groups)
    return per_link


def analytic_link_bytes(
    tree: TreeNetwork,
    blue_nodes: Iterable[NodeId],
    size_of_group: Callable[[int], float],
    loads: Mapping[NodeId, int] | None = None,
) -> dict[NodeId, float]:
    """Expected bytes crossing every link under a generic group-size model.

    ``size_of_group(servers)`` returns the expected wire size of a message
    aggregating ``servers`` server contributions.
    """
    groups = message_group_sizes(tree, blue_nodes, loads=loads)
    result: dict[NodeId, float] = {}
    size_cache: dict[int, float] = {}
    for switch, counter in groups.items():
        total = 0.0
        for size, count in counter.items():
            if size not in size_cache:
                size_cache[size] = float(size_of_group(size))
            total += size_cache[size] * count
        result[switch] = total
    return result


def expected_byte_complexity(
    tree: TreeNetwork,
    blue_nodes: Iterable[NodeId],
    model: SizeModel,
    loads: Mapping[NodeId, int] | None = None,
) -> float:
    """Expected total bytes transmitted over all links for a placement."""
    link_bytes = analytic_link_bytes(
        tree, blue_nodes, model.expected_message_bytes, loads=loads
    )
    return float(sum(link_bytes.values()))


def normalized_byte_complexity(
    tree: TreeNetwork,
    blue_nodes: Iterable[NodeId],
    model: SizeModel,
    reference: str = "all-red",
    loads: Mapping[NodeId, int] | None = None,
) -> float:
    """Byte complexity of a placement normalized to a reference placement.

    ``reference`` is ``"all-red"`` (Figure 8b) or ``"all-blue"``
    (Figure 8c).  Values below 1 mean the placement transmits fewer bytes
    than the reference; Figure 8c reports values above 1 because a bounded
    placement can never beat aggregating everywhere.
    """
    value = expected_byte_complexity(tree, blue_nodes, model, loads=loads)
    if reference == "all-red":
        reference_blue: frozenset[NodeId] = frozenset()
    elif reference == "all-blue":
        reference_blue = frozenset(tree.switches)
    else:
        raise ValueError(f"reference must be 'all-red' or 'all-blue', got {reference!r}")
    baseline = expected_byte_complexity(tree, reference_blue, model, loads=loads)
    if baseline == 0.0:
        return 0.0
    return value / baseline

"""Reproduction of "SOAR: Minimizing Network Utilization with Bounded
In-network Computing" (Segal, Avin, Scalosub — CoNEXT 2021).

The package implements the φ-BIC problem and the SOAR optimal placement
algorithm, the contending baselines, the topology / workload generators of
the paper's evaluation, the online multi-workload extension, the word-count
and parameter-server byte-complexity case studies, an event-driven software
dataplane, and an experiment harness that regenerates every figure.

Quickstart
----------
>>> import repro
>>> tree = repro.complete_binary_tree(4, leaf_loads=[2, 6, 5, 4])
>>> solution = repro.solve(tree, budget=2)
>>> solution.cost
20.0

Gather engines
--------------
Every solver entry point (:func:`repro.solve`,
:func:`repro.solve_budget_sweep`, :func:`repro.optimal_cost`, and the raw
:func:`repro.gather`) accepts an ``engine=`` keyword selecting the
SOAR-Gather implementation:

* ``engine="flat"`` (default) — the vectorized flat-array kernel of
  :mod:`repro.core.engine`: one contiguous ``(node, l, i)`` tensor, leaves
  initialized in a single broadcast, and the per-level child merges batched
  across all nodes of a level at once,
* ``engine="reference"`` — the per-node Algorithm 3 implementation of
  :mod:`repro.core.gather`, kept as ground truth for differential testing.

The two produce bit-identical tables, costs, and placements;
``tests/test_engine_differential.py`` enforces this on hundreds of seeded
random instances.

Placement service
-----------------
:mod:`repro.service` wraps the solver in a long-lived multi-tenant daemon:
:class:`repro.PlacementService` owns fleet state (residual switch capacity,
active tenants), serves typed ``Solve`` / ``Sweep`` / ``Admit`` /
``Release`` / ``Drain`` / ``Stats`` requests through a batched loop, and
reuses gather tables across requests via an LRU cache with budget
upcasting — warm queries skip the gather entirely while staying
bit-identical to cold :func:`repro.solve` calls.  Churn traces
(:func:`repro.generate_churn_trace`, JSON-lines round-trip) and the replay
driver (:func:`repro.replay_trace`) measure throughput, latency, and cache
hit rate; ``soar-repro serve-replay`` drives it from the command line.

Randomized testing
------------------
:mod:`repro.testing` ships the seeded random φ-BIC instance generators
(:func:`repro.testing.random_instance`,
:func:`repro.testing.instance_stream` — uniform / k-ary / scale-free /
path / star shapes, zero / positive / skewed loads, optional random Λ) and
invariant checkers (:func:`repro.testing.check_instance` and friends) used
by the test-suite.  They are part of the public API so downstream users can
fuzz their own extensions the same way.
"""

from repro.core import (
    DEFAULT_ENGINE,
    ENGINES,
    FLAT_ENGINE,
    REFERENCE_ENGINE,
    SoarSolution,
    TreeNetwork,
    all_blue_cost,
    all_red_cost,
    flat_gather,
    gather,
    link_message_counts,
    normalized_utilization,
    optimal_cost,
    soar_gather,
    solve,
    solve_budget_sweep,
    solve_bruteforce,
    utilization_cost,
)
from repro.baselines import ALL_STRATEGIES, PAPER_STRATEGIES, get_strategy
from repro.topology import (
    bt_network,
    complete_binary_tree,
    fat_tree_aggregation_tree,
    kary_tree,
    scale_free_tree,
    sf_network,
)
from repro.service import (
    AdmitRequest,
    DrainRequest,
    PlacementService,
    ReleaseRequest,
    SolveRequest,
    StatsRequest,
    SweepRequest,
    generate_churn_trace,
    replay_trace,
)
from repro.workload import (
    PowerLawLoadDistribution,
    UniformLoadDistribution,
    apply_rate_scheme,
    with_sampled_leaf_loads,
)

__version__ = "1.0.0"

__all__ = [
    "ALL_STRATEGIES",
    "AdmitRequest",
    "DEFAULT_ENGINE",
    "DrainRequest",
    "ENGINES",
    "FLAT_ENGINE",
    "PAPER_STRATEGIES",
    "PlacementService",
    "PowerLawLoadDistribution",
    "REFERENCE_ENGINE",
    "ReleaseRequest",
    "SoarSolution",
    "SolveRequest",
    "StatsRequest",
    "SweepRequest",
    "TreeNetwork",
    "UniformLoadDistribution",
    "all_blue_cost",
    "all_red_cost",
    "apply_rate_scheme",
    "bt_network",
    "complete_binary_tree",
    "fat_tree_aggregation_tree",
    "flat_gather",
    "gather",
    "generate_churn_trace",
    "get_strategy",
    "kary_tree",
    "link_message_counts",
    "normalized_utilization",
    "optimal_cost",
    "replay_trace",
    "scale_free_tree",
    "sf_network",
    "soar_gather",
    "solve",
    "solve_budget_sweep",
    "solve_bruteforce",
    "utilization_cost",
    "with_sampled_leaf_loads",
    "__version__",
]

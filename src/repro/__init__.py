"""Reproduction of "SOAR: Minimizing Network Utilization with Bounded
In-network Computing" (Segal, Avin, Scalosub — CoNEXT 2021).

The package implements the φ-BIC problem and the SOAR optimal placement
algorithm, the contending baselines, the topology / workload generators of
the paper's evaluation, the online multi-workload extension, the word-count
and parameter-server byte-complexity case studies, an event-driven software
dataplane, and an experiment harness that regenerates every figure.

Quickstart
----------
SOAR is a two-phase algorithm — an expensive gather dynamic program
followed by a cheap colouring trace — and the API mirrors that structure.
A :class:`repro.Solver` binds the configuration once; ``solver.gather``
produces an immutable :class:`repro.GatherTable` artifact that answers
*every* budget up to the gathered one; ``table.place`` traces a
:class:`repro.Placement` out of it:

>>> import repro
>>> tree = repro.complete_binary_tree(4, leaf_loads=[2, 6, 5, 4])
>>> solver = repro.Solver()
>>> table = solver.gather(tree, max_budget=4)   # the expensive phase, once
>>> table.place(2).cost                         # the cheap phase, per budget
20.0
>>> {k: table.cost(k) for k in (1, 2, 3, 4)}    # pure table lookups
{1: 35.0, 2: 20.0, 3: 15.0, 4: 11.0}

One-shot helpers skip the explicit artifact when there is nothing to
reuse — ``solver.solve(tree, 2)``, ``solver.sweep(tree, range(5))``,
``solver.cost(tree, 2)`` — and ``solver.solve_many`` /
``solver.sweep_many`` batch whole instance lists, sharing gathers across
same-tree entries.  The historical free functions (``repro.solve``,
``repro.solve_budget_sweep``, ``repro.optimal_cost``) went through a
deprecation release as bit-identical shims and have been removed; the
migration table lives in ``CHANGES.md``.

Engines and kernels
-------------------
Every phase of a solve ships interchangeable implementations, selected
when constructing the solver:

* ``Solver(engine=...)`` — SOAR-Gather: ``"flat"`` (default, the
  vectorized flat-array kernel of :mod:`repro.core.engine`) or
  ``"reference"`` (per-node Algorithm 3, ground truth),
* ``Solver(color=...)`` — SOAR-Color: ``"batched"`` (default, the
  level-batched trace of :mod:`repro.core.color` over the same flat
  tensors) or ``"reference"`` (per-node Algorithm 4, ground truth),
* ``Solver(cost_kernel=...)`` — Eq. (1) evaluation: ``"flat"`` (default,
  the level-batched kernel of :mod:`repro.core.cost` over the same node
  layout) or ``"reference"`` (the per-node message-count walk, ground
  truth).

All combinations produce bit-identical tables, costs, and placements;
``tests/test_engine_differential.py``, ``tests/test_api_equivalence.py``
and ``tests/test_cost_kernels.py`` enforce this on hundreds of seeded
random instances.

Placement service
-----------------
:mod:`repro.service` wraps the solver in a long-lived multi-tenant daemon:
:class:`repro.PlacementService` owns fleet state (residual switch capacity,
active tenants), serves typed ``Solve`` / ``Sweep`` / ``Admit`` /
``Release`` / ``Drain`` / ``Stats`` requests through a batched loop, and
reuses gather tables across requests via an LRU cache with budget
upcasting — warm queries skip the gather entirely while staying
bit-identical to cold :meth:`repro.Solver.solve` calls.  Churn traces
(:func:`repro.generate_churn_trace`, JSON-lines round-trip) and the replay
driver (:func:`repro.replay_trace`) measure throughput, latency, and cache
hit rate; ``soar-repro serve-replay`` drives it from the command line.

Randomized testing
------------------
:mod:`repro.testing` ships the seeded random φ-BIC instance generators
(:func:`repro.testing.random_instance`,
:func:`repro.testing.instance_stream` — uniform / k-ary / scale-free /
path / star shapes, zero / positive / skewed loads, optional random Λ) and
invariant checkers (:func:`repro.testing.check_instance` and friends) used
by the test-suite.  They are part of the public API so downstream users can
fuzz their own extensions the same way.
"""

from repro.core import (
    BATCHED_COLOR,
    COLOR_KERNELS,
    COST_KERNELS,
    DEFAULT_COLOR,
    DEFAULT_COST,
    DEFAULT_ENGINE,
    ENGINES,
    FLAT_COST,
    FLAT_ENGINE,
    GatherTable,
    Placement,
    REFERENCE_COLOR,
    REFERENCE_COST,
    REFERENCE_ENGINE,
    Solver,
    TreeNetwork,
    all_blue_cost,
    all_red_cost,
    cost_model_for,
    evaluate_cost,
    flat_gather,
    gather,
    link_message_counts,
    normalized_utilization,
    soar_color,
    soar_color_batched,
    soar_gather,
    solve_bruteforce,
    trace_color,
    utilization_cost,
    utilization_cost_flat,
)
from repro.baselines import ALL_STRATEGIES, PAPER_STRATEGIES, get_strategy
from repro.topology import (
    bt_network,
    complete_binary_tree,
    fat_tree_aggregation_tree,
    kary_tree,
    scale_free_tree,
    sf_network,
)
from repro.service import (
    AdmitRequest,
    DrainRequest,
    PlacementService,
    ReleaseRequest,
    SolveRequest,
    StatsRequest,
    SweepRequest,
    generate_churn_trace,
    replay_trace,
)
from repro.workload import (
    PowerLawLoadDistribution,
    UniformLoadDistribution,
    apply_rate_scheme,
    with_sampled_leaf_loads,
)

# 2.0.0: the deprecated pre-Solver free functions were removed (the only
# breaking change; everything else in this release is additive).
__version__ = "2.0.0"

__all__ = [
    "ALL_STRATEGIES",
    "AdmitRequest",
    "BATCHED_COLOR",
    "COLOR_KERNELS",
    "COST_KERNELS",
    "DEFAULT_COLOR",
    "DEFAULT_COST",
    "DEFAULT_ENGINE",
    "DrainRequest",
    "ENGINES",
    "FLAT_COST",
    "FLAT_ENGINE",
    "GatherTable",
    "PAPER_STRATEGIES",
    "Placement",
    "PlacementService",
    "PowerLawLoadDistribution",
    "REFERENCE_COLOR",
    "REFERENCE_COST",
    "REFERENCE_ENGINE",
    "ReleaseRequest",
    "SolveRequest",
    "Solver",
    "StatsRequest",
    "SweepRequest",
    "TreeNetwork",
    "UniformLoadDistribution",
    "all_blue_cost",
    "all_red_cost",
    "apply_rate_scheme",
    "bt_network",
    "complete_binary_tree",
    "cost_model_for",
    "evaluate_cost",
    "fat_tree_aggregation_tree",
    "flat_gather",
    "gather",
    "generate_churn_trace",
    "get_strategy",
    "kary_tree",
    "link_message_counts",
    "normalized_utilization",
    "replay_trace",
    "scale_free_tree",
    "sf_network",
    "soar_color",
    "soar_color_batched",
    "soar_gather",
    "trace_color",
    "solve_bruteforce",
    "utilization_cost",
    "utilization_cost_flat",
    "with_sampled_leaf_loads",
    "__version__",
]

"""Reproduction of "SOAR: Minimizing Network Utilization with Bounded
In-network Computing" (Segal, Avin, Scalosub — CoNEXT 2021).

The package implements the φ-BIC problem and the SOAR optimal placement
algorithm, the contending baselines, the topology / workload generators of
the paper's evaluation, the online multi-workload extension, the word-count
and parameter-server byte-complexity case studies, an event-driven software
dataplane, and an experiment harness that regenerates every figure.

Quickstart
----------
>>> import repro
>>> tree = repro.complete_binary_tree(4, leaf_loads=[2, 6, 5, 4])
>>> solution = repro.solve(tree, budget=2)
>>> solution.cost
20.0
"""

from repro.core import (
    SoarSolution,
    TreeNetwork,
    all_blue_cost,
    all_red_cost,
    link_message_counts,
    normalized_utilization,
    optimal_cost,
    solve,
    solve_budget_sweep,
    solve_bruteforce,
    utilization_cost,
)
from repro.baselines import ALL_STRATEGIES, PAPER_STRATEGIES, get_strategy
from repro.topology import (
    bt_network,
    complete_binary_tree,
    fat_tree_aggregation_tree,
    kary_tree,
    scale_free_tree,
    sf_network,
)
from repro.workload import (
    PowerLawLoadDistribution,
    UniformLoadDistribution,
    apply_rate_scheme,
    with_sampled_leaf_loads,
)

__version__ = "1.0.0"

__all__ = [
    "ALL_STRATEGIES",
    "PAPER_STRATEGIES",
    "PowerLawLoadDistribution",
    "SoarSolution",
    "TreeNetwork",
    "UniformLoadDistribution",
    "all_blue_cost",
    "all_red_cost",
    "apply_rate_scheme",
    "bt_network",
    "complete_binary_tree",
    "fat_tree_aggregation_tree",
    "get_strategy",
    "kary_tree",
    "link_message_counts",
    "normalized_utilization",
    "optimal_cost",
    "scale_free_tree",
    "sf_network",
    "solve",
    "solve_budget_sweep",
    "solve_bruteforce",
    "utilization_cost",
    "with_sampled_leaf_loads",
    "__version__",
]

"""Exception hierarchy for the SOAR reproduction library.

All exceptions raised by :mod:`repro` derive from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while still
being able to distinguish the individual failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by the library."""


class TreeStructureError(ReproError):
    """The supplied graph is not a valid rooted tree network.

    Raised when the edges do not form a tree, when the destination has more
    than one child, when a node references an unknown parent, or when the
    structure is otherwise inconsistent (cycles, disconnected components,
    self-loops).
    """


class InvalidRateError(ReproError):
    """A link rate is not a strictly positive finite number."""


class InvalidLoadError(ReproError):
    """A switch load is negative or not an integer-valued number."""


class InvalidBudgetError(ReproError, ValueError):
    """The aggregation budget ``k`` is negative or not an integer.

    Also a :class:`ValueError`: budget validation historically raised plain
    ``ValueError`` in places (e.g. the budget-sweep entry point), so callers
    catching that keep working.
    """


class AvailabilityError(ReproError):
    """The availability set Λ references switches that are not in the tree."""


class PlacementError(ReproError):
    """A set of blue nodes violates the problem constraints.

    Examples include exceeding the budget, selecting the destination, or
    selecting a switch outside the availability set Λ.
    """


class TableMismatchError(ReproError):
    """A gather-table artifact is being reused under incompatible settings.

    Gather tables are only valid for the exact configuration they were
    computed under; reusing them with a different engine or different budget
    semantics would silently produce tables that answer a *different*
    problem.  The two concrete subclasses identify which half of the
    contract was violated.
    """


class EngineMismatchError(TableMismatchError):
    """A gather table is being reused with a different gather engine.

    The shipped engines are bit-identical, so this is about keeping the
    provenance contract self-evident: a table advertises the engine that
    built it, and a solver bound to another engine must not claim the
    table as its own output.
    """


class SemanticsMismatchError(TableMismatchError):
    """A gather table is being reused under different budget semantics.

    Tables gathered with ``exact_k=True`` encode a different dynamic
    program than at-most-k tables; tracing one with the other's semantics
    yields placements for the wrong problem.
    """


class RepairError(TableMismatchError):
    """A gather table cannot be delta-repaired to the requested network.

    Incremental repair (:meth:`repro.core.solver.GatherTable.repair`)
    splices recomputed DP slabs into a clone of the cached flat tensors,
    which is only sound when the target network differs from the gather's
    network in *availability alone* and the effective budget (the tensor
    width) is unchanged.  Structure or load differences, a delta that
    shrinks Λ below the requested budget, an engine without a registered
    repairer, or a result carrying no flat tensors all raise this error;
    callers fall back to a cold gather.
    """


class CapacityError(ReproError):
    """An online allocation violates per-switch aggregation capacity."""


class WorkloadError(ReproError):
    """A workload description is malformed (e.g. negative loads, unknown switches)."""


class PersistenceError(ReproError):
    """A fleet snapshot or write-ahead journal cannot be used.

    Raised when a snapshot's format version is unknown, when a snapshot or
    journal was recorded for a different network (structure fingerprints
    disagree), or when a journal is attached to a service whose mutation
    history it does not describe.
    """


class SimulationError(ReproError):
    """The event-driven dataplane simulation reached an inconsistent state."""


class ExperimentError(ReproError):
    """An experiment configuration is invalid or cannot be executed."""

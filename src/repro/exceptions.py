"""Exception hierarchy for the SOAR reproduction library.

All exceptions raised by :mod:`repro` derive from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while still
being able to distinguish the individual failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by the library."""


class TreeStructureError(ReproError):
    """The supplied graph is not a valid rooted tree network.

    Raised when the edges do not form a tree, when the destination has more
    than one child, when a node references an unknown parent, or when the
    structure is otherwise inconsistent (cycles, disconnected components,
    self-loops).
    """


class InvalidRateError(ReproError):
    """A link rate is not a strictly positive finite number."""


class InvalidLoadError(ReproError):
    """A switch load is negative or not an integer-valued number."""


class InvalidBudgetError(ReproError):
    """The aggregation budget ``k`` is negative or not an integer."""


class AvailabilityError(ReproError):
    """The availability set Λ references switches that are not in the tree."""


class PlacementError(ReproError):
    """A set of blue nodes violates the problem constraints.

    Examples include exceeding the budget, selecting the destination, or
    selecting a switch outside the availability set Λ.
    """


class CapacityError(ReproError):
    """An online allocation violates per-switch aggregation capacity."""


class WorkloadError(ReproError):
    """A workload description is malformed (e.g. negative loads, unknown switches)."""


class SimulationError(ReproError):
    """The event-driven dataplane simulation reached an inconsistent state."""


class ExperimentError(ReproError):
    """An experiment configuration is invalid or cannot be executed."""

"""Statistics helpers shared by the experiment harness."""

from __future__ import annotations

import math
from collections.abc import Sequence


def mean_and_stderr(values: Sequence[float]) -> tuple[float, float]:
    """Return the sample mean and the standard error of the mean.

    The paper repeats every experiment ten times and plots the average with
    error bars only where the variance is significant; the standard error is
    what those bars represent.
    """
    if not values:
        return 0.0, 0.0
    count = len(values)
    mean = sum(values) / count
    if count == 1:
        return mean, 0.0
    variance = sum((value - mean) ** 2 for value in values) / (count - 1)
    return mean, math.sqrt(variance / count)


def summarize(values: Sequence[float]) -> dict[str, float]:
    """Return mean, standard error, min and max of a sample."""
    mean, stderr = mean_and_stderr(values)
    return {
        "mean": mean,
        "stderr": stderr,
        "min": min(values) if values else 0.0,
        "max": max(values) if values else 0.0,
        "count": float(len(values)),
    }

"""Small shared utilities: text/CSV tables, statistics helpers."""

from repro.utils.stats import mean_and_stderr, summarize
from repro.utils.tables import format_value, render_table, rows_to_csv, write_csv

__all__ = [
    "format_value",
    "mean_and_stderr",
    "render_table",
    "rows_to_csv",
    "summarize",
    "write_csv",
]

"""Plain-text and CSV rendering of experiment results.

The paper's figures are line plots; without a plotting backend available
offline, the experiment harness emits the underlying series as aligned text
tables (for reading in a terminal) and as CSV rows (for plotting elsewhere).
"""

from __future__ import annotations

import csv
import io
from collections.abc import Mapping, Sequence
from pathlib import Path
from typing import Any


def format_value(value: Any, precision: int = 4) -> str:
    """Render a cell: floats get fixed precision, everything else ``str``."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def render_table(
    rows: Sequence[Mapping[str, Any]],
    columns: Sequence[str] | None = None,
    title: str | None = None,
    precision: int = 4,
) -> str:
    """Render a list of row-dictionaries as an aligned text table."""
    if not rows:
        return f"{title}\n(no data)" if title else "(no data)"
    if columns is None:
        columns = list(rows[0].keys())
    rendered = [
        {column: format_value(row.get(column, ""), precision) for column in columns}
        for row in rows
    ]
    widths = {
        column: max(len(column), *(len(row[column]) for row in rendered))
        for column in columns
    }
    lines: list[str] = []
    if title:
        lines.append(title)
    header = "  ".join(column.ljust(widths[column]) for column in columns)
    lines.append(header)
    lines.append("  ".join("-" * widths[column] for column in columns))
    for row in rendered:
        lines.append("  ".join(row[column].ljust(widths[column]) for column in columns))
    return "\n".join(lines)


def rows_to_csv(
    rows: Sequence[Mapping[str, Any]],
    columns: Sequence[str] | None = None,
) -> str:
    """Render rows as a CSV document (header included)."""
    if not rows:
        return ""
    if columns is None:
        columns = list(rows[0].keys())
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=list(columns), extrasaction="ignore")
    writer.writeheader()
    for row in rows:
        writer.writerow({column: row.get(column, "") for column in columns})
    return buffer.getvalue()


def write_csv(
    rows: Sequence[Mapping[str, Any]],
    path: str | Path,
    columns: Sequence[str] | None = None,
) -> Path:
    """Write rows to a CSV file and return the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(rows_to_csv(rows, columns=columns))
    return path

"""Appendix B (Figure 11): SOAR on scale-free (preferential-attachment) trees.

Two parts:

* a qualitative ``SF(128)`` example comparing the Max(-degree) heuristic to
  SOAR (the paper's sample saves roughly 70% of the messages: 621 vs 182 —
  absolute numbers depend on the random tree, the ratio is the point),
* the scaling study: normalized utilization on ``SF(n)`` for the same
  size-dependent budget rules as Figure 10a, with unit load on every switch.
"""

from __future__ import annotations

import math
from collections.abc import Callable, Sequence

import numpy as np

from repro.baselines.strategies import max_degree_strategy
from repro.core.cost import all_blue_cost, all_red_cost, evaluate_cost
from repro.core.engine import gather
from repro.core.flat import cost_model_for
from repro.core.solver import Solver
from repro.experiments.fig10_scaling import BUDGET_RULES
from repro.experiments.harness import ExperimentConfig, PAPER_CONFIG
from repro.topology.scale_free import degree_sequence, sf_network
from repro.utils.stats import mean_and_stderr

#: Network sizes of Figure 11c.
FIG11_SIZES: tuple[int, ...] = (256, 512, 1024, 2048, 4096)


def run_fig11_example(
    size: int = 128,
    budget: int = 4,
    seed: int = 2021,
    samples: int = 1,
) -> list[dict]:
    """Figures 11a/11b: Max(degree) versus SOAR on ``SF(size)`` samples.

    The paper shows a single hand-picked sample (Max = 621 vs SOAR = 182,
    roughly a 70% saving).  The gap between the degree heuristic and the
    optimum varies a lot across random preferential-attachment samples, so
    besides the single-sample rows this experiment can average over
    ``samples`` independent trees; the robust claims are that SOAR never
    loses to Max(degree) and that a handful of blue nodes removes a large
    share of the all-red utilization.
    """
    seeds = [seed + offset for offset in range(max(1, samples))]
    all_red_values: list[float] = []
    max_values: list[float] = []
    soar_values: list[float] = []
    first_degrees = ""
    for sample_seed in seeds:
        tree = sf_network(size, rng=sample_seed)
        if not first_degrees:
            first_degrees = ",".join(map(str, degree_sequence(tree)[:9]))
        model = cost_model_for(tree)
        all_red_values.append(
            evaluate_cost(tree, frozenset(), validate=False, model=model)
        )
        max_values.append(
            evaluate_cost(tree, max_degree_strategy(tree, budget), model=model)
        )
        soar_values.append(Solver().solve(tree, budget).cost)

    mean_all_red = sum(all_red_values) / len(all_red_values)
    mean_max = sum(max_values) / len(max_values)
    mean_soar = sum(soar_values) / len(soar_values)

    def row(strategy: str, utilization: float, **extra) -> dict:
        return {
            "figure": "fig11ab",
            "strategy": strategy,
            "network_size": size,
            "k": budget,
            "utilization": utilization,
            "samples": len(seeds),
            "top_degrees": extra.get("top_degrees", ""),
        }

    return [
        row("All red", mean_all_red),
        row("Max(degree)", mean_max, top_degrees=first_degrees),
        row("SOAR", mean_soar, top_degrees=first_degrees),
        row("saving vs Max", 1.0 - (mean_soar / mean_max if mean_max else 0.0)),
        row("saving vs all-red", 1.0 - (mean_soar / mean_all_red if mean_all_red else 0.0)),
    ]


def run_fig11_scaling(
    sizes: Sequence[int] = FIG11_SIZES,
    budget_rules: dict[str, Callable[[int], int]] | None = None,
    config: ExperimentConfig = PAPER_CONFIG,
) -> list[dict]:
    """Figure 11c: normalized utilization on ``SF(n)`` for size-dependent budgets."""
    budget_rules = dict(budget_rules or BUDGET_RULES)
    rows: list[dict] = []
    seeds = np.random.SeedSequence(config.seed).spawn(config.repetitions)

    for size in sizes:
        budgets = {name: rule(size) for name, rule in budget_rules.items()}
        max_budget = max(budgets.values())
        per_rule: dict[str, list[float]] = {name: [] for name in budget_rules}
        all_blue_values: list[float] = []

        for seed in seeds:
            rng = np.random.default_rng(seed)
            tree = sf_network(size, rng=rng)
            baseline = all_red_cost(tree)
            gathered = gather(tree, max_budget, engine=config.engine)
            for name, budget in budgets.items():
                cost = gathered.cost_for_budget(budget)
                per_rule[name].append(cost / baseline if baseline else 0.0)
            all_blue_values.append(all_blue_cost(tree) / baseline if baseline else 0.0)

        for name, values in per_rule.items():
            mean, stderr = mean_and_stderr(values)
            rows.append(
                {
                    "figure": "fig11c",
                    "network_size": size,
                    "budget_rule": name,
                    "k": budgets[name],
                    "normalized_utilization": mean,
                    "stderr": stderr,
                    "repetitions": config.repetitions,
                }
            )
        mean, stderr = mean_and_stderr(all_blue_values)
        rows.append(
            {
                "figure": "fig11c",
                "network_size": size,
                "budget_rule": "all-blue",
                "k": size - 1,
                "normalized_utilization": mean,
                "stderr": stderr,
                "repetitions": config.repetitions,
            }
        )
    return rows


def isqrt_budget(size: int) -> int:
    """Convenience ``sqrt(n)`` budget rule (exposed for ablation benches)."""
    return max(1, int(math.isqrt(size)))

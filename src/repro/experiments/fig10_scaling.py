"""Appendix A (Figure 10): scaling laws of SOAR on larger binary trees.

Two perspectives on how the benefit of bounded in-network aggregation scales
with the network size ``n`` (power-law loads, constant rates):

* **Fig. 10a** — the normalized utilization when the budget grows as
  ``k = 1% of n``, ``k = log2(n)`` or ``k = sqrt(n)``, for
  ``n = 256 .. 4096``;
* **Fig. 10b** — the *fraction* of switches that must be blue to reach a
  30% / 50% / 70% cost reduction relative to all-red.

Both reuse a single SOAR-Gather run per sampled network: the DP tables carry
every budget column, so reading off a sweep or searching for the smallest
sufficient budget costs nothing extra.
"""

from __future__ import annotations

import math
from collections.abc import Callable, Sequence

import numpy as np

from repro.core.cost import all_blue_cost, all_red_cost
from repro.core.solver import Solver
from repro.experiments.harness import ExperimentConfig, PAPER_CONFIG
from repro.topology.binary_tree import bt_network
from repro.utils.stats import mean_and_stderr
from repro.workload.distributions import PowerLawLoadDistribution, sample_leaf_loads

#: Network sizes of Figure 10.
FIG10_SIZES: tuple[int, ...] = (256, 512, 1024, 2048, 4096)
#: Cost-reduction targets of Figure 10b.
FIG10_TARGETS: tuple[float, ...] = (0.3, 0.5, 0.7)

#: Budget rules of Figure 10a, mapping a network size to a budget.
BUDGET_RULES: dict[str, Callable[[int], int]] = {
    "1%": lambda n: max(1, n // 100),
    "log(n)": lambda n: max(1, round(math.log2(n))),
    "sqrt(n)": lambda n: max(1, round(math.sqrt(n))),
}


def _sampled_tree(size: int, rng: np.random.Generator):
    """One power-law-loaded ``BT(size)`` sample with constant rates."""
    tree = bt_network(size)
    return tree.with_loads(sample_leaf_loads(tree, PowerLawLoadDistribution(), rng=rng))


def run_fig10_utilization(
    sizes: Sequence[int] = FIG10_SIZES,
    budget_rules: dict[str, Callable[[int], int]] | None = None,
    config: ExperimentConfig = PAPER_CONFIG,
) -> list[dict]:
    """Figure 10a: normalized utilization for size-dependent budget rules."""
    budget_rules = dict(budget_rules or BUDGET_RULES)
    rows: list[dict] = []
    seeds = np.random.SeedSequence(config.seed).spawn(config.repetitions)

    for size in sizes:
        budgets = {name: rule(size) for name, rule in budget_rules.items()}
        max_budget = max(budgets.values())
        per_rule: dict[str, list[float]] = {name: [] for name in budget_rules}
        all_blue_values: list[float] = []

        for seed in seeds:
            rng = np.random.default_rng(seed)
            tree = _sampled_tree(size, rng)
            baseline = all_red_cost(tree)
            gathered = Solver(engine=config.engine).gather(tree, max_budget)
            for name, budget in budgets.items():
                cost = gathered.cost(budget)
                per_rule[name].append(cost / baseline if baseline else 0.0)
            all_blue_values.append(all_blue_cost(tree) / baseline if baseline else 0.0)

        for name, values in per_rule.items():
            mean, stderr = mean_and_stderr(values)
            rows.append(
                {
                    "figure": "fig10a",
                    "network_size": size,
                    "budget_rule": name,
                    "k": budgets[name],
                    "normalized_utilization": mean,
                    "stderr": stderr,
                    "repetitions": config.repetitions,
                }
            )
        mean, stderr = mean_and_stderr(all_blue_values)
        rows.append(
            {
                "figure": "fig10a",
                "network_size": size,
                "budget_rule": "all-blue",
                "k": size - 1,
                "normalized_utilization": mean,
                "stderr": stderr,
                "repetitions": config.repetitions,
            }
        )
    return rows


def run_fig10_required_fraction(
    sizes: Sequence[int] = FIG10_SIZES,
    targets: Sequence[float] = FIG10_TARGETS,
    config: ExperimentConfig = PAPER_CONFIG,
    max_fraction: float = 0.1,
) -> list[dict]:
    """Figure 10b: % of switches that must be blue for a target cost reduction.

    ``max_fraction`` bounds the searched budget (the paper's targets are all
    reachable well below 5% of the switches); if a target cannot be met
    within the bound the row reports ``NaN``.
    """
    rows: list[dict] = []
    seeds = np.random.SeedSequence(config.seed).spawn(config.repetitions)

    for size in sizes:
        search_budget = max(1, int(math.ceil(max_fraction * size)))
        per_target: dict[float, list[float]] = {target: [] for target in targets}

        for seed in seeds:
            rng = np.random.default_rng(seed)
            tree = _sampled_tree(size, rng)
            baseline = all_red_cost(tree)
            gathered = Solver(engine=config.engine).gather(
                tree, min(search_budget, tree.num_switches)
            )
            costs = [gathered.cost(k) for k in range(gathered.budget + 1)]
            for target in targets:
                threshold = (1.0 - target) * baseline
                needed = next(
                    (k for k, cost in enumerate(costs) if cost <= threshold + 1e-9), None
                )
                if needed is None:
                    per_target[target].append(float("nan"))
                else:
                    per_target[target].append(100.0 * needed / tree.num_switches)

        for target in targets:
            values = [v for v in per_target[target] if not math.isnan(v)]
            mean, stderr = mean_and_stderr(values)
            rows.append(
                {
                    "figure": "fig10b",
                    "network_size": size,
                    "target_reduction": target,
                    "percent_blue_nodes": mean if values else float("nan"),
                    "stderr": stderr,
                    "achieved_in_all_repetitions": len(values) == config.repetitions,
                    "repetitions": config.repetitions,
                }
            )
    return rows

"""The motivating example of Section 3 (Figures 2 and 3).

A 7-switch complete binary tree with leaf loads (2, 6, 5, 4), unit rates and
Λ = S.  Figure 2 compares the Top / Max / Level strategies against SOAR at
``k = 2`` (costs 27 / 24 / 21 / 20); Figure 3 sweeps the budget ``k = 1..4``
(optimal costs 35 / 20 / 15 / 11) and illustrates that the optimal blue sets
are not monotone in ``k``.
"""

from __future__ import annotations

from repro.baselines.strategies import (
    level_strategy,
    max_load_strategy,
    soar_strategy,
    top_strategy,
)
from repro.core.cost import all_blue_cost, all_red_cost, evaluate_cost
from repro.core.flat import cost_model_for
from repro.core.solver import Solver
from repro.core.tree import TreeNetwork
from repro.topology.binary_tree import complete_binary_tree

#: Leaf loads of the motivating example, left to right.
MOTIVATING_LOADS: tuple[int, ...] = (2, 6, 5, 4)
#: Utilization costs reported in Figure 2 for k = 2.
FIGURE2_EXPECTED: dict[str, float] = {"Top": 27.0, "Max": 24.0, "Level": 21.0, "SOAR": 20.0}
#: Optimal utilization costs reported in Figure 3 for k = 1..4.
FIGURE3_EXPECTED: dict[int, float] = {1: 35.0, 2: 20.0, 3: 15.0, 4: 11.0}


def motivating_tree() -> TreeNetwork:
    """The 7-switch example network of Figures 2 and 3."""
    return complete_binary_tree(4, leaf_loads=list(MOTIVATING_LOADS))


def run_strategy_comparison(budget: int = 2) -> list[dict]:
    """Reproduce Figure 2: each strategy's utilization on the example tree."""
    tree = motivating_tree()
    strategies = {
        "Top": top_strategy,
        "Max": max_load_strategy,
        "Level": level_strategy,
        "SOAR": soar_strategy,
    }
    model = cost_model_for(tree)
    rows: list[dict] = []
    for name, strategy in strategies.items():
        blue = strategy(tree, budget)
        rows.append(
            {
                "figure": "fig2",
                "strategy": name,
                "k": budget,
                "utilization": evaluate_cost(tree, blue, model=model),
                "blue_nodes": ",".join(sorted(map(str, blue))),
                "paper_value": FIGURE2_EXPECTED.get(name, float("nan")),
            }
        )
    rows.append(
        {
            "figure": "fig2",
            "strategy": "AllRed",
            "k": 0,
            "utilization": all_red_cost(tree),
            "blue_nodes": "",
            "paper_value": float("nan"),
        }
    )
    rows.append(
        {
            "figure": "fig2",
            "strategy": "AllBlue",
            "k": tree.num_switches,
            "utilization": all_blue_cost(tree),
            "blue_nodes": ",".join(sorted(map(str, tree.switches))),
            "paper_value": float("nan"),
        }
    )
    return rows


def run_budget_sweep(max_budget: int = 4) -> list[dict]:
    """Reproduce Figure 3: the optimal cost for each budget on the example tree."""
    tree = motivating_tree()
    solutions = Solver().sweep(tree, range(1, max_budget + 1))
    rows: list[dict] = []
    for budget, solution in sorted(solutions.items()):
        rows.append(
            {
                "figure": "fig3",
                "k": budget,
                "utilization": solution.cost,
                "blue_nodes": ",".join(sorted(map(str, solution.blue_nodes))),
                "paper_value": FIGURE3_EXPECTED.get(budget, float("nan")),
            }
        )
    return rows

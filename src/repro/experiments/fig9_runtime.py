"""Figure 9 and Section 5.4: running time of SOAR-Gather and SOAR-Color.

The paper measures the serial running time of the two phases on a laptop
for network sizes 256-2048 and budgets 4-128, observing a quadratic
dependence on ``k``, a near-linear dependence on ``n``, and SOAR-Color being
roughly three orders of magnitude faster than SOAR-Gather.  Absolute numbers
are hardware dependent; the shape is what this experiment (and the matching
pytest benchmark) reproduces.
"""

from __future__ import annotations

import time
from collections.abc import Sequence

import numpy as np

from repro.core.color import (
    BATCHED_COLOR,
    COLOR_KERNELS,
    REFERENCE_COLOR,
    trace_color,
)
from repro.core.cost import COST_KERNELS, FLAT_COST, REFERENCE_COST, evaluate_cost
from repro.core.engine import ENGINES, FLAT_ENGINE, REFERENCE_ENGINE, gather
from repro.core.flat import cost_model_for
from repro.core.solver import Solver
from repro.experiments.harness import ExperimentConfig, PAPER_CONFIG
from repro.topology.binary_tree import bt_network
from repro.utils.stats import mean_and_stderr
from repro.workload.distributions import PowerLawLoadDistribution, sample_leaf_loads

#: Network sizes of Figure 9 (``BT(n)``, n counting the destination).
FIG9_SIZES: tuple[int, ...] = (256, 512, 1024, 2048)
#: Budgets of Figure 9.
FIG9_BUDGETS: tuple[int, ...] = (4, 8, 16, 32, 64, 128)


def run_fig9(
    sizes: Sequence[int] = FIG9_SIZES,
    budgets: Sequence[int] = FIG9_BUDGETS,
    config: ExperimentConfig = PAPER_CONFIG,
    color: str | None = None,
) -> list[dict]:
    """Time SOAR-Gather and SOAR-Color for every (network size, budget) pair.

    Returns one row per pair with the mean wall-clock seconds of each phase
    over ``config.repetitions`` runs (each on a freshly sampled power-law
    workload), plus the color/gather runtime ratio the paper highlights.
    The gather engine is taken from ``config.engine``; ``color`` selects
    the colour kernel (``"batched"`` by default — the phase the service's
    warm path consists of).
    """
    color = color or config.color
    distribution = PowerLawLoadDistribution()
    rows: list[dict] = []
    seeds = np.random.SeedSequence(config.seed).spawn(config.repetitions)

    for size in sizes:
        for budget in budgets:
            gather_times: list[float] = []
            color_times: list[float] = []
            for seed in seeds:
                rng = np.random.default_rng(seed)
                tree = bt_network(size)
                tree = tree.with_loads(sample_leaf_loads(tree, distribution, rng=rng))

                start = time.perf_counter()
                gathered = gather(tree, budget, engine=config.engine)
                gather_times.append(time.perf_counter() - start)

                start = time.perf_counter()
                trace_color(tree, gathered, color=color)
                color_times.append(time.perf_counter() - start)

            gather_mean, gather_err = mean_and_stderr(gather_times)
            color_mean, color_err = mean_and_stderr(color_times)
            rows.append(
                {
                    "figure": "fig9",
                    "network_size": size,
                    "k": budget,
                    "engine": config.engine,
                    "color": color,
                    "gather_seconds": gather_mean,
                    "gather_stderr": gather_err,
                    "color_seconds": color_mean,
                    "color_stderr": color_err,
                    "color_to_gather_ratio": (color_mean / gather_mean) if gather_mean else 0.0,
                    "repetitions": config.repetitions,
                }
            )
    return rows


def run_engine_comparison(
    sizes: Sequence[int] = FIG9_SIZES,
    budget: int = 32,
    config: ExperimentConfig = PAPER_CONFIG,
    engines: Sequence[str] = (REFERENCE_ENGINE, FLAT_ENGINE),
) -> list[dict]:
    """Time every gather engine on the same instances and report speedups.

    One row per network size with, for each engine, the *best* wall-clock
    gather time over ``config.repetitions`` runs (best-of is the standard
    way to compare implementations because it suppresses scheduler noise),
    plus the speedup of each engine relative to the first one listed
    (the reference engine by default).  Every engine is verified to report
    the same optimal cost before its time is trusted.
    """
    distribution = PowerLawLoadDistribution()
    rows: list[dict] = []

    for size in sizes:
        rng = np.random.default_rng(np.random.SeedSequence(config.seed))
        tree = bt_network(size)
        tree = tree.with_loads(sample_leaf_loads(tree, distribution, rng=rng))
        effective = min(budget, len(tree.available))

        best: dict[str, float] = {}
        costs: dict[str, float] = {}
        for engine in engines:
            implementation = ENGINES[engine]
            times = []
            for _ in range(max(1, config.repetitions)):
                start = time.perf_counter()
                gathered = implementation(tree, effective)
                times.append(time.perf_counter() - start)
            best[engine] = min(times)
            costs[engine] = gathered.optimal_cost

        baseline_engine = engines[0]
        for engine in engines:
            if costs[engine] != costs[baseline_engine]:
                raise AssertionError(
                    f"engine {engine!r} cost {costs[engine]} differs from "
                    f"{baseline_engine!r} cost {costs[baseline_engine]} on BT({size})"
                )
        row = {
            "figure": "fig9-engines",
            "network_size": size,
            "k": effective,
            "optimal_cost": costs[baseline_engine],
            "repetitions": config.repetitions,
        }
        for engine in engines:
            row[f"{engine}_seconds"] = best[engine]
            row[f"{engine}_speedup"] = (
                best[baseline_engine] / best[engine] if best[engine] else float("inf")
            )
        rows.append(row)
    return rows


def run_color_comparison(
    sizes: Sequence[int] = FIG9_SIZES,
    budget: int = 32,
    config: ExperimentConfig = PAPER_CONFIG,
    colors: Sequence[str] = (REFERENCE_COLOR, BATCHED_COLOR),
) -> list[dict]:
    """Time every colour kernel tracing the same gather tables.

    The colour-phase counterpart of :func:`run_engine_comparison`: one row
    per network size with, for each kernel, the best wall-clock trace time
    over ``config.repetitions`` runs and the speedup relative to the first
    kernel listed (the reference trace by default).  Every kernel is
    verified to produce the identical blue set before its time is trusted —
    the colour trace is the entire cost of a warm table hit in the
    placement service, so this table is the measured justification for the
    batched kernel.
    """
    distribution = PowerLawLoadDistribution()
    rows: list[dict] = []

    for size in sizes:
        rng = np.random.default_rng(np.random.SeedSequence(config.seed))
        tree = bt_network(size)
        tree = tree.with_loads(sample_leaf_loads(tree, distribution, rng=rng))
        effective = min(budget, len(tree.available))
        gathered = gather(tree, effective, engine=config.engine)

        best: dict[str, float] = {}
        placements: dict[str, frozenset] = {}
        for color in colors:
            kernel = COLOR_KERNELS[color]
            times = []
            for _ in range(max(1, config.repetitions)):
                start = time.perf_counter()
                blue = kernel(tree, gathered)
                times.append(time.perf_counter() - start)
            best[color] = min(times)
            placements[color] = blue

        baseline_color = colors[0]
        for color in colors:
            if placements[color] != placements[baseline_color]:
                raise AssertionError(
                    f"colour kernel {color!r} placement differs from "
                    f"{baseline_color!r} on BT({size})"
                )
        row = {
            "figure": "fig9-colors",
            "network_size": size,
            "k": effective,
            "engine": config.engine,
            "blue_nodes": len(placements[baseline_color]),
            "repetitions": config.repetitions,
        }
        for color in colors:
            row[f"{color}_seconds"] = best[color]
            row[f"{color}_speedup"] = (
                best[baseline_color] / best[color] if best[color] else float("inf")
            )
        rows.append(row)
    return rows


def run_cost_comparison(
    sizes: Sequence[int] = FIG9_SIZES,
    budget: int = 32,
    config: ExperimentConfig = PAPER_CONFIG,
    costs: Sequence[str] = (REFERENCE_COST, FLAT_COST),
) -> list[dict]:
    """Time every cost kernel evaluating the same placement.

    The cost-phase counterpart of :func:`run_color_comparison`: one row
    per network size with, for each kernel of
    :data:`repro.core.cost.COST_KERNELS`, the best wall-clock Eq. (1)
    evaluation time over ``config.repetitions`` runs and the speedup
    relative to the first kernel listed (the per-node reference walk by
    default).  The flat kernel runs with a prebuilt
    :class:`~repro.core.flat.FlatCostModel`, matching the warm-hit path
    where a gather artifact already carries the metadata.  Every kernel
    is verified to return the *identical* float before its time is
    trusted — the cost recompute is half of a warm table hit in the
    placement service, so this table is the measured justification for
    the flat kernel.
    """
    distribution = PowerLawLoadDistribution()
    rows: list[dict] = []

    for size in sizes:
        rng = np.random.default_rng(np.random.SeedSequence(config.seed))
        tree = bt_network(size)
        tree = tree.with_loads(sample_leaf_loads(tree, distribution, rng=rng))
        effective = min(budget, len(tree.available))
        blue = Solver(engine=config.engine, color=config.color).solve(
            tree, effective
        ).blue_nodes
        model = cost_model_for(tree)

        best: dict[str, float] = {}
        values: dict[str, float] = {}
        for cost in costs:
            if cost not in COST_KERNELS:
                raise KeyError(
                    f"unknown cost kernel {cost!r}; expected one of {sorted(COST_KERNELS)}"
                )
            times = []
            for _ in range(max(1, config.repetitions)):
                start = time.perf_counter()
                value = evaluate_cost(tree, blue, cost=cost, model=model)
                times.append(time.perf_counter() - start)
            best[cost] = min(times)
            values[cost] = value

        baseline_cost = costs[0]
        for cost in costs:
            if values[cost] != values[baseline_cost]:
                raise AssertionError(
                    f"cost kernel {cost!r} value {values[cost]} differs from "
                    f"{baseline_cost!r} value {values[baseline_cost]} on BT({size})"
                )
        row = {
            "figure": "fig9-costs",
            "network_size": size,
            "k": effective,
            "engine": config.engine,
            "utilization": values[baseline_cost],
            "blue_nodes": len(blue),
            "repetitions": config.repetitions,
        }
        for cost in costs:
            row[f"{cost}_seconds"] = best[cost]
            row[f"{cost}_speedup"] = (
                best[baseline_cost] / best[cost] if best[cost] else float("inf")
            )
        rows.append(row)
    return rows

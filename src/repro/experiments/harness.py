"""Shared infrastructure for the per-figure experiment modules.

Every experiment module exposes one or more ``run_*`` functions that return
a list of plain row-dictionaries — the series a figure of the paper plots.
This module centralizes the knobs they share:

* :class:`ExperimentConfig` — topology size, repetitions, seed, and the
  "quick" scaling used by the test-suite and the benchmark harness so a full
  figure can be exercised in a fraction of a second,
* seed handling (every repetition gets an independent, deterministic seed),
* construction of the paper's standard evaluation network: ``BT(n)`` with a
  rate scheme applied and leaf loads drawn from a distribution.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence
from dataclasses import dataclass, field, replace

import numpy as np

from repro.core.color import DEFAULT_COLOR
from repro.core.cost import DEFAULT_COST
from repro.core.engine import DEFAULT_ENGINE
from repro.core.tree import TreeNetwork
from repro.exceptions import ExperimentError
from repro.topology.binary_tree import bt_network
from repro.workload.distributions import make_distribution, sample_leaf_loads
from repro.workload.rates import apply_rate_scheme

#: Budgets swept by Figure 6 (x-axis "number of blue nodes").
FIG6_BUDGETS: tuple[int, ...] = (1, 2, 4, 8, 16, 32)
#: Budgets swept by Figure 8.
FIG8_BUDGETS: tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64)
#: Rate schemes of Figures 6 and 7.
RATE_SCHEME_NAMES: tuple[str, ...] = ("constant", "linear", "exponential")
#: Load distributions of Figures 6 and 8.
DISTRIBUTION_NAMES: tuple[str, ...] = ("uniform", "power-law")


@dataclass(frozen=True)
class ExperimentConfig:
    """Common experiment parameters.

    Attributes
    ----------
    network_size:
        The ``n`` of ``BT(n)`` (number of nodes including the destination).
    repetitions:
        How many independent workload samples to average over (the paper
        uses 10).
    seed:
        Base seed; repetition ``i`` uses an independent child seed.
    engine:
        SOAR-Gather engine used by the experiments (``"flat"`` or
        ``"reference"``; see :mod:`repro.core.engine`).
    color:
        SOAR-Color kernel used by the experiments (``"batched"`` or
        ``"reference"``; see :mod:`repro.core.color`).
    cost:
        Cost kernel used by the experiments (``"flat"`` or
        ``"reference"``; see :data:`repro.core.cost.COST_KERNELS`).
    """

    network_size: int = 256
    repetitions: int = 10
    seed: int = 2021
    engine: str = DEFAULT_ENGINE
    color: str = DEFAULT_COLOR
    cost: str = DEFAULT_COST
    extra: dict = field(default_factory=dict)

    def scaled(self, network_size: int | None = None, repetitions: int | None = None):
        """Return a copy with some knobs overridden (used for quick runs)."""
        return replace(
            self,
            network_size=network_size or self.network_size,
            repetitions=repetitions or self.repetitions,
        )


#: Paper-faithful configuration of the main evaluation.
PAPER_CONFIG = ExperimentConfig(network_size=256, repetitions=10, seed=2021)
#: Scaled-down configuration used by tests and smoke benchmarks.
QUICK_CONFIG = ExperimentConfig(network_size=32, repetitions=2, seed=7)


def repetition_seeds(config: ExperimentConfig) -> Iterator[np.random.Generator]:
    """Yield one independent, deterministic generator per repetition."""
    root = np.random.SeedSequence(config.seed)
    for child in root.spawn(config.repetitions):
        yield np.random.default_rng(child)


def build_evaluation_network(
    config: ExperimentConfig,
    rate_scheme: str,
    distribution: str,
    rng: np.random.Generator,
) -> TreeNetwork:
    """Build one sample of the paper's standard evaluation network.

    ``BT(network_size)`` with the given rate scheme applied to its links and
    leaf loads drawn from the named distribution.
    """
    if config.network_size < 2:
        raise ExperimentError(f"network size must be >= 2, got {config.network_size}")
    tree = bt_network(config.network_size)
    tree = apply_rate_scheme(tree, rate_scheme)
    loads = sample_leaf_loads(tree, make_distribution(distribution), rng=rng)
    return tree.with_loads(loads)


def budgets_for_network(budgets: Sequence[int], tree: TreeNetwork) -> list[int]:
    """Clamp a budget sweep so no budget exceeds the number of switches."""
    limit = tree.num_switches
    clamped = sorted({min(int(budget), limit) for budget in budgets if budget >= 0})
    if not clamped:
        raise ExperimentError("budget sweep is empty after clamping")
    return clamped

"""Service throughput experiment: churn-trace replay with cache metrics.

Not a figure of the paper — this measures the subsystem the paper's online
setting grows into: the long-lived multi-tenant placement service of
:mod:`repro.service`.  A seeded churn trace (arrivals, departures, drains,
and a heavy stream of repeated placement queries over a recurring workload
pool) is replayed through a fresh service, and the rows report throughput,
per-kind latency percentiles, cache hit rate, and the warm/cold latency
split.  The *cold mean* is what a cache-less service would pay per
placement request, so ``warm_speedup = cold_mean / warm_mean`` is the
cache's end-to-end multiplier (asserted ≥ 10x on BT(1024) by the
acceptance test in ``tests/test_service.py``).
"""

from __future__ import annotations

from pathlib import Path

from repro.experiments.harness import ExperimentConfig, QUICK_CONFIG
from repro.service.driver import ReplayReport, replay_trace
from repro.service.events import (
    check_trace_compatible,
    generate_churn_trace,
    read_trace,
    trace_header,
    write_trace,
)
from repro.topology.binary_tree import bt_network
from repro.workload.rates import apply_rate_scheme


#: Unified column order of the service-replay rows (summary, per-kind and
#: warm-path rows share it, blank-filled, so text tables and CSVs stay
#: aligned).  The trailing block is the warm table-hit latency split
#: emitted by ``benchmarks/bench_service.py``: what one hit costs now
#: (``table_hit_ms``: batched colour + flat cost), what the same hit cost
#: on the PR 3 warm path (``pr3_warm_ms``: batched colour + per-node cost)
#: and on the legacy PR 2 path (``legacy_warm_ms``), the isolated cost
#: phase under each kernel (``cost_flat_ms`` / ``cost_reference_ms``), and
#: the resulting multipliers (``cost_kernel_speedup``,
#: ``warm_speedup_vs_pr3``, ``warm_path_speedup``).
ROW_COLUMNS: tuple[str, ...] = (
    "network_size",
    "requests",
    "budget",
    "capacity",
    "workers",
    "mode",
    "cpu_cores",
    "row",
    "kind",
    "count",
    "cache_hits",
    "mean_ms",
    "p50_ms",
    "p95_ms",
    "max_ms",
    "wall_s",
    "throughput_rps",
    "hit_rate",
    "warm_mean_ms",
    "cold_mean_ms",
    "table_hit_mean_ms",
    "memo_hit_mean_ms",
    "warm_speedup",
    "table_hit_ms",
    "pr3_warm_ms",
    "legacy_warm_ms",
    "cost_flat_ms",
    "cost_reference_ms",
    "cost_kernel_speedup",
    "warm_speedup_vs_pr3",
    "warm_path_speedup",
    "concurrent_speedup",
    "repairs",
    "repair_hits",
    "verified",
    "engine",
)


def report_rows(report: ReplayReport, scenario: dict) -> list[dict]:
    """Flatten a replay report into uniformly-keyed rows.

    One ``summary`` row then one row per request kind; every row carries
    the full column set (missing cells blank) so they concatenate cleanly
    into one text table or CSV.
    """
    raw = [{**scenario, "row": "summary", **report.summary_row()}]
    raw.extend({**scenario, "row": "kind", **kind} for kind in report.kind_rows())
    return [{column: row.get(column, "") for column in ROW_COLUMNS} for row in raw]


def run_service_replay(
    num_requests: int = 200,
    budget: int = 16,
    capacity: int = 4,
    workload_pool: int = 8,
    rate_scheme: str = "constant",
    verify: bool = False,
    config: ExperimentConfig = QUICK_CONFIG,
    trace_path: str | Path | None = None,
    record_path: str | Path | None = None,
    workers: int = 1,
    mode: str = "thread",
    journal_path: str | Path | None = None,
    restore_path: str | Path | None = None,
    snapshot_path: str | Path | None = None,
) -> tuple[ReplayReport, list[dict]]:
    """Replay a churn trace (generated or recorded) and return (report, rows).

    With ``trace_path`` the trace is read from a recorded JSON-lines file
    (after validating its network-identity header against this scenario's
    tree); otherwise a seeded trace is generated.  ``record_path``
    optionally writes the replayed trace (with header) for later replays.

    Crash-safety plumbing: ``journal_path`` attaches a write-ahead
    :class:`~repro.service.persistence.Journal` to the service (mutating
    requests are appended as they are applied), ``restore_path`` rebuilds
    the service from a snapshot file first (replaying the journal's tail
    when ``journal_path`` is also given), and ``snapshot_path`` writes a
    snapshot of the final fleet after the replay.  ``workers`` / ``mode``
    drive the replay concurrently — a thread pool or a Λ-epoch process
    pool (see :func:`repro.service.driver.replay_trace`).

    The rows contain one ``summary`` row (throughput, hit rate, warm
    speedup) followed by one row per request kind (count, hits, latency
    percentiles), all prefixed with the scenario parameters so several
    configurations concatenate into one CSV.  The scenario's ``budget``
    column is derived from the *events actually replayed* (the per-tenant
    solve/admit budget; ``"mixed"`` when they disagree), so generated and
    recorded replays of the same trace label their rows identically.
    """
    from repro.service.api import PlacementService
    from repro.service.persistence import Journal, write_snapshot

    tree = apply_rate_scheme(bt_network(config.network_size), rate_scheme)
    journal = Journal(journal_path, tree=tree) if journal_path is not None else None
    if restore_path is not None:
        service = PlacementService.restore(
            tree,
            restore_path,
            journal,
            engine=config.engine,
            color=config.color,
            cost_kernel=config.cost,
        )
    else:
        service = PlacementService(
            tree,
            capacity,
            engine=config.engine,
            color=config.color,
            cost_kernel=config.cost,
            journal=journal,
        )
    if trace_path is not None:
        check_trace_compatible(tree, trace_header(trace_path))
        trace = read_trace(trace_path)
    else:
        trace = generate_churn_trace(
            tree,
            num_requests,
            seed=config.seed,
            budget=budget,
            workload_pool=workload_pool,
            # A restored registry may still hold tenants from its previous
            # life; start the generated tenant numbering past every id the
            # service has ever admitted so the trace cannot collide.
            tenant_offset=service.state.admitted_total,
        )
    if record_path is not None:
        write_trace(trace, record_path, tree=tree)
    report = replay_trace(
        tree,
        trace,
        verify=verify,
        service=service,
        workers=workers,
        mode=mode,
    )
    if snapshot_path is not None:
        write_snapshot(service.snapshot(), snapshot_path)
    if journal is not None:
        journal.close()

    solve_budgets = {
        event.budget
        for event in trace
        if event.kind in ("solve", "admit") and event.budget is not None
    }
    if len(solve_budgets) == 1:
        budget_label: int | str = solve_budgets.pop()
    elif solve_budgets:
        budget_label = "mixed"
    else:
        budget_label = budget
    scenario = {
        "network_size": config.network_size,
        "requests": len(trace),
        "budget": budget_label,
        "capacity": capacity,
        "workers": workers,
        "mode": report.mode,
    }
    return report, report_rows(report, scenario)


def run_service_throughput(
    num_requests: int = 200,
    budget: int = 16,
    capacity: int = 4,
    verify: bool = False,
    config: ExperimentConfig = QUICK_CONFIG,
) -> list[dict]:
    """Row-only wrapper of :func:`run_service_replay` (CLI / benchmarks)."""
    _, rows = run_service_replay(
        num_requests=num_requests,
        budget=budget,
        capacity=capacity,
        verify=verify,
        config=config,
    )
    return rows

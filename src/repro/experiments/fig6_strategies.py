"""Figure 6: SOAR versus the contending strategies on ``BT(256)``.

For every combination of

* load distribution (uniform, power-law),
* link-rate scheme (constant, linear, exponential),
* budget ``k`` in {1, 2, 4, 8, 16, 32},

the experiment places blue nodes with each strategy (Top, Max, Level, SOAR)
and reports the utilization normalized to the all-red solution, averaged
over ten independently sampled workloads.  The all-blue curve is added as
the reference lower bound.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.baselines.strategies import PAPER_STRATEGIES
from repro.core.cost import all_blue_cost, all_red_cost, evaluate_cost
from repro.core.flat import cost_model_for
from repro.core.solver import Solver
from repro.experiments.harness import (
    DISTRIBUTION_NAMES,
    FIG6_BUDGETS,
    RATE_SCHEME_NAMES,
    ExperimentConfig,
    PAPER_CONFIG,
    budgets_for_network,
    build_evaluation_network,
    repetition_seeds,
)
from repro.utils.stats import mean_and_stderr


def run_fig6(
    config: ExperimentConfig = PAPER_CONFIG,
    budgets: Sequence[int] = FIG6_BUDGETS,
    rate_schemes: Sequence[str] = RATE_SCHEME_NAMES,
    distributions: Sequence[str] = DISTRIBUTION_NAMES,
    strategies: dict | None = None,
) -> list[dict]:
    """Run the Figure 6 sweep and return one row per plotted point.

    Each row carries ``distribution``, ``rate_scheme``, ``strategy``, ``k``,
    the mean normalized utilization over the repetitions and its standard
    error — exactly the series of the corresponding sub-plot.
    """
    strategies = dict(strategies or PAPER_STRATEGIES)
    solver = Solver(engine=config.engine, color=config.color, cost_kernel=config.cost)
    rows: list[dict] = []

    for distribution in distributions:
        for rate_scheme in rate_schemes:
            # normalized[strategy][k] accumulates one value per repetition
            normalized: dict[str, dict[int, list[float]]] = {
                name: {} for name in [*strategies, "All blue"]
            }
            effective_budgets: list[int] = []

            for rng in repetition_seeds(config):
                tree = build_evaluation_network(config, rate_scheme, distribution, rng)
                effective_budgets = budgets_for_network(budgets, tree)
                baseline = all_red_cost(tree)
                blue_reference = all_blue_cost(tree) / baseline if baseline else 0.0

                # One structural cost model evaluates every heuristic
                # placement of this repetition's network.
                model = cost_model_for(tree)
                soar_solutions = solver.sweep(tree, effective_budgets)
                for budget in effective_budgets:
                    for name, strategy in strategies.items():
                        if name == "SOAR":
                            cost = soar_solutions[budget].cost
                        else:
                            cost = evaluate_cost(
                                tree,
                                strategy(tree, budget),
                                cost=config.cost,
                                model=model,
                            )
                        value = cost / baseline if baseline else 0.0
                        normalized[name].setdefault(budget, []).append(value)
                    normalized["All blue"].setdefault(budget, []).append(blue_reference)

            for name, per_budget in normalized.items():
                for budget in effective_budgets:
                    mean, stderr = mean_and_stderr(per_budget[budget])
                    rows.append(
                        {
                            "figure": "fig6",
                            "distribution": distribution,
                            "rate_scheme": rate_scheme,
                            "strategy": name,
                            "k": budget,
                            "normalized_utilization": mean,
                            "stderr": stderr,
                            "repetitions": config.repetitions,
                            "network_size": config.network_size,
                        }
                    )
    return rows

"""Experiment harness: one module per figure of the paper's evaluation."""

from repro.experiments.harness import (
    DISTRIBUTION_NAMES,
    FIG6_BUDGETS,
    FIG8_BUDGETS,
    PAPER_CONFIG,
    QUICK_CONFIG,
    RATE_SCHEME_NAMES,
    ExperimentConfig,
    build_evaluation_network,
    repetition_seeds,
)
from repro.experiments.motivating import (
    FIGURE2_EXPECTED,
    FIGURE3_EXPECTED,
    MOTIVATING_LOADS,
    motivating_tree,
    run_budget_sweep,
    run_strategy_comparison,
)
from repro.experiments.fig6_strategies import run_fig6
from repro.experiments.fig7_online import run_fig7_capacity_sweep, run_fig7_workload_sweep
from repro.experiments.fig8_applications import run_fig8
from repro.experiments.fig9_runtime import (
    run_color_comparison,
    run_cost_comparison,
    run_engine_comparison,
    run_fig9,
)
from repro.experiments.fig10_scaling import (
    BUDGET_RULES,
    run_fig10_required_fraction,
    run_fig10_utilization,
)
from repro.experiments.fig11_scalefree import run_fig11_example, run_fig11_scaling
from repro.experiments.service_replay import run_service_replay, run_service_throughput

__all__ = [
    "BUDGET_RULES",
    "DISTRIBUTION_NAMES",
    "ExperimentConfig",
    "FIG6_BUDGETS",
    "FIG8_BUDGETS",
    "FIGURE2_EXPECTED",
    "FIGURE3_EXPECTED",
    "MOTIVATING_LOADS",
    "PAPER_CONFIG",
    "QUICK_CONFIG",
    "RATE_SCHEME_NAMES",
    "build_evaluation_network",
    "motivating_tree",
    "repetition_seeds",
    "run_budget_sweep",
    "run_color_comparison",
    "run_cost_comparison",
    "run_engine_comparison",
    "run_fig10_required_fraction",
    "run_fig10_utilization",
    "run_fig11_example",
    "run_fig11_scaling",
    "run_fig6",
    "run_fig7_capacity_sweep",
    "run_fig7_workload_sweep",
    "run_fig8",
    "run_fig9",
    "run_service_replay",
    "run_service_throughput",
    "run_strategy_comparison",
]

"""Figure 7: online multi-workload aggregation with bounded switch capacity.

Baseline setup of Section 5.2: ``BT(256)``, per-workload budget ``k = 16``,
aggregation capacity ``a(s) = 4`` for every switch, 32 workloads drawn
online from a 50/50 mix of the uniform and power-law load distributions.

The figure has two rows per rate scheme:

* **workload sweep** (top): total normalized utilization as a function of
  the number of workloads handled so far, at fixed capacity;
* **capacity sweep** (bottom): total normalized utilization of the full
  32-workload sequence as a function of the per-switch capacity.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.baselines.strategies import PAPER_STRATEGIES
from repro.experiments.harness import (
    ExperimentConfig,
    PAPER_CONFIG,
    RATE_SCHEME_NAMES,
    repetition_seeds,
)
from repro.online.scheduler import compare_strategies_online, generate_workload_sequence
from repro.topology.binary_tree import bt_network
from repro.utils.stats import mean_and_stderr
from repro.workload.rates import apply_rate_scheme

#: Baseline parameters of Section 5.2.
DEFAULT_BUDGET: int = 16
DEFAULT_CAPACITY: int = 4
DEFAULT_NUM_WORKLOADS: int = 32
#: Capacities swept by the bottom row of Figure 7.
CAPACITY_SWEEP: tuple[int, ...] = (2, 4, 8, 16, 32)


def _prefix_normalized(results, prefix: int) -> float:
    """Normalized total utilization of the first ``prefix`` workloads of a run."""
    workloads = results.workloads[:prefix]
    total = sum(item.cost for item in workloads)
    baseline = sum(item.all_red_cost for item in workloads)
    return total / baseline if baseline else 0.0


def run_fig7_workload_sweep(
    config: ExperimentConfig = PAPER_CONFIG,
    budget: int = DEFAULT_BUDGET,
    capacity: int = DEFAULT_CAPACITY,
    num_workloads: int = DEFAULT_NUM_WORKLOADS,
    rate_schemes: Sequence[str] = RATE_SCHEME_NAMES,
    strategies: dict | None = None,
) -> list[dict]:
    """Top row of Figure 7: normalized utilization vs number of workloads.

    A single online run over ``num_workloads`` arrivals yields the whole
    curve (the value at ``x`` workloads is the normalized cost of the first
    ``x`` arrivals), repeated and averaged over ``config.repetitions``
    independently drawn arrival sequences.
    """
    strategies = dict(strategies or PAPER_STRATEGIES)
    rows: list[dict] = []

    for rate_scheme in rate_schemes:
        per_strategy: dict[str, dict[int, list[float]]] = {name: {} for name in strategies}
        for rng in repetition_seeds(config):
            tree = apply_rate_scheme(bt_network(config.network_size), rate_scheme)
            workloads = generate_workload_sequence(tree, num_workloads, rng=rng)
            outcomes = compare_strategies_online(
                tree, workloads, strategies, budget=budget, capacity=capacity
            )
            for name, outcome in outcomes.items():
                for prefix in range(1, num_workloads + 1):
                    per_strategy[name].setdefault(prefix, []).append(
                        _prefix_normalized(outcome, prefix)
                    )

        for name, per_prefix in per_strategy.items():
            for prefix, values in sorted(per_prefix.items()):
                mean, stderr = mean_and_stderr(values)
                rows.append(
                    {
                        "figure": "fig7-workloads",
                        "rate_scheme": rate_scheme,
                        "strategy": name,
                        "num_workloads": prefix,
                        "capacity": capacity,
                        "k": budget,
                        "normalized_utilization": mean,
                        "stderr": stderr,
                        "network_size": config.network_size,
                    }
                )
    return rows


def run_fig7_capacity_sweep(
    config: ExperimentConfig = PAPER_CONFIG,
    budget: int = DEFAULT_BUDGET,
    capacities: Sequence[int] = CAPACITY_SWEEP,
    num_workloads: int = DEFAULT_NUM_WORKLOADS,
    rate_schemes: Sequence[str] = RATE_SCHEME_NAMES,
    strategies: dict | None = None,
) -> list[dict]:
    """Bottom row of Figure 7: normalized utilization vs per-switch capacity."""
    strategies = dict(strategies or PAPER_STRATEGIES)
    rows: list[dict] = []

    for rate_scheme in rate_schemes:
        per_point: dict[tuple[str, int], list[float]] = {}
        for rng in repetition_seeds(config):
            tree = apply_rate_scheme(bt_network(config.network_size), rate_scheme)
            workloads = generate_workload_sequence(tree, num_workloads, rng=rng)
            for capacity in capacities:
                outcomes = compare_strategies_online(
                    tree, workloads, strategies, budget=budget, capacity=capacity
                )
                for name, outcome in outcomes.items():
                    per_point.setdefault((name, capacity), []).append(outcome.normalized_cost)

        for (name, capacity), values in sorted(per_point.items(), key=lambda kv: (kv[0][0], kv[0][1])):
            mean, stderr = mean_and_stderr(values)
            rows.append(
                {
                    "figure": "fig7-capacity",
                    "rate_scheme": rate_scheme,
                    "strategy": name,
                    "num_workloads": num_workloads,
                    "capacity": capacity,
                    "k": budget,
                    "normalized_utilization": mean,
                    "stderr": stderr,
                    "network_size": config.network_size,
                }
            )
    return rows

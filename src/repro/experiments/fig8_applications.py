"""Figure 8: the word-count (WC) and parameter-server (PS) use cases.

Constant-rate ``BT(256)``, budgets up to 64, uniform and power-law loads.
Three panels:

* **Fig. 8a** — normalized utilization of SOAR's placement (identical for
  WC and PS because the utilization model is application-agnostic),
* **Fig. 8b** — byte complexity normalized to the all-red solution,
* **Fig. 8c** — byte complexity normalized to the all-blue solution.

The byte complexity uses the analytic expected-size models of
:mod:`repro.apps.bytes_model`; the sampled content-carrying Reduce agrees
with it (asserted by the test-suite) but would be needlessly slow for the
full sweep.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.apps.bytes_model import expected_byte_complexity
from repro.apps.paramserver import ParameterServerApplication
from repro.apps.wordcount import WordCountApplication
from repro.core.cost import all_red_cost
from repro.core.solver import Solver
from repro.experiments.harness import (
    DISTRIBUTION_NAMES,
    ExperimentConfig,
    FIG8_BUDGETS,
    PAPER_CONFIG,
    budgets_for_network,
    build_evaluation_network,
    repetition_seeds,
)
from repro.utils.stats import mean_and_stderr


def default_applications() -> dict[str, object]:
    """The two case-study applications with their paper-inspired parameters."""
    return {
        "WC": WordCountApplication(),
        "PS": ParameterServerApplication(),
    }


def run_fig8(
    config: ExperimentConfig = PAPER_CONFIG,
    budgets: Sequence[int] = FIG8_BUDGETS,
    distributions: Sequence[str] = DISTRIBUTION_NAMES,
    applications: dict | None = None,
    rate_scheme: str = "constant",
) -> list[dict]:
    """Run the Figure 8 sweep and return one row per (application, distribution, k).

    Each row carries the normalized utilization (Fig. 8a), the byte
    complexity normalized to all-red (Fig. 8b) and to all-blue (Fig. 8c),
    averaged over the configured repetitions.
    """
    applications = dict(applications or default_applications())
    solver = Solver(engine=config.engine, color=config.color)
    rows: list[dict] = []

    for app_name, application in applications.items():
        for distribution in distributions:
            utilization: dict[int, list[float]] = {}
            bytes_vs_red: dict[int, list[float]] = {}
            bytes_vs_blue: dict[int, list[float]] = {}
            effective_budgets: list[int] = []

            for rng in repetition_seeds(config):
                tree = build_evaluation_network(config, rate_scheme, distribution, rng)
                effective_budgets = budgets_for_network(budgets, tree)
                baseline_utilization = all_red_cost(tree)
                all_red_bytes = expected_byte_complexity(tree, frozenset(), application)
                all_blue_bytes = expected_byte_complexity(
                    tree, frozenset(tree.switches), application
                )

                solutions = solver.sweep(tree, effective_budgets)
                for budget in effective_budgets:
                    solution = solutions[budget]
                    placement_bytes = expected_byte_complexity(
                        tree, solution.blue_nodes, application
                    )
                    utilization.setdefault(budget, []).append(
                        solution.cost / baseline_utilization if baseline_utilization else 0.0
                    )
                    bytes_vs_red.setdefault(budget, []).append(
                        placement_bytes / all_red_bytes if all_red_bytes else 0.0
                    )
                    bytes_vs_blue.setdefault(budget, []).append(
                        placement_bytes / all_blue_bytes if all_blue_bytes else 0.0
                    )

            for budget in effective_budgets:
                util_mean, util_err = mean_and_stderr(utilization[budget])
                red_mean, red_err = mean_and_stderr(bytes_vs_red[budget])
                blue_mean, blue_err = mean_and_stderr(bytes_vs_blue[budget])
                rows.append(
                    {
                        "figure": "fig8",
                        "application": app_name,
                        "distribution": distribution,
                        "k": budget,
                        "normalized_utilization": util_mean,
                        "normalized_utilization_stderr": util_err,
                        "bytes_vs_all_red": red_mean,
                        "bytes_vs_all_red_stderr": red_err,
                        "bytes_vs_all_blue": blue_mean,
                        "bytes_vs_all_blue_stderr": blue_err,
                        "network_size": config.network_size,
                        "repetitions": config.repetitions,
                    }
                )
    return rows

"""Contending placement strategies (Top, Max, Level, Random, all-red, all-blue)."""

from repro.baselines.strategies import (
    ALL_STRATEGIES,
    PAPER_STRATEGIES,
    PlacementStrategy,
    all_blue,
    all_red,
    bottom_strategy,
    get_strategy,
    level_strategy,
    max_degree_strategy,
    max_load_strategy,
    random_strategy,
    soar_strategy,
    top_strategy,
)

__all__ = [
    "ALL_STRATEGIES",
    "PAPER_STRATEGIES",
    "PlacementStrategy",
    "all_blue",
    "all_red",
    "bottom_strategy",
    "get_strategy",
    "level_strategy",
    "max_degree_strategy",
    "max_load_strategy",
    "random_strategy",
    "soar_strategy",
    "top_strategy",
]

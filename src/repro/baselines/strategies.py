"""Contending placement strategies the paper compares SOAR against.

Section 3 introduces three "simple, yet reasonable" strategies and Section 5
evaluates them (plus the trivial all-red / all-blue extremes):

* **Top** — pick the ``k`` available switches closest to the root (ties
  broken by breadth-first order), aiming to compress traffic near the top
  of the tree,
* **Max** — pick the ``k`` available switches with the largest load
  (the appendix uses the highest *degree* on scale-free trees; both
  variants are provided),
* **Level** — for complete binary trees, pick an entire level as the blue
  set, partitioning the network into similar-size aggregated subtrees,
* **all-red** — no aggregation at all (the normalization baseline),
* **all-blue** — aggregation everywhere (the reference lower curve).

All strategies honour the availability set Λ and the budget ``k``, which is
what the online multi-workload experiments of Section 5.2 rely on.  A
uniformly random placement is included as an extra sanity baseline.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.core.solver import Solver
from repro.core.tree import NodeId, TreeNetwork
from repro.exceptions import InvalidBudgetError

#: A placement strategy maps (tree, budget) to a set of blue switches.
PlacementStrategy = Callable[[TreeNetwork, int], frozenset[NodeId]]


def _check_budget(budget: int) -> int:
    if budget < 0:
        raise InvalidBudgetError(f"budget must be non-negative, got {budget}")
    return int(budget)


def _stable_key(node: NodeId) -> str:
    """Deterministic tie-breaking key for arbitrary (hashable) node ids."""
    return repr(node)


def all_red(tree: TreeNetwork, budget: int = 0) -> frozenset[NodeId]:
    """The empty placement: every switch forwards without aggregating."""
    _check_budget(budget)
    return frozenset()


def all_blue(tree: TreeNetwork, budget: int | None = None) -> frozenset[NodeId]:
    """Colour every switch blue, ignoring both the budget and Λ.

    The paper uses the unrestricted all-blue solution purely as a reference
    curve (its cost equals the number of loaded links weighted by ρ).
    """
    return frozenset(tree.switches)


def _subtree_loads(tree: TreeNetwork) -> dict[NodeId, int]:
    """Total subtree load of every switch, computed in one post-order pass."""
    totals: dict[NodeId, int] = {}
    for switch in tree.switches:  # children before parents
        totals[switch] = tree.load(switch) + sum(
            totals[child] for child in tree.children(switch)
        )
    return totals


def top_strategy(tree: TreeNetwork, budget: int) -> frozenset[NodeId]:
    """Pick the ``k`` available switches closest to the root.

    Ties between switches at the same depth are broken towards the switch
    whose subtree carries the larger load (aggregating it saves more), which
    matches the choice shown in Figure 2a of the paper, then by name.
    """
    budget = _check_budget(budget)
    if budget == 0:
        return frozenset()
    subtree_load = _subtree_loads(tree)
    candidates = sorted(
        (s for s in tree.switches if s in tree.available),
        key=lambda s: (tree.depth(s), -subtree_load[s], _stable_key(s)),
    )
    return frozenset(candidates[:budget])


def bottom_strategy(tree: TreeNetwork, budget: int) -> frozenset[NodeId]:
    """Pick the ``k`` available switches farthest from the root.

    Not evaluated in the paper; included as the natural mirror image of
    *Top* for ablation studies.
    """
    budget = _check_budget(budget)
    if budget == 0:
        return frozenset()
    candidates = sorted(
        (s for s in tree.switches if s in tree.available),
        key=lambda s: (-tree.depth(s), _stable_key(s)),
    )
    return frozenset(candidates[:budget])


def max_load_strategy(tree: TreeNetwork, budget: int) -> frozenset[NodeId]:
    """Pick the ``k`` available switches with the largest load (paper's *Max*)."""
    budget = _check_budget(budget)
    if budget == 0:
        return frozenset()
    candidates = sorted(
        (s for s in tree.switches if s in tree.available),
        key=lambda s: (-tree.load(s), _stable_key(s)),
    )
    return frozenset(candidates[:budget])


def max_degree_strategy(tree: TreeNetwork, budget: int) -> frozenset[NodeId]:
    """Pick the ``k`` available switches with the highest degree.

    This is the *Max* variant Appendix B applies to scale-free trees, where
    load is uniform and degree is the natural notion of importance.
    """
    budget = _check_budget(budget)
    if budget == 0:
        return frozenset()
    candidates = sorted(
        (s for s in tree.switches if s in tree.available),
        key=lambda s: (-(tree.num_children(s) + 1), _stable_key(s)),
    )
    return frozenset(candidates[:budget])


def level_strategy(tree: TreeNetwork, budget: int) -> frozenset[NodeId]:
    """Pick a whole level of the tree as the blue set (paper's *Level*).

    Designed for complete binary trees: the strategy selects the deepest
    level that still fits in the budget once restricted to available
    switches, so the network is partitioned into similar-sized aggregated
    subtrees.  If not even the root level fits (budget 0), nothing is
    selected.  On irregular trees the "level" is the set of switches at
    equal depth, which is the natural generalization.
    """
    budget = _check_budget(budget)
    if budget == 0:
        return frozenset()
    best: frozenset[NodeId] = frozenset()
    for level in tree.levels():
        available = [s for s in level if s in tree.available]
        if not available:
            continue
        if len(available) <= budget:
            best = frozenset(available)  # deeper levels overwrite shallower ones
    return best


def random_strategy(
    tree: TreeNetwork,
    budget: int,
    rng: np.random.Generator | int | None = None,
) -> frozenset[NodeId]:
    """Pick ``k`` available switches uniformly at random (sanity baseline)."""
    budget = _check_budget(budget)
    candidates = sorted(tree.available, key=_stable_key)
    if budget == 0 or not candidates:
        return frozenset()
    generator = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    count = min(budget, len(candidates))
    chosen = generator.choice(len(candidates), size=count, replace=False)
    return frozenset(candidates[int(index)] for index in chosen)


#: Shared stateless solver behind :func:`soar_strategy` (default engine,
#: at-most-k semantics, batched colour).
_SOAR: Solver = Solver()


def soar_strategy(tree: TreeNetwork, budget: int) -> frozenset[NodeId]:
    """The optimal placement computed by SOAR, wrapped in the strategy signature."""
    return _SOAR.solve(tree, budget).blue_nodes


#: Strategies plotted in Figures 6 and 7, keyed by the names used in the paper.
PAPER_STRATEGIES: dict[str, PlacementStrategy] = {
    "Top": top_strategy,
    "Max": max_load_strategy,
    "Level": level_strategy,
    "SOAR": soar_strategy,
}

#: Every named strategy the library ships (superset of the paper's).
ALL_STRATEGIES: dict[str, PlacementStrategy] = {
    **PAPER_STRATEGIES,
    "MaxDegree": max_degree_strategy,
    "Bottom": bottom_strategy,
    "Random": random_strategy,
    "AllRed": all_red,
    "AllBlue": all_blue,
}


def get_strategy(name: str) -> PlacementStrategy:
    """Look up a strategy by its canonical name (case-insensitive)."""
    lowered = {key.lower(): value for key, value in ALL_STRATEGIES.items()}
    try:
        return lowered[name.lower()]
    except KeyError as exc:
        raise KeyError(
            f"unknown strategy {name!r}; expected one of {sorted(ALL_STRATEGIES)}"
        ) from exc

"""Churn traces: recorded request streams for the placement service.

A *trace* is a flat list of :class:`TraceEvent` — a serializable, engine-
and state-agnostic description of one service request.  Traces come from
two places:

* :func:`generate_churn_trace` draws a seeded synthetic stream: tenants
  arrive (``admit``), repeat placement queries (``solve`` / ``sweep``,
  drawn from a small pool of recurring workloads so the cache has
  something to hit), depart (``release``), and occasionally a switch is
  drained.  The stream is fully determined by its seed.
* :func:`read_trace` / :func:`write_trace` round-trip a trace through
  JSON-lines, so a recorded production stream can be replayed offline
  (``soar-repro serve-replay --trace requests.jsonl``).

Workload loads are stored inline in each event (as ``str(node) -> load``
pairs); :func:`event_to_request` resolves them against the target network
when the trace is replayed, so a trace file is self-contained and portable
across processes.

The same format backs the service's write-ahead journal
(:class:`repro.service.persistence.Journal`): a journal is a trace file
restricted to the mutating kinds, produced by :func:`request_to_event` —
the inverse of :func:`event_to_request` — as each mutation is applied.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from collections.abc import Iterable, Sequence

import numpy as np

from repro.core.tree import NodeId, TreeNetwork
from repro.exceptions import WorkloadError
from repro.service.api import (
    AdmitRequest,
    DrainRequest,
    ReleaseRequest,
    Request,
    SolveRequest,
    StatsRequest,
    SweepRequest,
)
from repro.workload.distributions import (
    PowerLawLoadDistribution,
    UniformLoadDistribution,
    sample_leaf_loads,
)

#: Event kinds a trace may contain, mirroring the service request types.
EVENT_KINDS: tuple[str, ...] = ("solve", "sweep", "admit", "release", "drain", "stats")

#: Kind tag of the optional first line identifying the recorded network.
TRACE_HEADER_KIND: str = "trace-header"


@dataclass(frozen=True)
class TraceEvent:
    """One recorded service request.

    ``loads`` maps ``str(node)`` to the load — stringified so the event
    survives JSON round-trips regardless of the node-id type; the replay
    side resolves names back to node ids against its network.
    """

    kind: str
    tenant: str | None = None
    budget: int | None = None
    budgets: tuple[int, ...] = ()
    loads: tuple[tuple[str, int], ...] = ()
    switch: str | None = None
    exact_k: bool = False

    def to_json(self) -> str:
        """Serialize as one compact JSON object (one line of a trace file)."""
        payload: dict = {"kind": self.kind}
        if self.tenant is not None:
            payload["tenant"] = self.tenant
        if self.budget is not None:
            payload["budget"] = self.budget
        if self.budgets:
            payload["budgets"] = list(self.budgets)
        if self.loads:
            payload["loads"] = [[name, load] for name, load in self.loads]
        if self.switch is not None:
            payload["switch"] = self.switch
        if self.exact_k:
            payload["exact_k"] = True
        return json.dumps(payload, separators=(",", ":"))

    @classmethod
    def from_json(cls, line: str) -> "TraceEvent":
        """Parse one JSON line back into an event."""
        payload = json.loads(line)
        kind = payload.get("kind")
        if kind not in EVENT_KINDS:
            raise WorkloadError(f"unknown trace event kind: {kind!r}")
        return cls(
            kind=kind,
            tenant=payload.get("tenant"),
            budget=payload.get("budget"),
            budgets=tuple(int(b) for b in payload.get("budgets", [])),
            loads=tuple((str(name), int(load)) for name, load in payload.get("loads", [])),
            switch=payload.get("switch"),
            exact_k=bool(payload.get("exact_k", False)),
        )


def node_index(tree: TreeNetwork) -> dict[str, NodeId]:
    """Map ``str(node)`` back to node ids, rejecting ambiguous networks.

    The shared resolution convention of every serialized artifact in the
    service layer: trace events, write-ahead journals, and fleet snapshots
    all store switches as ``str(node)`` and resolve them through this
    index when loaded.
    """
    index: dict[str, NodeId] = {}
    for node in tree.switches:
        name = str(node)
        if name in index:
            raise WorkloadError(
                f"network has two switches stringifying to {name!r}; "
                "traces cannot be resolved against it"
            )
        index[name] = node
    return index


#: Backwards-compatible alias (pre-persistence name).
_node_index = node_index


def resolve_loads(
    tree: TreeNetwork,
    loads: Iterable[tuple[str, int]],
    node_index: dict[str, NodeId] | None = None,
) -> dict[NodeId, int]:
    """Resolve an event's stringified loads against a network."""
    index = _node_index(tree) if node_index is None else node_index
    resolved: dict[NodeId, int] = {}
    for name, load in loads:
        try:
            resolved[index[name]] = int(load)
        except KeyError as exc:
            raise WorkloadError(
                f"trace references unknown switch {name!r}"
            ) from exc
    return resolved


def event_to_request(
    tree: TreeNetwork,
    event: TraceEvent,
    node_index: dict[str, NodeId] | None = None,
) -> Request:
    """Convert a trace event into the corresponding typed service request."""
    index = _node_index(tree) if node_index is None else node_index
    if event.kind == "solve":
        return SolveRequest(
            loads=resolve_loads(tree, event.loads, index),
            budget=int(event.budget or 0),
            exact_k=event.exact_k,
        )
    if event.kind == "sweep":
        return SweepRequest(
            loads=resolve_loads(tree, event.loads, index),
            budgets=tuple(event.budgets),
            exact_k=event.exact_k,
        )
    if event.kind == "admit":
        if event.tenant is None:
            raise WorkloadError("admit event without a tenant id")
        return AdmitRequest(
            tenant_id=event.tenant,
            loads=resolve_loads(tree, event.loads, index),
            budget=int(event.budget or 0),
            exact_k=event.exact_k,
        )
    if event.kind == "release":
        if event.tenant is None:
            raise WorkloadError("release event without a tenant id")
        return ReleaseRequest(tenant_id=event.tenant)
    if event.kind == "drain":
        if event.switch is None:
            raise WorkloadError("drain event without a switch")
        try:
            return DrainRequest(switch=index[event.switch])
        except KeyError as exc:
            raise WorkloadError(
                f"drain event references unknown switch {event.switch!r}"
            ) from exc
    if event.kind == "stats":
        return StatsRequest()
    raise WorkloadError(f"unknown trace event kind: {event.kind!r}")


def request_to_event(request: Request) -> TraceEvent:
    """Convert a typed service request back into a serializable trace event.

    The exact inverse of :func:`event_to_request` (modulo load ordering,
    which both sides treat as a mapping): replaying the produced event
    against the same network yields an equal request.  This is how the
    write-ahead journal records mutating requests — the journal *is* a
    trace file, so every trace tool (:func:`read_trace`,
    :func:`trace_header`, the replay driver) works on journals unchanged.
    """
    if isinstance(request, SolveRequest):
        return TraceEvent(
            kind="solve",
            budget=int(request.budget),
            loads=tuple(sorted((str(n), int(v)) for n, v in request.loads.items())),
            exact_k=request.exact_k,
        )
    if isinstance(request, SweepRequest):
        return TraceEvent(
            kind="sweep",
            budgets=tuple(int(b) for b in request.budgets),
            loads=tuple(sorted((str(n), int(v)) for n, v in request.loads.items())),
            exact_k=request.exact_k,
        )
    if isinstance(request, AdmitRequest):
        return TraceEvent(
            kind="admit",
            tenant=request.tenant_id,
            budget=int(request.budget),
            loads=tuple(sorted((str(n), int(v)) for n, v in request.loads.items())),
            exact_k=request.exact_k,
        )
    if isinstance(request, ReleaseRequest):
        return TraceEvent(kind="release", tenant=request.tenant_id)
    if isinstance(request, DrainRequest):
        return TraceEvent(kind="drain", switch=str(request.switch))
    if isinstance(request, StatsRequest):
        return TraceEvent(kind="stats")
    raise WorkloadError(f"unknown request type: {type(request).__name__}")


def write_trace(
    events: Sequence[TraceEvent],
    path: str | Path,
    tree: TreeNetwork | None = None,
) -> Path:
    """Write a trace as JSON-lines; returns the path written.

    When ``tree`` is given, the file starts with a header line recording
    the network's structure fingerprint and size, so a later replay can
    refuse to run the trace against a different network (BT switch names
    nest across sizes, so without the header a size mismatch would resolve
    silently and produce different results than the recording).
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("w") as handle:
        if tree is not None:
            header = {
                "kind": TRACE_HEADER_KIND,
                "structure": tree.structure_fingerprint(),
                "num_switches": tree.num_switches,
            }
            handle.write(json.dumps(header, separators=(",", ":")))
            handle.write("\n")
        for event in events:
            handle.write(event.to_json())
            handle.write("\n")
    return target


def trace_header(path: str | Path) -> dict | None:
    """Return the trace file's header payload, or ``None`` if it has none."""
    with Path(path).open() as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            payload = json.loads(line)
            if payload.get("kind") == TRACE_HEADER_KIND:
                return payload
            return None
    return None


def check_trace_compatible(tree: TreeNetwork, header: dict | None) -> None:
    """Raise when a trace header identifies a different network.

    A headerless trace (``header is None``) passes — there is nothing to
    check against, as with hand-written traces.
    """
    if header is None:
        return
    expected = header.get("structure")
    if expected is not None and expected != tree.structure_fingerprint():
        raise WorkloadError(
            "trace was recorded for a different network "
            f"({header.get('num_switches', '?')} switches, structure {expected[:12]}…); "
            f"this network has {tree.num_switches} switches — "
            "replay with the matching --network-size / topology"
        )


def read_trace(path: str | Path) -> list[TraceEvent]:
    """Read a JSON-lines trace file back into events (header skipped).

    Use :func:`trace_header` + :func:`check_trace_compatible` to validate
    the recorded network identity before replaying.
    """
    events: list[TraceEvent] = []
    first = True
    with Path(path).open() as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            if first:
                first = False
                if json.loads(line).get("kind") == TRACE_HEADER_KIND:
                    continue
            events.append(TraceEvent.from_json(line))
    return events


@dataclass(frozen=True)
class ChurnProfile:
    """Mix of request kinds in a synthetic churn trace (weights, not probs).

    The defaults describe a read-heavy service: most requests are repeated
    placement queries over a recurring pool of workloads, a quarter of the
    stream is tenant churn, drains are rare events.
    """

    solve: float = 0.45
    sweep: float = 0.08
    admit: float = 0.22
    release: float = 0.17
    drain: float = 0.03
    stats: float = 0.05

    def weights(self) -> np.ndarray:
        """Normalized weights aligned with :data:`EVENT_KINDS` by *name*,
        so reordering either the fields or the kinds cannot silently remap
        a kind onto another kind's weight."""
        values = np.asarray(
            [getattr(self, kind) for kind in EVENT_KINDS], dtype=np.float64
        )
        if np.any(values < 0) or values.sum() <= 0:
            raise WorkloadError("churn profile weights must be non-negative, not all zero")
        return values / values.sum()


def generate_churn_trace(
    tree: TreeNetwork,
    num_requests: int,
    seed: int | np.random.Generator = 0,
    budget: int = 16,
    workload_pool: int = 8,
    sweep_budgets: tuple[int, ...] = (1, 2, 4, 8, 16),
    max_drains: int = 2,
    profile: ChurnProfile | None = None,
    mix_probability: float = 0.5,
    tenant_offset: int = 0,
) -> list[TraceEvent]:
    """Generate a seeded synthetic churn trace over ``tree``.

    The stream draws workloads from a pool of ``workload_pool`` recurring
    load vectors (a mixed uniform / power-law population, as in the online
    experiments), so repeated queries exercise the gather-table cache the
    way recurring tenants would.  Releases target random *currently-active*
    tenants and drains pick random not-yet-drained switches, so every
    generated trace is valid to replay from a fresh service.

    ``tenant_offset`` starts the ``tenant-<n>`` numbering there instead of
    at zero, so a trace generated for a *restored* service (which may
    still hold tenants from its previous life) cannot collide with the
    restored registry — pass the service's lifetime ``admitted_total``.

    The stream is fully determined by ``seed`` (or the supplied generator)
    together with ``tenant_offset``.
    """
    if num_requests < 0:
        raise WorkloadError(f"num_requests must be non-negative, got {num_requests}")
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
    profile = profile or ChurnProfile()
    weights = profile.weights()

    uniform = UniformLoadDistribution()
    power_law = PowerLawLoadDistribution()
    pool: list[tuple[tuple[str, int], ...]] = []
    for _ in range(max(1, int(workload_pool))):
        distribution = uniform if rng.random() < mix_probability else power_law
        loads = sample_leaf_loads(tree, distribution, rng=rng)
        pool.append(tuple((str(node), int(load)) for node, load in loads.items()))

    switch_names = [str(node) for node in tree.switches]
    active: list[str] = []
    drained: list[str] = []
    events: list[TraceEvent] = []
    next_tenant = max(0, int(tenant_offset))

    for _ in range(int(num_requests)):
        kind = EVENT_KINDS[int(rng.choice(len(EVENT_KINDS), p=weights))]
        if kind == "release" and not active:
            kind = "admit"
        if kind == "drain" and (len(drained) >= max_drains or len(drained) >= len(switch_names)):
            kind = "solve"

        if kind == "solve":
            events.append(
                TraceEvent(
                    kind="solve",
                    budget=int(budget),
                    loads=pool[int(rng.integers(len(pool)))],
                )
            )
        elif kind == "sweep":
            events.append(
                TraceEvent(
                    kind="sweep",
                    budgets=tuple(int(b) for b in sweep_budgets),
                    loads=pool[int(rng.integers(len(pool)))],
                )
            )
        elif kind == "admit":
            tenant = f"tenant-{next_tenant}"
            next_tenant += 1
            active.append(tenant)
            events.append(
                TraceEvent(
                    kind="admit",
                    tenant=tenant,
                    budget=int(budget),
                    loads=pool[int(rng.integers(len(pool)))],
                )
            )
        elif kind == "release":
            tenant = active.pop(int(rng.integers(len(active))))
            events.append(TraceEvent(kind="release", tenant=tenant))
        elif kind == "drain":
            candidates = [name for name in switch_names if name not in drained]
            switch = candidates[int(rng.integers(len(candidates)))]
            drained.append(switch)
            events.append(TraceEvent(kind="drain", switch=switch))
        else:
            events.append(TraceEvent(kind="stats"))
    return events

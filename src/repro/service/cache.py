"""Gather-table cache: memoized incremental recomputation for the service.

The gather phase dominates every solve (Figure 9: the colouring trace is two
orders of magnitude cheaper), and the gather tables depend on nothing but
the φ-BIC instance itself — topology, rates, loads, Λ, and the budget
semantics.  A long-lived service answering repeated placement queries over
a slowly-churning fleet therefore wants to compute each distinct gather
once and reuse it, in the spirit of the ``lru_cache`` idiom: this module is
that cache, made explicit so eviction, invalidation, and hit accounting are
observable.

Entries are the public :class:`repro.core.solver.GatherTable` artifacts —
self-contained (each owns the workload network it was gathered for) and
provenance-carrying, so a table hit is answered by ``table.place(budget)``
alone: no tree reconstruction, no solver state, just the batched colour
trace.

Keys and correctness
--------------------
Entries are keyed by :class:`CacheKey` — the structure fingerprint
(topology + rates), the availability fingerprint of Λ at gather time, the
loads digest, the ``exact_k`` semantics, and the engine name (engines are
bit-identical, but the key keeps the contract self-evident).  Because the
key digests *everything* the gather depends on, a cache hit is always
bitwise-correct: there is no way to observe a stale table through a
matching key.  Capacity churn that changes Λ simply changes the key, so
requests after an :class:`~repro.service.api.AdmitRequest` or
:class:`~repro.service.api.ReleaseRequest` look up different entries — and
when a release restores Λ to a previously-seen state, the old entries
become live hits again for free.

Budget upcasting
----------------
A :class:`~repro.core.solver.GatherTable` gathered at budget ``k`` carries
every column ``0 .. k``, so one entry answers *every* request at the same
key with budget ``k' <= k`` through ``table.place(k')`` (exactly how
:meth:`~repro.core.solver.GatherTable.sweep` works).  :meth:`lookup` treats
"stored budget too small" as a miss; the service then re-gathers at the
larger budget and :meth:`store` replaces the entry, so the cache converges
onto the widest table each key needs.

Solution memo
-------------
On top of the tables, each entry memoizes the fully-traced solutions per
effective budget (:meth:`solution` / :meth:`store_solution`): a repeated
identical query skips both the gather *and* the colour trace, costing only
the key digest.  Memoized solutions are the exact objects a cold solve
produced, so responses stay bit-identical.

Eviction and invalidation
-------------------------
Entries evict in LRU order beyond ``max_entries``.  Invalidation exists for
*reachability*, not correctness: after a drain, Λ can never again contain
the drained switch, so every entry whose availability set mentions it is
dead weight — :meth:`invalidate_switches` drops exactly those entries and
leaves the rest untouched.

Concurrency
-----------
Every public method is safe to call from multiple threads: one mutex
guards the LRU order, the solution memos, and the stats counters.  The
cached :class:`~repro.core.solver.GatherTable` artifacts are immutable, so
a hit hands the table out and the (expensive) colour trace runs with no
lock held — the lock only covers the dictionary book-keeping.  When two
threads race to gather the same key, :meth:`store` keeps the *widest*
table, so concurrent stores can never narrow what the cache answers; the
engines are deterministic, so either racer's table serves identical bits.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import NamedTuple

from repro.core.solver import GatherTable
from repro.core.tree import NodeId


class CacheKey(NamedTuple):
    """Identity of a gather computation (everything its output depends on)."""

    structure: str
    available: str
    loads: str
    exact_k: bool
    engine: str


class CachedSolution(NamedTuple):
    """A fully-traced placement memoized for one effective budget."""

    blue_nodes: frozenset[NodeId]
    cost: float
    predicted_cost: float


@dataclass
class CacheStats:
    """Counters exposed through the service's ``Stats`` endpoint."""

    table_hits: int = 0
    solution_hits: int = 0
    misses: int = 0
    budget_upcasts: int = 0
    evictions: int = 0
    invalidations: int = 0

    @property
    def hits(self) -> int:
        """Requests answered without a gather (table or solution memo)."""
        return self.table_hits + self.solution_hits

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from the cache (0.0 when unused)."""
        lookups = self.lookups
        return self.hits / lookups if lookups else 0.0

    def snapshot(self) -> dict[str, float | int]:
        """Plain-dict view for stats responses and CSV rows."""
        return {
            "table_hits": self.table_hits,
            "solution_hits": self.solution_hits,
            "misses": self.misses,
            "budget_upcasts": self.budget_upcasts,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "hit_rate": self.hit_rate,
        }


@dataclass
class _Entry:
    """One cached gather: the table artifact and the solution memo.

    The entry's Λ (used by :meth:`GatherTableCache.invalidate_switches`)
    is the availability set of the table's own workload network.
    """

    table: GatherTable
    solutions: dict[int, CachedSolution] = field(default_factory=dict)

    @property
    def available(self) -> frozenset[NodeId]:
        return self.table.tree.available


class GatherTableCache:
    """LRU cache of gather tables with budget upcasting and a solution memo.

    Parameters
    ----------
    max_entries:
        Maximum number of gather results kept (each entry's solution memo
        rides along with it).  The oldest-used entry evicts first.
    """

    def __init__(self, max_entries: int = 64) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be positive, got {max_entries}")
        self._max_entries = int(max_entries)
        self._entries: OrderedDict[CacheKey, _Entry] = OrderedDict()
        self.stats = CacheStats()
        # One mutex over the LRU book-keeping and the stats counters.  The
        # cached GatherTable artifacts themselves are immutable, so the
        # service's concurrent read-only loop only needs this lock for the
        # (cheap) dict operations around a hit — the returned table is then
        # traced without any lock held.
        self._lock = threading.RLock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: CacheKey) -> bool:
        with self._lock:
            return key in self._entries

    @property
    def max_entries(self) -> int:
        return self._max_entries

    def keys(self) -> tuple[CacheKey, ...]:
        """Current keys, least-recently-used first (for tests/diagnostics)."""
        with self._lock:
            return tuple(self._entries)

    def tables(self) -> tuple[tuple[CacheKey, GatherTable], ...]:
        """Current ``(key, table)`` pairs, least-recently-used first.

        The snapshot path reads the hot workloads out of these artifacts
        (each table owns the workload network it was gathered for), so a
        restored service can pre-warm its cache by re-gathering them.
        """
        with self._lock:
            return tuple((key, entry.table) for key, entry in self._entries.items())

    # ------------------------------------------------------------------ #
    # lookups
    # ------------------------------------------------------------------ #

    def solution(self, key: CacheKey, budget: int) -> CachedSolution | None:
        """Memoized solution for ``(key, effective budget)``, if any.

        A hit counts as ``solution_hits`` and refreshes the entry's LRU
        position; a miss here is *not* counted (the caller falls through to
        :meth:`lookup`, which does the accounting).
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                return None
            cached = entry.solutions.get(budget)
            if cached is None:
                return None
            self._entries.move_to_end(key)
            self.stats.solution_hits += 1
            return cached

    def lookup(self, key: CacheKey, budget: int) -> GatherTable | None:
        """Gather table able to answer ``key`` at effective ``budget``.

        Returns ``None`` (and counts a miss) when the key is absent or the
        stored table was built for a smaller budget — the budget-upcast
        case, counted separately so the stats tell the two apart.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.stats.misses += 1
                return None
            if entry.table.budget < budget:
                self.stats.misses += 1
                self.stats.budget_upcasts += 1
                return None
            self._entries.move_to_end(key)
            self.stats.table_hits += 1
            return entry.table

    def stored_budget(self, key: CacheKey) -> int | None:
        """Budget of the stored table (no LRU touch, no stats) or ``None``."""
        with self._lock:
            entry = self._entries.get(key)
            return None if entry is None else entry.table.budget

    # ------------------------------------------------------------------ #
    # population
    # ------------------------------------------------------------------ #

    def store(self, key: CacheKey, table: GatherTable) -> None:
        """Insert (or replace, on budget upcast) the table for ``key``.

        Concurrent gatherers may race to store the same key; keep whichever
        table is *widest* so a store can never narrow what the cache
        already answers (the tables are bit-identical per budget column,
        so either winner serves the same answers).
        """
        with self._lock:
            previous = self._entries.pop(key, None)
            if previous is not None and previous.table.budget > table.budget:
                table = previous.table
            entry = _Entry(table=table)
            if previous is not None:
                # The wider table answers every budget the narrower one did,
                # so the memoized traces stay valid.
                entry.solutions.update(previous.solutions)
            self._entries[key] = entry
            while len(self._entries) > self._max_entries:
                self._entries.popitem(last=False)
                self.stats.evictions += 1

    def store_solution(
        self,
        key: CacheKey,
        budget: int,
        solution: CachedSolution,
    ) -> None:
        """Memoize a traced placement for ``(key, effective budget)``."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                entry.solutions[budget] = solution

    # ------------------------------------------------------------------ #
    # invalidation
    # ------------------------------------------------------------------ #

    def invalidate_switches(self, switches: frozenset[NodeId] | set[NodeId]) -> int:
        """Drop entries whose Λ intersects ``switches``; return the count.

        Used after a drain: Λ will never again contain a drained switch, so
        entries gathered under an availability set mentioning it can never
        be looked up again.  Entries whose Λ already excluded the switches
        (gathered while they were saturated) are untouched and stay live.
        """
        with self._lock:
            doomed = [
                key
                for key, entry in self._entries.items()
                if entry.available & switches
            ]
            for key in doomed:
                del self._entries[key]
            self.stats.invalidations += len(doomed)
            return len(doomed)

    def invalidate_all(self) -> int:
        """Drop every entry (e.g. after a rate or topology change)."""
        with self._lock:
            count = len(self._entries)
            self._entries.clear()
            self.stats.invalidations += count
            return count

"""Gather-table cache: memoized incremental recomputation for the service.

The gather phase dominates every solve (Figure 9: the colouring trace is two
orders of magnitude cheaper), and the gather tables depend on nothing but
the φ-BIC instance itself — topology, rates, loads, Λ, and the budget
semantics.  A long-lived service answering repeated placement queries over
a slowly-churning fleet therefore wants to compute each distinct gather
once and reuse it, in the spirit of the ``lru_cache`` idiom: this module is
that cache, made explicit so eviction, invalidation, and hit accounting are
observable.

Entries are the public :class:`repro.core.solver.GatherTable` artifacts —
self-contained (each owns the workload network it was gathered for) and
provenance-carrying, so a table hit is answered by ``table.place(budget)``
alone: no tree reconstruction, no solver state, just the batched colour
trace.

Keys and correctness
--------------------
Entries are keyed by :class:`CacheKey` — the structure fingerprint
(topology + rates), the availability fingerprint of Λ at gather time, the
loads digest, the ``exact_k`` semantics, and the engine name (engines are
bit-identical, but the key keeps the contract self-evident).  Because the
key digests *everything* the gather depends on, a cache hit is always
bitwise-correct: there is no way to observe a stale table through a
matching key.  Capacity churn that changes Λ simply changes the key, so
requests after an :class:`~repro.service.api.AdmitRequest` or
:class:`~repro.service.api.ReleaseRequest` look up different entries — and
when a release restores Λ to a previously-seen state, the old entries
become live hits again for free.

Budget upcasting
----------------
A :class:`~repro.core.solver.GatherTable` gathered at budget ``k`` carries
every column ``0 .. k``, so one entry answers *every* request at the same
key with budget ``k' <= k`` through ``table.place(k')`` (exactly how
:meth:`~repro.core.solver.GatherTable.sweep` works).  :meth:`lookup` treats
"stored budget too small" as a miss; the service then re-gathers at the
larger budget and :meth:`store` replaces the entry, so the cache converges
onto the widest table each key needs.

Solution memo
-------------
On top of the tables, each entry memoizes the fully-traced solutions per
effective budget (:meth:`solution` / :meth:`store_solution`): a repeated
identical query skips both the gather *and* the colour trace, costing only
the key digest.  Memoized solutions are the exact objects a cold solve
produced, so responses stay bit-identical.

Eviction and invalidation
-------------------------
Entries evict in LRU order beyond ``max_entries``.  Invalidation exists for
*reachability*, not correctness: after a drain, Λ can never again contain
the drained switch, so every entry whose availability set mentions it is
dead weight — :meth:`invalidate_switches` drops exactly those entries and
leaves the rest untouched.  A switch → keys reverse index (maintained by
every store/evict/invalidate) makes that O(affected entries) instead of a
scan over every entry's whole Λ.

Repair versus invalidate
------------------------
Availability churn used to be a hard boundary: a changed Λ changes the
key, so every admit/release/drain turned the next solve per workload into
a cold O(n · k²) gather — and drains additionally *deleted* the affected
entries outright.  Delta repair replaces both behaviours.  On an
availability miss, :meth:`repair_candidate` looks for the nearest cached
table of the same *family* — identical structure, loads, semantics, and
engine, differing only in Λ — and returns it together with the symmetric
difference between its recorded Λ and the live one.  The service then
splices that delta into the cached tensors via
:meth:`repro.core.solver.GatherTable.repair` (O(depth · k² · |delta|),
bit-identical to a cold gather) and stores the result under the missed
key.  Under the same policy a drain *keeps* the entries mentioning the
drained switch: each is now a repair source one switch away from the
post-drain Λ, which is exactly the delta repair was built for (they still
evict LRU-wise once stale enough).

The policy knob is ``max_repair_delta``: candidates further than that many
switch flips away are ignored (a large delta approaches cold-gather cost),
and ``0`` disables repair entirely, restoring the historical
invalidate-on-drain behaviour.  Candidates whose tensor width would change
(the delta moves |Λ| across the requested budget) or whose stored budget
cannot answer the request are skipped; :class:`CacheStats` counts
candidate matches (``repair_hits``) and completed repairs (``repairs``)
separately so a silent fallback to cold gathers is observable.

Concurrency
-----------
Every public method is safe to call from multiple threads: one mutex
guards the LRU order, the solution memos, and the stats counters.  The
cached :class:`~repro.core.solver.GatherTable` artifacts are immutable, so
a hit hands the table out and the (expensive) colour trace runs with no
lock held — the lock only covers the dictionary book-keeping.  When two
threads race to gather the same key, :meth:`store` keeps the *widest*
table, so concurrent stores can never narrow what the cache answers; the
engines are deterministic, so either racer's table serves identical bits.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import NamedTuple

from repro.core.solver import GatherTable
from repro.core.tree import NodeId


class CacheKey(NamedTuple):
    """Identity of a gather computation (everything its output depends on)."""

    structure: str
    available: str
    loads: str
    exact_k: bool
    engine: str


class CachedSolution(NamedTuple):
    """A fully-traced placement memoized for one effective budget."""

    blue_nodes: frozenset[NodeId]
    cost: float
    predicted_cost: float


@dataclass
class CacheStats:
    """Counters exposed through the service's ``Stats`` endpoint."""

    table_hits: int = 0
    solution_hits: int = 0
    misses: int = 0
    budget_upcasts: int = 0
    evictions: int = 0
    invalidations: int = 0
    #: Availability misses for which :meth:`GatherTableCache.repair_candidate`
    #: found a repairable neighbour (counted at candidate time).
    repair_hits: int = 0
    #: Delta repairs actually completed and stored (``note_repair``).  A
    #: ``repair_hits`` > ``repairs`` gap means candidates were found but the
    #: repair itself fell back to a cold gather.
    repairs: int = 0

    @property
    def hits(self) -> int:
        """Requests answered without a gather (table or solution memo)."""
        return self.table_hits + self.solution_hits

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from the cache (0.0 when unused)."""
        lookups = self.lookups
        return self.hits / lookups if lookups else 0.0

    def snapshot(self) -> dict[str, float | int]:
        """Plain-dict view for stats responses and CSV rows."""
        return {
            "table_hits": self.table_hits,
            "solution_hits": self.solution_hits,
            "misses": self.misses,
            "budget_upcasts": self.budget_upcasts,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "repair_hits": self.repair_hits,
            "repairs": self.repairs,
            "hit_rate": self.hit_rate,
        }


@dataclass
class _Entry:
    """One cached gather: the table artifact and the solution memo.

    The entry's Λ (used by :meth:`GatherTableCache.invalidate_switches`)
    is the availability set of the table's own workload network.
    """

    table: GatherTable
    solutions: dict[int, CachedSolution] = field(default_factory=dict)

    @property
    def available(self) -> frozenset[NodeId]:
        return self.table.tree.available


#: Everything of a :class:`CacheKey` except the availability fingerprint —
#: two entries in the same family describe the same gather under different
#: Λ's, i.e. exactly the pairs delta repair can bridge.
_FamilyKey = tuple[str, str, bool, str]


def _family_of(key: CacheKey) -> _FamilyKey:
    return (key.structure, key.loads, key.exact_k, key.engine)


class GatherTableCache:
    """LRU cache of gather tables with budget upcasting and a solution memo.

    Parameters
    ----------
    max_entries:
        Maximum number of gather results kept (each entry's solution memo
        rides along with it).  The oldest-used entry evicts first.
    max_repair_delta:
        Largest availability delta (switch flips) :meth:`repair_candidate`
        will bridge with an incremental repair; ``0`` disables repair (see
        the module docstring).
    """

    def __init__(self, max_entries: int = 64, max_repair_delta: int = 8) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be positive, got {max_entries}")
        if max_repair_delta < 0:
            raise ValueError(
                f"max_repair_delta must be non-negative, got {max_repair_delta}"
            )
        self._max_entries = int(max_entries)
        self._max_repair_delta = int(max_repair_delta)
        self._entries: OrderedDict[CacheKey, _Entry] = OrderedDict()
        # switch -> keys whose Λ contains it: makes drain invalidation
        # O(affected entries) instead of O(cache size · |Λ|).
        self._switch_index: dict[NodeId, set[CacheKey]] = {}
        # family -> keys, insertion-ordered: the candidate pool of
        # repair_candidate (every same-family entry differs from the target
        # in availability alone).
        self._families: dict[_FamilyKey, OrderedDict[CacheKey, None]] = {}
        self.stats = CacheStats()
        # One mutex over the LRU book-keeping and the stats counters.  The
        # cached GatherTable artifacts themselves are immutable, so the
        # service's concurrent read-only loop only needs this lock for the
        # (cheap) dict operations around a hit — the returned table is then
        # traced without any lock held.
        self._lock = threading.RLock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: CacheKey) -> bool:
        with self._lock:
            return key in self._entries

    @property
    def max_entries(self) -> int:
        return self._max_entries

    @property
    def max_repair_delta(self) -> int:
        return self._max_repair_delta

    @property
    def repair_enabled(self) -> bool:
        """Whether the repair-instead-of-invalidate policy is active."""
        return self._max_repair_delta > 0

    # ------------------------------------------------------------------ #
    # index maintenance (callers hold self._lock)
    # ------------------------------------------------------------------ #

    def _index_entry(self, key: CacheKey, entry: _Entry) -> None:
        for switch in entry.available:
            self._switch_index.setdefault(switch, set()).add(key)
        self._families.setdefault(_family_of(key), OrderedDict())[key] = None

    def _unindex_entry(self, key: CacheKey, entry: _Entry) -> None:
        for switch in entry.available:
            keys = self._switch_index.get(switch)
            if keys is not None:
                keys.discard(key)
                if not keys:
                    del self._switch_index[switch]
        family = _family_of(key)
        members = self._families.get(family)
        if members is not None:
            members.pop(key, None)
            if not members:
                del self._families[family]

    def _remove_entry(self, key: CacheKey) -> _Entry | None:
        entry = self._entries.pop(key, None)
        if entry is not None:
            self._unindex_entry(key, entry)
        return entry

    def keys(self) -> tuple[CacheKey, ...]:
        """Current keys, least-recently-used first (for tests/diagnostics)."""
        with self._lock:
            return tuple(self._entries)

    def tables(self) -> tuple[tuple[CacheKey, GatherTable], ...]:
        """Current ``(key, table)`` pairs, least-recently-used first.

        The snapshot path reads the hot workloads out of these artifacts
        (each table owns the workload network it was gathered for), so a
        restored service can pre-warm its cache by re-gathering them.
        """
        with self._lock:
            return tuple((key, entry.table) for key, entry in self._entries.items())

    # ------------------------------------------------------------------ #
    # lookups
    # ------------------------------------------------------------------ #

    def solution(self, key: CacheKey, budget: int) -> CachedSolution | None:
        """Memoized solution for ``(key, effective budget)``, if any.

        A hit counts as ``solution_hits`` and refreshes the entry's LRU
        position; a miss here is *not* counted (the caller falls through to
        :meth:`lookup`, which does the accounting).
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                return None
            cached = entry.solutions.get(budget)
            if cached is None:
                return None
            self._entries.move_to_end(key)
            self.stats.solution_hits += 1
            return cached

    def lookup(self, key: CacheKey, budget: int) -> GatherTable | None:
        """Gather table able to answer ``key`` at effective ``budget``.

        Returns ``None`` (and counts a miss) when the key is absent or the
        stored table was built for a smaller budget — the budget-upcast
        case, counted separately so the stats tell the two apart.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.stats.misses += 1
                return None
            if entry.table.budget < budget:
                self.stats.misses += 1
                self.stats.budget_upcasts += 1
                return None
            self._entries.move_to_end(key)
            self.stats.table_hits += 1
            return entry.table

    def stored_budget(self, key: CacheKey) -> int | None:
        """Budget of the stored table (no LRU touch, no stats) or ``None``."""
        with self._lock:
            entry = self._entries.get(key)
            return None if entry is None else entry.table.budget

    # ------------------------------------------------------------------ #
    # population
    # ------------------------------------------------------------------ #

    def store(self, key: CacheKey, table: GatherTable) -> None:
        """Insert (or replace, on budget upcast) the table for ``key``.

        Concurrent gatherers may race to store the same key; keep whichever
        table is *widest* so a store can never narrow what the cache
        already answers (the tables are bit-identical per budget column,
        so either winner serves the same answers).
        """
        with self._lock:
            previous = self._remove_entry(key)
            if previous is not None and previous.table.budget > table.budget:
                table = previous.table
            entry = _Entry(table=table)
            if previous is not None:
                # The wider table answers every budget the narrower one did,
                # so the memoized traces stay valid.
                entry.solutions.update(previous.solutions)
            self._entries[key] = entry
            self._index_entry(key, entry)
            while len(self._entries) > self._max_entries:
                oldest = next(iter(self._entries))
                self._remove_entry(oldest)
                self.stats.evictions += 1

    def store_solution(
        self,
        key: CacheKey,
        budget: int,
        solution: CachedSolution,
    ) -> None:
        """Memoize a traced placement for ``(key, effective budget)``."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                entry.solutions[budget] = solution

    # ------------------------------------------------------------------ #
    # repair
    # ------------------------------------------------------------------ #

    def repair_candidate(
        self,
        key: CacheKey,
        budget: int,
        available: frozenset[NodeId],
    ) -> tuple[GatherTable, frozenset[NodeId]] | None:
        """The nearest cached table repairable to ``key``'s availability.

        Scans the entries of ``key``'s family (same structure, loads,
        semantics, and engine — candidates differ from the live network in
        Λ alone) and returns ``(table, delta)`` for the one whose recorded
        Λ is the fewest switch flips from ``available``, or ``None`` when
        no candidate qualifies.  ``delta`` is the symmetric difference to
        feed :meth:`repro.core.solver.GatherTable.repair`.

        A candidate qualifies only when the repair is sound and worthwhile:
        the delta is non-empty and at most ``max_repair_delta`` flips, the
        stored table can answer the requested effective ``budget``, and the
        repaired table's effective budget would keep the stored tensor
        width (``min(requested_budget, |Λ|)`` unchanged — the engine-level
        repair enforces the same and would refuse otherwise).  Ties on
        delta size keep the earliest-stored candidate.  A returned
        candidate counts as a ``repair_hit`` and refreshes the source
        entry's LRU position (it is doing useful work).
        """
        if not self.repair_enabled:
            return None
        with self._lock:
            members = self._families.get(_family_of(key))
            if not members:
                return None
            best_key: CacheKey | None = None
            best_table: GatherTable | None = None
            best_delta: frozenset[NodeId] | None = None
            for other_key in members:
                if other_key == key:
                    # The same key missed (absent or too narrow); there is
                    # nothing a zero-delta repair could add.
                    continue
                table = self._entries[other_key].table
                if table.budget < budget:
                    continue
                if min(int(table.requested_budget), len(available)) != table.budget:
                    continue
                delta = self._entries[other_key].available ^ available
                if not delta or len(delta) > self._max_repair_delta:
                    continue
                if best_delta is None or len(delta) < len(best_delta):
                    best_key, best_table, best_delta = other_key, table, delta
            if best_key is None or best_table is None or best_delta is None:
                return None
            self._entries.move_to_end(best_key)
            self.stats.repair_hits += 1
            return best_table, best_delta

    def note_repair(self) -> None:
        """Count one completed delta repair (the repaired table was stored)."""
        with self._lock:
            self.stats.repairs += 1

    # ------------------------------------------------------------------ #
    # invalidation
    # ------------------------------------------------------------------ #

    def invalidate_switches(self, switches: frozenset[NodeId] | set[NodeId]) -> int:
        """Drop entries whose Λ intersects ``switches``; return the count.

        Used after a drain when repair is disabled: Λ will never again
        contain a drained switch, so entries gathered under an availability
        set mentioning it can never be looked up again *verbatim*.  (Under
        the repair policy the service keeps them as repair sources instead
        — see the module docstring.)  Entries whose Λ already excluded the
        switches are untouched and stay live.  The switch → keys reverse
        index makes this O(affected entries), not a scan of every Λ.
        """
        with self._lock:
            doomed: set[CacheKey] = set()
            for switch in switches:
                doomed |= self._switch_index.get(switch, set())
            for key in doomed:
                self._remove_entry(key)
            self.stats.invalidations += len(doomed)
            return len(doomed)

    def invalidate_all(self) -> int:
        """Drop every entry (e.g. after a rate or topology change)."""
        with self._lock:
            count = len(self._entries)
            self._entries.clear()
            self._switch_index.clear()
            self._families.clear()
            self.stats.invalidations += count
            return count

"""Traffic-replay driver: run a churn trace through the service and measure.

The driver is the operational proof of the subsystem: it feeds a recorded
(or generated) trace to a fresh :class:`~repro.service.api.PlacementService`,
times every request, and aggregates throughput, per-kind latency, and cache
hit rate.  With ``verify=True`` it additionally re-solves every placement
response *cold* — a direct :meth:`repro.core.solver.Solver.solve` /
:meth:`~repro.core.solver.Solver.sweep` against the availability the
service saw — and asserts the answers are bit-identical (same blue set,
same cost floats), turning any replay into a differential test of the whole
cache/state stack.

The summary row distinguishes *warm* placement requests (answered from the
cache) from *cold* ones (paid a gather); their latency ratio
(``warm_speedup``) is the service's headline number, asserted ≥ 10x on
BT(1024) by the acceptance test.  Warm requests are further split by cache
layer — ``table_hit_mean_ms`` (gather-table hits: a colour trace and
nothing else, the latency the batched colour kernel owns) versus
``memo_hit_mean_ms`` (solution-memo hits: a digest lookup) — so
``benchmarks/bench_service.py`` can track the colour-phase latency as its
own column.

Concurrent replay
-----------------
``workers > 1`` drives the service concurrently while preserving the
trace's observable semantics; two modes exist.

``mode="thread"`` (the default) drives one shared service from a thread
pool: mutating requests are barriers (executed alone, in trace order,
exactly as the service's write lock would force anyway), and each maximal
run of read-only requests between two barriers is fanned out across the
workers.  Within such a run the fleet state cannot change, so every
request is independent and the *payload* of each response — blue set,
costs, budgets (see :func:`response_payload`) — is bit-identical to a
serial replay of the same trace.  Threads share the GIL, though, so with
the numpy engine the fan-out buys nothing (the measured
``concurrent_speedup`` was 0.78 on BT(256)); the compiled engine releases
the GIL inside its kernels, and ``mode="process"`` sidesteps it entirely.

``mode="process"`` replays with true process parallelism.  The parent
applies every mutating request serially to the authoritative service; a
read-only request's payload is a pure function of its own
``(loads, budget, exact_k)`` and the availability set ``Λ`` — nothing
else — so reads are batched per **Λ-epoch** (a maximal trace span over
which the availability fingerprint is constant), partitioned across the
pool with workload affinity (requests sharing a loads fingerprint go to
the same batch, so one worker pays the cold gather and its siblings ride
that worker's cache), and dispatched as the epoch closes, overlapping
with the parent's continuing mutation stream.  Each worker process holds
a persistent replica service, resyncing its fleet snapshot once per
epoch (the gather-table cache keys include the Λ fingerprint, so the
cache survives resyncs and stale entries are unreachable).  Response
payloads are bit-identical to the serial replay; diagnostics
(``cache_hit`` / ``cache_source``, ``Stats`` counters) may differ, as in
thread mode.  ``tests/test_service_persistence.py`` pins the payload
identity for both modes; the CI workflow diffs 4-worker replays against
the serial one on every push.
"""

from __future__ import annotations

import math
import time
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from collections.abc import Mapping, Sequence

from repro.core.color import DEFAULT_COLOR
from repro.core.cost import DEFAULT_COST
from repro.core.engine import DEFAULT_ENGINE
from repro.core.solver import Solver
from repro.core.tree import NodeId, TreeNetwork, fingerprint_loads
from repro.service.api import (
    READ_ONLY_REQUESTS,
    AdmitRequest,
    AdmitResponse,
    DrainResponse,
    PlacementService,
    ReleaseResponse,
    Request,
    Response,
    SolveRequest,
    SolveResponse,
    StatsResponse,
    SweepRequest,
    SweepResponse,
)
from repro.service.events import TraceEvent, event_to_request, node_index


@dataclass(frozen=True)
class ReplayRecord:
    """One replayed request: the event, what was sent, what came back."""

    index: int
    event: TraceEvent
    request: Request
    response: Response
    elapsed_s: float


@dataclass
class ReplayReport:
    """Aggregate outcome of replaying a trace."""

    records: list[ReplayRecord]
    wall_s: float
    verified: int
    engine: str
    workers: int = 1
    mode: str = "serial"
    #: Cache counters captured after the replay: completed delta repairs and
    #: repair-candidate matches (see :class:`repro.service.cache.CacheStats`).
    #: ``repair_hits == 0`` over a churn trace means the repair path never
    #: engaged — the CI smoke asserts it did.
    repairs: int = 0
    repair_hits: int = 0

    @property
    def num_requests(self) -> int:
        return len(self.records)

    @property
    def throughput_rps(self) -> float:
        """Requests served per second of wall time."""
        return self.num_requests / self.wall_s if self.wall_s > 0 else 0.0

    def _placement_records(self) -> list[ReplayRecord]:
        return [
            record
            for record in self.records
            if isinstance(record.response, (SolveResponse, AdmitResponse, SweepResponse))
        ]

    @property
    def hit_rate(self) -> float:
        """Fraction of placement-producing requests answered from the cache."""
        placements = self._placement_records()
        if not placements:
            return 0.0
        hits = sum(1 for record in placements if record.response.cache_hit)
        return hits / len(placements)

    def _latencies(self, warm: bool) -> list[float]:
        return [
            record.elapsed_s
            for record in self._placement_records()
            if record.response.cache_hit == warm
        ]

    def _source_latencies(self, source: str) -> list[float]:
        return [
            record.elapsed_s
            for record in self._placement_records()
            if record.response.cache_source == source
        ]

    @property
    def warm_mean_s(self) -> float:
        warm = self._latencies(warm=True)
        return sum(warm) / len(warm) if warm else 0.0

    @property
    def cold_mean_s(self) -> float:
        cold = self._latencies(warm=False)
        return sum(cold) / len(cold) if cold else 0.0

    @property
    def table_hit_mean_s(self) -> float:
        """Mean latency of gather-table hits: the colour-only warm path."""
        hits = self._source_latencies("table")
        return sum(hits) / len(hits) if hits else 0.0

    @property
    def memo_hit_mean_s(self) -> float:
        """Mean latency of solution-memo hits (digest lookup, no trace)."""
        hits = self._source_latencies("memo")
        return sum(hits) / len(hits) if hits else 0.0

    @property
    def warm_speedup(self) -> float:
        """Mean cold latency over mean warm latency (0.0 when undefined)."""
        warm, cold = self.warm_mean_s, self.cold_mean_s
        return cold / warm if warm > 0 and cold > 0 else 0.0

    def kind_rows(self) -> list[dict]:
        """Per-request-kind latency/hit table (one row per kind seen)."""
        grouped: dict[str, list[ReplayRecord]] = {}
        for record in self.records:
            grouped.setdefault(record.event.kind, []).append(record)
        rows = []
        for kind in sorted(grouped):
            records = grouped[kind]
            latencies = sorted(record.elapsed_s for record in records)
            hits = sum(
                1
                for record in records
                if getattr(record.response, "cache_hit", False)
            )
            rows.append(
                {
                    "kind": kind,
                    "count": len(records),
                    "cache_hits": hits,
                    "mean_ms": 1e3 * sum(latencies) / len(latencies),
                    "p50_ms": 1e3 * _percentile(latencies, 0.50),
                    "p95_ms": 1e3 * _percentile(latencies, 0.95),
                    "max_ms": 1e3 * latencies[-1],
                }
            )
        return rows

    def summary_row(self) -> dict:
        """One-row overall summary (throughput, hit rate, warm speedup)."""
        return {
            "requests": self.num_requests,
            "workers": self.workers,
            "mode": self.mode,
            "wall_s": self.wall_s,
            "throughput_rps": self.throughput_rps,
            "hit_rate": self.hit_rate,
            "warm_mean_ms": 1e3 * self.warm_mean_s,
            "cold_mean_ms": 1e3 * self.cold_mean_s,
            "table_hit_mean_ms": 1e3 * self.table_hit_mean_s,
            "memo_hit_mean_ms": 1e3 * self.memo_hit_mean_s,
            "warm_speedup": self.warm_speedup,
            "repairs": self.repairs,
            "repair_hits": self.repair_hits,
            "verified": self.verified,
            "engine": self.engine,
        }


def _percentile(ordered: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile of an already-sorted sequence.

    The standard ceil-based definition: the value at 1-based rank
    ``ceil(fraction * n)``.  The previous implementation rounded
    ``fraction * (n - 1)`` with Python's banker's ``round()``, whose
    round-half-to-even makes even-length samples pick inconsistent ranks
    (p50 of 2 rounds *down*, p50 of 4 rounds *up*) — the small per-kind
    samples of :meth:`ReplayReport.kind_rows` hit exactly those cases.
    """
    if not ordered:
        return 0.0
    rank = math.ceil(fraction * len(ordered))
    return ordered[min(len(ordered) - 1, max(0, rank - 1))]


def response_payload(response: Response) -> tuple | None:
    """Canonical *semantic* payload of a response, for differential diffs.

    Two runs of the same trace "agree" when every response carries the
    same payload: the placements, costs, budgets, restored switch sets,
    and drain outcomes.  Deliberately excluded are the fields that honest
    replays may legitimately differ in — latency (``elapsed_s``), cache
    diagnostics (``cache_hit`` / ``cache_source`` / ``invalidated_entries``,
    which depend on which thread gathered first or on what survived a
    restart), and ``Stats`` responses entirely (their counters describe
    the *process*, not the fleet decisions).  This is the equality the
    snapshot-restore and concurrent-replay differential suites assert.
    """
    if isinstance(response, (SolveResponse, AdmitResponse)):
        payload: tuple = (
            tuple(sorted(map(repr, response.blue_nodes))),
            response.cost,
            response.predicted_cost,
            response.budget,
        )
        if isinstance(response, AdmitResponse):
            return ("admit", response.tenant_id, *payload)
        return ("solve", *payload)
    if isinstance(response, SweepResponse):
        return (
            "sweep",
            tuple(sorted(response.costs.items())),
            tuple(
                (budget, tuple(sorted(map(repr, blue))))
                for budget, blue in sorted(response.placements.items())
            ),
        )
    if isinstance(response, ReleaseResponse):
        return (
            "release",
            response.tenant_id,
            tuple(sorted(map(repr, response.restored))),
        )
    if isinstance(response, DrainResponse):
        return (
            "drain",
            repr(response.switch),
            tuple(
                (
                    item.tenant_id,
                    tuple(sorted(map(repr, item.old_blue_nodes))),
                    tuple(sorted(map(repr, item.new_blue_nodes))),
                    item.old_cost,
                    item.new_cost,
                )
                for item in response.displaced
            ),
            tuple(
                (
                    failure.tenant_id,
                    tuple(sorted(map(repr, failure.old_blue_nodes))),
                    failure.old_cost,
                    failure.error,
                )
                for failure in response.failed
            ),
        )
    if isinstance(response, StatsResponse):
        return None
    return None


def _verify_response(
    tree: TreeNetwork,
    available: frozenset[NodeId],
    request: Request,
    response: Response,
    engine: str,
) -> bool:
    """Re-solve a placement response cold and assert bitwise agreement.

    Returns True when the response type is verifiable (solve/sweep/admit),
    False otherwise.  Raises AssertionError on any mismatch.
    """
    solver = Solver(engine=engine, exact_k=request.exact_k) if isinstance(
        request, (SolveRequest, AdmitRequest, SweepRequest)
    ) else None
    if isinstance(request, (SolveRequest, AdmitRequest)) and isinstance(
        response, (SolveResponse, AdmitResponse)
    ):
        reference_tree = tree.with_loads(request.loads, available=available)
        reference = solver.solve(reference_tree, request.budget)
        assert response.cost == reference.cost, (
            f"service cost {response.cost!r} != cold solve cost {reference.cost!r}"
        )
        assert response.predicted_cost == reference.predicted_cost, (
            f"service predicted {response.predicted_cost!r} != "
            f"cold {reference.predicted_cost!r}"
        )
        assert response.blue_nodes == reference.blue_nodes, (
            f"service placement {sorted(map(repr, response.blue_nodes))} != "
            f"cold placement {sorted(map(repr, reference.blue_nodes))}"
        )
        return True
    if isinstance(request, SweepRequest) and isinstance(response, SweepResponse):
        if not request.budgets:
            return True
        reference_tree = tree.with_loads(request.loads, available=available)
        reference = solver.sweep(reference_tree, request.budgets)
        for budget, solution in reference.items():
            got_cost = response.costs[budget]
            assert got_cost == solution.cost, (
                f"sweep budget {budget}: service cost {got_cost!r} != "
                f"cold {solution.cost!r}"
            )
            assert response.placements[budget] == solution.blue_nodes, (
                f"sweep budget {budget}: placements differ"
            )
        return True
    return False


def _timed_submit(
    service: PlacementService, request: Request
) -> tuple[Response, float]:
    start = time.perf_counter()
    response = service.submit(request)
    return response, time.perf_counter() - start


# --------------------------------------------------------------------------- #
# process-mode replica workers
# --------------------------------------------------------------------------- #

#: Per-process replica state of the process-mode workers: the replica
#: service (built once by :func:`_process_worker_init`), the str -> node-id
#: index for fleet-snapshot resolution, and the Λ-epoch the replica's fleet
#: state was last synced to.
_PROCESS_REPLICA: dict = {}


def _process_worker_init(
    tree: TreeNetwork,
    capacity: int | Mapping[NodeId, int],
    engine: str,
    cache_entries: int,
    color: str,
    cost_kernel: str,
) -> None:
    """Build this worker process's persistent replica service.

    The replica's fleet state is a placeholder until the first batch
    arrives — every batch carries its epoch's fleet snapshot, and
    :meth:`~repro.service.state.FleetState.load_state` fully overwrites
    residuals, drains, tenants, and the Λ digest.  The gather-table cache
    is *not* reset on resync: its keys include the availability
    fingerprint, so entries from earlier epochs are simply unreachable
    until (and unless) that exact Λ returns.
    """
    _PROCESS_REPLICA["service"] = PlacementService(
        tree,
        capacity,
        engine=engine,
        cache_entries=cache_entries,
        color=color,
        cost_kernel=cost_kernel,
    )
    _PROCESS_REPLICA["index"] = node_index(tree)
    _PROCESS_REPLICA["epoch"] = None


def _process_worker_ping() -> bool:
    """No-op task used to force worker spawn before the wall clock starts."""
    return True


def _process_worker_serve(
    epoch: int,
    fleet_state: Mapping,
    batch: Sequence[tuple[int, Request]],
) -> list[tuple[int, Response, float]]:
    """Serve one epoch batch of read-only requests on the replica.

    Returns ``(trace position, response, elapsed seconds)`` triples; the
    parent reassembles them into trace order.
    """
    service = _PROCESS_REPLICA["service"]
    if epoch != _PROCESS_REPLICA["epoch"]:
        service.state.load_state(fleet_state, _PROCESS_REPLICA["index"])
        _PROCESS_REPLICA["epoch"] = epoch
    results = []
    for position, request in batch:
        start = time.perf_counter()
        response = service.submit(request)
        results.append((position, response, time.perf_counter() - start))
    return results


def _partition_epoch(
    pending: Sequence[tuple[int, Request, tuple]],
    workers: int,
) -> list[list[tuple[int, Request]]]:
    """Partition one Λ-epoch's reads into at most ``workers`` batches.

    Workload affinity first: every request keyed by the same
    ``(loads fingerprint, exact_k)`` lands in the same batch, so exactly
    one worker pays that workload's cold gather and the rest of its
    requests hit that worker's cache.  New workloads go to the batch with
    the least estimated work, where a workload's first request weighs a
    cold gather (~4x) and repeats weigh a warm trace (1x) — the ratio
    measured on the BT(256) churn mix.
    """
    assignment: dict[tuple, int] = {}
    weights = [0.0] * workers
    batches: list[list[tuple[int, Request]]] = [[] for _ in range(workers)]
    for position, request, key in pending:
        batch = assignment.get(key)
        if batch is None:
            batch = min(range(workers), key=weights.__getitem__)
            assignment[key] = batch
            weights[batch] += 4.0
        else:
            weights[batch] += 1.0
        batches[batch].append((position, request))
    return [batch for batch in batches if batch]


def _replay_process(
    service: PlacementService,
    tree: TreeNetwork,
    events: Sequence[TraceEvent],
    requests: Sequence[Request],
    workers: int,
    cache_entries: int,
    verify: bool,
) -> tuple[list[ReplayRecord], float, int]:
    """The ``mode="process"`` replay loop (see the module docstring).

    The parent walks the trace once: mutations apply serially to the
    authoritative ``service`` (their responses are the serial ones by
    construction), ``Stats`` reads run inline on the parent, and
    solve/sweep reads buffer until their Λ-epoch closes — at which point
    the epoch's reads are partitioned by workload affinity and submitted
    to the pool, overlapping with the parent's continuing walk.  The wall
    clock covers the walk plus the drain of all worker batches, but not
    pool spawn/replica construction (a long-lived daemon pays those once)
    or verification.
    """
    state = service.state
    total = len(requests)
    responses: list[Response | None] = [None] * total
    elapsed_by_position = [0.0] * total
    available_at: list[frozenset[NodeId] | None] = [None] * total
    futures: list[Future] = []
    pending: list[tuple[int, Request, tuple]] = []
    epoch = 0
    epoch_fleet: dict | None = None

    with ProcessPoolExecutor(
        max_workers=workers,
        initializer=_process_worker_init,
        initargs=(
            tree,
            1,  # placeholder capacity; every batch resyncs the real fleet
            service.engine,
            cache_entries,
            service.color,
            service.cost_kernel,
        ),
    ) as executor:

        def flush() -> None:
            nonlocal pending
            if pending:
                for batch in _partition_epoch(pending, workers):
                    futures.append(
                        executor.submit(
                            _process_worker_serve, epoch, epoch_fleet, batch
                        )
                    )
                pending = []

        # Force the worker processes (and their replica services) to exist
        # before timing starts.
        for ping in [executor.submit(_process_worker_ping) for _ in range(workers)]:
            ping.result()

        wall_start = time.perf_counter()
        fingerprint = state.availability_fingerprint()
        for position, request in enumerate(requests):
            if isinstance(request, (SolveRequest, SweepRequest)):
                if epoch_fleet is None:
                    # First read of this epoch: capture the fleet once.
                    # Mutations that did not change Λ may follow inside
                    # the same epoch — harmless, the read path depends on
                    # Λ and the request only.
                    epoch_fleet = state.state_dict()
                if verify:
                    available_at[position] = state.available()
                pending.append(
                    (
                        position,
                        request,
                        (fingerprint_loads(request.loads), request.exact_k),
                    )
                )
                continue
            # Stats and every mutating request run on the authoritative
            # service, in trace order.
            if verify:
                available_at[position] = state.available()
            response, elapsed = _timed_submit(service, request)
            responses[position] = response
            elapsed_by_position[position] = elapsed
            current = state.availability_fingerprint()
            if current != fingerprint:
                # Λ changed: the epoch closes, its reads dispatch now and
                # overlap with the rest of the walk.
                flush()
                epoch += 1
                epoch_fleet = None
                fingerprint = current
        flush()
        for future in futures:
            for position, response, elapsed in future.result():
                responses[position] = response
                elapsed_by_position[position] = elapsed
        wall = time.perf_counter() - wall_start

    verified = 0
    if verify:
        for position, request in enumerate(requests):
            if _verify_response(
                tree,
                available_at[position] or frozenset(),
                request,
                responses[position],
                service.engine,
            ):
                verified += 1

    records = [
        ReplayRecord(
            index=position,
            event=events[position],
            request=requests[position],
            response=responses[position],
            elapsed_s=elapsed_by_position[position],
        )
        for position in range(total)
    ]
    return records, wall, verified


def replay_trace(
    tree: TreeNetwork,
    events: Sequence[TraceEvent],
    capacity: int | Mapping[NodeId, int] = 4,
    engine: str | None = None,
    cache_entries: int = 64,
    verify: bool = False,
    service: PlacementService | None = None,
    color: str | None = None,
    cost_kernel: str | None = None,
    workers: int = 1,
    mode: str = "thread",
) -> ReplayReport:
    """Replay a trace against a (fresh or supplied) service and measure it.

    Parameters
    ----------
    tree:
        The shared network the trace was recorded for.
    events:
        The trace (see :mod:`repro.service.events`).
    capacity:
        Per-switch capacity used when constructing a fresh service.
    engine:
        Gather engine for a fresh service (default: the library default).
    cache_entries:
        Cache size for a fresh service.
    verify:
        When true, every placement response is checked bit-identical
        against a direct cold solve at the availability the service saw
        (verification time is *excluded* from the request timings and the
        wall clock).
    service:
        Replay into an existing service instead of a fresh one (state and
        cache carry over; ``capacity``/``engine``/``cache_entries``/
        ``color`` are then ignored).
    color:
        Colour kernel for a fresh service (default: the library default);
        ``"reference"`` replays with the per-node trace, which is how the
        colour-phase benchmark isolates the batched kernel's contribution.
    cost_kernel:
        Cost kernel for a fresh service (default: the library default);
        ``"reference"`` replays with the per-node Eq. (1) walk, isolating
        the flat cost kernel's contribution the same way.
    workers:
        Number of workers driving the service.  ``1`` (default) is the
        serial replay.  With more, read-only requests are fanned out per
        ``mode``; the response payloads (:func:`response_payload`) are
        bit-identical to the serial replay, per-request latencies
        overlap, and ``wall_s`` measures the actual elapsed time (so
        ``throughput_rps`` reflects the concurrency).
    mode:
        Concurrency mode when ``workers > 1`` (ignored at ``workers=1``).
        ``"thread"`` (default) fans read-only runs over a thread pool
        sharing the one service; ``"process"`` batches reads per Λ-epoch
        across a pool of replica processes (see the module docstring).
    """
    if mode not in ("thread", "process"):
        raise ValueError(f"unknown replay mode {mode!r}: expected 'thread' or 'process'")
    if service is None:
        service = PlacementService(
            tree,
            capacity,
            engine=engine or DEFAULT_ENGINE,
            cache_entries=cache_entries,
            color=color or DEFAULT_COLOR,
            cost_kernel=cost_kernel or DEFAULT_COST,
        )
    index_map = node_index(tree)
    workers = max(1, int(workers))
    requests = [event_to_request(tree, event, index_map) for event in events]

    if workers > 1 and mode == "process":
        records, wall, verified = _replay_process(
            service, tree, events, requests, workers, cache_entries, verify
        )
        # Repair counters reflect the coordinating service only: the
        # read-only fan-out runs in replica processes whose caches (and
        # counters) are private to them.
        return ReplayReport(
            records=records,
            wall_s=wall,
            verified=verified,
            engine=service.engine,
            workers=workers,
            mode="process",
            repairs=service.cache.stats.repairs,
            repair_hits=service.cache.stats.repair_hits,
        )

    records: list[ReplayRecord] = []
    verified = 0
    wall = 0.0

    def record(position: int, response: Response, elapsed: float) -> None:
        records.append(
            ReplayRecord(
                index=position,
                event=events[position],
                request=requests[position],
                response=response,
                elapsed_s=elapsed,
            )
        )

    if workers == 1:
        for position, request in enumerate(requests):
            # Read Λ from the fleet state, not service.available(): the
            # latter would prime the service's memoized Λ fingerprint
            # outside the timer and flatter the measured latencies.
            available = service.state.available() if verify else frozenset()
            response, elapsed = _timed_submit(service, request)
            wall += elapsed
            if verify and _verify_response(
                tree, available, request, response, service.engine
            ):
                verified += 1
            record(position, response, elapsed)
    else:
        with ThreadPoolExecutor(max_workers=workers) as executor:
            position = 0
            while position < len(requests):
                if isinstance(requests[position], READ_ONLY_REQUESTS):
                    end = position
                    while end < len(requests) and isinstance(
                        requests[end], READ_ONLY_REQUESTS
                    ):
                        end += 1
                    # Λ cannot change inside a read-only run, so one
                    # capture verifies the whole segment.
                    available = service.state.available() if verify else frozenset()
                    start = time.perf_counter()
                    outcomes = list(
                        executor.map(
                            lambda request: _timed_submit(service, request),
                            requests[position:end],
                        )
                    )
                    wall += time.perf_counter() - start
                    for offset, (response, elapsed) in enumerate(outcomes):
                        at = position + offset
                        if verify and _verify_response(
                            tree, available, requests[at], response, service.engine
                        ):
                            verified += 1
                        record(at, response, elapsed)
                    position = end
                else:
                    available = service.state.available() if verify else frozenset()
                    response, elapsed = _timed_submit(service, requests[position])
                    wall += elapsed
                    if verify and _verify_response(
                        tree, available, requests[position], response, service.engine
                    ):
                        verified += 1
                    record(position, response, elapsed)
                    position += 1
    return ReplayReport(
        records=records,
        wall_s=wall,
        verified=verified,
        engine=service.engine,
        workers=workers,
        mode="serial" if workers == 1 else "thread",
        repairs=service.cache.stats.repairs,
        repair_hits=service.cache.stats.repair_hits,
    )

"""Traffic-replay driver: run a churn trace through the service and measure.

The driver is the operational proof of the subsystem: it feeds a recorded
(or generated) trace to a fresh :class:`~repro.service.api.PlacementService`,
times every request, and aggregates throughput, per-kind latency, and cache
hit rate.  With ``verify=True`` it additionally re-solves every placement
response *cold* — a direct :meth:`repro.core.solver.Solver.solve` /
:meth:`~repro.core.solver.Solver.sweep` against the availability the
service saw — and asserts the answers are bit-identical (same blue set,
same cost floats), turning any replay into a differential test of the whole
cache/state stack.

The summary row distinguishes *warm* placement requests (answered from the
cache) from *cold* ones (paid a gather); their latency ratio
(``warm_speedup``) is the service's headline number, asserted ≥ 10x on
BT(1024) by the acceptance test.  Warm requests are further split by cache
layer — ``table_hit_mean_ms`` (gather-table hits: a colour trace and
nothing else, the latency the batched colour kernel owns) versus
``memo_hit_mean_ms`` (solution-memo hits: a digest lookup) — so
``benchmarks/bench_service.py`` can track the colour-phase latency as its
own column.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from collections.abc import Mapping, Sequence

from repro.core.color import DEFAULT_COLOR
from repro.core.cost import DEFAULT_COST
from repro.core.engine import DEFAULT_ENGINE
from repro.core.solver import Solver
from repro.core.tree import NodeId, TreeNetwork
from repro.service.api import (
    AdmitRequest,
    AdmitResponse,
    PlacementService,
    Request,
    Response,
    SolveRequest,
    SolveResponse,
    SweepRequest,
    SweepResponse,
)
from repro.service.events import TraceEvent, _node_index, event_to_request


@dataclass(frozen=True)
class ReplayRecord:
    """One replayed request: the event, what was sent, what came back."""

    index: int
    event: TraceEvent
    request: Request
    response: Response
    elapsed_s: float


@dataclass
class ReplayReport:
    """Aggregate outcome of replaying a trace."""

    records: list[ReplayRecord]
    wall_s: float
    verified: int
    engine: str

    @property
    def num_requests(self) -> int:
        return len(self.records)

    @property
    def throughput_rps(self) -> float:
        """Requests served per second of wall time."""
        return self.num_requests / self.wall_s if self.wall_s > 0 else 0.0

    def _placement_records(self) -> list[ReplayRecord]:
        return [
            record
            for record in self.records
            if isinstance(record.response, (SolveResponse, AdmitResponse, SweepResponse))
        ]

    @property
    def hit_rate(self) -> float:
        """Fraction of placement-producing requests answered from the cache."""
        placements = self._placement_records()
        if not placements:
            return 0.0
        hits = sum(1 for record in placements if record.response.cache_hit)
        return hits / len(placements)

    def _latencies(self, warm: bool) -> list[float]:
        return [
            record.elapsed_s
            for record in self._placement_records()
            if record.response.cache_hit == warm
        ]

    def _source_latencies(self, source: str) -> list[float]:
        return [
            record.elapsed_s
            for record in self._placement_records()
            if record.response.cache_source == source
        ]

    @property
    def warm_mean_s(self) -> float:
        warm = self._latencies(warm=True)
        return sum(warm) / len(warm) if warm else 0.0

    @property
    def cold_mean_s(self) -> float:
        cold = self._latencies(warm=False)
        return sum(cold) / len(cold) if cold else 0.0

    @property
    def table_hit_mean_s(self) -> float:
        """Mean latency of gather-table hits: the colour-only warm path."""
        hits = self._source_latencies("table")
        return sum(hits) / len(hits) if hits else 0.0

    @property
    def memo_hit_mean_s(self) -> float:
        """Mean latency of solution-memo hits (digest lookup, no trace)."""
        hits = self._source_latencies("memo")
        return sum(hits) / len(hits) if hits else 0.0

    @property
    def warm_speedup(self) -> float:
        """Mean cold latency over mean warm latency (0.0 when undefined)."""
        warm, cold = self.warm_mean_s, self.cold_mean_s
        return cold / warm if warm > 0 and cold > 0 else 0.0

    def kind_rows(self) -> list[dict]:
        """Per-request-kind latency/hit table (one row per kind seen)."""
        grouped: dict[str, list[ReplayRecord]] = {}
        for record in self.records:
            grouped.setdefault(record.event.kind, []).append(record)
        rows = []
        for kind in sorted(grouped):
            records = grouped[kind]
            latencies = sorted(record.elapsed_s for record in records)
            hits = sum(
                1
                for record in records
                if getattr(record.response, "cache_hit", False)
            )
            rows.append(
                {
                    "kind": kind,
                    "count": len(records),
                    "cache_hits": hits,
                    "mean_ms": 1e3 * sum(latencies) / len(latencies),
                    "p50_ms": 1e3 * _percentile(latencies, 0.50),
                    "p95_ms": 1e3 * _percentile(latencies, 0.95),
                    "max_ms": 1e3 * latencies[-1],
                }
            )
        return rows

    def summary_row(self) -> dict:
        """One-row overall summary (throughput, hit rate, warm speedup)."""
        return {
            "requests": self.num_requests,
            "wall_s": self.wall_s,
            "throughput_rps": self.throughput_rps,
            "hit_rate": self.hit_rate,
            "warm_mean_ms": 1e3 * self.warm_mean_s,
            "cold_mean_ms": 1e3 * self.cold_mean_s,
            "table_hit_mean_ms": 1e3 * self.table_hit_mean_s,
            "memo_hit_mean_ms": 1e3 * self.memo_hit_mean_s,
            "warm_speedup": self.warm_speedup,
            "verified": self.verified,
            "engine": self.engine,
        }


def _percentile(ordered: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile of an already-sorted sequence."""
    if not ordered:
        return 0.0
    rank = min(len(ordered) - 1, max(0, round(fraction * (len(ordered) - 1))))
    return ordered[int(rank)]


def _verify_response(
    tree: TreeNetwork,
    available: frozenset[NodeId],
    request: Request,
    response: Response,
    engine: str,
) -> bool:
    """Re-solve a placement response cold and assert bitwise agreement.

    Returns True when the response type is verifiable (solve/sweep/admit),
    False otherwise.  Raises AssertionError on any mismatch.
    """
    solver = Solver(engine=engine, exact_k=request.exact_k) if isinstance(
        request, (SolveRequest, AdmitRequest, SweepRequest)
    ) else None
    if isinstance(request, (SolveRequest, AdmitRequest)) and isinstance(
        response, (SolveResponse, AdmitResponse)
    ):
        reference_tree = tree.with_loads(request.loads, available=available)
        reference = solver.solve(reference_tree, request.budget)
        assert response.cost == reference.cost, (
            f"service cost {response.cost!r} != cold solve cost {reference.cost!r}"
        )
        assert response.predicted_cost == reference.predicted_cost, (
            f"service predicted {response.predicted_cost!r} != "
            f"cold {reference.predicted_cost!r}"
        )
        assert response.blue_nodes == reference.blue_nodes, (
            f"service placement {sorted(map(repr, response.blue_nodes))} != "
            f"cold placement {sorted(map(repr, reference.blue_nodes))}"
        )
        return True
    if isinstance(request, SweepRequest) and isinstance(response, SweepResponse):
        if not request.budgets:
            return True
        reference_tree = tree.with_loads(request.loads, available=available)
        reference = solver.sweep(reference_tree, request.budgets)
        for budget, solution in reference.items():
            got_cost = response.costs[budget]
            assert got_cost == solution.cost, (
                f"sweep budget {budget}: service cost {got_cost!r} != "
                f"cold {solution.cost!r}"
            )
            assert response.placements[budget] == solution.blue_nodes, (
                f"sweep budget {budget}: placements differ"
            )
        return True
    return False


def replay_trace(
    tree: TreeNetwork,
    events: Sequence[TraceEvent],
    capacity: int | Mapping[NodeId, int] = 4,
    engine: str | None = None,
    cache_entries: int = 64,
    verify: bool = False,
    service: PlacementService | None = None,
    color: str | None = None,
    cost_kernel: str | None = None,
) -> ReplayReport:
    """Replay a trace against a (fresh or supplied) service and measure it.

    Parameters
    ----------
    tree:
        The shared network the trace was recorded for.
    events:
        The trace (see :mod:`repro.service.events`).
    capacity:
        Per-switch capacity used when constructing a fresh service.
    engine:
        Gather engine for a fresh service (default: the library default).
    cache_entries:
        Cache size for a fresh service.
    verify:
        When true, every placement response is checked bit-identical
        against a direct cold solve at the availability the service saw
        (verification time is *excluded* from the request timings and the
        wall clock).
    service:
        Replay into an existing service instead of a fresh one (state and
        cache carry over; ``capacity``/``engine``/``cache_entries``/
        ``color`` are then ignored).
    color:
        Colour kernel for a fresh service (default: the library default);
        ``"reference"`` replays with the per-node trace, which is how the
        colour-phase benchmark isolates the batched kernel's contribution.
    cost_kernel:
        Cost kernel for a fresh service (default: the library default);
        ``"reference"`` replays with the per-node Eq. (1) walk, isolating
        the flat cost kernel's contribution the same way.
    """
    if service is None:
        service = PlacementService(
            tree,
            capacity,
            engine=engine or DEFAULT_ENGINE,
            cache_entries=cache_entries,
            color=color or DEFAULT_COLOR,
            cost_kernel=cost_kernel or DEFAULT_COST,
        )
    node_index = _node_index(tree)
    records: list[ReplayRecord] = []
    verified = 0
    wall = 0.0
    for index, event in enumerate(events):
        request = event_to_request(tree, event, node_index)
        # Read Λ from the fleet state, not service.available(): the latter
        # would prime the service's memoized Λ fingerprint outside the
        # timer and flatter the measured latencies.
        available = service.state.available() if verify else frozenset()
        start = time.perf_counter()
        response = service.submit(request)
        elapsed = time.perf_counter() - start
        wall += elapsed
        if verify and _verify_response(
            tree, available, request, response, service.engine
        ):
            verified += 1
        records.append(
            ReplayRecord(
                index=index,
                event=event,
                request=request,
                response=response,
                elapsed_s=elapsed,
            )
        )
    return ReplayReport(
        records=records, wall_s=wall, verified=verified, engine=service.engine
    )

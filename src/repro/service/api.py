"""The placement service: typed requests, a batched loop, cached solving.

:class:`PlacementService` is the long-lived daemon object: it owns a
:class:`~repro.service.state.FleetState` (tree, residual capacity, active
tenants) and a :class:`~repro.service.cache.GatherTableCache`, and serves
six request types:

``SolveRequest``
    Read-only placement query: optimal blue set and cost for a workload
    against the *current* availability Λ_t.  Does not consume capacity.
``SweepRequest``
    Budget sweep over one workload; one gather (at the largest budget)
    answers every budget via the tables' columns.
``AdmitRequest``
    Solve + commit: the workload becomes an active tenant and its switches'
    capacity is charged.
``ReleaseRequest``
    A tenant departs; its switch slots return to the pool.
``DrainRequest``
    A switch leaves the fleet permanently; tenants using it are displaced,
    re-placed against the new Λ, and re-admitted.
``StatsRequest``
    Fleet and cache counters.

Every response carries ``elapsed_s`` (measured inside the service) and, for
placement-producing requests, ``cache_hit`` / ``cache_source`` — whether
(and through which cache layer) the answer avoided a gather.  Responses are
bit-identical to cold calls of :meth:`repro.core.solver.Solver.solve` /
:meth:`~repro.core.solver.Solver.sweep` on the equivalent instance;
``tests/test_service.py`` enforces this across seeded churn traces.

The warm path
-------------
A gather-table cache hit is served by ``table.place()`` alone: the
level-batched colour trace plus the flat cost-kernel recompute
(:data:`repro.core.cost.COST_KERNELS`), both running over tensors the
artifact already carries — no tree reconstruction, no per-node Python walk.
The digests feeding the cache key are kept warm the same way: the Λ
fingerprint is maintained *incrementally* by the capacity tracker across
admit/release/drain (O(changed switches) per mutation instead of a full
re-digest), and each admitted tenant's loads digest is computed once and
carried on its :class:`~repro.service.state.TenantRecord`, so drain
re-placement never re-digests a displaced workload.  The resulting latency
split is reported by ``benchmarks/bench_service.py`` as the
``table_hit_ms`` / ``cost_flat_ms`` / ``cost_kernel_speedup`` columns of
``benchmarks/results/service_throughput.csv``.

Batching
--------
:meth:`PlacementService.submit_batch` is the request loop: it scans each
maximal run of read-only requests and *plans* gathers before serving it —
for every (loads, semantics) group it records the largest effective budget
anyone in the run needs, so the first miss gathers once at the run-wide
budget and every later request in the group upcasts for free.  Mutating
requests (admit / release / drain) act as barriers, preserving program
order of the fleet state.

Concurrency
-----------
:meth:`PlacementService.submit` is thread-safe: a writer-preferring
:class:`ReadWriteLock` lets read-only requests run concurrently while
mutating requests hold the fleet alone.  The gather-table cache carries
its own mutex and serves immutable artifacts, so a warm hit traces its
placement without any lock held; racing cold misses each gather
(bit-identical) tables and the cache keeps the widest.  Response
*payloads* never depend on thread interleaving — only the ``cache_hit`` /
``cache_source`` diagnostics do.  ``submit_batch``'s gather planning is
the one unsynchronized structure: run it from a single thread.

Failure semantics
-----------------
Mutating handlers are atomic-or-reported.  An admit against an empty Λ
raises a typed :class:`~repro.exceptions.CapacityError` *before* touching
any state (it would otherwise "succeed" with an empty placement).  A drain
never unwinds mid-loop: each displaced tenant is re-placed independently,
failures land in :attr:`DrainResponse.failed` (the tenant is evicted and
counted as released), and the lifetime invariant
``num_tenants == admitted_total - released_total`` holds on every path.
Only applied mutations reach the write-ahead journal, which is what makes
:meth:`PlacementService.restore` (snapshot + journal tail, see
:mod:`repro.service.persistence`) resume bit-identically.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from collections.abc import Iterable, Iterator, Mapping, Sequence
from typing import TYPE_CHECKING

from repro.core.color import DEFAULT_COLOR
from repro.core.cost import COST_KERNELS, DEFAULT_COST
from repro.core.engine import DEFAULT_ENGINE, ENGINES
from repro.core.solver import GatherTable, Solver
from repro.core.tree import (
    NodeId,
    TreeNetwork,
    fingerprint_loads,
)
from repro.exceptions import (
    CapacityError,
    InvalidBudgetError,
    PersistenceError,
    RepairError,
    ReproError,
    WorkloadError,
)
from repro.service.cache import CachedSolution, CacheKey, GatherTableCache
from repro.service.state import FleetState, TenantRecord

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (persistence imports api)
    from repro.service.persistence import Journal

__all__ = [
    "AdmitRequest",
    "AdmitResponse",
    "DrainFailure",
    "DrainRequest",
    "DrainResponse",
    "PlacementService",
    "ReadWriteLock",
    "ReleaseRequest",
    "ReleaseResponse",
    "Request",
    "Response",
    "SolveRequest",
    "SolveResponse",
    "StatsRequest",
    "StatsResponse",
    "SweepRequest",
    "SweepResponse",
]


def _freeze_loads(loads: Mapping[NodeId, int]) -> dict[NodeId, int]:
    """Copy a load mapping, validating values are non-negative integers."""
    frozen: dict[NodeId, int] = {}
    for node, value in loads.items():
        count = int(value)
        if count != value or count < 0:
            raise WorkloadError(
                f"load of switch {node!r} must be a non-negative integer, got {value!r}"
            )
        frozen[node] = count
    return frozen


# --------------------------------------------------------------------------- #
# requests
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class SolveRequest:
    """Read-only optimal-placement query for one workload."""

    loads: Mapping[NodeId, int]
    budget: int
    exact_k: bool = False


@dataclass(frozen=True)
class SweepRequest:
    """Budget sweep over one workload (Figure 3 / Figure 6 style)."""

    loads: Mapping[NodeId, int]
    budgets: tuple[int, ...]
    exact_k: bool = False


@dataclass(frozen=True)
class AdmitRequest:
    """Admit a tenant: solve, then commit capacity for the chosen switches."""

    tenant_id: str
    loads: Mapping[NodeId, int]
    budget: int
    exact_k: bool = False


@dataclass(frozen=True)
class ReleaseRequest:
    """An active tenant departs, returning its switch slots."""

    tenant_id: str


@dataclass(frozen=True)
class DrainRequest:
    """Remove a switch from service, displacing and re-placing its tenants."""

    switch: NodeId


@dataclass(frozen=True)
class StatsRequest:
    """Snapshot of fleet and cache counters."""


Request = (
    SolveRequest
    | SweepRequest
    | AdmitRequest
    | ReleaseRequest
    | DrainRequest
    | StatsRequest
)

#: Request types that do not mutate fleet state (batchable together).
READ_ONLY_REQUESTS = (SolveRequest, SweepRequest, StatsRequest)

#: Request types that mutate fleet state (journaled, serialized by the
#: write side of the service's read/write lock).
MUTATING_REQUESTS = (AdmitRequest, ReleaseRequest, DrainRequest)


# --------------------------------------------------------------------------- #
# responses
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class SolveResponse:
    """Answer to a :class:`SolveRequest`.

    ``cache_source`` records how deep the request had to go: ``"memo"``
    (solution memo, no trace at all), ``"table"`` (cached gather table,
    colour trace only — the warm hit the batched kernel exists for), or
    ``"gather"`` (cold).  ``cache_hit`` is true for the first two.
    """

    blue_nodes: frozenset[NodeId]
    cost: float
    predicted_cost: float
    budget: int
    cache_hit: bool
    elapsed_s: float
    cache_source: str = "gather"


@dataclass(frozen=True)
class SweepResponse:
    """Answer to a :class:`SweepRequest`: one entry per requested budget.

    ``cache_hit`` describes the widest-budget solve (the one that decides
    whether a gather was paid); ``cache_source`` is the deepest cache layer
    any budget of the sweep had to reach.
    """

    costs: dict[int, float]
    placements: dict[int, frozenset[NodeId]]
    cache_hit: bool
    elapsed_s: float
    cache_source: str = "gather"


@dataclass(frozen=True)
class AdmitResponse:
    """Answer to an :class:`AdmitRequest`."""

    tenant_id: str
    blue_nodes: frozenset[NodeId]
    cost: float
    predicted_cost: float
    budget: int
    cache_hit: bool
    elapsed_s: float
    cache_source: str = "gather"


@dataclass(frozen=True)
class ReleaseResponse:
    """Answer to a :class:`ReleaseRequest`."""

    tenant_id: str
    restored: frozenset[NodeId]
    elapsed_s: float


@dataclass(frozen=True)
class Replacement:
    """One displaced tenant's move recorded in a :class:`DrainResponse`."""

    tenant_id: str
    old_blue_nodes: frozenset[NodeId]
    new_blue_nodes: frozenset[NodeId]
    old_cost: float
    new_cost: float


@dataclass(frozen=True)
class DrainFailure:
    """One displaced tenant whose re-placement failed during a drain.

    The tenant's old placement was already torn down when the drain
    displaced it; a failed re-placement therefore means the tenant has
    left the fleet (counted as a release, so the lifetime invariant
    ``num_tenants == admitted_total - released_total`` holds).  ``error``
    carries the library failure that stopped the re-placement — typically
    a :class:`~repro.exceptions.CapacityError` because the drain emptied Λ.
    """

    tenant_id: str
    old_blue_nodes: frozenset[NodeId]
    old_cost: float
    error: str


@dataclass(frozen=True)
class DrainResponse:
    """Answer to a :class:`DrainRequest`.

    ``displaced`` lists the tenants that were successfully re-placed;
    ``failed`` the tenants whose re-placement failed (evicted, with the
    failure recorded).  A drain never raises halfway: whatever happens to
    the individual re-placements, the registry and the lifetime counters
    are consistent when the response returns.
    """

    switch: NodeId
    displaced: tuple[Replacement, ...]
    invalidated_entries: int
    elapsed_s: float
    failed: tuple[DrainFailure, ...] = ()


@dataclass(frozen=True)
class StatsResponse:
    """Answer to a :class:`StatsRequest`."""

    fleet: dict[str, int | float]
    cache: dict[str, int | float]
    requests: dict[str, int]
    elapsed_s: float


Response = (
    SolveResponse
    | SweepResponse
    | AdmitResponse
    | ReleaseResponse
    | DrainResponse
    | StatsResponse
)


# --------------------------------------------------------------------------- #
# the service
# --------------------------------------------------------------------------- #


class ReadWriteLock:
    """A writer-preferring read/write lock for the service's fleet state.

    Many readers may hold the lock at once; a writer holds it alone.
    Arriving writers block new readers (writer preference), so a steady
    stream of read-only requests cannot starve churn.  Not reentrant —
    the service only acquires it at the ``submit`` boundary, never from
    inside a handler.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer_active = False
        self._writers_waiting = 0

    @contextmanager
    def read_locked(self) -> Iterator[None]:
        with self._cond:
            while self._writer_active or self._writers_waiting:
                self._cond.wait()
            self._readers += 1
        try:
            yield
        finally:
            with self._cond:
                self._readers -= 1
                if self._readers == 0:
                    self._cond.notify_all()

    @contextmanager
    def write_locked(self) -> Iterator[None]:
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer_active or self._readers:
                    self._cond.wait()
                self._writer_active = True
            finally:
                self._writers_waiting -= 1
        try:
            yield
        finally:
            with self._cond:
                self._writer_active = False
                self._cond.notify_all()


@dataclass
class _Placement:
    """Internal result of a cached solve (before response packaging)."""

    blue_nodes: frozenset[NodeId]
    cost: float
    predicted_cost: float
    budget: int
    cache_hit: bool
    cache_source: str


class PlacementService:
    """Long-lived multi-tenant placement daemon.

    Parameters
    ----------
    tree:
        The shared network (topology and rates); per-request loads override
        the tree's own loads.
    capacity:
        Per-switch aggregation capacity ``a(s)`` (scalar or mapping).
    engine:
        Gather engine used for every solve (see :mod:`repro.core.engine`).
    cache_entries:
        LRU capacity of the gather-table cache.
    color:
        Colour kernel placements are traced with (see
        :mod:`repro.core.color`); the batched default is what keeps warm
        table hits cheap.
    cost_kernel:
        Cost kernel placements' achieved utilization is recomputed with
        (see :data:`repro.core.cost.COST_KERNELS`); the flat default is
        the other half of the cheap warm hit.
    max_repair_delta:
        Cache policy knob for incremental gather-table repair: the largest
        availability delta (switch flips) an availability miss may bridge
        by delta-repairing a cached table instead of re-gathering, and the
        switch between repair-instead-of-invalidate (``> 0``) and the
        historical invalidate-on-drain behaviour (``0``).  See
        :mod:`repro.service.cache`.
    """

    def __init__(
        self,
        tree: TreeNetwork,
        capacity: int | Mapping[NodeId, int],
        engine: str = DEFAULT_ENGINE,
        cache_entries: int = 64,
        color: str = DEFAULT_COLOR,
        cost_kernel: str = DEFAULT_COST,
        journal: "Journal | None" = None,
        max_repair_delta: int = 8,
    ) -> None:
        if engine not in ENGINES:
            raise ValueError(
                f"unknown engine {engine!r}; expected one of {sorted(ENGINES)}"
            )
        if cost_kernel not in COST_KERNELS:
            raise ValueError(
                f"unknown cost kernel {cost_kernel!r}; "
                f"expected one of {sorted(COST_KERNELS)}"
            )
        self._state = FleetState(tree, capacity)
        self._cache = GatherTableCache(
            max_entries=cache_entries, max_repair_delta=max_repair_delta
        )
        self._engine = engine
        self._color = color
        self._cost_kernel = cost_kernel
        # One immutable solver per budget semantics, bound to the service's
        # engine, colour kernel, and cost kernel once.
        self._solvers = {
            exact_k: Solver(
                engine=engine, exact_k=exact_k, color=color, cost_kernel=cost_kernel
            )
            for exact_k in (False, True)
        }
        self._structure_fp = tree.structure_fingerprint()
        self._request_counts: dict[str, int] = {}
        self._counts_lock = threading.Lock()
        # Read/write lock at the submit boundary: read-only requests share
        # it, mutating requests hold it alone.  Handlers never acquire it
        # themselves (it is not reentrant).
        self._fleet_lock = ReadWriteLock()
        # Write-ahead journal: number of mutating requests applied over the
        # service lifetime, and the (optional) journal they are appended to.
        self._mutation_seq = 0
        self._journal: "Journal | None" = None
        if journal is not None:
            self.attach_journal(journal)
        # Batch plan: (loads_fp, exact_k) -> largest effective budget any
        # request in the current read-only run needs.  A miss consults this
        # so the first gather of a run is already wide enough for the rest.
        self._planned_budgets: dict[tuple[str, bool], int] = {}
        # Digests computed while planning, reused when the same request
        # object is served (keyed by identity; cleared with the plan).
        self._planned_loads_fp: dict[int, str] = {}

    # ------------------------------------------------------------------ #
    # views
    # ------------------------------------------------------------------ #

    @property
    def state(self) -> FleetState:
        """The fleet state (read-only use; mutate via requests)."""
        return self._state

    @property
    def cache(self) -> GatherTableCache:
        """The gather-table cache (exposed for stats and tests)."""
        return self._cache

    @property
    def engine(self) -> str:
        return self._engine

    @property
    def color(self) -> str:
        return self._color

    @property
    def cost_kernel(self) -> str:
        return self._cost_kernel

    def solver(self, exact_k: bool = False) -> Solver:
        """The service's bound :class:`~repro.core.solver.Solver` for the semantics."""
        return self._solvers[bool(exact_k)]

    def available(self) -> frozenset[NodeId]:
        """Current availability set Λ_t (maintained by the capacity tracker)."""
        return self._state.available()

    @property
    def mutation_seq(self) -> int:
        """Number of mutating requests applied over the service lifetime.

        This is the journal position: a snapshot taken now records this
        value as ``seq``, and :meth:`restore` replays journal events
        ``seq ..`` to catch the fleet up.
        """
        return self._mutation_seq

    @property
    def journal(self) -> "Journal | None":
        """The attached write-ahead journal, if any."""
        return self._journal

    def attach_journal(self, journal: "Journal") -> None:
        """Start appending mutating requests to ``journal``.

        The journal must describe exactly this service's mutation history:
        its event count has to equal :attr:`mutation_seq` (zero for a
        fresh service and an empty journal; after :meth:`restore` with the
        same journal, the replayed tail).  Anything else would interleave
        two histories in one file and make the tail un-replayable.

        Raises
        ------
        PersistenceError
            On an event-count mismatch, or when the journal was recorded
            for a different network.
        """
        if journal.structure is not None and journal.structure != self._structure_fp:
            raise PersistenceError(
                "journal was recorded for a different network "
                f"(structure {journal.structure[:12]}…)"
            )
        if journal.event_count != self._mutation_seq:
            raise PersistenceError(
                f"journal holds {journal.event_count} mutating events but the "
                f"service has applied {self._mutation_seq}; a journal must "
                "describe exactly this service's history (restore from it, "
                "or start a fresh journal file)"
            )
        self._journal = journal

    # ------------------------------------------------------------------ #
    # cached solving
    # ------------------------------------------------------------------ #

    def _availability_fingerprint(self) -> str:
        # The tracker maintains the digest incrementally across
        # admit/release/drain, so this is O(1) on every request.
        return self._state.availability_fingerprint()

    def _key(self, loads_fp: str, exact_k: bool) -> CacheKey:
        return CacheKey(
            structure=self._structure_fp,
            available=self._availability_fingerprint(),
            loads=loads_fp,
            exact_k=exact_k,
            engine=self._engine,
        )

    def _workload_tree(self, loads: Mapping[NodeId, int]) -> TreeNetwork:
        return self._state.tree.with_loads(loads, available=self.available())

    @staticmethod
    def _validate_budget(budget: int) -> int:
        try:
            value = int(budget)
        except (TypeError, ValueError) as exc:
            raise InvalidBudgetError(f"budget must be an integer, got {budget!r}") from exc
        if isinstance(budget, bool) or value != budget:
            raise InvalidBudgetError(f"budget must be an integer, got {budget!r}")
        if value < 0:
            raise InvalidBudgetError(f"budget must be non-negative, got {value}")
        return value

    def _effective_budget(self, budget: int) -> int:
        return min(self._validate_budget(budget), len(self.available()))

    def _solve_cached(
        self,
        loads: Mapping[NodeId, int],
        budget: int,
        exact_k: bool,
        loads_fp: str | None = None,
    ) -> _Placement:
        """Answer one placement query through the cache layers.

        Fast path: solution memo (no trace at all).  Middle path: cached
        :class:`~repro.core.solver.GatherTable` — ``table.place()`` alone,
        since the artifact owns its workload network no tree is
        reconstructed; this is the colour-only warm hit.  Slow path: build
        the workload network and gather (at the batch-planned budget when
        one is on file), then memoize.  ``loads_fp`` lets callers that
        already digested the loads (batch planning, per-sweep reuse) skip
        re-digesting them.
        """
        effective = self._effective_budget(budget)
        if loads_fp is None:
            loads_fp = fingerprint_loads(loads)
        key = self._key(loads_fp, exact_k)

        memo = self._cache.solution(key, effective)
        if memo is not None:
            return _Placement(
                blue_nodes=memo.blue_nodes,
                cost=memo.cost,
                predicted_cost=memo.predicted_cost,
                budget=effective,
                cache_hit=True,
                cache_source="memo",
            )

        table = self._cache.lookup(key, effective)
        if table is None:
            planned = self._planned_budgets.get((loads_fp, exact_k), 0)
            stored = self._cache.stored_budget(key) or 0
            gather_budget = max(effective, planned, stored)
            # Availability miss: before paying a cold O(n·k²) gather, try
            # delta-repairing the nearest cached same-workload table — the
            # post-churn fast path (O(depth·k²·|delta|), bit-identical).
            table = self._repair_from_neighbor(key, gather_budget)
            if table is not None:
                source = "repair"
            else:
                source = "gather"
                workload_tree = self._workload_tree(loads)
                table = self._solvers[exact_k].gather(workload_tree, gather_budget)
                self._cache.store(key, table)
        else:
            source = "table"

        placement = table.place(effective)
        self._cache.store_solution(
            key,
            effective,
            CachedSolution(
                blue_nodes=placement.blue_nodes,
                cost=placement.cost,
                predicted_cost=placement.predicted_cost,
            ),
        )
        return _Placement(
            blue_nodes=placement.blue_nodes,
            cost=placement.cost,
            predicted_cost=placement.predicted_cost,
            budget=effective,
            cache_hit=source == "table",
            cache_source=source,
        )

    def _repair_from_neighbor(
        self, key: CacheKey, budget: int
    ) -> GatherTable | None:
        """Answer an availability miss by delta-repairing a cached table.

        Asks the cache for the nearest same-family candidate (same
        structure, loads, semantics, engine — differing from the live Λ in
        at most ``max_repair_delta`` switch flips), splices the delta into
        a clone of its tensors, and stores the repaired table under the
        missed key.  Returns ``None`` when no candidate qualifies or the
        engine-level repair refuses (:class:`~repro.exceptions.RepairError`
        — e.g. no repairer for the engine); the caller then cold-gathers.
        """
        candidate = self._cache.repair_candidate(key, budget, self.available())
        if candidate is None:
            return None
        source_table, delta = candidate
        try:
            repaired = source_table.repair(delta)
        except RepairError:
            return None
        self._cache.store(key, repaired)
        self._cache.note_repair()
        return repaired

    # ------------------------------------------------------------------ #
    # request handlers
    # ------------------------------------------------------------------ #

    def _handle_solve(self, request: SolveRequest) -> SolveResponse:
        start = time.perf_counter()
        placement = self._solve_cached(
            _freeze_loads(request.loads),
            request.budget,
            request.exact_k,
            loads_fp=self._planned_loads_fp.get(id(request)),
        )
        return SolveResponse(
            blue_nodes=placement.blue_nodes,
            cost=placement.cost,
            predicted_cost=placement.predicted_cost,
            budget=placement.budget,
            cache_hit=placement.cache_hit,
            elapsed_s=time.perf_counter() - start,
            cache_source=placement.cache_source,
        )

    def _handle_sweep(self, request: SweepRequest) -> SweepResponse:
        start = time.perf_counter()
        if not request.budgets:
            return SweepResponse(
                costs={}, placements={}, cache_hit=True,
                elapsed_s=time.perf_counter() - start,
                cache_source="memo",
            )
        loads = _freeze_loads(request.loads)
        budgets = sorted({self._validate_budget(b) for b in request.budgets})
        loads_fp = self._planned_loads_fp.get(id(request)) or fingerprint_loads(loads)
        # Solving the largest budget first populates the tables every
        # smaller budget then hits (mirrors GatherTable.sweep).
        costs: dict[int, float] = {}
        placements: dict[int, frozenset[NodeId]] = {}
        sources: set[str] = set()
        first = self._solve_cached(loads, budgets[-1], request.exact_k, loads_fp=loads_fp)
        sources.add(first.cache_source)
        costs[budgets[-1]] = first.cost
        placements[budgets[-1]] = first.blue_nodes
        for budget in budgets[:-1]:
            placement = self._solve_cached(
                loads, budget, request.exact_k, loads_fp=loads_fp
            )
            sources.add(placement.cache_source)
            costs[budget] = placement.cost
            placements[budget] = placement.blue_nodes
        # The deepest layer any budget had to reach: the widest budget
        # decides whether a gather was paid, but a sweep whose remaining
        # budgets traced placements out of cached tables is a "table"
        # response, not a "memo" one.
        source = next(
            (layer for layer in ("gather", "table", "memo") if layer in sources),
            "memo",
        )
        return SweepResponse(
            costs=costs,
            placements=placements,
            cache_hit=first.cache_hit,
            elapsed_s=time.perf_counter() - start,
            cache_source=source,
        )

    def _require_capacity(self, what: str) -> None:
        """Typed boundary check: committing placements needs a non-empty Λ.

        Without it, an admit against a fully drained/saturated fleet clamps
        the effective budget to 0 and "succeeds" with an *empty* placement
        — a tenant registered while holding no aggregation switch at all,
        paying the no-aggregation cost.  Raising
        :class:`~repro.exceptions.CapacityError` here keeps that failure
        typed, early, and at the service boundary.  Read-only queries are
        deliberately exempt: asking what a workload would cost on an empty
        fleet is a legitimate question with a well-defined answer.
        """
        if not self.available():
            raise CapacityError(
                f"cannot {what}: no aggregation capacity available "
                "(every switch is drained or saturated)"
            )

    def _handle_admit(self, request: AdmitRequest) -> AdmitResponse:
        start = time.perf_counter()
        self._require_capacity(f"admit tenant {request.tenant_id!r}")
        loads = _freeze_loads(request.loads)
        # Digest the workload once: the solve keys the cache with it and
        # the record carries it, so a later drain re-places this tenant
        # without recomputing the full loads digest.
        loads_fp = fingerprint_loads(loads)
        placement = self._solve_cached(
            loads, request.budget, request.exact_k, loads_fp=loads_fp
        )
        record = TenantRecord(
            tenant_id=request.tenant_id,
            loads=loads,
            budget=request.budget,
            exact_k=request.exact_k,
            blue_nodes=placement.blue_nodes,
            cost=placement.cost,
            predicted_cost=placement.predicted_cost,
            loads_fp=loads_fp,
        )
        self._state.register(record)
        return AdmitResponse(
            tenant_id=request.tenant_id,
            blue_nodes=placement.blue_nodes,
            cost=placement.cost,
            predicted_cost=placement.predicted_cost,
            budget=placement.budget,
            cache_hit=placement.cache_hit,
            elapsed_s=time.perf_counter() - start,
            cache_source=placement.cache_source,
        )

    def _handle_release(self, request: ReleaseRequest) -> ReleaseResponse:
        start = time.perf_counter()
        _, restored = self._state.withdraw(request.tenant_id)
        return ReleaseResponse(
            tenant_id=request.tenant_id,
            restored=restored,
            elapsed_s=time.perf_counter() - start,
        )

    def _handle_drain(self, request: DrainRequest) -> DrainResponse:
        """Drain a switch, re-placing (or failing over) its displaced tenants.

        The loop is exception-safe per tenant: a re-placement that fails
        with a library error (e.g. the drain emptied Λ, so re-admission
        would violate the capacity boundary) is recorded in the response's
        ``failed`` tuple and counted as a forced release — it never
        unwinds the handler mid-loop.  Earlier re-placements stay
        registered, later displaced tenants are still processed, and
        ``num_tenants == admitted_total - released_total`` holds on every
        exit path.
        """
        start = time.perf_counter()
        displaced = self._state.drain(request.switch)
        if self._cache.repair_enabled:
            # Repair-instead-of-invalidate: entries mentioning the drained
            # switch stay cached — each is a repair source exactly one
            # availability flip away from the post-drain Λ, so the displaced
            # tenants below (and follow-up solves) delta-repair instead of
            # paying cold gathers.  They age out through the LRU as usual.
            invalidated = 0
        else:
            invalidated = self._cache.invalidate_switches({request.switch})
        replacements: list[Replacement] = []
        failures: list[DrainFailure] = []
        for record in displaced:
            try:
                self._require_capacity(f"re-place displaced tenant {record.tenant_id!r}")
                # The record carries the loads digest from admission time,
                # so re-placing a displaced tenant skips the full recompute.
                placement = self._solve_cached(
                    record.loads, record.budget, record.exact_k, loads_fp=record.loads_fp
                )
                self._state.register(
                    TenantRecord(
                        tenant_id=record.tenant_id,
                        loads=record.loads,
                        budget=record.budget,
                        exact_k=record.exact_k,
                        blue_nodes=placement.blue_nodes,
                        cost=placement.cost,
                        predicted_cost=placement.predicted_cost,
                        loads_fp=record.loads_fp,
                    ),
                    new_admission=False,
                )
            except ReproError as exc:
                # The tenant's old placement is already torn down; evicting
                # it (and saying so) is the consistent outcome.
                self._state.note_forced_release()
                failures.append(
                    DrainFailure(
                        tenant_id=record.tenant_id,
                        old_blue_nodes=record.blue_nodes,
                        old_cost=record.cost,
                        error=f"{type(exc).__name__}: {exc}",
                    )
                )
                continue
            replacements.append(
                Replacement(
                    tenant_id=record.tenant_id,
                    old_blue_nodes=record.blue_nodes,
                    new_blue_nodes=placement.blue_nodes,
                    old_cost=record.cost,
                    new_cost=placement.cost,
                )
            )
        return DrainResponse(
            switch=request.switch,
            displaced=tuple(replacements),
            invalidated_entries=invalidated,
            elapsed_s=time.perf_counter() - start,
            failed=tuple(failures),
        )

    def _handle_stats(self, request: StatsRequest) -> StatsResponse:
        start = time.perf_counter()
        with self._counts_lock:
            counts = dict(self._request_counts)
        return StatsResponse(
            fleet=self._state.residual_summary(),
            cache=self._cache.stats.snapshot(),
            requests=counts,
            elapsed_s=time.perf_counter() - start,
        )

    # ------------------------------------------------------------------ #
    # the request loop
    # ------------------------------------------------------------------ #

    def _serve(self, request: Request) -> Response:
        """Dispatch one request to its handler (no locking, no journal)."""
        kind = type(request).__name__
        with self._counts_lock:
            self._request_counts[kind] = self._request_counts.get(kind, 0) + 1
        if isinstance(request, SolveRequest):
            return self._handle_solve(request)
        if isinstance(request, SweepRequest):
            return self._handle_sweep(request)
        if isinstance(request, AdmitRequest):
            return self._handle_admit(request)
        if isinstance(request, ReleaseRequest):
            return self._handle_release(request)
        if isinstance(request, DrainRequest):
            return self._handle_drain(request)
        if isinstance(request, StatsRequest):
            return self._handle_stats(request)
        raise WorkloadError(f"unknown request type: {type(request).__name__}")

    def submit(self, request: Request) -> Response:
        """Serve one request and return its typed response.

        Safe to call from multiple threads.  Read-only requests (solve /
        sweep / stats) share the fleet lock and run concurrently — the
        gather-table cache is internally synchronized, and the
        :class:`~repro.core.solver.GatherTable` artifacts it serves are
        immutable, so warm hits are effectively lock-free.  Mutating
        requests (admit / release / drain) take the write side, run alone,
        and are appended to the write-ahead journal (when one is attached)
        *after* the handler returns — a request that raises is never
        journaled, so a journal line always records an applied mutation.
        """
        if isinstance(request, MUTATING_REQUESTS):
            with self._fleet_lock.write_locked():
                response = self._serve(request)
                self._mutation_seq += 1
                if self._journal is not None:
                    from repro.service.events import request_to_event

                    try:
                        # Deliberate WAL-under-write-lock: the journal line
                        # must land before any reader can observe the
                        # mutation, else a crash between unlock and append
                        # replays to a fleet the readers never saw.
                        self._journal.append(  # lint: allow(blocking-under-lock)
                            request_to_event(request)
                        )
                    except BaseException as exc:
                        # The mutation is applied but not journaled: the
                        # journal now has a hole and replaying it would
                        # silently diverge.  Detach it on *any* failure so
                        # the hole cannot grow.  Expected append failures
                        # (I/O, serialization, typed persistence errors)
                        # are surfaced as PersistenceError; anything else
                        # is a bug and propagates as itself — the operator
                        # must take a fresh snapshot before trusting this
                        # journal file again either way.
                        self._journal = None
                        if not isinstance(
                            exc, (OSError, TypeError, ValueError, ReproError)
                        ):
                            raise
                        raise PersistenceError(
                            "write-ahead journal append failed after the "
                            "mutation was applied; journaling is now "
                            "disabled — take a fresh snapshot before "
                            "relying on this journal"
                        ) from exc
                return response
        with self._fleet_lock.read_locked():
            return self._serve(request)

    def _plan_run(self, run: Sequence[Request]) -> None:
        """Record the widest budget each (loads, semantics) group needs.

        Planning is best-effort: a malformed request is simply skipped
        here, so its error surfaces when the request itself is served — at
        the same position and with the same exception a serial submission
        would produce, with every earlier response already delivered.
        """
        self._planned_budgets.clear()
        self._planned_loads_fp.clear()
        for request in run:
            try:
                if isinstance(request, SolveRequest):
                    needed = self._effective_budget(request.budget)
                    loads_fp = fingerprint_loads(request.loads)
                elif isinstance(request, SweepRequest) and request.budgets:
                    needed = self._effective_budget(
                        max(self._validate_budget(b) for b in request.budgets)
                    )
                    loads_fp = fingerprint_loads(request.loads)
                else:
                    continue
            except (ReproError, TypeError, ValueError, AttributeError):
                # Planning is advisory only: a malformed request fails
                # identically when served, so only the failures a bad
                # request can produce are skipped — a bug in the planner
                # itself still surfaces here.
                continue
            self._planned_loads_fp[id(request)] = loads_fp
            group = (loads_fp, request.exact_k)
            self._planned_budgets[group] = max(
                self._planned_budgets.get(group, 0), needed
            )

    def submit_batch(self, requests: Iterable[Request]) -> list[Response]:
        """Serve a batch, planning gathers across read-only runs.

        Mutating requests act as barriers: the fleet state observed by each
        request is exactly what serial :meth:`submit` calls would produce.
        Within a run of read-only requests, the first gather for each
        (loads, semantics) group happens at the widest budget the run
        needs, so the remaining requests of the group upcast for free.
        """
        pending = list(requests)
        responses: list[Response] = []
        index = 0
        while index < len(pending):
            if isinstance(pending[index], READ_ONLY_REQUESTS):
                end = index
                while end < len(pending) and isinstance(
                    pending[end], READ_ONLY_REQUESTS
                ):
                    end += 1
                run = pending[index:end]
                self._plan_run(run)
                try:
                    responses.extend(self.submit(request) for request in run)
                finally:
                    self._planned_budgets.clear()
                    self._planned_loads_fp.clear()
                index = end
            else:
                responses.append(self.submit(pending[index]))
                index += 1
        return responses

    # ------------------------------------------------------------------ #
    # persistence (see :mod:`repro.service.persistence`)
    # ------------------------------------------------------------------ #

    def snapshot(self, include_cache: bool = True) -> dict:
        """A versioned, JSON-serializable snapshot of the fleet state.

        Captures the tenant registry, the capacity tracker's residuals and
        drained set, the lifetime counters, and the journal position
        (:attr:`mutation_seq`).  With ``include_cache`` (the default) it
        also records the cache's *hot workloads* — the (loads, semantics,
        budget) of every cached gather table, in LRU order — so
        :meth:`restore` can pre-warm the cache by re-gathering them.  The
        snapshot is taken under the write lock, so it is a consistent
        point-in-time view even on a concurrently-serving service.

        Serialize with :func:`repro.service.persistence.write_snapshot`.
        """
        from repro.service.persistence import build_snapshot

        with self._fleet_lock.write_locked():
            return build_snapshot(self, include_cache=include_cache)

    @classmethod
    def restore(
        cls,
        tree: TreeNetwork,
        snapshot: "dict | str | None" = None,
        journal: "Journal | str | Sequence | None" = None,
        *,
        capacity: int | Mapping[NodeId, int] | None = None,
        engine: str | None = None,
        cache_entries: int = 64,
        color: str | None = None,
        cost_kernel: str | None = None,
        prewarm: bool = True,
    ) -> "PlacementService":
        """Rebuild a service from a snapshot and/or a write-ahead journal.

        Loads the snapshot (a :meth:`snapshot` payload, or a path written
        by :func:`repro.service.persistence.write_snapshot`), replays the
        journal tail — the mutating events past the snapshot's ``seq`` —
        and optionally pre-warms the gather-table cache from the
        snapshot's hot workloads.  The restored service then answers every
        request with the same placements, costs, and counters as a service
        that never went down: mutating requests are deterministic given
        the fleet state, so replaying the tail reproduces the exact
        registry, residuals, and Λ digest (``tests/test_service_persistence.py``
        pins this bit-for-bit).  What is *not* restored is diagnostics:
        cache hit counters and per-kind request counts restart from the
        journal replay, so ``Stats`` responses differ from an
        uninterrupted run even though every placement answer agrees.

        With ``snapshot=None`` the whole journal is replayed from an empty
        fleet (journal-only recovery; ``capacity`` must then be given,
        since only snapshots record the initial capacities).  Passing a
        :class:`~repro.service.persistence.Journal` *instance* additionally
        re-attaches it, so the restored service keeps appending where the
        crashed one stopped.

        ``engine`` / ``color`` / ``cost_kernel`` default to what the
        snapshot recorded (the kernels are bit-identical, so overriding
        them changes latency, never answers).

        Raises
        ------
        PersistenceError
            On an unknown snapshot version, a structure-fingerprint
            mismatch (snapshot or journal recorded for a different
            network), a journal shorter than the snapshot's ``seq``, or
            non-mutating events in the journal.
        """
        from repro.service.persistence import restore_service

        return restore_service(
            cls,
            tree,
            snapshot,
            journal,
            capacity=capacity,
            engine=engine,
            cache_entries=cache_entries,
            color=color,
            cost_kernel=cost_kernel,
            prewarm=prewarm,
        )

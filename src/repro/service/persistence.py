"""Crash-safe fleet state: versioned snapshots and a write-ahead journal.

The placement service is a long-lived daemon, but until this module its
fleet — tenant registry, residual capacities, drained switches, lifetime
counters — died with the process.  Persistence splits that state into two
artifacts with one invariant between them:

* a **snapshot** (:meth:`repro.service.PlacementService.snapshot`) is a
  versioned, JSON-serializable point-in-time copy of the fleet, stamped
  with the journal position ``seq`` — the number of mutating requests
  applied when it was taken;
* a **journal** (:class:`Journal`) is an append-only JSON-lines file that
  records every *mutating* request (admit / release / drain) after it is
  applied, in the exact :class:`~repro.service.events.TraceEvent` format —
  a journal *is* a trace file, so every trace tool reads it unchanged.

``PlacementService.restore(tree, snapshot, journal)`` loads the snapshot
and replays the journal events past ``seq``.  Because every mutating
request is deterministic given the fleet state (the engines, colour
kernels, and cost kernels are bit-identical and the drain loop re-places
displaced tenants in arrival order), replaying the tail reproduces the
crashed service's registry, residuals, counters, and incremental Λ digest
bit-for-bit — the restored service answers every subsequent request with
exactly the placements and costs an uninterrupted run would have produced.
Read-only requests are never journaled; they cannot change what needs
recovering.

What survives a restart and what does not
-----------------------------------------
Fleet state (tenants, capacities, drains, counters, Λ digest) is restored
exactly.  Diagnostics are not: cache statistics and per-kind request
counts restart from the journal replay, so ``Stats`` responses are the one
request type whose payload legitimately differs after a restore.  The
gather-table cache starts cold, but the snapshot records the cache's *hot
workloads* (the loads / semantics / budget of every cached table, LRU
order) and the restore path re-gathers them by default (``prewarm=True``),
so a restored service re-enters steady state without waiting for the
traffic to re-teach it.

Durability
----------
:meth:`Journal.append` flushes on every event; pass ``sync=True`` to also
``fsync`` — the classic write-ahead trade of latency for crash-window.
Appends happen *after* the handler returns (under the service's write
lock), so a journal line always records a mutation that was applied, and
a request that raised is never journaled.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from collections.abc import Mapping, Sequence

from repro.core.color import DEFAULT_COLOR
from repro.core.cost import DEFAULT_COST
from repro.core.engine import DEFAULT_ENGINE
from repro.core.tree import NodeId, TreeNetwork
from repro.exceptions import PersistenceError, ReproError
from repro.service.events import (
    TRACE_HEADER_KIND,
    TraceEvent,
    event_to_request,
    node_index,
    read_trace,
    resolve_loads,
    trace_header,
)

__all__ = [
    "Journal",
    "MUTATING_KINDS",
    "SNAPSHOT_KIND",
    "SNAPSHOT_VERSION",
    "build_snapshot",
    "read_snapshot",
    "write_snapshot",
]

#: Event kinds a write-ahead journal may contain.
MUTATING_KINDS: tuple[str, ...] = ("admit", "release", "drain")

#: ``kind`` tag of a serialized fleet snapshot.
SNAPSHOT_KIND: str = "fleet-snapshot"

#: Format version written into (and required from) every snapshot.
SNAPSHOT_VERSION: int = 1


class Journal:
    """Append-only write-ahead journal of mutating service requests.

    Parameters
    ----------
    path:
        The JSON-lines file to append to.  An existing file is *continued*
        (its events are counted and its header checked), which is how a
        restored service keeps appending where the crashed one stopped; a
        missing or empty file is initialized with a network-identity
        header when ``tree`` is given.
    tree:
        The network the journal belongs to.  Recorded in the header so a
        later restore refuses to replay the journal against a different
        network.
    sync:
        When true, every append ``fsync``\\ s the file (durability over
        latency); the default flushes only.

    Raises
    ------
    PersistenceError
        If an existing file contains non-mutating events or was recorded
        for a different network.
    """

    def __init__(
        self,
        path: str | Path,
        tree: TreeNetwork | None = None,
        sync: bool = False,
    ) -> None:
        self._path = Path(path)
        self._sync = bool(sync)
        self._handle = None
        self._structure = tree.structure_fingerprint() if tree is not None else None
        self._count = 0
        if self._path.exists() and self._path.stat().st_size > 0:
            header = trace_header(self._path)
            recorded = header.get("structure") if header else None
            if (
                recorded is not None
                and self._structure is not None
                and recorded != self._structure
            ):
                raise PersistenceError(
                    f"journal {self._path} was recorded for a different network "
                    f"(structure {recorded[:12]}…)"
                )
            if self._structure is None:
                self._structure = recorded
            events = read_trace(self._path)
            foreign = sorted({e.kind for e in events if e.kind not in MUTATING_KINDS})
            if foreign:
                raise PersistenceError(
                    f"journal {self._path} contains non-mutating events "
                    f"({', '.join(foreign)}); it is a full trace, not a journal"
                )
            self._count = len(events)
        else:
            self._path.parent.mkdir(parents=True, exist_ok=True)
            if tree is not None:
                header = {
                    "kind": TRACE_HEADER_KIND,
                    "structure": self._structure,
                    "num_switches": tree.num_switches,
                }
                self._write_line(json.dumps(header, separators=(",", ":")))

    # ------------------------------------------------------------------ #
    # views
    # ------------------------------------------------------------------ #

    @property
    def path(self) -> Path:
        """The underlying JSON-lines file."""
        return self._path

    @property
    def structure(self) -> str | None:
        """Structure fingerprint of the recorded network (``None`` if unknown)."""
        return self._structure

    @property
    def event_count(self) -> int:
        """Mutating events in the journal (existing plus appended)."""
        return self._count

    def events(self) -> list[TraceEvent]:
        """Read the journal back as trace events (header skipped)."""
        self.flush()
        if not self._path.exists():
            return []
        return read_trace(self._path)

    # ------------------------------------------------------------------ #
    # appending
    # ------------------------------------------------------------------ #

    def _write_line(self, line: str) -> None:
        if self._handle is None:
            self._handle = self._path.open("a")
        self._handle.write(line)
        self._handle.write("\n")
        self._handle.flush()
        if self._sync:
            import os

            os.fsync(self._handle.fileno())

    def append(self, event: TraceEvent) -> int:
        """Append one mutating event; returns the new event count.

        Raises
        ------
        PersistenceError
            If the event's kind is not a mutating one — journaling a
            read-only request would desynchronize the ``seq`` positions
            every snapshot records.
        """
        if event.kind not in MUTATING_KINDS:
            raise PersistenceError(
                f"only mutating events belong in a journal, got {event.kind!r}"
            )
        self._write_line(event.to_json())
        self._count += 1
        return self._count

    def flush(self) -> None:
        """Flush any buffered appends to disk."""
        if self._handle is not None:
            self._handle.flush()

    def close(self) -> None:
        """Close the file handle (the journal may be reopened later)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# --------------------------------------------------------------------------- #
# snapshots
# --------------------------------------------------------------------------- #


def build_snapshot(service, include_cache: bool = True) -> dict:
    """Assemble the versioned snapshot payload for a service.

    Called by :meth:`repro.service.PlacementService.snapshot` (which holds
    the write lock around it); prefer that entry point.  The payload is
    pure JSON-serializable data: fleet state via
    :meth:`~repro.service.state.FleetState.state_dict`, provenance
    (structure fingerprint, engine / colour / cost kernels), the journal
    position ``seq``, the Λ digest (an integrity check for the restore
    path), and — with ``include_cache`` — the hot workloads of the
    gather-table cache in LRU order (each cached
    :class:`~repro.core.solver.GatherTable` owns the workload network it
    was gathered for, so its loads can be read straight off the artifact).
    """
    state = service.state
    tree = state.tree
    payload: dict = {
        "kind": SNAPSHOT_KIND,
        "version": SNAPSHOT_VERSION,
        "structure": tree.structure_fingerprint(),
        "num_switches": tree.num_switches,
        "engine": service.engine,
        "color": service.color,
        "cost_kernel": service.cost_kernel,
        "seq": int(service.mutation_seq),
        "availability": state.availability_fingerprint(),
        "fleet": state.state_dict(),
        "hot_workloads": [],
    }
    if include_cache:
        for key, table in service.cache.tables():
            loads = {
                str(node): int(load)
                for node, load in table.tree.loads.items()
                if int(load) != 0
            }
            payload["hot_workloads"].append(
                {
                    "loads": sorted([name, load] for name, load in loads.items()),
                    "exact_k": bool(key.exact_k),
                    "budget": int(table.budget),
                }
            )
    return payload


def write_snapshot(payload: Mapping, path: str | Path) -> Path:
    """Write a snapshot payload as JSON, atomically; returns the path.

    The snapshot is the file :func:`restore_service` starts from, so a
    crash mid-write must never leave a truncated JSON in its place.  The
    payload is written to a same-directory temporary file, flushed and
    fsynced, then published over ``path`` with :func:`os.replace` — on a
    POSIX filesystem readers see either the previous complete snapshot or
    the new complete one, never a partial write.
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    handle_fd, staging = tempfile.mkstemp(
        dir=target.parent, prefix=f".{target.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(handle_fd, "w") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(staging, target)
    except BaseException:
        try:
            os.unlink(staging)
        except OSError:
            pass
        raise
    return target


def read_snapshot(path: str | Path) -> dict:
    """Read a snapshot payload back, validating its kind tag.

    Raises
    ------
    PersistenceError
        If the file does not hold a fleet snapshot.
    """
    with Path(path).open() as handle:
        payload = json.load(handle)
    if not isinstance(payload, dict) or payload.get("kind") != SNAPSHOT_KIND:
        raise PersistenceError(f"{path} does not contain a fleet snapshot")
    return payload


def _validate_snapshot(snapshot: Mapping, tree: TreeNetwork) -> None:
    if snapshot.get("kind") != SNAPSHOT_KIND:
        raise PersistenceError("payload is not a fleet snapshot")
    version = snapshot.get("version")
    if version != SNAPSHOT_VERSION:
        raise PersistenceError(
            f"unsupported snapshot version {version!r} "
            f"(this build reads version {SNAPSHOT_VERSION})"
        )
    recorded = snapshot.get("structure")
    if recorded is not None and recorded != tree.structure_fingerprint():
        raise PersistenceError(
            "snapshot was taken for a different network "
            f"({snapshot.get('num_switches', '?')} switches, "
            f"structure {recorded[:12]}…); this network has "
            f"{tree.num_switches} switches"
        )


def _journal_events(
    journal, tree: TreeNetwork
) -> tuple[list[TraceEvent], "Journal | None"]:
    """Normalize restore's ``journal`` argument into (events, attachable)."""
    if journal is None:
        return [], None
    # Duck-typed rather than isinstance: running this module as __main__
    # (the CI smoke) loads a second copy of the class, and a Journal from
    # either copy must be honoured.
    if hasattr(journal, "events") and hasattr(journal, "append"):
        if journal.structure is not None and journal.structure != tree.structure_fingerprint():
            raise PersistenceError(
                "journal was recorded for a different network "
                f"(structure {journal.structure[:12]}…)"
            )
        return journal.events(), journal
    if isinstance(journal, (str, Path)):
        header = trace_header(journal)
        recorded = header.get("structure") if header else None
        if recorded is not None and recorded != tree.structure_fingerprint():
            raise PersistenceError(
                f"journal {journal} was recorded for a different network "
                f"(structure {recorded[:12]}…)"
            )
        return read_trace(journal), None
    return list(journal), None


def restore_service(
    cls,
    tree: TreeNetwork,
    snapshot: Mapping | str | Path | None,
    journal=None,
    *,
    capacity: "int | Mapping[NodeId, int] | None" = None,
    engine: str | None = None,
    cache_entries: int = 64,
    color: str | None = None,
    cost_kernel: str | None = None,
    prewarm: bool = True,
):
    """Implementation of :meth:`repro.service.PlacementService.restore`.

    ``capacity`` is only consulted for journal-only recovery
    (``snapshot=None``), where no snapshot records the initial
    capacities; with a snapshot it is ignored — the snapshot is
    authoritative.
    """
    index = node_index(tree)
    if isinstance(snapshot, (str, Path)):
        snapshot = read_snapshot(snapshot)
    if snapshot is not None:
        _validate_snapshot(snapshot, tree)
        seq = int(snapshot.get("seq", 0))
        initial = snapshot["fleet"]["capacity"]["initial"]
        try:
            capacity = {index[name]: int(value) for name, value in initial.items()}
        except KeyError as exc:
            raise PersistenceError(
                f"snapshot references unknown switch {exc.args[0]!r}"
            ) from exc
    else:
        seq = 0
        if capacity is None:
            raise PersistenceError(
                "journal-only recovery needs the initial capacities: pass "
                "capacity=... (a snapshot records them, a journal does not)"
            )

    defaults = snapshot or {}
    service = cls(
        tree,
        capacity,
        engine=engine or defaults.get("engine") or DEFAULT_ENGINE,
        cache_entries=cache_entries,
        color=color or defaults.get("color") or DEFAULT_COLOR,
        cost_kernel=cost_kernel or defaults.get("cost_kernel") or DEFAULT_COST,
    )
    if snapshot is not None:
        service.state.load_state(snapshot["fleet"], index)
        recorded = snapshot.get("availability")
        rebuilt = service.state.availability_fingerprint()
        if recorded is not None and recorded != rebuilt:
            raise PersistenceError(
                "restored availability digest does not match the snapshot "
                f"({rebuilt[:12]}… != {recorded[:12]}…); the snapshot is "
                "corrupt or was edited"
            )
        service._mutation_seq = seq

    events, attachable = _journal_events(journal, tree)
    foreign = sorted({e.kind for e in events if e.kind not in MUTATING_KINDS})
    if foreign:
        raise PersistenceError(
            f"journal contains non-mutating events ({', '.join(foreign)}); "
            "replay full traces through the driver, not through restore"
        )
    if journal is not None and len(events) < seq:
        raise PersistenceError(
            f"journal holds {len(events)} events but the snapshot was taken "
            f"at seq {seq}; the journal does not cover this snapshot"
        )
    for event in events[seq:]:
        service._serve(event_to_request(tree, event, index))
        service._mutation_seq += 1
    if attachable is not None:
        service.attach_journal(attachable)

    if prewarm and snapshot is not None:
        for hot in snapshot.get("hot_workloads", []):
            if not service.available():
                break
            try:
                loads = resolve_loads(tree, hot.get("loads", []), index)
                service._solve_cached(
                    loads,
                    int(hot.get("budget", 0)),
                    bool(hot.get("exact_k", False)),
                )
            except ReproError:
                # A hot workload that no longer resolves (or gathers)
                # is stale advice, not an error: skip it.
                continue
    return service


# --------------------------------------------------------------------------- #
# standalone kill/restore smoke (the CI step)
# --------------------------------------------------------------------------- #


def main(argv: "Sequence[str] | None" = None) -> int:
    """Operational proof: kill a journaled service mid-trace and restore it.

    Generates a seeded churn trace, replays it uninterrupted, then replays
    it again with a crash in the middle — snapshot taken part-way through,
    journal running to the kill point, service rebuilt from snapshot +
    journal tail — and asserts the post-restore responses are
    payload-identical to the uninterrupted run.  With ``--workers N > 1``
    it additionally drives a concurrent replay of the full trace
    (``--mode thread`` or ``--mode process``) and diffs it against the
    serial one.  Exits non-zero on any divergence; run by
    ``.github/workflows/ci.yml`` as the snapshot round-trip smoke.
    """
    import argparse
    import tempfile

    from repro.service.driver import replay_trace, response_payload
    from repro.service.events import generate_churn_trace
    from repro.topology.binary_tree import bt_network
    from repro.workload.rates import apply_rate_scheme

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--network-size", type=int, default=64)
    parser.add_argument("--requests", type=int, default=120)
    parser.add_argument("--capacity", type=int, default=3)
    parser.add_argument("--budget", type=int, default=8)
    parser.add_argument("--seed", type=int, default=2021)
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="also diff an N-worker concurrent replay against the serial one",
    )
    parser.add_argument(
        "--mode",
        choices=("thread", "process"),
        default="thread",
        help="concurrency mode of the --workers diff (thread pool, or the "
        "Λ-epoch process pool)",
    )
    args = parser.parse_args(argv)

    tree = apply_rate_scheme(bt_network(args.network_size), "constant")
    trace = generate_churn_trace(
        tree, args.requests, seed=args.seed, budget=args.budget, workload_pool=6
    )
    index = node_index(tree)
    requests = [event_to_request(tree, event, index) for event in trace]
    snap_at = len(requests) // 3
    kill_at = 2 * len(requests) // 3

    # The ground truth: one service, never interrupted.
    from repro.service.api import PlacementService

    uninterrupted = PlacementService(tree, args.capacity)
    expected = [response_payload(uninterrupted.submit(req)) for req in requests]

    with tempfile.TemporaryDirectory() as workdir:
        journal_path = Path(workdir) / "fleet.jsonl"
        doomed = PlacementService(
            tree, args.capacity, journal=Journal(journal_path, tree=tree)
        )
        for req in requests[:snap_at]:
            doomed.submit(req)
        snapshot = doomed.snapshot()
        for req in requests[snap_at:kill_at]:
            doomed.submit(req)
        doomed.journal.close()  # the crash

        restored = PlacementService.restore(
            tree, snapshot, journal=Journal(journal_path, tree=tree)
        )
        tail = [response_payload(restored.submit(req)) for req in requests[kill_at:]]
        mismatches = sum(
            1 for got, want in zip(tail, expected[kill_at:]) if got != want
        )
        print(
            f"kill/restore: snapshot at {snap_at}, killed at {kill_at}, "
            f"{len(tail)} post-restore responses, {mismatches} mismatches"
        )
        if mismatches:
            raise SystemExit(
                f"{mismatches} post-restore responses diverged from the "
                "uninterrupted run"
            )
        if (
            restored.state.availability_fingerprint()
            != uninterrupted.state.availability_fingerprint()
        ):
            raise SystemExit("restored Λ digest diverged from the uninterrupted run")

    if args.workers > 1:
        serial = replay_trace(tree, trace, capacity=args.capacity)
        concurrent = replay_trace(
            tree, trace, capacity=args.capacity, workers=args.workers, mode=args.mode
        )
        divergent = sum(
            1
            for left, right in zip(serial.records, concurrent.records)
            if response_payload(left.response) != response_payload(right.response)
        )
        print(
            f"concurrent replay: {args.workers} {concurrent.mode} workers over "
            f"{concurrent.num_requests} requests, {divergent} payload mismatches "
            f"(serial {serial.wall_s:.3f}s, concurrent {concurrent.wall_s:.3f}s)"
        )
        if divergent:
            raise SystemExit(
                f"{divergent} responses diverged between serial and "
                f"{args.workers}-worker replay"
            )
    print("persistence smoke ok")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised by the CI smoke step
    import sys

    sys.exit(main())

"""Multi-tenant placement service: a long-lived daemon around SOAR.

The paper's online setting (Section 5.2) assumes workloads arrive once and
never leave.  A production aggregation service faces the full lifecycle —
arrivals *and* departures, switch maintenance, and a heavy stream of
repeated placement queries that must be answered far faster than a cold
:meth:`repro.Solver.solve`.  This package is that service layer.

Module tour
-----------
:mod:`repro.service.state`
    The mutable fleet: the shared network, the residual per-switch
    aggregation capacity (via :class:`~repro.online.capacity.CapacityTracker`,
    now with ``release`` and ``drain``), and the registry of active tenants
    with the placements they hold.

:mod:`repro.service.cache`
    The speed multiplier: an LRU cache of public
    :class:`repro.GatherTable` artifacts keyed by (structure fingerprint,
    Λ fingerprint, loads digest, budget semantics, engine).  A table
    gathered at budget ``k`` answers every budget ``k' <= k`` through
    ``table.place(k')`` (*budget upcasting*) — a batched colour trace plus
    the flat cost-kernel recompute (:data:`repro.core.cost.COST_KERNELS`),
    both over tensors the artifact already carries, since it owns its
    workload network — and a per-budget solution memo answers exact
    repeats without even a colour trace.  Keys digest everything a gather
    depends on, so hits are always bitwise-correct; the digests themselves
    stay warm too (the Λ fingerprint is maintained incrementally by the
    capacity tracker, admitted tenants carry their loads digest), and
    invalidation (after drains) only reclaims entries that can never be
    looked up again.  The warm-hit latency split —
    ``table_hit_ms`` / ``pr3_warm_ms`` / ``legacy_warm_ms`` /
    ``cost_flat_ms`` / ``cost_reference_ms`` / ``cost_kernel_speedup`` —
    is published by ``benchmarks/bench_service.py`` into
    ``benchmarks/results/service_throughput.csv``.

:mod:`repro.service.api`
    The typed request surface — ``Solve``, ``Sweep``, ``Admit``,
    ``Release``, ``Drain``, ``Stats`` — and :class:`PlacementService`, the
    daemon object dispatching them.  ``submit_batch`` is the batched
    request loop: read-only runs are planned so each (workload, semantics)
    group gathers once at the widest budget the run needs.

:mod:`repro.service.events`
    Serializable churn traces: :class:`TraceEvent`, JSON-lines round-trip
    (:func:`read_trace` / :func:`write_trace`), and a seeded synthetic
    generator (:func:`generate_churn_trace`) whose arrival/departure/drain
    mix exercises the cache the way recurring tenants would.

:mod:`repro.service.driver`
    The traffic-replay driver: feed a trace to a service, time every
    request, report throughput / per-kind latency / hit rate, and (with
    ``verify=True``) assert every placement response is bit-identical to a
    direct cold solve — the differential harness behind
    ``tests/test_service.py`` and ``soar-repro serve-replay``.  With
    ``workers=N`` the replay drives the service from a thread pool
    (mutating requests stay barriers), payload-identical to the serial
    replay.

:mod:`repro.service.persistence`
    Crash safety: versioned fleet snapshots
    (:meth:`PlacementService.snapshot` /
    :meth:`PlacementService.restore`) and the append-only write-ahead
    :class:`Journal` of mutating requests (JSON-lines, the same
    :class:`TraceEvent` format as churn traces).  A restore loads the
    snapshot, replays the journal tail, and optionally pre-warms the
    cache from the snapshot's hot workloads; the restored service then
    answers everything with the same placements, costs, and counters as
    a service that never went down.

Concurrency guarantees
----------------------
:meth:`PlacementService.submit` is thread-safe.  A writer-preferring
read/write lock serializes mutating requests (admit / release / drain)
against everything else, while read-only requests (solve / sweep / stats)
run concurrently: the gather-table cache is internally synchronized and
the :class:`repro.GatherTable` artifacts it serves are immutable, so warm
hits trace placements without holding any lock.  Two readers racing to
gather the same cold key both compute (bit-identical) tables and the
cache keeps the widest — answers never depend on the interleaving, only
``cache_hit`` / ``cache_source`` diagnostics do.  ``submit_batch``'s
gather planning is not synchronized; drive a service either through one
batching loop or through concurrent ``submit`` calls, not both at once.

Snapshot format
---------------
A snapshot is a single JSON object (``kind: "fleet-snapshot"``,
``version: 1``) carrying the structure fingerprint of the network, the
engine/colour/cost provenance, the journal position ``seq``, the fleet
state (initial + residual capacities, drained switches, consumed
assignments, lifetime counters, and the tenant registry with each
tenant's loads, budget, semantics, blue set, costs, and loads digest —
switches stringified exactly like trace events), the incremental Λ digest
(re-derived and checked on restore), and the cache's hot workloads in LRU
order.  Unknown versions and foreign structure fingerprints are refused
with :class:`repro.exceptions.PersistenceError`.

Quickstart
----------
>>> from repro import bt_network
>>> from repro.service import PlacementService, SolveRequest
>>> service = PlacementService(bt_network(64), capacity=4)
>>> loads = {leaf: 3 for leaf in service.state.tree.leaves()}
>>> cold = service.submit(SolveRequest(loads=loads, budget=8))
>>> warm = service.submit(SolveRequest(loads=loads, budget=8))
>>> cold.cache_hit, warm.cache_hit, warm.cost == cold.cost
(False, True, True)
"""

from repro.service.api import (
    AdmitRequest,
    AdmitResponse,
    DrainFailure,
    DrainRequest,
    DrainResponse,
    PlacementService,
    ReadWriteLock,
    ReleaseRequest,
    ReleaseResponse,
    Replacement,
    Request,
    Response,
    SolveRequest,
    SolveResponse,
    StatsRequest,
    StatsResponse,
    SweepRequest,
    SweepResponse,
)
from repro.service.cache import CachedSolution, CacheKey, CacheStats, GatherTableCache
from repro.service.driver import (
    ReplayRecord,
    ReplayReport,
    replay_trace,
    response_payload,
)
from repro.service.events import (
    ChurnProfile,
    EVENT_KINDS,
    TRACE_HEADER_KIND,
    TraceEvent,
    check_trace_compatible,
    event_to_request,
    generate_churn_trace,
    node_index,
    read_trace,
    request_to_event,
    resolve_loads,
    trace_header,
    write_trace,
)
from repro.service.persistence import (
    Journal,
    MUTATING_KINDS,
    SNAPSHOT_KIND,
    SNAPSHOT_VERSION,
    read_snapshot,
    write_snapshot,
)
from repro.service.state import FleetState, TenantRecord

__all__ = [
    "AdmitRequest",
    "AdmitResponse",
    "CachedSolution",
    "CacheKey",
    "CacheStats",
    "ChurnProfile",
    "DrainFailure",
    "DrainRequest",
    "DrainResponse",
    "EVENT_KINDS",
    "FleetState",
    "GatherTableCache",
    "Journal",
    "MUTATING_KINDS",
    "PlacementService",
    "ReadWriteLock",
    "ReleaseRequest",
    "ReleaseResponse",
    "Replacement",
    "ReplayRecord",
    "ReplayReport",
    "Request",
    "Response",
    "SNAPSHOT_KIND",
    "SNAPSHOT_VERSION",
    "SolveRequest",
    "SolveResponse",
    "StatsRequest",
    "StatsResponse",
    "SweepRequest",
    "SweepResponse",
    "TRACE_HEADER_KIND",
    "TenantRecord",
    "TraceEvent",
    "check_trace_compatible",
    "event_to_request",
    "generate_churn_trace",
    "node_index",
    "read_snapshot",
    "read_trace",
    "replay_trace",
    "request_to_event",
    "response_payload",
    "resolve_loads",
    "trace_header",
    "write_snapshot",
    "write_trace",
]

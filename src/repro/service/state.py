"""Fleet state owned by the placement service.

The online model of Section 5.2 keeps exactly two pieces of mutable state:
the residual per-switch aggregation capacity ``a_t(s)`` and the set of
workloads currently holding switch slots.  :class:`FleetState` bundles both
behind churn operations — register, withdraw, drain — and keeps them
consistent: every mutation goes through the
:class:`~repro.online.capacity.CapacityTracker`, so the availability set
``Λ_t`` the service solves against is always the tracker's view.

The state layer is deliberately ignorant of *how* placements are computed;
it stores what the service decided (a :class:`TenantRecord` per admitted
workload) and enforces the capacity accounting.  Placement itself — and the
cache that makes it fast — lives in :mod:`repro.service.api`.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Mapping

from repro.core.tree import NodeId, TreeNetwork
from repro.exceptions import CapacityError, WorkloadError
from repro.online.capacity import CapacityTracker


@dataclass(frozen=True)
class TenantRecord:
    """One admitted workload and the placement it currently holds.

    Attributes
    ----------
    tenant_id:
        Caller-chosen identifier, unique among active tenants.
    loads:
        The workload's load function (switch -> number of servers).
    budget:
        The budget ``k`` the tenant was admitted with (as requested, before
        clamping to ``|Λ|``).
    exact_k:
        Budget semantics the placement was solved under.
    blue_nodes:
        The aggregation switches the tenant occupies.
    cost:
        Utilization complexity of the placement at admission time.
    predicted_cost:
        The gather-table optimum ``X_r(1, k)`` for the same solve.
    loads_fp:
        Digest of ``loads`` (:func:`repro.core.tree.fingerprint_loads`),
        computed once at admission and carried with the record so drain
        re-placement keys the cache without re-digesting the workload.
        ``None`` for records built by callers that never digested the
        loads (the service recomputes on demand).
    """

    tenant_id: str
    loads: dict[NodeId, int]
    budget: int
    exact_k: bool
    blue_nodes: frozenset[NodeId]
    cost: float
    predicted_cost: float
    loads_fp: str | None = None

    def state_dict(self) -> dict:
        """JSON-serializable view (switches stringified like trace events)."""
        return {
            "tenant_id": self.tenant_id,
            "loads": sorted(
                [str(node), int(load)] for node, load in self.loads.items()
            ),
            "budget": int(self.budget),
            "exact_k": bool(self.exact_k),
            "blue_nodes": sorted(str(node) for node in self.blue_nodes),
            "cost": float(self.cost),
            "predicted_cost": float(self.predicted_cost),
            "loads_fp": self.loads_fp,
        }

    @classmethod
    def from_state(
        cls, state: Mapping, node_index: Mapping[str, NodeId]
    ) -> "TenantRecord":
        """Rebuild a record from a :meth:`state_dict` payload.

        Raises
        ------
        WorkloadError
            If the payload references switches unknown to the network the
            index was built for.
        """

        def resolve(name: str) -> NodeId:
            try:
                return node_index[name]
            except KeyError as exc:
                raise WorkloadError(
                    f"tenant snapshot references unknown switch {name!r}"
                ) from exc

        return cls(
            tenant_id=state["tenant_id"],
            loads={resolve(name): int(load) for name, load in state["loads"]},
            budget=int(state["budget"]),
            exact_k=bool(state["exact_k"]),
            blue_nodes=frozenset(resolve(name) for name in state["blue_nodes"]),
            cost=float(state["cost"]),
            predicted_cost=float(state["predicted_cost"]),
            loads_fp=state.get("loads_fp"),
        )


class FleetState:
    """Mutable fleet: the shared network, residual capacity, active tenants.

    Parameters
    ----------
    tree:
        The shared network (topology and rates).  Per-tenant loads arrive
        with each request; the tree's own loads are ignored by the service.
    capacity:
        Per-switch aggregation capacity ``a(s)`` (scalar or mapping), as in
        :class:`~repro.online.capacity.CapacityTracker`.
    """

    def __init__(self, tree: TreeNetwork, capacity: int | Mapping[NodeId, int]) -> None:
        self._tree = tree
        self._tracker = CapacityTracker(tree, capacity)
        self._tenants: dict[str, TenantRecord] = {}
        self._admitted_total = 0
        self._released_total = 0

    # ------------------------------------------------------------------ #
    # views
    # ------------------------------------------------------------------ #

    @property
    def tree(self) -> TreeNetwork:
        """The shared network (topology and rates)."""
        return self._tree

    @property
    def tracker(self) -> CapacityTracker:
        """The capacity tracker (read it; mutate via the state methods)."""
        return self._tracker

    @property
    def num_tenants(self) -> int:
        """Number of currently active tenants."""
        return len(self._tenants)

    @property
    def admitted_total(self) -> int:
        """Tenants admitted over the service lifetime (including departed)."""
        return self._admitted_total

    @property
    def released_total(self) -> int:
        """Tenants released over the service lifetime."""
        return self._released_total

    def tenants(self) -> dict[str, TenantRecord]:
        """A copy of the active-tenant registry."""
        return dict(self._tenants)

    def tenant(self, tenant_id: str) -> TenantRecord:
        """The record of an active tenant.

        Raises
        ------
        WorkloadError
            If no active tenant has this id.
        """
        try:
            return self._tenants[tenant_id]
        except KeyError as exc:
            raise WorkloadError(f"no active tenant with id {tenant_id!r}") from exc

    def available(self) -> frozenset[NodeId]:
        """The availability set ``Λ_t`` for the next placement.

        The tracker maintains the set incrementally, so repeated calls
        between mutations return the same cached frozenset object.
        """
        return self._tracker.available()

    def availability_fingerprint(self) -> str:
        """Digest of ``Λ_t``, maintained incrementally by the tracker."""
        return self._tracker.availability_fingerprint()

    def tenants_using(self, switch: NodeId) -> tuple[TenantRecord, ...]:
        """Active tenants whose placement occupies ``switch`` (arrival order)."""
        return tuple(
            record for record in self._tenants.values() if switch in record.blue_nodes
        )

    # ------------------------------------------------------------------ #
    # churn
    # ------------------------------------------------------------------ #

    def register(self, record: TenantRecord, new_admission: bool = True) -> None:
        """Admit a tenant: charge its switches and store the record.

        ``new_admission=False`` is the re-registration path used when a
        drain displaces a tenant onto a new placement: the tenant never
        left, so the lifetime ``admitted_total`` counter must not grow
        (keeping ``num_tenants == admitted_total - released_total``).

        Raises
        ------
        WorkloadError
            If the tenant id is already active.
        CapacityError
            If any chosen switch has no residual capacity (the tracker's
            check; the service never produces such a placement because it
            solves against ``Λ_t``).
        """
        if record.tenant_id in self._tenants:
            raise WorkloadError(f"tenant id {record.tenant_id!r} is already active")
        self._tracker.consume(record.blue_nodes)
        self._tenants[record.tenant_id] = record
        if new_admission:
            self._admitted_total += 1

    def withdraw(self, tenant_id: str) -> tuple[TenantRecord, frozenset[NodeId]]:
        """Release a tenant: restore its switch slots and drop the record.

        Returns the record and the switches whose capacity was actually
        restored (the tracker's own answer — drained switches stay out).
        """
        record = self.tenant(tenant_id)
        restored = self._tracker.release(record.blue_nodes)
        del self._tenants[tenant_id]
        self._released_total += 1
        return record, restored

    def note_forced_release(self) -> None:
        """Count a tenant evicted outside :meth:`withdraw`.

        A drain tears displaced tenants out of the registry before the
        service re-places them; when a re-placement fails, the tenant has
        effectively departed without a ``Release`` request.  Counting that
        departure here keeps the lifetime invariant
        ``num_tenants == admitted_total - released_total`` intact.
        """
        self._released_total += 1

    def drain(self, switch: NodeId) -> tuple[TenantRecord, ...]:
        """Take ``switch`` out of service and evict the tenants using it.

        The displaced tenants' *other* switch slots are released too (their
        whole placement is torn down); the caller re-places each displaced
        workload against the new ``Λ_t`` and re-registers it.  Returns the
        displaced records in arrival order.

        Raises
        ------
        CapacityError
            If ``switch`` is not a switch of the network.
        """
        if not self._tree.is_switch(switch):
            raise CapacityError(f"{switch!r} is not a switch of this network")
        displaced = self.tenants_using(switch)
        self._tracker.drain(switch)
        # Two phases: all (raise-capable) releases first, then the registry
        # deletions — an exception mid-release cannot leave some tenants
        # deleted and others still charged (atomicity rule).
        for record in displaced:
            self._tracker.release(record.blue_nodes)
        for record in displaced:
            del self._tenants[record.tenant_id]
        return displaced

    # ------------------------------------------------------------------ #
    # serialization hooks (fleet snapshots, :mod:`repro.service.persistence`)
    # ------------------------------------------------------------------ #

    def state_dict(self) -> dict:
        """JSON-serializable view of the whole mutable fleet.

        Bundles the capacity tracker's state, the lifetime counters, and
        the active-tenant registry (in admission order).  Everything is
        stringified the way trace events are, so the payload is portable
        across processes and node-id types.
        """
        return {
            "capacity": self._tracker.state_dict(),
            "counters": {
                "admitted_total": int(self._admitted_total),
                "released_total": int(self._released_total),
            },
            "tenants": [record.state_dict() for record in self._tenants.values()],
        }

    def load_state(self, state: Mapping, node_index: Mapping[str, NodeId]) -> None:
        """Restore a :meth:`state_dict` payload onto this fleet.

        The tracker state (residuals, drained set, Λ digest) is restored
        first, then the tenant registry is rebuilt record by record — the
        records' capacity charges are already part of the restored
        residuals, so registration does **not** re-consume capacity.
        """
        self._tracker.load_state(state["capacity"], node_index)
        counters = state.get("counters", {})
        # Rebuild the registry into a local first: a malformed tenant
        # payload raises before the counters or the registry are touched,
        # so a failed restore does not half-update the fleet (atomicity
        # rule; the tracker restore above is itself all-or-nothing).
        tenants: dict[str, TenantRecord] = {}
        for payload in state.get("tenants", []):
            record = TenantRecord.from_state(payload, node_index)
            if record.tenant_id in tenants:
                raise WorkloadError(
                    f"fleet snapshot lists tenant {record.tenant_id!r} twice"
                )
            tenants[record.tenant_id] = record
        self._admitted_total = int(counters.get("admitted_total", 0))
        self._released_total = int(counters.get("released_total", 0))
        self._tenants = tenants

    def residual_summary(self) -> dict[str, int | float]:
        """Aggregate capacity counters for the ``Stats`` endpoint."""
        residual = self._tracker.residual_capacities()
        return {
            "active_tenants": len(self._tenants),
            "admitted_total": self._admitted_total,
            "released_total": self._released_total,
            "drained_switches": len(self._tracker.drained),
            "available_switches": sum(1 for value in residual.values() if value > 0),
            "residual_slots": sum(residual.values()),
            "capacity_utilization": self._tracker.utilization_of_capacity(),
        }

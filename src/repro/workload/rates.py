"""Link-rate schemes used by the paper's evaluation.

Section 5 evaluates three scaling laws for link rates on ``BT(n)``:

* **constant** — every link has rate 1,
* **linear** — the rate grows by 1 per level from the leaves (rate 1 at the
  leaf links) towards the destination,
* **exponential** — the rate doubles per level from the leaves (rate 1 at
  the leaf links) towards the destination.

The rate of a link is keyed by its child switch (the link connects the
switch to its parent), matching :class:`repro.core.tree.TreeNetwork`.
"""

from __future__ import annotations

from typing import Callable

from repro.core.tree import NodeId, TreeNetwork

#: Signature of a rate scheme: given the tree and a switch, return the rate
#: of the link between the switch and its parent.
RateScheme = Callable[[TreeNetwork, NodeId], float]


def constant_rate(tree: TreeNetwork, switch: NodeId) -> float:
    """All links carry rate 1 (the utilization equals the message complexity)."""
    return 1.0


def linear_rate(tree: TreeNetwork, switch: NodeId) -> float:
    """Rate grows by one per level above the leaves.

    The deepest links (those hanging off the deepest switches) have rate 1;
    a link one level higher has rate 2, and so on up to the ``(r, d)`` link.
    """
    return float(tree.height - tree.depth(switch) + 1)


def exponential_rate(tree: TreeNetwork, switch: NodeId) -> float:
    """Rate doubles per level above the leaves (1, 2, 4, ... towards ``d``)."""
    return float(2 ** (tree.height - tree.depth(switch)))


#: The three schemes of Figures 6 and 7, keyed by the names used in the text.
RATE_SCHEMES: dict[str, RateScheme] = {
    "constant": constant_rate,
    "linear": linear_rate,
    "exponential": exponential_rate,
}


def apply_rate_scheme(tree: TreeNetwork, scheme: RateScheme | str) -> TreeNetwork:
    """Return a copy of ``tree`` whose link rates follow the given scheme.

    ``scheme`` may be a callable or one of the names in :data:`RATE_SCHEMES`
    (``"constant"``, ``"linear"``, ``"exponential"``).
    """
    if isinstance(scheme, str):
        try:
            scheme_fn = RATE_SCHEMES[scheme]
        except KeyError as exc:
            raise KeyError(
                f"unknown rate scheme {scheme!r}; expected one of {sorted(RATE_SCHEMES)}"
            ) from exc
    else:
        scheme_fn = scheme
    rates = {switch: scheme_fn(tree, switch) for switch in tree.switches}
    return tree.with_rates(rates)

"""Workload generators: load distributions, link-rate schemes, workload sequences."""

from repro.workload.distributions import (
    LOAD_DISTRIBUTIONS,
    PowerLawLoadDistribution,
    UniformLoadDistribution,
    make_distribution,
    sample_leaf_loads,
    uniform_node_loads,
    with_sampled_leaf_loads,
)
from repro.workload.rates import (
    RATE_SCHEMES,
    apply_rate_scheme,
    constant_rate,
    exponential_rate,
    linear_rate,
)

__all__ = [
    "LOAD_DISTRIBUTIONS",
    "PowerLawLoadDistribution",
    "RATE_SCHEMES",
    "UniformLoadDistribution",
    "apply_rate_scheme",
    "constant_rate",
    "exponential_rate",
    "linear_rate",
    "make_distribution",
    "sample_leaf_loads",
    "uniform_node_loads",
    "with_sampled_leaf_loads",
]

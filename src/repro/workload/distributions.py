"""Server-load distributions used by the paper's evaluation.

Section 5 places non-zero load only at the leaf switches of ``BT(n)`` and
draws the per-leaf integer load from one of two distributions:

* **uniform** — integer load drawn uniformly at random from ``[4, 6]``
  (mean 5, variance 0.65625 as reported in the paper; the variance of a
  discrete uniform on {4, 5, 6} is 2/3 ≈ 0.667, and the paper's 0.656 is
  the empirical value of their samples — we expose the exact distribution),
* **power-law** — integer load drawn from a truncated discrete power law on
  ``[1, 63]`` whose exponent is calibrated so the mean is (approximately) 5,
  matching the paper's reported mean 5, variance ≈ 97 and range (1, 63).

Both distributions are exposed as small classes with an explicit
``numpy.random.Generator`` so experiments are reproducible, plus helpers to
attach sampled loads to a tree's leaves.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.tree import NodeId, TreeNetwork
from repro.exceptions import WorkloadError


def _as_generator(rng: np.random.Generator | int | None) -> np.random.Generator:
    """Normalize a seed / generator argument into a ``numpy`` Generator."""
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)


@dataclass
class UniformLoadDistribution:
    """Integer loads drawn uniformly at random from ``[low, high]`` (inclusive)."""

    low: int = 4
    high: int = 6

    def __post_init__(self) -> None:
        if self.low < 0 or self.high < self.low:
            raise WorkloadError(
                f"invalid uniform range [{self.low}, {self.high}]; need 0 <= low <= high"
            )

    @property
    def mean(self) -> float:
        """Expected load of a single switch."""
        return (self.low + self.high) / 2.0

    @property
    def variance(self) -> float:
        """Variance of the load of a single switch."""
        span = self.high - self.low + 1
        return (span * span - 1) / 12.0

    def sample(self, count: int, rng: np.random.Generator | int | None = None) -> np.ndarray:
        """Draw ``count`` independent loads."""
        generator = _as_generator(rng)
        return generator.integers(self.low, self.high + 1, size=count).astype(np.int64)


@dataclass
class PowerLawLoadDistribution:
    """Integer loads from a truncated discrete power law ``P(x) ∝ x^-alpha``.

    The default parameters (``alpha ≈ 1.6264``, support ``[1, 63]``) were
    calibrated numerically so the distribution's mean is 5, matching the
    statistics the paper reports for its power-law workload (mean 5,
    variance 97.1, min 1, max 63); the resulting variance (≈ 79) is in the
    same heavy-tailed regime.
    """

    alpha: float = 1.62643
    minimum: int = 1
    maximum: int = 63
    _support: np.ndarray = field(init=False, repr=False)
    _probabilities: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.minimum < 1 or self.maximum < self.minimum:
            raise WorkloadError(
                f"invalid power-law support [{self.minimum}, {self.maximum}]"
            )
        if self.alpha <= 0:
            raise WorkloadError(f"power-law exponent must be positive, got {self.alpha}")
        self._support = np.arange(self.minimum, self.maximum + 1, dtype=np.float64)
        weights = self._support**-self.alpha
        self._probabilities = weights / weights.sum()

    @property
    def mean(self) -> float:
        """Expected load of a single switch."""
        return float(np.dot(self._support, self._probabilities))

    @property
    def variance(self) -> float:
        """Variance of the load of a single switch."""
        mean = self.mean
        return float(np.dot((self._support - mean) ** 2, self._probabilities))

    def sample(self, count: int, rng: np.random.Generator | int | None = None) -> np.ndarray:
        """Draw ``count`` independent loads."""
        generator = _as_generator(rng)
        values = generator.choice(self._support, size=count, p=self._probabilities)
        return values.astype(np.int64)


#: The two workload distributions of the evaluation, keyed by name.
LOAD_DISTRIBUTIONS = {
    "uniform": UniformLoadDistribution,
    "power-law": PowerLawLoadDistribution,
}


def make_distribution(name: str, **kwargs):
    """Instantiate a load distribution by name (``"uniform"`` or ``"power-law"``)."""
    try:
        factory = LOAD_DISTRIBUTIONS[name]
    except KeyError as exc:
        raise WorkloadError(
            f"unknown load distribution {name!r}; expected one of {sorted(LOAD_DISTRIBUTIONS)}"
        ) from exc
    return factory(**kwargs)


def sample_leaf_loads(
    tree: TreeNetwork,
    distribution,
    rng: np.random.Generator | int | None = None,
) -> dict[NodeId, int]:
    """Sample a load for every leaf switch of ``tree``; internal switches get 0."""
    generator = _as_generator(rng)
    leaves = tree.leaves()
    values = distribution.sample(len(leaves), rng=generator)
    return {leaf: int(value) for leaf, value in zip(leaves, values)}


def with_sampled_leaf_loads(
    tree: TreeNetwork,
    distribution,
    rng: np.random.Generator | int | None = None,
) -> TreeNetwork:
    """Return a copy of ``tree`` whose leaves carry freshly sampled loads."""
    return tree.with_loads(sample_leaf_loads(tree, distribution, rng=rng))


def uniform_node_loads(tree: TreeNetwork, load: int = 1) -> dict[NodeId, int]:
    """Assign the same load to every switch (used for scale-free networks)."""
    if load < 0:
        raise WorkloadError(f"load must be non-negative, got {load}")
    return {switch: load for switch in tree.switches}

"""Invariant checkers for φ-BIC solutions and SOAR gather tables.

Every checker raises :class:`AssertionError` with a descriptive message on
violation and returns useful values on success, so they compose equally
well inside ``pytest`` tests and ad-hoc fuzzing scripts.  The one-stop
:func:`check_instance` runs a full differential verification of one
instance: solve with every engine, check per-solution invariants, compare
engines against each other, and (on small instances) against the
brute-force ground truth.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Mapping, Sequence

import numpy as np

from repro.core.bruteforce import solve_bruteforce
from repro.core.cost import (
    all_blue_cost,
    all_red_cost,
    utilization_cost,
    utilization_cost_barrier,
)
from repro.core.color import COLOR_KERNELS
from repro.core.engine import DEFAULT_ENGINE, ENGINES
from repro.core.gather import GatherResult
from repro.core.solver import Placement, Solver
from repro.core.tree import NodeId, TreeNetwork

#: Relative tolerance for cost comparisons.  With the dyadic rates of
#: :mod:`repro.testing.generators` every comparison is in fact exact; the
#: tolerance only matters for user-supplied instances with arbitrary rates.
REL_TOL: float = 1e-9
ABS_TOL: float = 1e-12


def costs_close(a: float, b: float) -> bool:
    """Equality of two utilization values, treating ``inf == inf`` as true."""
    if math.isinf(a) or math.isinf(b):
        return a == b
    return math.isclose(a, b, rel_tol=REL_TOL, abs_tol=ABS_TOL)


def assert_placement_feasible(
    tree: TreeNetwork,
    blue_nodes: Iterable[NodeId],
    budget: int,
) -> frozenset[NodeId]:
    """``blue ⊆ Λ`` and ``|blue| <= budget``; returns the frozen placement."""
    blue = frozenset(blue_nodes)
    stray = blue - tree.available
    assert not stray, f"blue nodes outside the availability set Λ: {sorted(map(repr, stray))}"
    assert len(blue) <= budget, f"placement uses {len(blue)} blue nodes, budget is {budget}"
    return blue


def assert_solution_consistent(tree: TreeNetwork, solution: Placement) -> None:
    """Per-solution invariants: feasibility and cost consistency.

    * the placement is feasible (``blue ⊆ Λ``, ``|blue| <= budget``),
    * ``predicted_cost`` (the DP optimum ``X_r(1, k)``) equals the cost
      recomputed from the Reduce message counts (Eq. 1),
    * the barrier re-formulation of Lemma 4.2 agrees with Eq. 1.
    """
    assert_placement_feasible(tree, solution.blue_nodes, solution.budget)
    recomputed = utilization_cost(tree, solution.blue_nodes)
    assert costs_close(recomputed, solution.cost), (
        f"solution.cost={solution.cost} but Eq. (1) recomputes {recomputed}"
    )
    assert costs_close(solution.predicted_cost, solution.cost), (
        f"gather predicted {solution.predicted_cost}, achieved {solution.cost} "
        f"(budget {solution.budget}, blue {sorted(map(repr, solution.blue_nodes))})"
    )
    barrier = utilization_cost_barrier(tree, solution.blue_nodes)
    assert costs_close(barrier, solution.cost), (
        f"barrier formulation gives {barrier}, Eq. (1) gives {solution.cost}"
    )


def assert_budget_monotone(costs: Mapping[int, float]) -> None:
    """Optimal cost is non-increasing in the budget (at-most-k semantics)."""
    ordered = sorted(costs)
    for low, high in zip(ordered, ordered[1:]):
        assert costs[high] <= costs[low] + ABS_TOL, (
            f"cost increased with budget: k={low} -> {costs[low]}, "
            f"k={high} -> {costs[high]}"
        )


def assert_cost_sandwich(tree: TreeNetwork, cost: float) -> None:
    """``all_red >= cost`` always, and ``cost >= all_blue`` on positive loads.

    The unrestricted all-blue value lower-bounds every placement only when
    every subtree emits at least one message, i.e. when every leaf carries
    positive load (a zero-load subtree sends nothing under an all-red
    colouring but one message under all-blue); the lower bound is skipped
    otherwise.
    """
    red = all_red_cost(tree)
    assert cost <= red + ABS_TOL, f"optimal cost {cost} exceeds the all-red cost {red}"
    if all(tree.load(leaf) >= 1 for leaf in tree.leaves()):
        blue = all_blue_cost(tree)
        assert cost >= blue - ABS_TOL, (
            f"optimal cost {cost} beats the all-blue lower bound {blue}"
        )


def assert_gather_consistent(tree: TreeNetwork, gathered: GatherResult) -> None:
    """Structural invariants of the gather tables themselves.

    For every node: ``X = min(Y_blue, Y_red)``, ``X`` is non-decreasing in
    the parameter ``l`` (longer paths cost more), and — under at-most-k
    semantics — non-increasing in the budget ``i``.
    """
    for node in tree.switches:
        tables = gathered.tables[node]
        stacked = np.minimum(tables.y_blue, tables.y_red)
        assert np.array_equal(tables.x, stacked), f"X != min(Y_blue, Y_red) at {node!r}"
        lower, upper = tables.x[:-1], tables.x[1:]
        both_finite = np.isfinite(lower) & np.isfinite(upper)
        assert np.all(upper[both_finite] - lower[both_finite] >= -ABS_TOL), (
            f"X not monotone in the parameter l at {node!r}"
        )
        # An infeasible entry (exactly-k) stays infeasible at larger l.
        assert np.all(np.isinf(upper[np.isinf(lower)])), (
            f"X regains feasibility at larger l at {node!r}"
        )
        if not gathered.exact_k:
            assert np.all(np.diff(tables.x, axis=1) <= ABS_TOL), (
                f"X not monotone in the budget at {node!r}"
            )


def assert_tables_equal(a: GatherResult, b: GatherResult) -> None:
    """Bitwise equality of two gather results (tables and breadcrumbs).

    The flat and reference engines evaluate the same floating-point
    operations in the same order, so their tables must match exactly — not
    just within a tolerance.
    """
    assert a.root == b.root and a.budget == b.budget and a.exact_k == b.exact_k
    assert set(a.tables) == set(b.tables)
    for node, left in a.tables.items():
        right = b.tables[node]
        for attribute in ("x", "y_blue", "y_red", "choice"):
            assert np.array_equal(getattr(left, attribute), getattr(right, attribute)), (
                f"{attribute} tables differ at node {node!r}"
            )
        assert len(left.splits_red) == len(right.splits_red)
        for stage, (sl, sr) in enumerate(zip(left.splits_red, right.splits_red)):
            assert np.array_equal(sl, sr), f"red split {stage} differs at {node!r}"
        for stage, (sl, sr) in enumerate(zip(left.splits_blue, right.splits_blue)):
            assert np.array_equal(sl, sr), f"blue split {stage} differs at {node!r}"


def bruteforce_subset_count(tree: TreeNetwork, budget: int, exact_k: bool = False) -> int:
    """Number of subsets :func:`solve_bruteforce` would enumerate."""
    available = len(tree.available)
    effective = min(int(budget), available)
    sizes = [effective] if exact_k else range(effective + 1)
    return sum(math.comb(available, size) for size in sizes)


def check_instance(
    tree: TreeNetwork,
    budget: int,
    exact_k: bool = False,
    engines: Sequence[str] = tuple(ENGINES),
    colors: Sequence[str] = tuple(COLOR_KERNELS),
    bruteforce: bool | None = None,
    bruteforce_limit: int = 100_000,
) -> dict[str, Placement]:
    """Full differential verification of one φ-BIC instance.

    Solves with every requested engine, asserts the per-solution invariants
    (:func:`assert_solution_consistent`, :func:`assert_cost_sandwich` for
    at-most-k), asserts every colour kernel traces the *identical* blue set
    out of each engine's tables, asserts all engines report the identical
    cost and placement, and — when ``bruteforce`` is true, or ``None`` and
    the instance is small enough — certifies optimality against
    :func:`solve_bruteforce`.

    Returns the per-engine solutions for further inspection.
    """
    solutions: dict[str, Placement] = {}
    for engine in engines:
        table = Solver(engine=engine, exact_k=exact_k).gather(tree, budget)
        solution = table.place()
        assert_solution_consistent(tree, solution)
        if not exact_k:
            assert_cost_sandwich(tree, solution.cost)
        for color in colors:
            if color == table.color:
                continue
            traced = table.place(color=color)
            assert traced.blue_nodes == solution.blue_nodes, (
                f"colour kernel {color!r} traced "
                f"{sorted(map(repr, traced.blue_nodes))} out of {engine!r} "
                f"tables, {table.color!r} traced "
                f"{sorted(map(repr, solution.blue_nodes))}"
            )
        solutions[engine] = solution

    baseline = solutions[engines[0]]
    for engine, solution in solutions.items():
        assert solution.cost == baseline.cost, (
            f"engine {engine!r} cost {solution.cost} != "
            f"{engines[0]!r} cost {baseline.cost}"
        )
        assert solution.blue_nodes == baseline.blue_nodes, (
            f"engine {engine!r} placement differs from {engines[0]!r}: "
            f"{sorted(map(repr, solution.blue_nodes))} vs "
            f"{sorted(map(repr, baseline.blue_nodes))}"
        )

    if bruteforce is None:
        bruteforce = bruteforce_subset_count(tree, budget, exact_k) <= bruteforce_limit
    if bruteforce:
        truth = solve_bruteforce(tree, budget, exact_k=exact_k)
        assert costs_close(truth.cost, baseline.cost), (
            f"SOAR found {baseline.cost}, brute force found {truth.cost} "
            f"(budget {budget}, exact_k={exact_k})"
        )
    return solutions


def check_budget_sweep(
    tree: TreeNetwork,
    max_budget: int,
    engine: str = DEFAULT_ENGINE,
) -> dict[int, float]:
    """Solve every budget ``0 .. max_budget`` and assert monotonicity.

    Uses at-most-k semantics (monotonicity does not hold for exactly-k).
    Returns the budget -> cost curve.
    """
    solutions = Solver(engine=engine).sweep(tree, range(max_budget + 1))
    costs = {budget: solution.cost for budget, solution in solutions.items()}
    assert_budget_monotone(costs)
    return costs


__all__ = [
    "ABS_TOL",
    "REL_TOL",
    "assert_budget_monotone",
    "assert_cost_sandwich",
    "assert_gather_consistent",
    "assert_placement_feasible",
    "assert_solution_consistent",
    "assert_tables_equal",
    "bruteforce_subset_count",
    "check_budget_sweep",
    "check_instance",
    "costs_close",
]

"""Seeded random φ-BIC instance generators.

The differential and invariant test-suites (and downstream users fuzzing
their own extensions) need a steady stream of adversarial problem
instances: odd tree shapes, zero and heavily skewed loads, restricted
availability sets, degenerate budgets.  This module generates them from an
explicit :class:`numpy.random.Generator` so every instance is reproducible
from a seed.

Shapes
------
``uniform``
    Random recursive tree: switch ``i`` attaches to a uniformly random
    earlier switch.  Generates every labelled rooted tree shape with
    positive probability.
``kary``
    Complete k-ary tree (random arity 2-4) filled level by level.
``scale_free``
    Preferential attachment: parents are chosen with probability
    proportional to ``degree + 1`` (the RPA trees of Appendix B).
``path`` / ``star``
    Degenerate extremes: maximum depth, maximum fan-out.
``binary``
    Complete binary tree, the paper's ``BT(n)`` shape.

Load profiles
-------------
``zero`` (all loads 0), ``positive`` (uniform ``1 .. max_load``),
``skewed`` (bounded Zipf, mimicking the paper's power-law servers), and
``mixed`` (uniform ``0 .. max_load``, zeros included).

Rates are drawn from ``rate_choices``; the default choices are powers of
two, so every path cost is an exact dyadic float and differential tests can
assert bit-identical costs across engines.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence

import numpy as np

from repro.core.tree import NodeId, TreeNetwork

#: Tree shapes :func:`random_instance` can draw from.
SHAPES: tuple[str, ...] = ("uniform", "kary", "scale_free", "path", "star", "binary")
#: Load profiles :func:`random_instance` can draw from.
LOAD_PROFILES: tuple[str, ...] = ("zero", "positive", "skewed", "mixed")
#: Power-of-two rates: exact in binary floating point, so engine
#: comparisons are free of rounding noise.
DYADIC_RATES: tuple[float, ...] = (0.125, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0)


def random_parents(
    rng: np.random.Generator,
    num_switches: int,
    shape: str = "uniform",
) -> dict[NodeId, NodeId]:
    """Generate a parent map over switches ``0 .. n-1`` with the given shape.

    Switch 0 is always the root (child of the destination ``"d"``).
    """
    if num_switches < 1:
        raise ValueError(f"need at least one switch, got {num_switches}")
    parents: dict[NodeId, NodeId] = {0: "d"}
    if shape == "uniform":
        for node in range(1, num_switches):
            parents[node] = int(rng.integers(0, node))
    elif shape == "kary":
        arity = int(rng.integers(2, 5))
        for node in range(1, num_switches):
            parents[node] = (node - 1) // arity
    elif shape == "scale_free":
        # degree + 1 weights, as in repro.topology.scale_free.
        weights = np.ones(num_switches, dtype=np.float64)
        for node in range(1, num_switches):
            probabilities = weights[:node] / weights[:node].sum()
            parent = int(rng.choice(node, p=probabilities))
            parents[node] = parent
            weights[parent] += 1.0
            weights[node] += 1.0
    elif shape == "path":
        for node in range(1, num_switches):
            parents[node] = node - 1
    elif shape == "star":
        for node in range(1, num_switches):
            parents[node] = 0
    elif shape == "binary":
        for node in range(1, num_switches):
            parents[node] = (node - 1) // 2
    else:
        raise ValueError(f"unknown shape {shape!r}; expected one of {SHAPES}")
    return parents


def random_loads(
    rng: np.random.Generator,
    switches: Sequence[NodeId],
    profile: str = "mixed",
    max_load: int = 6,
) -> dict[NodeId, int]:
    """Draw a load for every switch according to the named profile."""
    if profile == "zero":
        return {node: 0 for node in switches}
    if profile == "positive":
        return {node: int(rng.integers(1, max_load + 1)) for node in switches}
    if profile == "skewed":
        # Bounded Zipf: most switches light, a few very heavy (the paper's
        # power-law server placement at small scale).
        return {node: int(min(rng.zipf(1.8), 8 * max_load)) for node in switches}
    if profile == "mixed":
        return {node: int(rng.integers(0, max_load + 1)) for node in switches}
    raise ValueError(f"unknown load profile {profile!r}; expected one of {LOAD_PROFILES}")


def random_availability(
    rng: np.random.Generator,
    switches: Sequence[NodeId],
    probability: float = 0.6,
) -> list[NodeId]:
    """A random Λ: every switch independently available with ``probability``.

    The result may be empty — a legal (if extreme) φ-BIC instance where the
    only feasible placement is all-red.
    """
    return [node for node in switches if rng.random() < probability]


def random_instance(
    rng: np.random.Generator,
    shape: str | None = None,
    num_switches: int | None = None,
    max_switches: int = 12,
    load_profile: str | None = None,
    max_load: int = 6,
    rate_choices: Sequence[float] = DYADIC_RATES,
    restrict_availability: bool | None = None,
) -> TreeNetwork:
    """Draw one random φ-BIC instance.

    ``None`` parameters are themselves randomized: the shape and load
    profile are drawn uniformly, the size uniformly from
    ``1 .. max_switches``, and Λ is restricted to a random subset with
    probability 0.4 (full availability otherwise).
    """
    if shape is None:
        shape = str(rng.choice(SHAPES))
    if num_switches is None:
        num_switches = int(rng.integers(1, max_switches + 1))
    if load_profile is None:
        load_profile = str(rng.choice(LOAD_PROFILES))
    if restrict_availability is None:
        restrict_availability = bool(rng.random() < 0.4)

    parents = random_parents(rng, num_switches, shape=shape)
    switches = list(parents)
    rates = {node: float(rng.choice(rate_choices)) for node in switches}
    loads = random_loads(rng, switches, profile=load_profile, max_load=max_load)
    available = random_availability(rng, switches) if restrict_availability else None
    return TreeNetwork(parents, rates=rates, loads=loads, available=available)


def random_budget(rng: np.random.Generator, tree: TreeNetwork) -> int:
    """A budget between 0 and slightly above ``|Λ|`` (exercising clamping)."""
    return int(rng.integers(0, len(tree.available) + 2))


def instance_stream(
    seed: int,
    count: int,
    **kwargs,
) -> Iterator[tuple[TreeNetwork, int]]:
    """Yield ``count`` seeded ``(instance, budget)`` pairs.

    All keyword arguments are forwarded to :func:`random_instance`.  The
    stream is fully determined by ``seed``, so a failing instance can be
    reproduced from its position alone.
    """
    rng = np.random.default_rng(seed)
    for _ in range(count):
        tree = random_instance(rng, **kwargs)
        yield tree, random_budget(rng, tree)

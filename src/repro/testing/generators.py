"""Seeded random φ-BIC instance generators.

The differential and invariant test-suites (and downstream users fuzzing
their own extensions) need a steady stream of adversarial problem
instances: odd tree shapes, zero and heavily skewed loads, restricted
availability sets, degenerate budgets.  This module generates them from an
explicit :class:`numpy.random.Generator` so every instance is reproducible
from a seed.

Shapes
------
``uniform``
    Random recursive tree: switch ``i`` attaches to a uniformly random
    earlier switch.  Generates every labelled rooted tree shape with
    positive probability.
``kary``
    Complete k-ary tree (random arity 2-4) filled level by level.
``scale_free``
    Preferential attachment: parents are chosen with probability
    proportional to ``degree + 1`` (the RPA trees of Appendix B).
``path`` / ``star``
    Degenerate extremes: maximum depth, maximum fan-out.
``binary``
    Complete binary tree, the paper's ``BT(n)`` shape.

Load profiles
-------------
``zero`` (all loads 0), ``positive`` (uniform ``1 .. max_load``),
``skewed`` (bounded Zipf, mimicking the paper's power-law servers), and
``mixed`` (uniform ``0 .. max_load``, zeros included).

Rates are drawn from ``rate_choices``; the default choices are powers of
two, so every path cost is an exact dyadic float and differential tests can
assert bit-identical costs across engines.

Rate profiles
-------------
The argmin tie-breaking of the gather convolution (ascending-``j``,
strict-improvement-only updates) is easiest to get wrong exactly when many
candidate placements cost the same — which the dyadic default makes rare.
The *near-tie* rate profiles manufacture that pressure deliberately:

``dyadic``
    The default independent draw from ``rate_choices``.
``constant``
    One shared rate for every link: symmetric subtrees become *exactly*
    tied, so every argmin is a tie-break.
``near_tie``
    A shared base rate, each link perturbed by a factor ``1 ± 2^-8`` (or
    left exact) — candidates separated by tiny but strictly-ordered
    margins, punishing any ``<=`` vs ``<`` confusion.
``sibling_tie``
    Children of the same parent share one random dyadic rate: same-parent
    subtrees tie exactly while cross-level costs still vary.

Load-tie profiles
-----------------
Rates are only half of the tie surface: placements also tie when the
*loads* are symmetric.  :func:`random_tie_loads` mirrors the rate profiles
on the load function — ``constant`` (one shared load), ``near_tie``
(a shared base ± 1, the tightest possible integer near-tie), and
``sibling_tie`` (children of the same parent share a load) — so whole
sibling subtrees become exactly or almost cost-identical and every argmin
of the gather convolution and every colour decision is a tie-break.

Availability patterns
---------------------
:func:`patterned_availability` restricts Λ so that it *straddles* tied
families instead of sampling switches independently: ``sibling_split``
keeps a nonempty proper subset of every sibling group (some members of a
tied family are placeable, others are not, so the argmin must discriminate
between candidates a symmetric instance makes equal), and ``level_stripe``
admits alternating tree levels only (tied placements across adjacent
levels resolve to the admissible one).
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence

import numpy as np

from repro.core.tree import NodeId, TreeNetwork

#: Tree shapes :func:`random_instance` can draw from.
SHAPES: tuple[str, ...] = ("uniform", "kary", "scale_free", "path", "star", "binary")
#: Load profiles :func:`random_instance` can draw from.
LOAD_PROFILES: tuple[str, ...] = ("zero", "positive", "skewed", "mixed")
#: Power-of-two rates: exact in binary floating point, so engine
#: comparisons are free of rounding noise.
DYADIC_RATES: tuple[float, ...] = (0.125, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0)
#: Rate profiles :func:`random_rates` can draw from.
RATE_PROFILES: tuple[str, ...] = ("dyadic", "constant", "near_tie", "sibling_tie")
#: Relative perturbation of the ``near_tie`` profile (exact in binary FP).
NEAR_TIE_EPSILON: float = 2.0**-8
#: Load-tie profiles :func:`random_tie_loads` can draw from.
LOAD_TIE_PROFILES: tuple[str, ...] = ("constant", "near_tie", "sibling_tie")
#: Availability patterns :func:`patterned_availability` can draw from.
AVAILABILITY_PATTERNS: tuple[str, ...] = ("independent", "sibling_split", "level_stripe")


def random_parents(
    rng: np.random.Generator,
    num_switches: int,
    shape: str = "uniform",
) -> dict[NodeId, NodeId]:
    """Generate a parent map over switches ``0 .. n-1`` with the given shape.

    Switch 0 is always the root (child of the destination ``"d"``).
    """
    if num_switches < 1:
        raise ValueError(f"need at least one switch, got {num_switches}")
    parents: dict[NodeId, NodeId] = {0: "d"}
    if shape == "uniform":
        for node in range(1, num_switches):
            parents[node] = int(rng.integers(0, node))
    elif shape == "kary":
        arity = int(rng.integers(2, 5))
        for node in range(1, num_switches):
            parents[node] = (node - 1) // arity
    elif shape == "scale_free":
        # degree + 1 weights, as in repro.topology.scale_free.
        weights = np.ones(num_switches, dtype=np.float64)
        for node in range(1, num_switches):
            probabilities = weights[:node] / weights[:node].sum()
            parent = int(rng.choice(node, p=probabilities))
            parents[node] = parent
            weights[parent] += 1.0
            weights[node] += 1.0
    elif shape == "path":
        for node in range(1, num_switches):
            parents[node] = node - 1
    elif shape == "star":
        for node in range(1, num_switches):
            parents[node] = 0
    elif shape == "binary":
        for node in range(1, num_switches):
            parents[node] = (node - 1) // 2
    else:
        raise ValueError(f"unknown shape {shape!r}; expected one of {SHAPES}")
    return parents


def random_rates(
    rng: np.random.Generator,
    parents: dict[NodeId, NodeId],
    profile: str = "dyadic",
    rate_choices: Sequence[float] = DYADIC_RATES,
) -> dict[NodeId, float]:
    """Draw a rate for every link according to the named profile.

    ``parents`` is the parent map the rates belong to (the tie profiles
    need the tree structure: ``sibling_tie`` groups links by their parent
    endpoint).  See the module docstring for the profile semantics.
    """
    switches = list(parents)
    if profile == "dyadic":
        return {node: float(rng.choice(rate_choices)) for node in switches}
    if profile == "constant":
        base = float(rng.choice(rate_choices))
        return {node: base for node in switches}
    if profile == "near_tie":
        base = float(rng.choice(rate_choices))
        # delta in {-1, 0, +1}: perturbed links differ from the base by a
        # factor (1 ± 2^-8) — an exact float, so the near-ties are strictly
        # ordered rather than rounding back onto an exact tie.
        deltas = rng.integers(-1, 2, size=len(switches))
        return {
            node: base * (1.0 + float(delta) * NEAR_TIE_EPSILON)
            for node, delta in zip(switches, deltas)
        }
    if profile == "sibling_tie":
        group_rates: dict[NodeId, float] = {}
        rates: dict[NodeId, float] = {}
        for node in switches:
            parent = parents[node]
            if parent not in group_rates:
                group_rates[parent] = float(rng.choice(rate_choices))
            rates[node] = group_rates[parent]
        return rates
    raise ValueError(f"unknown rate profile {profile!r}; expected one of {RATE_PROFILES}")


def random_loads(
    rng: np.random.Generator,
    switches: Sequence[NodeId],
    profile: str = "mixed",
    max_load: int = 6,
) -> dict[NodeId, int]:
    """Draw a load for every switch according to the named profile."""
    if profile == "zero":
        return {node: 0 for node in switches}
    if profile == "positive":
        return {node: int(rng.integers(1, max_load + 1)) for node in switches}
    if profile == "skewed":
        # Bounded Zipf: most switches light, a few very heavy (the paper's
        # power-law server placement at small scale).
        return {node: int(min(rng.zipf(1.8), 8 * max_load)) for node in switches}
    if profile == "mixed":
        return {node: int(rng.integers(0, max_load + 1)) for node in switches}
    raise ValueError(f"unknown load profile {profile!r}; expected one of {LOAD_PROFILES}")


def random_availability(
    rng: np.random.Generator,
    switches: Sequence[NodeId],
    probability: float = 0.6,
) -> list[NodeId]:
    """A random Λ: every switch independently available with ``probability``.

    The result may be empty — a legal (if extreme) φ-BIC instance where the
    only feasible placement is all-red.
    """
    return [node for node in switches if rng.random() < probability]


def random_tie_loads(
    rng: np.random.Generator,
    parents: dict[NodeId, NodeId],
    profile: str = "constant",
    max_load: int = 6,
) -> dict[NodeId, int]:
    """Draw a *tie-inducing* load for every switch (see the module docstring).

    ``parents`` is the parent map the loads belong to (``sibling_tie``
    groups switches by their parent).  ``constant`` makes every placement
    family with symmetric rates cost-identical; ``near_tie`` separates them
    by the smallest integral margin possible (±1 around a shared base);
    ``sibling_tie`` ties exactly within sibling groups while cross-level
    loads still vary.
    """
    switches = list(parents)
    if profile == "constant":
        base = int(rng.integers(1, max_load + 1))
        return {node: base for node in switches}
    if profile == "near_tie":
        base = int(rng.integers(1, max_load + 1))
        deltas = rng.integers(-1, 2, size=len(switches))
        return {
            node: max(0, base + int(delta)) for node, delta in zip(switches, deltas)
        }
    if profile == "sibling_tie":
        group_loads: dict[NodeId, int] = {}
        loads: dict[NodeId, int] = {}
        for node in switches:
            parent = parents[node]
            if parent not in group_loads:
                group_loads[parent] = int(rng.integers(0, max_load + 1))
            loads[node] = group_loads[parent]
        return loads
    raise ValueError(
        f"unknown load-tie profile {profile!r}; expected one of {LOAD_TIE_PROFILES}"
    )


def patterned_availability(
    rng: np.random.Generator,
    tree: TreeNetwork,
    pattern: str = "independent",
    probability: float = 0.6,
) -> list[NodeId]:
    """A Λ restriction that straddles tied placement families.

    ``independent`` is the plain Bernoulli draw of
    :func:`random_availability`.  ``sibling_split`` keeps, for every
    sibling group of two or more, a uniformly random *nonempty proper*
    subset (singletons stay with probability 1/2), so a symmetric instance
    always has tied candidates on both sides of the Λ boundary.
    ``level_stripe`` admits only the switches of every other tree level
    (random parity), pitting tied same-subtree placements at adjacent
    depths against the restriction.  Either pattern may produce an empty
    Λ on degenerate trees — a legal all-red instance.
    """
    if pattern == "independent":
        return random_availability(rng, tree.switches, probability=probability)
    if pattern == "sibling_split":
        chosen: list[NodeId] = []
        for parent in (tree.destination, *tree.switches):
            group = tree.children(parent)
            if not group:
                continue
            if len(group) == 1:
                if rng.random() < 0.5:
                    chosen.append(group[0])
                continue
            count = int(rng.integers(1, len(group)))
            picks = rng.choice(len(group), size=count, replace=False)
            chosen.extend(group[int(i)] for i in picks)
        return chosen
    if pattern == "level_stripe":
        parity = int(rng.integers(0, 2))
        return [node for node in tree.switches if tree.depth(node) % 2 == parity]
    raise ValueError(
        f"unknown availability pattern {pattern!r}; "
        f"expected one of {AVAILABILITY_PATTERNS}"
    )


def random_instance(
    rng: np.random.Generator,
    shape: str | None = None,
    num_switches: int | None = None,
    max_switches: int = 12,
    load_profile: str | None = None,
    max_load: int = 6,
    rate_choices: Sequence[float] = DYADIC_RATES,
    rate_profile: str = "dyadic",
    restrict_availability: bool | None = None,
) -> TreeNetwork:
    """Draw one random φ-BIC instance.

    ``None`` parameters are themselves randomized: the shape and load
    profile are drawn uniformly, the size uniformly from
    ``1 .. max_switches``, and Λ is restricted to a random subset with
    probability 0.4 (full availability otherwise).  ``rate_profile``
    defaults to the historical independent-dyadic draw so existing seeded
    streams are unchanged; pass one of the tie profiles (see
    :data:`RATE_PROFILES`) for adversarial near-tie instances.
    """
    if shape is None:
        shape = str(rng.choice(SHAPES))
    if num_switches is None:
        num_switches = int(rng.integers(1, max_switches + 1))
    if load_profile is None:
        load_profile = str(rng.choice(LOAD_PROFILES))
    if restrict_availability is None:
        restrict_availability = bool(rng.random() < 0.4)

    parents = random_parents(rng, num_switches, shape=shape)
    switches = list(parents)
    rates = random_rates(rng, parents, profile=rate_profile, rate_choices=rate_choices)
    loads = random_loads(rng, switches, profile=load_profile, max_load=max_load)
    available = random_availability(rng, switches) if restrict_availability else None
    return TreeNetwork(parents, rates=rates, loads=loads, available=available)


def random_budget(rng: np.random.Generator, tree: TreeNetwork) -> int:
    """A budget between 0 and slightly above ``|Λ|`` (exercising clamping)."""
    return int(rng.integers(0, len(tree.available) + 2))


def instance_stream(
    seed: int,
    count: int,
    **kwargs,
) -> Iterator[tuple[TreeNetwork, int]]:
    """Yield ``count`` seeded ``(instance, budget)`` pairs.

    All keyword arguments are forwarded to :func:`random_instance`.  The
    stream is fully determined by ``seed``, so a failing instance can be
    reproduced from its position alone.
    """
    rng = np.random.default_rng(seed)
    for _ in range(count):
        tree = random_instance(rng, **kwargs)
        yield tree, random_budget(rng, tree)


def near_tie_stream(
    seed: int,
    count: int,
    equalize_loads_probability: float = 0.5,
    availability_pattern_probability: float = 0.5,
    **kwargs,
) -> Iterator[tuple[TreeNetwork, int]]:
    """Yield ``count`` seeded adversarial near-tie ``(instance, budget)`` pairs.

    Cycles through the tie-inducing rate profiles (``constant`` /
    ``near_tie`` / ``sibling_tie``) and, with
    ``equalize_loads_probability``, additionally replaces the loads with a
    cycling load-tie profile (:func:`random_tie_loads`) — symmetric rates
    *and* symmetric loads make whole families of placements
    cost-identical, so every argmin in the gather convolution and every
    colour decision is a tie-break.  With
    ``availability_pattern_probability`` the instance's Λ is further
    restricted by a cycling straddling pattern
    (:func:`patterned_availability`), forcing the trace to discriminate
    between tied candidates on opposite sides of the Λ boundary.  Keyword
    arguments are forwarded to :func:`random_instance`.
    """
    rng = np.random.default_rng(seed)
    tie_profiles = tuple(profile for profile in RATE_PROFILES if profile != "dyadic")
    straddling = tuple(
        pattern for pattern in AVAILABILITY_PATTERNS if pattern != "independent"
    )
    for index in range(count):
        profile = tie_profiles[index % len(tie_profiles)]
        tree = random_instance(rng, rate_profile=profile, **kwargs)
        if rng.random() < equalize_loads_probability:
            parents = {switch: tree.parent(switch) for switch in tree.switches}
            tree = tree.with_loads(
                random_tie_loads(
                    rng,
                    parents,
                    profile=LOAD_TIE_PROFILES[index % len(LOAD_TIE_PROFILES)],
                )
            )
        if rng.random() < availability_pattern_probability:
            pattern = straddling[index % len(straddling)]
            tree = tree.with_available(patterned_availability(rng, tree, pattern))
        yield tree, random_budget(rng, tree)

"""Randomized testing toolkit: φ-BIC instance generators and invariant checkers.

This package is public API.  The repo's own test-suite drives its
differential verification of the gather engines through it
(``tests/test_engine_differential.py``, ``tests/test_invariants.py``), and
downstream users extending the solver are encouraged to fuzz their changes
the same way::

    from repro.testing import check_instance, instance_stream

    for tree, budget in instance_stream(seed=42, count=500):
        check_instance(tree, budget)               # flat == reference == brute force
        check_instance(tree, budget, exact_k=True)

See :mod:`repro.testing.generators` for the instance space (tree shapes,
load profiles, availability restriction) and
:mod:`repro.testing.invariants` for the individual checkers.
"""

from repro.testing.generators import (
    AVAILABILITY_PATTERNS,
    DYADIC_RATES,
    LOAD_PROFILES,
    LOAD_TIE_PROFILES,
    NEAR_TIE_EPSILON,
    RATE_PROFILES,
    SHAPES,
    instance_stream,
    near_tie_stream,
    patterned_availability,
    random_availability,
    random_budget,
    random_instance,
    random_loads,
    random_parents,
    random_rates,
    random_tie_loads,
)
from repro.testing.invariants import (
    assert_budget_monotone,
    assert_cost_sandwich,
    assert_gather_consistent,
    assert_placement_feasible,
    assert_solution_consistent,
    assert_tables_equal,
    bruteforce_subset_count,
    check_budget_sweep,
    check_instance,
    costs_close,
)

__all__ = [
    "AVAILABILITY_PATTERNS",
    "DYADIC_RATES",
    "LOAD_PROFILES",
    "LOAD_TIE_PROFILES",
    "NEAR_TIE_EPSILON",
    "RATE_PROFILES",
    "SHAPES",
    "assert_budget_monotone",
    "assert_cost_sandwich",
    "assert_gather_consistent",
    "assert_placement_feasible",
    "assert_solution_consistent",
    "assert_tables_equal",
    "bruteforce_subset_count",
    "check_budget_sweep",
    "check_instance",
    "costs_close",
    "instance_stream",
    "near_tie_stream",
    "patterned_availability",
    "random_availability",
    "random_budget",
    "random_instance",
    "random_loads",
    "random_parents",
    "random_rates",
    "random_tie_loads",
]

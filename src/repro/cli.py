"""Command-line interface: regenerate any figure of the paper from a terminal.

Examples
--------
Regenerate the motivating example (Figures 2 and 3)::

    soar-repro fig2
    soar-repro fig3

Regenerate Figure 6 at a reduced scale and write the series as CSV::

    soar-repro fig6 --quick --csv /tmp/fig6.csv

Run everything the paper reports (this takes a while at full scale)::

    soar-repro all --quick

Drive the multi-tenant placement service with a churn trace (generated on
the fly, or recorded/replayed as JSON-lines), reporting throughput, latency
and cache hit-rate::

    soar-repro serve-replay --requests 200 --network-size 1024
    soar-repro serve-replay --record /tmp/churn.jsonl
    soar-repro serve-replay --trace /tmp/churn.jsonl --verify

Drive it concurrently, journal the churn, snapshot the final fleet, and
later resume from the snapshot (the journal tail is replayed on restore)::

    soar-repro serve-replay --workers 4 --verify
    soar-repro serve-replay --workers 4 --mode process
    soar-repro serve-replay --journal /tmp/fleet.jsonl --snapshot /tmp/fleet.json
    soar-repro serve-replay --restore /tmp/fleet.json --journal /tmp/fleet.jsonl --requests 50

Run the codebase-specific static-analysis pass (lock discipline,
determinism, registry coherence, layering, FFI contracts, plus the
interprocedural lock-order / blocking-under-lock / atomicity families —
see ``repro.analysis``; CI runs it with ``--strict`` and uploads the
lock-acquisition graph)::

    soar-repro lint
    soar-repro lint --strict --timing
    soar-repro lint --list-rules
    soar-repro lint --jobs 4
    soar-repro lint --format github
    soar-repro lint --format sarif > lint.sarif
    soar-repro lint --lock-graph-dot lock_order.dot
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from repro.core.color import COLOR_KERNELS, DEFAULT_COLOR, REFERENCE_COLOR
from repro.core.cost import COST_KERNELS, DEFAULT_COST, REFERENCE_COST
from repro.core.engine import DEFAULT_ENGINE, ENGINES, REFERENCE_ENGINE
from repro.experiments import (
    PAPER_CONFIG,
    QUICK_CONFIG,
    run_budget_sweep,
    run_color_comparison,
    run_cost_comparison,
    run_engine_comparison,
    run_fig10_required_fraction,
    run_fig10_utilization,
    run_fig11_example,
    run_fig11_scaling,
    run_fig6,
    run_fig7_capacity_sweep,
    run_fig7_workload_sweep,
    run_fig8,
    run_fig9,
    run_strategy_comparison,
)
from repro.experiments.harness import ExperimentConfig
from repro.utils.tables import render_table, write_csv


def _config(args: argparse.Namespace) -> ExperimentConfig:
    """Build the experiment configuration from the parsed CLI options."""
    base = QUICK_CONFIG if args.quick else PAPER_CONFIG
    return ExperimentConfig(
        network_size=args.network_size or base.network_size,
        repetitions=args.repetitions or base.repetitions,
        seed=args.seed,
        engine=args.engine,
        color=args.color,
        cost=args.cost,
    )


def _emit(rows: list[dict], args: argparse.Namespace, title: str) -> None:
    """Print a text table and optionally write the rows as CSV."""
    print(render_table(rows, title=title))
    if args.csv:
        path = write_csv(rows, args.csv)
        print(f"\nwrote {len(rows)} rows to {path}")


# --------------------------------------------------------------------------- #
# sub-command implementations
# --------------------------------------------------------------------------- #


def _cmd_fig2(args: argparse.Namespace) -> list[dict]:
    return run_strategy_comparison()


def _cmd_fig3(args: argparse.Namespace) -> list[dict]:
    return run_budget_sweep()


def _cmd_fig6(args: argparse.Namespace) -> list[dict]:
    return run_fig6(config=_config(args))


def _cmd_fig7(args: argparse.Namespace) -> list[dict]:
    config = _config(args)
    rows = run_fig7_workload_sweep(config=config)
    rows.extend(run_fig7_capacity_sweep(config=config))
    return rows


def _cmd_fig8(args: argparse.Namespace) -> list[dict]:
    return run_fig8(config=_config(args))


def _cmd_fig9(args: argparse.Namespace) -> list[dict]:
    config = _config(args)
    if args.quick:
        return run_fig9(sizes=(64, 128), budgets=(4, 8, 16), config=config)
    return run_fig9(config=config)


def _cmd_fig10(args: argparse.Namespace) -> list[dict]:
    config = _config(args)
    sizes = (64, 128, 256) if args.quick else (256, 512, 1024, 2048, 4096)
    rows = run_fig10_utilization(sizes=sizes, config=config)
    rows.extend(run_fig10_required_fraction(sizes=sizes, config=config))
    return rows


def _cmd_fig11(args: argparse.Namespace) -> list[dict]:
    config = _config(args)
    sizes = (64, 128, 256) if args.quick else (256, 512, 1024, 2048, 4096)
    rows = run_fig11_example(seed=args.seed)
    rows.extend(run_fig11_scaling(sizes=sizes, config=config))
    return rows


def _cmd_engines(args: argparse.Namespace) -> list[dict]:
    config = _config(args)
    sizes = (256, 512) if args.quick else (256, 512, 1024, 2048, 4096)
    # The reference engine is always the timing baseline; --engine picks
    # what gets compared against it.
    if args.engine == REFERENCE_ENGINE:
        engines = (REFERENCE_ENGINE,)
    else:
        engines = (REFERENCE_ENGINE, args.engine)
    return run_engine_comparison(sizes=sizes, config=config, engines=engines)


def _cmd_colors(args: argparse.Namespace) -> list[dict]:
    config = _config(args)
    sizes = (256, 512) if args.quick else (256, 512, 1024, 2048, 4096)
    # The reference trace is always the timing baseline; --color picks
    # what gets compared against it.
    if args.color == REFERENCE_COLOR:
        colors = (REFERENCE_COLOR,)
    else:
        colors = (REFERENCE_COLOR, args.color)
    return run_color_comparison(sizes=sizes, config=config, colors=colors)


def _cmd_costs(args: argparse.Namespace) -> list[dict]:
    config = _config(args)
    sizes = (256, 512) if args.quick else (256, 512, 1024, 2048, 4096)
    # The reference walk is always the timing baseline; --cost picks
    # what gets compared against it.
    if args.cost == REFERENCE_COST:
        costs = (REFERENCE_COST,)
    else:
        costs = (REFERENCE_COST, args.cost)
    return run_cost_comparison(sizes=sizes, config=config, costs=costs)


def _cmd_serve_replay(args: argparse.Namespace) -> list[dict]:
    """Replay a churn trace through the placement service and report."""
    from repro.experiments.service_replay import run_service_replay

    report, rows = run_service_replay(
        num_requests=args.requests,
        budget=args.budget,
        capacity=args.capacity,
        workload_pool=args.workload_pool,
        verify=args.verify,
        config=_config(args),
        trace_path=args.trace,
        record_path=args.record,
        workers=args.workers,
        mode=args.mode,
        journal_path=args.journal,
        restore_path=args.restore,
        snapshot_path=args.snapshot,
    )
    if args.trace:
        print(f"replayed {report.num_requests} recorded requests from {args.trace}")
    if args.record:
        print(f"recorded {report.num_requests} requests to {args.record}")
    if args.restore:
        print(f"restored the service from snapshot {args.restore}")
    if args.journal:
        print(f"journaled mutating requests to {args.journal}")
    if args.snapshot:
        print(f"wrote the final fleet snapshot to {args.snapshot}")
    if args.workers > 1:
        print(f"drove the replay with {args.workers} {report.mode} workers")
    return rows


_COMMANDS = {
    "fig2": (_cmd_fig2, "Motivating example: strategy comparison (Figure 2)"),
    "fig3": (_cmd_fig3, "Motivating example: budget sweep (Figure 3)"),
    "fig6": (_cmd_fig6, "SOAR vs strategies on BT(256) (Figure 6)"),
    "fig7": (_cmd_fig7, "Online multi-workload aggregation (Figure 7)"),
    "fig8": (_cmd_fig8, "Word-count and parameter-server use cases (Figure 8)"),
    "fig9": (_cmd_fig9, "SOAR running time (Figure 9)"),
    "fig10": (_cmd_fig10, "Scaling on binary trees (Figure 10, Appendix A)"),
    "fig11": (_cmd_fig11, "Scale-free networks (Figure 11, Appendix B)"),
    "engines": (_cmd_engines, "Gather engine comparison: flat vs reference speedup"),
    "colors": (_cmd_colors, "Colour kernel comparison: batched vs reference trace speedup"),
    "costs": (_cmd_costs, "Cost kernel comparison: flat vs reference Eq. (1) speedup"),
}


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="soar-repro",
        description="Reproduce the evaluation of 'SOAR: Minimizing Network Utilization "
        "with Bounded In-network Computing' (CoNEXT 2021).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_common(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--quick", action="store_true", help="run at a reduced scale")
        sub.add_argument("--csv", type=str, default=None, help="also write rows to this CSV file")
        sub.add_argument("--seed", type=int, default=2021, help="base random seed")
        sub.add_argument(
            "--network-size", type=int, default=None, help="override the BT(n) size"
        )
        sub.add_argument(
            "--repetitions", type=int, default=None, help="override the number of repetitions"
        )
        sub.add_argument(
            "--engine",
            choices=sorted(ENGINES),
            default=DEFAULT_ENGINE,
            help="SOAR-Gather engine to use (default: %(default)s)",
        )
        sub.add_argument(
            "--color",
            choices=sorted(COLOR_KERNELS),
            default=DEFAULT_COLOR,
            help="SOAR-Color kernel to use (default: %(default)s)",
        )
        sub.add_argument(
            "--cost",
            choices=sorted(COST_KERNELS),
            default=DEFAULT_COST,
            help="Eq. (1) cost kernel to use (default: %(default)s)",
        )

    for name, (_, help_text) in _COMMANDS.items():
        sub = subparsers.add_parser(name, help=help_text)
        add_common(sub)

    sub_serve = subparsers.add_parser(
        "serve-replay",
        help="drive the multi-tenant placement service with a churn trace",
    )
    add_common(sub_serve)
    sub_serve.add_argument(
        "--requests", type=int, default=200, help="number of generated requests"
    )
    sub_serve.add_argument(
        "--budget", type=int, default=16, help="per-tenant aggregation budget k"
    )
    sub_serve.add_argument(
        "--capacity", type=int, default=4, help="per-switch aggregation capacity a(s)"
    )
    sub_serve.add_argument(
        "--workload-pool",
        type=int,
        default=8,
        help="number of distinct recurring workloads in the generated trace",
    )
    sub_serve.add_argument(
        "--trace", type=str, default=None, help="replay a recorded JSON-lines trace"
    )
    sub_serve.add_argument(
        "--record", type=str, default=None, help="write the trace as JSON-lines"
    )
    sub_serve.add_argument(
        "--verify",
        action="store_true",
        help="differentially verify every response against a cold solve",
    )
    sub_serve.add_argument(
        "--workers",
        type=int,
        default=1,
        help="workers driving the replay (mutating requests stay "
        "barriers; payloads are bit-identical to --workers 1)",
    )
    sub_serve.add_argument(
        "--mode",
        choices=("thread", "process"),
        default="thread",
        help="concurrency mode with --workers > 1: a thread pool sharing "
        "one service, or a Λ-epoch pool of replica processes (GIL-free)",
    )
    sub_serve.add_argument(
        "--journal",
        type=str,
        default=None,
        help="append mutating requests to this write-ahead journal (JSON-lines)",
    )
    sub_serve.add_argument(
        "--snapshot",
        type=str,
        default=None,
        help="write a versioned snapshot of the final fleet state to this file",
    )
    sub_serve.add_argument(
        "--restore",
        type=str,
        default=None,
        help="restore the service from this snapshot before replaying "
        "(with --journal, the journal tail is replayed and appends resume)",
    )

    sub_all = subparsers.add_parser("all", help="run every figure in sequence")
    add_common(sub_all)

    # The lint runner owns its options (see repro.analysis.runner); main()
    # dispatches to it before this parser runs.  Registered here only so
    # ``soar-repro --help`` lists it.
    subparsers.add_parser(
        "lint",
        help="run the codebase-specific static-analysis pass "
        "(--format text|github|sarif, --jobs N, --lock-graph-dot PATH)",
        add_help=False,
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    arguments = list(sys.argv[1:] if argv is None else argv)
    if arguments and arguments[0] == "lint":
        from repro.analysis.runner import main as lint_main

        return lint_main(arguments[1:])

    parser = build_parser()
    args = parser.parse_args(arguments)

    if args.command == "all":
        for name, (runner, title) in _COMMANDS.items():
            rows = runner(args)
            _emit(rows, args, title)
            print()
        return 0

    if args.command == "serve-replay":
        rows = _cmd_serve_replay(args)
        _emit(rows, args, "Multi-tenant placement service: churn-trace replay")
        return 0

    runner, title = _COMMANDS[args.command]
    rows = runner(args)
    _emit(rows, args, title)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

"""Command-line interface: regenerate any figure of the paper from a terminal.

Examples
--------
Regenerate the motivating example (Figures 2 and 3)::

    soar-repro fig2
    soar-repro fig3

Regenerate Figure 6 at a reduced scale and write the series as CSV::

    soar-repro fig6 --quick --csv /tmp/fig6.csv

Run everything the paper reports (this takes a while at full scale)::

    soar-repro all --quick
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from repro.core.engine import DEFAULT_ENGINE, ENGINES, REFERENCE_ENGINE
from repro.experiments import (
    PAPER_CONFIG,
    QUICK_CONFIG,
    run_budget_sweep,
    run_engine_comparison,
    run_fig10_required_fraction,
    run_fig10_utilization,
    run_fig11_example,
    run_fig11_scaling,
    run_fig6,
    run_fig7_capacity_sweep,
    run_fig7_workload_sweep,
    run_fig8,
    run_fig9,
    run_strategy_comparison,
)
from repro.experiments.harness import ExperimentConfig
from repro.utils.tables import render_table, write_csv


def _config(args: argparse.Namespace) -> ExperimentConfig:
    """Build the experiment configuration from the parsed CLI options."""
    base = QUICK_CONFIG if args.quick else PAPER_CONFIG
    return ExperimentConfig(
        network_size=args.network_size or base.network_size,
        repetitions=args.repetitions or base.repetitions,
        seed=args.seed,
        engine=args.engine,
    )


def _emit(rows: list[dict], args: argparse.Namespace, title: str) -> None:
    """Print a text table and optionally write the rows as CSV."""
    print(render_table(rows, title=title))
    if args.csv:
        path = write_csv(rows, args.csv)
        print(f"\nwrote {len(rows)} rows to {path}")


# --------------------------------------------------------------------------- #
# sub-command implementations
# --------------------------------------------------------------------------- #


def _cmd_fig2(args: argparse.Namespace) -> list[dict]:
    return run_strategy_comparison()


def _cmd_fig3(args: argparse.Namespace) -> list[dict]:
    return run_budget_sweep()


def _cmd_fig6(args: argparse.Namespace) -> list[dict]:
    return run_fig6(config=_config(args))


def _cmd_fig7(args: argparse.Namespace) -> list[dict]:
    config = _config(args)
    rows = run_fig7_workload_sweep(config=config)
    rows.extend(run_fig7_capacity_sweep(config=config))
    return rows


def _cmd_fig8(args: argparse.Namespace) -> list[dict]:
    return run_fig8(config=_config(args))


def _cmd_fig9(args: argparse.Namespace) -> list[dict]:
    config = _config(args)
    if args.quick:
        return run_fig9(sizes=(64, 128), budgets=(4, 8, 16), config=config)
    return run_fig9(config=config)


def _cmd_fig10(args: argparse.Namespace) -> list[dict]:
    config = _config(args)
    sizes = (64, 128, 256) if args.quick else (256, 512, 1024, 2048, 4096)
    rows = run_fig10_utilization(sizes=sizes, config=config)
    rows.extend(run_fig10_required_fraction(sizes=sizes, config=config))
    return rows


def _cmd_fig11(args: argparse.Namespace) -> list[dict]:
    config = _config(args)
    sizes = (64, 128, 256) if args.quick else (256, 512, 1024, 2048, 4096)
    rows = run_fig11_example(seed=args.seed)
    rows.extend(run_fig11_scaling(sizes=sizes, config=config))
    return rows


def _cmd_engines(args: argparse.Namespace) -> list[dict]:
    config = _config(args)
    sizes = (256, 512) if args.quick else (256, 512, 1024, 2048, 4096)
    # The reference engine is always the timing baseline; --engine picks
    # what gets compared against it.
    if args.engine == REFERENCE_ENGINE:
        engines = (REFERENCE_ENGINE,)
    else:
        engines = (REFERENCE_ENGINE, args.engine)
    return run_engine_comparison(sizes=sizes, config=config, engines=engines)


_COMMANDS = {
    "fig2": (_cmd_fig2, "Motivating example: strategy comparison (Figure 2)"),
    "fig3": (_cmd_fig3, "Motivating example: budget sweep (Figure 3)"),
    "fig6": (_cmd_fig6, "SOAR vs strategies on BT(256) (Figure 6)"),
    "fig7": (_cmd_fig7, "Online multi-workload aggregation (Figure 7)"),
    "fig8": (_cmd_fig8, "Word-count and parameter-server use cases (Figure 8)"),
    "fig9": (_cmd_fig9, "SOAR running time (Figure 9)"),
    "fig10": (_cmd_fig10, "Scaling on binary trees (Figure 10, Appendix A)"),
    "fig11": (_cmd_fig11, "Scale-free networks (Figure 11, Appendix B)"),
    "engines": (_cmd_engines, "Gather engine comparison: flat vs reference speedup"),
}


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="soar-repro",
        description="Reproduce the evaluation of 'SOAR: Minimizing Network Utilization "
        "with Bounded In-network Computing' (CoNEXT 2021).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_common(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--quick", action="store_true", help="run at a reduced scale")
        sub.add_argument("--csv", type=str, default=None, help="also write rows to this CSV file")
        sub.add_argument("--seed", type=int, default=2021, help="base random seed")
        sub.add_argument(
            "--network-size", type=int, default=None, help="override the BT(n) size"
        )
        sub.add_argument(
            "--repetitions", type=int, default=None, help="override the number of repetitions"
        )
        sub.add_argument(
            "--engine",
            choices=sorted(ENGINES),
            default=DEFAULT_ENGINE,
            help="SOAR-Gather engine to use (default: %(default)s)",
        )

    for name, (_, help_text) in _COMMANDS.items():
        sub = subparsers.add_parser(name, help=help_text)
        add_common(sub)

    sub_all = subparsers.add_parser("all", help="run every figure in sequence")
    add_common(sub_all)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.command == "all":
        for name, (runner, title) in _COMMANDS.items():
            rows = runner(args)
            _emit(rows, args, title)
            print()
        return 0

    runner, title = _COMMANDS[args.command]
    rows = runner(args)
    _emit(rows, args, title)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

"""Minimal discrete-event engine used by the software dataplane.

The engine is a classic priority-queue event loop: events carry a timestamp
and a payload callback description, are processed in non-decreasing time
order, and processing an event may schedule further events.  Keeping it in
its own module (rather than inlining a heap into the simulator) makes the
simulator logic readable and lets the tests exercise the engine invariants
(monotonic time, FIFO tie-breaking) in isolation.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any

from repro.exceptions import SimulationError


@dataclass(order=True)
class Event:
    """A scheduled occurrence in simulated time.

    Events compare by ``(time, sequence)`` so that simultaneous events are
    processed in the order they were scheduled (deterministic FIFO
    tie-breaking), which keeps simulation traces reproducible.
    """

    time: float
    sequence: int
    kind: str = field(compare=False)
    payload: Any = field(compare=False, default=None)


class EventQueue:
    """A time-ordered queue of :class:`Event` objects."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()
        self._now = 0.0
        self._processed = 0

    @property
    def now(self) -> float:
        """The timestamp of the most recently popped event (0 before any pop)."""
        return self._now

    @property
    def processed(self) -> int:
        """How many events have been popped so far."""
        return self._processed

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def schedule(self, time: float, kind: str, payload: Any = None) -> Event:
        """Add an event at the given simulated time.

        Raises
        ------
        SimulationError
            If the event would be scheduled in the past (before the event
            currently being processed), which would violate causality.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event {kind!r} at t={time}; current time is {self._now}"
            )
        event = Event(time=float(time), sequence=next(self._counter), kind=kind, payload=payload)
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Event:
        """Remove and return the earliest pending event, advancing ``now``."""
        if not self._heap:
            raise SimulationError("cannot pop from an empty event queue")
        event = heapq.heappop(self._heap)
        self._now = event.time
        self._processed += 1
        return event

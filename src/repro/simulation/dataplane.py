"""Event-driven software dataplane for the Reduce operation.

The paper evaluates SOAR analytically (message counts weighted by link
times) and notes that a hardware (P4) dataplane raises further questions —
synchronization of aggregating switches, the latency impact of waiting for
all children, store-and-forward behaviour of non-aggregating switches
(Section 4.4).  This module substitutes a software dataplane that actually
*executes* the Reduce as a discrete-event simulation:

* every server injects one message at time 0 (optionally jittered),
* every link transmits messages serially; a message of size ``s`` occupies
  the link for ``s * rho`` seconds,
* a red switch forwards each message as soon as it has fully arrived
  (store-and-forward),
* a blue switch waits until it has received everything its subtree will
  ever send, then emits a single aggregated message.

The total link busy time of the simulation equals the utilization
complexity φ of the analytic model (the test-suite asserts this), and the
simulation additionally reports the completion time — the latency metric
the paper leaves to future work.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from dataclasses import dataclass, field

import numpy as np

from repro.core.reduce_op import validate_placement
from repro.core.tree import NodeId, TreeNetwork
from repro.exceptions import SimulationError
from repro.simulation.events import EventQueue


@dataclass
class SimMessage:
    """A message travelling through the simulated dataplane."""

    identifier: int
    size: float
    servers: int  # how many server contributions are aggregated inside


@dataclass
class SimulationResult:
    """Metrics collected by one dataplane run."""

    completion_time: float
    link_busy: dict[NodeId, float]
    link_messages: dict[NodeId, int]
    messages_delivered: int
    servers_delivered: int
    events_processed: int

    @property
    def total_busy_time(self) -> float:
        """Sum of per-link busy times; equals φ when all messages have size 1."""
        return float(sum(self.link_busy.values()))

    @property
    def bottleneck_busy_time(self) -> float:
        """Busy time of the most loaded link (the paper's future-work objective)."""
        return float(max(self.link_busy.values(), default=0.0))


@dataclass
class _SwitchState:
    """Book-keeping of one switch during the simulation."""

    is_blue: bool
    expected_inputs: int
    received_inputs: int = 0
    held: list[SimMessage] = field(default_factory=list)


def simulate_reduce(
    tree: TreeNetwork,
    blue_nodes: Iterable[NodeId],
    loads: Mapping[NodeId, int] | None = None,
    message_size: float = 1.0,
    aggregate_size: float | None = None,
    injection_jitter: float = 0.0,
    rng: np.random.Generator | int | None = None,
) -> SimulationResult:
    """Run the Reduce on the event-driven dataplane.

    Parameters
    ----------
    tree:
        The tree network (rates determine per-byte link times).
    blue_nodes:
        Aggregation switches ``U``.
    loads:
        Optional load override.
    message_size:
        Size of every server message (in abstract units; the link time of a
        message is ``size * rho``).
    aggregate_size:
        Size of an aggregated message.  ``None`` keeps the model of the
        paper (aggregates have the same bounded size ``M`` as inputs).
    injection_jitter:
        When positive, each server message is injected at a uniform random
        time in ``[0, injection_jitter]`` instead of exactly 0, modelling
        asynchronous workers.
    rng:
        Generator or seed used only when ``injection_jitter > 0``.

    Returns
    -------
    SimulationResult
        Completion time, per-link busy times and message counts.
    """
    blue = validate_placement(tree, blue_nodes)
    load_of = tree.load if loads is None else lambda s: int(loads.get(s, 0))
    if message_size <= 0:
        raise SimulationError(f"message size must be positive, got {message_size}")
    aggregate = message_size if aggregate_size is None else float(aggregate_size)
    generator = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)

    # How many messages each switch will receive in total (children output
    # plus local servers); blue switches wait for exactly this many.  Unlike
    # the analytic count of :func:`link_message_counts`, a blue switch whose
    # subtree carries no load sends nothing (there is nothing to aggregate),
    # so its parent must not wait for it.
    outgoing: dict[NodeId, int] = {}
    expected: dict[NodeId, int] = {}
    for switch in tree.switches:  # post-order: children first
        arrived = load_of(switch) + sum(
            outgoing[child] for child in tree.children(switch)
        )
        expected[switch] = arrived
        if switch in blue and arrived > 0:
            outgoing[switch] = 1
        else:
            outgoing[switch] = arrived

    states = {
        switch: _SwitchState(is_blue=switch in blue, expected_inputs=expected[switch])
        for switch in tree.switches
    }

    queue = EventQueue()
    link_free: dict[NodeId, float] = {switch: 0.0 for switch in tree.switches}
    link_busy: dict[NodeId, float] = {switch: 0.0 for switch in tree.switches}
    link_msgs: dict[NodeId, int] = {switch: 0 for switch in tree.switches}
    next_id = 0
    delivered_messages = 0
    delivered_servers = 0
    completion = 0.0

    def transmit(sender: NodeId, message: SimMessage, ready_time: float) -> None:
        """Serialize ``message`` on the uplink of ``sender``."""
        nonlocal completion
        rho = tree.rho(sender)
        start = max(ready_time, link_free[sender])
        duration = message.size * rho
        finish = start + duration
        link_free[sender] = finish
        link_busy[sender] += duration
        link_msgs[sender] += 1
        queue.schedule(finish, "arrival", (sender, message))
        completion = max(completion, finish)

    def handle_at_switch(switch: NodeId, message: SimMessage, time: float) -> None:
        """Process a message that has fully arrived at ``switch``."""
        nonlocal next_id
        state = states[switch]
        state.received_inputs += 1
        if state.received_inputs > state.expected_inputs:
            raise SimulationError(
                f"switch {switch!r} received more messages than expected; "
                "the dataplane and the analytic model disagree"
            )
        if not state.is_blue:
            transmit(switch, message, time)
            return
        state.held.append(message)
        if state.received_inputs == state.expected_inputs:
            servers = sum(item.servers for item in state.held)
            aggregated = SimMessage(identifier=next_id, size=aggregate, servers=servers)
            next_id += 1
            state.held.clear()
            transmit(switch, aggregated, time)

    # Inject server messages.
    for switch in tree.switches:
        for _ in range(load_of(switch)):
            inject_time = (
                float(generator.uniform(0.0, injection_jitter)) if injection_jitter > 0 else 0.0
            )
            message = SimMessage(identifier=next_id, size=message_size, servers=1)
            next_id += 1
            queue.schedule(inject_time, "injection", (switch, message))

    # Main loop.
    while queue:
        event = queue.pop()
        if event.kind == "injection":
            switch, message = event.payload
            handle_at_switch(switch, message, event.time)
        elif event.kind == "arrival":
            sender, message = event.payload
            receiver = tree.parent(sender)
            if receiver == tree.destination:
                delivered_messages += 1
                delivered_servers += message.servers
                completion = max(completion, event.time)
            else:
                handle_at_switch(receiver, message, event.time)
        else:  # pragma: no cover - defensive
            raise SimulationError(f"unknown event kind {event.kind!r}")

    total_servers = sum(load_of(s) for s in tree.switches)
    if delivered_servers != total_servers:
        raise SimulationError(
            f"destination accounted for {delivered_servers} servers, expected {total_servers}"
        )

    return SimulationResult(
        completion_time=completion,
        link_busy=link_busy,
        link_messages=link_msgs,
        messages_delivered=delivered_messages,
        servers_delivered=delivered_servers,
        events_processed=queue.processed,
    )

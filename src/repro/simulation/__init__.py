"""Event-driven software dataplane substituting the paper's hardware prototype."""

from repro.simulation.dataplane import SimMessage, SimulationResult, simulate_reduce
from repro.simulation.events import Event, EventQueue

__all__ = [
    "Event",
    "EventQueue",
    "SimMessage",
    "SimulationResult",
    "simulate_reduce",
]

"""Complete binary-tree topologies ``BT(n)``.

The paper's evaluation mostly runs on complete binary weighted trees
``BT(n)`` where ``n`` counts every node including the destination server:
the switches form a complete binary tree, servers attach only to the leaf
switches (which play the role of top-of-rack switches), and the root switch
connects upward to the destination.

``BT(2^h)`` therefore has ``2^h - 1`` switches arranged in ``h`` levels with
``2^(h-1)`` leaves.  For example ``BT(8)`` is the 7-switch tree of the
motivating example (Figures 2 and 3) and ``BT(256)`` is the 255-switch tree
used throughout Section 5.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from repro.core.tree import DEFAULT_DESTINATION, NodeId, TreeNetwork
from repro.exceptions import TreeStructureError


def switch_name(level: int, index: int) -> str:
    """Canonical switch identifier: ``s<level>_<index>`` (root is ``s0_0``)."""
    return f"s{level}_{index}"


def complete_binary_tree(
    num_leaves: int,
    leaf_loads: Sequence[int] | Mapping[NodeId, int] | None = None,
    rates: Mapping[NodeId, float] | None = None,
    available: Sequence[NodeId] | None = None,
    destination: NodeId = DEFAULT_DESTINATION,
) -> TreeNetwork:
    """Build a complete binary tree of switches with the given number of leaves.

    Parameters
    ----------
    num_leaves:
        Number of leaf (top-of-rack) switches; must be a power of two.
    leaf_loads:
        Either a sequence of loads assigned to the leaves left-to-right, or a
        mapping from switch name to load (which may also load internal
        switches).  Defaults to zero load everywhere.
    rates:
        Optional link-rate overrides, keyed by the child switch of each link.
    available:
        Optional availability set Λ; defaults to all switches.
    destination:
        Identifier of the destination server.

    Returns
    -------
    TreeNetwork
        The assembled network.  Switch naming: level 0 is the root switch,
        level ``h-1`` holds the leaves, and ``s<level>_<index>`` is the
        ``index``-th switch of its level, left to right.
    """
    if num_leaves < 1 or num_leaves & (num_leaves - 1) != 0:
        raise TreeStructureError(
            f"a complete binary tree needs a power-of-two leaf count, got {num_leaves}"
        )

    height = num_leaves.bit_length() - 1  # number of levels below the root
    parents: dict[NodeId, NodeId] = {switch_name(0, 0): destination}
    for level in range(1, height + 1):
        for index in range(2**level):
            parents[switch_name(level, index)] = switch_name(level - 1, index // 2)

    leaves = [switch_name(height, index) for index in range(num_leaves)]
    loads: dict[NodeId, int] = {}
    if leaf_loads is not None:
        if isinstance(leaf_loads, Mapping):
            loads.update(leaf_loads)
        else:
            if len(leaf_loads) != num_leaves:
                raise TreeStructureError(
                    f"expected {num_leaves} leaf loads, got {len(leaf_loads)}"
                )
            loads.update(dict(zip(leaves, leaf_loads)))

    return TreeNetwork(
        parents,
        rates=rates,
        loads=loads,
        available=available,
        destination=destination,
    )


def bt_network(
    total_nodes: int,
    leaf_loads: Sequence[int] | Mapping[NodeId, int] | None = None,
    rates: Mapping[NodeId, float] | None = None,
    available: Sequence[NodeId] | None = None,
) -> TreeNetwork:
    """Build the paper's ``BT(n)`` network where ``n`` includes the destination.

    ``BT(n)`` requires ``n`` to be a power of two: the ``n - 1`` switches
    form a complete binary tree with ``n / 2`` leaves.  ``BT(8)`` is the
    motivating-example tree; ``BT(256)`` the main evaluation topology.
    """
    if total_nodes < 2 or total_nodes & (total_nodes - 1) != 0:
        raise TreeStructureError(f"BT(n) needs n to be a power of two >= 2, got {total_nodes}")
    return complete_binary_tree(
        total_nodes // 2,
        leaf_loads=leaf_loads,
        rates=rates,
        available=available,
    )


def leaf_switches(tree: TreeNetwork) -> tuple[NodeId, ...]:
    """Return the leaves of a tree in deterministic left-to-right order.

    For trees built by :func:`complete_binary_tree` the canonical names sort
    by level and index, which yields the left-to-right order used when the
    paper lists leaf loads such as ``(2, 6, 5, 4)``.
    """
    leaves = list(tree.leaves())

    def sort_key(name: NodeId) -> tuple:
        text = str(name)
        if text.startswith("s") and "_" in text:
            level, _, index = text[1:].partition("_")
            if level.isdigit() and index.isdigit():
                return (0, int(level), int(index))
        return (1, text)

    return tuple(sorted(leaves, key=sort_key))

"""Additional tree topology generators.

Beyond the complete binary trees and scale-free trees used by the paper's
evaluation, the library ships a few generic generators that are useful for
property-based testing and for exploring the algorithm on other datacenter
shapes:

* :func:`kary_tree` — complete k-ary trees (k = 2 recovers ``BT``),
* :func:`fat_tree_aggregation_tree` — the aggregation tree induced by a
  canonical k-ary fat-tree when one core switch is the reduction root,
* :func:`random_recursive_tree` — uniform-attachment random trees,
* :func:`path_network` / :func:`star_network` — degenerate extremes that
  exercise deep and wide corner cases,
* :func:`random_tree` — networkx-backed uniformly random labelled trees.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

import numpy as np

from repro.core.tree import DEFAULT_DESTINATION, NodeId, TreeNetwork
from repro.exceptions import TreeStructureError


def kary_tree(
    arity: int,
    height: int,
    leaf_loads: Sequence[int] | None = None,
    rates: Mapping[NodeId, float] | None = None,
    destination: NodeId = DEFAULT_DESTINATION,
) -> TreeNetwork:
    """Build a complete ``arity``-ary tree of switches of the given height.

    ``height`` is the number of switch levels below the root; ``height = 0``
    yields a single root switch.  Leaves (the deepest level) receive the
    loads in ``leaf_loads`` left to right when provided.
    """
    if arity < 1:
        raise TreeStructureError(f"arity must be >= 1, got {arity}")
    if height < 0:
        raise TreeStructureError(f"height must be >= 0, got {height}")

    parents: dict[NodeId, NodeId] = {"s0_0": destination}
    for level in range(1, height + 1):
        for index in range(arity**level):
            parents[f"s{level}_{index}"] = f"s{level - 1}_{index // arity}"

    loads: dict[NodeId, int] = {}
    if leaf_loads is not None:
        leaves = [f"s{height}_{index}" for index in range(arity**height)]
        if len(leaf_loads) != len(leaves):
            raise TreeStructureError(
                f"expected {len(leaves)} leaf loads, got {len(leaf_loads)}"
            )
        loads = dict(zip(leaves, leaf_loads))
    return TreeNetwork(parents, rates=rates, loads=loads, destination=destination)


def fat_tree_aggregation_tree(
    pods: int,
    hosts_per_edge: int = 1,
    rates: Mapping[NodeId, float] | None = None,
    destination: NodeId = DEFAULT_DESTINATION,
) -> TreeNetwork:
    """Build the aggregation tree carved out of a ``pods``-pod fat-tree.

    A k-pod fat-tree has ``k`` pods, each with ``k/2`` aggregation and
    ``k/2`` edge switches.  When a Reduce is rooted at one core switch, the
    routing tree below it touches one aggregation switch per pod and every
    edge switch of the pod, with hosts attached to the edge switches.  This
    generator materializes exactly that tree — core switch at the top (the
    root switch), one aggregation switch per pod, ``k/2`` edge switches per
    aggregation switch, each loaded with ``hosts_per_edge`` servers.
    """
    if pods < 2 or pods % 2 != 0:
        raise TreeStructureError(f"a fat-tree needs an even pod count >= 2, got {pods}")
    if hosts_per_edge < 0:
        raise TreeStructureError(f"hosts_per_edge must be >= 0, got {hosts_per_edge}")

    parents: dict[NodeId, NodeId] = {"core": destination}
    loads: dict[NodeId, int] = {}
    for pod in range(pods):
        aggregation = f"agg{pod}"
        parents[aggregation] = "core"
        for edge in range(pods // 2):
            edge_switch = f"edge{pod}_{edge}"
            parents[edge_switch] = aggregation
            loads[edge_switch] = hosts_per_edge
    return TreeNetwork(parents, rates=rates, loads=loads, destination=destination)


def random_recursive_tree(
    num_switches: int,
    rng: np.random.Generator | int | None = None,
    node_load: int = 0,
    destination: NodeId = DEFAULT_DESTINATION,
) -> TreeNetwork:
    """Build a uniform-attachment random tree (each node picks a uniform parent)."""
    if num_switches < 1:
        raise TreeStructureError(f"need at least one switch, got {num_switches}")
    generator = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    parents: dict[NodeId, NodeId] = {0: destination}
    for node in range(1, num_switches):
        parents[node] = int(generator.integers(0, node))
    loads = {node: node_load for node in parents}
    return TreeNetwork(parents, loads=loads, destination=destination)


def path_network(
    num_switches: int,
    leaf_load: int = 1,
    rates: Mapping[NodeId, float] | None = None,
    destination: NodeId = DEFAULT_DESTINATION,
) -> TreeNetwork:
    """Build a path of switches (deepest possible tree) with load at the far end."""
    if num_switches < 1:
        raise TreeStructureError(f"need at least one switch, got {num_switches}")
    parents: dict[NodeId, NodeId] = {0: destination}
    for node in range(1, num_switches):
        parents[node] = node - 1
    loads = {num_switches - 1: leaf_load}
    return TreeNetwork(parents, rates=rates, loads=loads, destination=destination)


def star_network(
    num_leaves: int,
    leaf_loads: Sequence[int] | None = None,
    rates: Mapping[NodeId, float] | None = None,
    destination: NodeId = DEFAULT_DESTINATION,
) -> TreeNetwork:
    """Build a root switch with ``num_leaves`` leaf switches directly below it."""
    if num_leaves < 1:
        raise TreeStructureError(f"need at least one leaf, got {num_leaves}")
    parents: dict[NodeId, NodeId] = {"root": destination}
    loads: dict[NodeId, int] = {}
    for index in range(num_leaves):
        leaf = f"leaf{index}"
        parents[leaf] = "root"
        if leaf_loads is not None:
            loads[leaf] = leaf_loads[index]
    return TreeNetwork(parents, rates=rates, loads=loads, destination=destination)


def random_tree(
    num_switches: int,
    rng: np.random.Generator | int | None = None,
    destination: NodeId = DEFAULT_DESTINATION,
) -> TreeNetwork:
    """Build a uniformly random labelled tree of switches rooted at switch 0.

    Uses a random Prüfer sequence, so every labelled tree on ``num_switches``
    nodes is equally likely; handy for property-based testing.
    """
    if num_switches < 1:
        raise TreeStructureError(f"need at least one switch, got {num_switches}")
    generator = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    if num_switches == 1:
        return TreeNetwork({0: destination}, destination=destination)
    if num_switches == 2:
        return TreeNetwork({0: destination, 1: 0}, destination=destination)

    import networkx as nx

    prufer = [int(generator.integers(0, num_switches)) for _ in range(num_switches - 2)]
    graph = nx.from_prufer_sequence(prufer)
    parents: dict[NodeId, NodeId] = {0: destination}
    for parent, child in nx.bfs_edges(graph, 0):
        parents[child] = parent
    return TreeNetwork(parents, destination=destination)

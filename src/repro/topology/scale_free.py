"""Scale-free (random preferential attachment) tree topologies ``SF(n)``.

Appendix B of the paper evaluates SOAR on random preferential-attachment
(RPA) trees, which produce scale-free degree distributions: a new node
attaches to an existing node with probability proportional to the existing
node's degree (Barabási–Albert with one edge per arriving node).  The paper
uses unit load on every node of such networks to avoid biasing the
evaluation.
"""

from __future__ import annotations

from collections.abc import Mapping

import numpy as np

from repro.core.tree import DEFAULT_DESTINATION, NodeId, TreeNetwork
from repro.exceptions import TreeStructureError


def preferential_attachment_parents(
    num_switches: int,
    rng: np.random.Generator,
) -> dict[int, int]:
    """Generate the parent map of an RPA tree over switches ``0 .. n-1``.

    Switch 0 is the root.  Every switch ``i >= 1`` picks its parent among
    switches ``0 .. i-1`` with probability proportional to ``degree + 1``
    (the ``+ 1`` seeds the very first attachments and matches the standard
    Barabási–Albert tree construction with ``m = 1``).
    """
    if num_switches < 1:
        raise TreeStructureError(f"need at least one switch, got {num_switches}")
    parents: dict[int, int] = {}
    degree = np.ones(num_switches, dtype=np.float64)  # degree + 1 weights
    for node in range(1, num_switches):
        weights = degree[:node]
        probabilities = weights / weights.sum()
        parent = int(rng.choice(node, p=probabilities))
        parents[node] = parent
        degree[parent] += 1.0
        degree[node] += 1.0
    return parents


def scale_free_tree(
    num_switches: int,
    rng: np.random.Generator | int | None = None,
    node_load: int = 1,
    loads: Mapping[NodeId, int] | None = None,
    rates: Mapping[NodeId, float] | None = None,
    destination: NodeId = DEFAULT_DESTINATION,
) -> TreeNetwork:
    """Build an ``SF(n)``-style scale-free tree network of switches.

    Parameters
    ----------
    num_switches:
        Number of switches (the paper's ``SF(n)`` includes the destination in
        ``n``; use :func:`sf_network` for that convention).
    rng:
        ``numpy`` random generator or seed; ``None`` draws a fresh seed.
    node_load:
        Uniform load assigned to every switch (the appendix uses 1).
    loads:
        Optional explicit load mapping overriding ``node_load``.
    rates:
        Optional link-rate mapping keyed by child switch.
    destination:
        Destination server identifier.
    """
    generator = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    parent_indices = preferential_attachment_parents(num_switches, generator)

    parents: dict[NodeId, NodeId] = {0: destination}
    parents.update(parent_indices)
    if loads is None:
        loads = {node: node_load for node in parents}
    return TreeNetwork(
        parents,
        rates=rates,
        loads=loads,
        destination=destination,
    )


def sf_network(
    total_nodes: int,
    rng: np.random.Generator | int | None = None,
    node_load: int = 1,
    rates: Mapping[NodeId, float] | None = None,
) -> TreeNetwork:
    """Build the paper's ``SF(n)`` network where ``n`` includes the destination."""
    if total_nodes < 2:
        raise TreeStructureError(f"SF(n) needs n >= 2, got {total_nodes}")
    return scale_free_tree(total_nodes - 1, rng=rng, node_load=node_load, rates=rates)


def degree_sequence(tree: TreeNetwork) -> list[int]:
    """Return switch degrees (within the switch tree plus the uplink) sorted descending.

    The degree of a switch counts its children plus its parent link — the
    quantity the appendix reports when describing the highest-degree nodes
    of an ``SF(128)`` sample.
    """
    degrees = [tree.num_children(switch) + 1 for switch in tree.switches]
    return sorted(degrees, reverse=True)

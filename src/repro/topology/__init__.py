"""Tree topology generators (binary trees, fat-trees, scale-free trees, ...)."""

from repro.topology.binary_tree import bt_network, complete_binary_tree, leaf_switches
from repro.topology.generic import (
    fat_tree_aggregation_tree,
    kary_tree,
    path_network,
    random_recursive_tree,
    random_tree,
    star_network,
)
from repro.topology.scale_free import (
    degree_sequence,
    preferential_attachment_parents,
    scale_free_tree,
    sf_network,
)

__all__ = [
    "bt_network",
    "complete_binary_tree",
    "degree_sequence",
    "fat_tree_aggregation_tree",
    "kary_tree",
    "leaf_switches",
    "path_network",
    "preferential_attachment_parents",
    "random_recursive_tree",
    "random_tree",
    "scale_free_tree",
    "sf_network",
    "star_network",
]

"""Distributing a shared aggregation budget across multiple workloads.

Section 8 of the paper leaves open how a provider should split its overall
in-network computing capacity across tenants: "every workload might be
serviced by a distinct number of aggregation switches (i.e., there need not
be a uniform k for all workloads)".  This module implements that extension
for the *offline* variant, where the set of workloads is known up front and
the provider controls the total number of aggregation assignments.

Because a single SOAR-Gather run yields the optimal cost of a workload for
*every* budget ``0..K`` at once (the DP table carries one column per
budget), the per-workload cost curves are cheap to obtain.  Splitting a
total budget ``K`` across ``W`` workloads to minimize the summed cost is
then a classic resource-allocation dynamic program over those curves, which
is optimal regardless of the curves' shape (they are non-increasing but not
necessarily convex).

The capacity constraint of Section 5.2 (a switch can serve at most ``a(s)``
workloads) is *not* enforced here — this is the complementary knob: how much
budget each workload deserves, before the online placement decides which
switches implement it.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass

import numpy as np

from repro.core.engine import DEFAULT_ENGINE
from repro.core.solver import Solver
from repro.core.tree import NodeId, TreeNetwork
from repro.exceptions import InvalidBudgetError


@dataclass(frozen=True)
class BudgetAllocation:
    """Result of splitting a shared budget across workloads.

    Attributes
    ----------
    budgets:
        Budget assigned to each workload, in input order.
    total_cost:
        Summed optimal utilization across the workloads under these budgets.
    uniform_cost:
        Summed utilization when the same total budget is split evenly
        (rounded down, remainder given to the first workloads) — the naive
        policy the optimal split is compared against.
    cost_curves:
        Per-workload optimal cost for every budget ``0..K`` (one row per
        workload); useful for inspection and plotting.
    """

    budgets: tuple[int, ...]
    total_cost: float
    uniform_cost: float
    cost_curves: tuple[tuple[float, ...], ...]

    @property
    def improvement_over_uniform(self) -> float:
        """Fractional saving of the optimal split relative to the even split."""
        if self.uniform_cost == 0.0:
            return 0.0
        return 1.0 - self.total_cost / self.uniform_cost


def workload_cost_curve(
    tree: TreeNetwork,
    loads: Mapping[NodeId, int],
    max_budget: int,
    engine: str = DEFAULT_ENGINE,
) -> list[float]:
    """Optimal utilization of one workload for every budget ``0..max_budget``."""
    if max_budget < 0:
        raise InvalidBudgetError(f"budget must be non-negative, got {max_budget}")
    workload_tree = tree.with_loads(loads)
    table = Solver(engine=engine).gather(workload_tree, max_budget)
    curve = [table.cost(budget) for budget in range(table.budget + 1)]
    # If the budget was clamped (more budget than available switches), the
    # curve is flat beyond the clamp point.
    while len(curve) < max_budget + 1:
        curve.append(curve[-1])
    return curve


def allocate_budgets(
    tree: TreeNetwork,
    workloads: Sequence[Mapping[NodeId, int]],
    total_budget: int,
) -> BudgetAllocation:
    """Optimally split ``total_budget`` aggregation switches across workloads.

    Parameters
    ----------
    tree:
        The shared network (topology, rates, availability).
    workloads:
        The load function of each workload.
    total_budget:
        Total number of aggregation-switch assignments available across all
        workloads (a switch used by two workloads counts twice, mirroring
        the capacity accounting of Section 5.2).

    Returns
    -------
    BudgetAllocation
        The optimal per-workload budgets, the resulting total cost, and the
        cost of the naive even split for comparison.
    """
    if total_budget < 0:
        raise InvalidBudgetError(f"total budget must be non-negative, got {total_budget}")
    if not workloads:
        return BudgetAllocation(budgets=(), total_cost=0.0, uniform_cost=0.0, cost_curves=())

    num_workloads = len(workloads)
    per_workload_cap = min(total_budget, len(tree.available))
    curves = np.array(
        [workload_cost_curve(tree, loads, per_workload_cap) for loads in workloads]
    )

    # dp[b] = minimum summed cost using exactly the first w workloads and a
    # total of b budget units; choice[w][b] = budget given to workload w.
    budget_axis = total_budget + 1
    dp = np.full(budget_axis, np.inf)
    dp[0] = 0.0
    choices: list[np.ndarray] = []
    for w in range(num_workloads):
        new_dp = np.full(budget_axis, np.inf)
        choice = np.zeros(budget_axis, dtype=np.int64)
        curve = curves[w]
        for spent in range(budget_axis):
            limit = min(spent, per_workload_cap)
            options = dp[spent - limit : spent + 1][::-1] + curve[: limit + 1]
            best = int(np.argmin(options))
            new_dp[spent] = options[best]
            choice[spent] = best
        dp = new_dp
        choices.append(choice)

    # The cost curves are non-increasing, so spending the full budget is
    # always (weakly) optimal; trace back from total_budget.
    remaining = int(np.argmin(dp))
    total_cost = float(dp[remaining])
    budgets = [0] * num_workloads
    for w in range(num_workloads - 1, -1, -1):
        budgets[w] = int(choices[w][remaining])
        remaining -= budgets[w]

    # Naive even split for comparison.
    base, extra = divmod(total_budget, num_workloads)
    uniform_cost = 0.0
    for index in range(num_workloads):
        share = min(base + (1 if index < extra else 0), per_workload_cap)
        uniform_cost += float(curves[index][share])

    return BudgetAllocation(
        budgets=tuple(budgets),
        total_cost=total_cost,
        uniform_cost=uniform_cost,
        cost_curves=tuple(tuple(map(float, curve)) for curve in curves),
    )

"""Online multi-workload allocation (Section 5.2 of the paper).

Workloads ``L_0, L_1, ...`` arrive one at a time.  For each arrival the
scheduler restricts the availability set to the switches with residual
aggregation capacity, asks a placement strategy (SOAR or any baseline) for a
blue set of size at most ``k``, charges the chosen switches' capacity, and
records the utilization the workload incurs.

The paper's headline observation — that SOAR remains the best performer in
the online setting even though it is only proven optimal per-workload — is
reproduced by :func:`run_online_sequence` over a mixed stream of uniform and
power-law workloads.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.baselines.strategies import PlacementStrategy
from repro.core.cost import all_red_cost, utilization_cost
from repro.core.tree import NodeId, TreeNetwork
from repro.online.capacity import CapacityTracker
from repro.workload.distributions import (
    PowerLawLoadDistribution,
    UniformLoadDistribution,
    sample_leaf_loads,
)


@dataclass
class WorkloadResult:
    """Outcome of placing a single workload in the online sequence."""

    index: int
    blue_nodes: frozenset[NodeId]
    cost: float
    all_red_cost: float
    available_switches: int

    @property
    def normalized_cost(self) -> float:
        """Cost relative to handling this workload with no aggregation."""
        if self.all_red_cost == 0.0:
            return 0.0
        return self.cost / self.all_red_cost


@dataclass
class OnlineRunResult:
    """Aggregate outcome of an online multi-workload run."""

    strategy: str
    budget: int
    capacity: int
    workloads: list[WorkloadResult] = field(default_factory=list)

    @property
    def total_cost(self) -> float:
        """Total utilization over the whole workload sequence."""
        return float(sum(item.cost for item in self.workloads))

    @property
    def total_all_red_cost(self) -> float:
        """Total utilization the sequence would incur with no aggregation."""
        return float(sum(item.all_red_cost for item in self.workloads))

    @property
    def normalized_cost(self) -> float:
        """Total cost normalized to the all-red total (Figure 7's y-axis)."""
        baseline = self.total_all_red_cost
        if baseline == 0.0:
            return 0.0
        return self.total_cost / baseline


def generate_workload_sequence(
    tree: TreeNetwork,
    count: int,
    rng: np.random.Generator | int | None = None,
    uniform=None,
    power_law=None,
    mix_probability: float = 0.5,
) -> list[dict[NodeId, int]]:
    """Generate the paper's online workload stream.

    Each workload's leaf loads are drawn from the uniform distribution with
    probability ``mix_probability`` and from the power-law distribution
    otherwise (the paper uses an even 1/2 - 1/2 mix).
    """
    generator = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    uniform = uniform or UniformLoadDistribution()
    power_law = power_law or PowerLawLoadDistribution()
    sequence: list[dict[NodeId, int]] = []
    for _ in range(count):
        distribution = uniform if generator.random() < mix_probability else power_law
        sequence.append(sample_leaf_loads(tree, distribution, rng=generator))
    return sequence


def run_online_sequence(
    tree: TreeNetwork,
    workloads: Sequence[Mapping[NodeId, int]],
    strategy: PlacementStrategy,
    budget: int,
    capacity: int | Mapping[NodeId, int],
    strategy_name: str = "strategy",
) -> OnlineRunResult:
    """Run a placement strategy over an online sequence of workloads.

    Parameters
    ----------
    tree:
        The shared network (topology and rates).  The per-workload loads
        come from ``workloads``; the tree's own loads are ignored.
    workloads:
        The arrival sequence; each element maps switches to their load.
    strategy:
        Any :data:`~repro.baselines.strategies.PlacementStrategy`
        (SOAR included).  The strategy sees a tree whose loads are the
        current workload and whose availability set is the residual Λ_t.
    budget:
        Per-workload bound ``k`` on the number of aggregation switches.
    capacity:
        Per-switch aggregation capacity ``a(s)`` (scalar or mapping).
    strategy_name:
        Label recorded in the result (used by the experiment harness).

    Returns
    -------
    OnlineRunResult
        Per-workload and aggregate costs, normalized against all-red.
    """
    tracker = CapacityTracker(tree, capacity)
    scalar_capacity = (
        int(capacity) if not isinstance(capacity, Mapping) else -1
    )
    result = OnlineRunResult(
        strategy=strategy_name,
        budget=int(budget),
        capacity=scalar_capacity,
    )

    for index, loads in enumerate(workloads):
        available = tracker.available()
        workload_tree = tree.with_loads(loads).with_available(available)
        blue = frozenset(strategy(workload_tree, budget)) & available
        if len(blue) > budget:
            blue = frozenset(sorted(blue, key=repr)[:budget])
        tracker.consume(blue)
        cost = utilization_cost(workload_tree, blue)
        baseline = all_red_cost(workload_tree)
        result.workloads.append(
            WorkloadResult(
                index=index,
                blue_nodes=blue,
                cost=cost,
                all_red_cost=baseline,
                available_switches=len(available),
            )
        )
    return result


def compare_strategies_online(
    tree: TreeNetwork,
    workloads: Sequence[Mapping[NodeId, int]],
    strategies: Mapping[str, PlacementStrategy],
    budget: int,
    capacity: int | Mapping[NodeId, int],
) -> dict[str, OnlineRunResult]:
    """Run several strategies over the *same* workload sequence.

    Every strategy starts from a fresh capacity tracker, so the comparison
    isolates the placement decisions (exactly the setup of Figure 7).
    """
    return {
        name: run_online_sequence(
            tree, workloads, strategy, budget, capacity, strategy_name=name
        )
        for name, strategy in strategies.items()
    }

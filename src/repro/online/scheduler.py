"""Online multi-workload allocation (Section 5.2 of the paper).

Workloads ``L_0, L_1, ...`` arrive one at a time.  For each arrival the
scheduler restricts the availability set to the switches with residual
aggregation capacity, asks a placement strategy (SOAR or any baseline) for a
blue set of size at most ``k``, charges the chosen switches' capacity, and
records the utilization the workload incurs.

The paper's headline observation — that SOAR remains the best performer in
the online setting even though it is only proven optimal per-workload — is
reproduced by :func:`run_online_sequence` over a mixed stream of uniform and
power-law workloads.

Batched arrivals
----------------
When the strategy is SOAR, the arrival loop no longer places one workload
at a time: arrivals are chunked through
:meth:`repro.core.solver.Solver.solve_many` *speculatively* against the
availability set at the chunk's start.  The speculation is sound because
``Λ_t`` only changes when an assignment exhausts some switch's residual
capacity — the common case (capacity to spare) keeps Λ fixed across many
consecutive arrivals.  Before committing each speculative placement, the
loop re-checks Λ (an O(1) identity check, the tracker caches the frozen
set); on the first mismatch the rest of the chunk is discarded and
re-solved against the new Λ, so every recorded placement is **bit-identical**
to the one-at-a-time loop.  Per-arrival costs and all-red baselines are
evaluated by the flat cost kernel over one structural
:class:`~repro.core.flat.FlatCostModel` shared across the whole sequence
(the topology never changes; loads arrive per workload).
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.baselines.strategies import PlacementStrategy, soar_strategy
from repro.core.cost import evaluate_cost
from repro.core.flat import cost_model_for
from repro.core.solver import Solver
from repro.core.tree import NodeId, TreeNetwork
from repro.online.capacity import CapacityTracker
from repro.workload.distributions import (
    PowerLawLoadDistribution,
    UniformLoadDistribution,
    sample_leaf_loads,
)

#: Arrivals speculatively solved per :meth:`Solver.solve_many` chunk when
#: the strategy is SOAR.  Modest on purpose: a chunk is wasted work beyond
#: the first Λ change, and bounded capacity changes Λ every few arrivals.
DEFAULT_ARRIVAL_BATCH: int = 4


@dataclass
class WorkloadResult:
    """Outcome of placing a single workload in the online sequence."""

    index: int
    blue_nodes: frozenset[NodeId]
    cost: float
    all_red_cost: float
    available_switches: int

    @property
    def normalized_cost(self) -> float:
        """Cost relative to handling this workload with no aggregation."""
        if self.all_red_cost == 0.0:
            return 0.0
        return self.cost / self.all_red_cost


@dataclass
class OnlineRunResult:
    """Aggregate outcome of an online multi-workload run."""

    strategy: str
    budget: int
    capacity: int
    workloads: list[WorkloadResult] = field(default_factory=list)

    @property
    def total_cost(self) -> float:
        """Total utilization over the whole workload sequence."""
        return float(sum(item.cost for item in self.workloads))

    @property
    def total_all_red_cost(self) -> float:
        """Total utilization the sequence would incur with no aggregation."""
        return float(sum(item.all_red_cost for item in self.workloads))

    @property
    def normalized_cost(self) -> float:
        """Total cost normalized to the all-red total (Figure 7's y-axis)."""
        baseline = self.total_all_red_cost
        if baseline == 0.0:
            return 0.0
        return self.total_cost / baseline


def generate_workload_sequence(
    tree: TreeNetwork,
    count: int,
    rng: np.random.Generator | int | None = None,
    uniform=None,
    power_law=None,
    mix_probability: float = 0.5,
) -> list[dict[NodeId, int]]:
    """Generate the paper's online workload stream.

    Each workload's leaf loads are drawn from the uniform distribution with
    probability ``mix_probability`` and from the power-law distribution
    otherwise (the paper uses an even 1/2 - 1/2 mix).
    """
    generator = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    uniform = uniform or UniformLoadDistribution()
    power_law = power_law or PowerLawLoadDistribution()
    sequence: list[dict[NodeId, int]] = []
    for _ in range(count):
        distribution = uniform if generator.random() < mix_probability else power_law
        sequence.append(sample_leaf_loads(tree, distribution, rng=generator))
    return sequence


def _run_soar_batched(
    tree: TreeNetwork,
    workloads: Sequence[Mapping[NodeId, int]],
    solver: Solver,
    budget: int,
    result: OnlineRunResult,
    tracker: CapacityTracker,
    batch_size: int,
) -> OnlineRunResult:
    """The SOAR arrival loop, chunked through :meth:`Solver.solve_many`.

    Each chunk is solved speculatively against the Λ at its start; a
    placement only commits while Λ is still that very set (the tracker
    returns the identical frozenset object until availability changes, so
    the guard is O(1)).  On the first Λ change the remaining speculative
    answers are discarded and the chunk restarts there — recorded results
    are therefore bit-identical to the serial loop.
    """
    model = cost_model_for(tree)
    sequence = list(workloads)
    index = 0
    while index < len(sequence):
        available = tracker.available()
        chunk = sequence[index : index + batch_size]
        chunk_trees = [
            tree.with_loads(loads, available=available) for loads in chunk
        ]
        placements = solver.solve_many(
            (workload_tree, budget) for workload_tree in chunk_trees
        )
        for loads, workload_tree, placement in zip(chunk, chunk_trees, placements):
            current = tracker.available()
            if current is not available and current != available:
                break  # Λ churned mid-chunk: the rest was solved for a stale Λ
            blue = placement.blue_nodes  # ⊆ Λ and |blue| <= budget by construction
            tracker.consume(blue)
            baseline = evaluate_cost(
                workload_tree, frozenset(), loads=loads, validate=False, model=model
            )
            result.workloads.append(
                WorkloadResult(
                    index=index,
                    blue_nodes=blue,
                    cost=placement.cost,
                    all_red_cost=baseline,
                    available_switches=len(available),
                )
            )
            index += 1
    return result


def run_online_sequence(
    tree: TreeNetwork,
    workloads: Sequence[Mapping[NodeId, int]],
    strategy: PlacementStrategy,
    budget: int,
    capacity: int | Mapping[NodeId, int],
    strategy_name: str = "strategy",
    batch_size: int = DEFAULT_ARRIVAL_BATCH,
) -> OnlineRunResult:
    """Run a placement strategy over an online sequence of workloads.

    Parameters
    ----------
    tree:
        The shared network (topology and rates).  The per-workload loads
        come from ``workloads``; the tree's own loads are ignored.
    workloads:
        The arrival sequence; each element maps switches to their load.
    strategy:
        Any :data:`~repro.baselines.strategies.PlacementStrategy`
        (SOAR included).  The strategy sees a tree whose loads are the
        current workload and whose availability set is the residual Λ_t.
        The SOAR strategy is recognized and routed through the batched
        :meth:`~repro.core.solver.Solver.solve_many` arrival loop (see
        the module docstring); results are bit-identical either way.
    budget:
        Per-workload bound ``k`` on the number of aggregation switches.
    capacity:
        Per-switch aggregation capacity ``a(s)`` (scalar or mapping).
    strategy_name:
        Label recorded in the result (used by the experiment harness).
    batch_size:
        Chunk size of the speculative SOAR batching (ignored for other
        strategies); ``1`` restores the strictly serial loop.

    Returns
    -------
    OnlineRunResult
        Per-workload and aggregate costs, normalized against all-red.
    """
    tracker = CapacityTracker(tree, capacity)
    scalar_capacity = (
        int(capacity) if not isinstance(capacity, Mapping) else -1
    )
    result = OnlineRunResult(
        strategy=strategy_name,
        budget=int(budget),
        capacity=scalar_capacity,
    )

    if strategy is soar_strategy and batch_size > 1:
        return _run_soar_batched(
            tree, workloads, Solver(), budget, result, tracker, batch_size
        )

    # Serial loop for arbitrary strategies; the per-arrival cost and
    # baseline are still evaluated by the flat cost kernel over one
    # structural model shared across the sequence.
    model = cost_model_for(tree)
    for index, loads in enumerate(workloads):
        available = tracker.available()
        workload_tree = tree.with_loads(loads, available=available)
        blue = frozenset(strategy(workload_tree, budget)) & available
        if len(blue) > budget:
            blue = frozenset(sorted(blue, key=repr)[:budget])
        tracker.consume(blue)
        cost = evaluate_cost(workload_tree, blue, loads=loads, model=model)
        baseline = evaluate_cost(
            workload_tree, frozenset(), loads=loads, validate=False, model=model
        )
        result.workloads.append(
            WorkloadResult(
                index=index,
                blue_nodes=blue,
                cost=cost,
                all_red_cost=baseline,
                available_switches=len(available),
            )
        )
    return result


def compare_strategies_online(
    tree: TreeNetwork,
    workloads: Sequence[Mapping[NodeId, int]],
    strategies: Mapping[str, PlacementStrategy],
    budget: int,
    capacity: int | Mapping[NodeId, int],
) -> dict[str, OnlineRunResult]:
    """Run several strategies over the *same* workload sequence.

    Every strategy starts from a fresh capacity tracker, so the comparison
    isolates the placement decisions (exactly the setup of Figure 7).
    """
    return {
        name: run_online_sequence(
            tree, workloads, strategy, budget, capacity, strategy_name=name
        )
        for name, strategy in strategies.items()
    }

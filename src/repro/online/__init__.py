"""Online multi-workload extension: capacity tracking, scheduling, budget splitting."""

from repro.online.budget_allocation import (
    BudgetAllocation,
    allocate_budgets,
    workload_cost_curve,
)
from repro.online.capacity import CapacityTracker
from repro.online.scheduler import (
    OnlineRunResult,
    WorkloadResult,
    compare_strategies_online,
    generate_workload_sequence,
    run_online_sequence,
)

__all__ = [
    "BudgetAllocation",
    "CapacityTracker",
    "OnlineRunResult",
    "WorkloadResult",
    "allocate_budgets",
    "compare_strategies_online",
    "generate_workload_sequence",
    "run_online_sequence",
    "workload_cost_curve",
]

"""Per-switch aggregation capacity tracking for the online multi-workload setting.

Section 5.2 of the paper extends the single-workload model: every switch
``s`` has an aggregation capacity ``a(s)`` bounding the number of workloads
for which ``s`` may serve as an aggregation switch.  Workloads arrive one by
one; when a workload is assigned a set of blue switches, the residual
capacity ``a_t(s)`` of each of those switches drops by one.  The set of
switches available to the next workload is ``Λ_t = {s : a_t(s) > 0}``.

:class:`CapacityTracker` encapsulates the residual capacities and produces
the availability set for each arrival.

Beyond the paper's arrival-only stream, the tracker also supports the churn
operations of the long-lived placement service (:mod:`repro.service`):
:meth:`CapacityTracker.release` returns a departing workload's switch slots
to the pool, and :meth:`CapacityTracker.drain` takes a switch out of
service permanently (e.g. for maintenance) so that neither new assignments
nor releases can ever make it available again.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

from repro.core.tree import IncrementalDigest, NodeId, TreeNetwork
from repro.exceptions import CapacityError


class CapacityTracker:
    """Track residual aggregation capacity ``a_t(s)`` across workload arrivals.

    Parameters
    ----------
    tree:
        The network whose switches are being tracked.
    capacity:
        Either a single integer (the same capacity for every switch, as in
        the paper's baseline where ``a(s) = 4``) or a mapping from switch to
        capacity.  Switches absent from the mapping get capacity 0.
    """

    def __init__(self, tree: TreeNetwork, capacity: int | Mapping[NodeId, int]) -> None:
        self._tree = tree
        if isinstance(capacity, Mapping):
            unknown = [s for s in capacity if not tree.is_switch(s)]
            if unknown:
                raise CapacityError(f"capacity given for unknown switches: {unknown!r}")
            initial = {s: int(capacity.get(s, 0)) for s in tree.switches}
        else:
            if int(capacity) < 0:
                raise CapacityError(f"capacity must be non-negative, got {capacity}")
            initial = {s: int(capacity) for s in tree.switches}
        negative = [s for s, value in initial.items() if value < 0]
        if negative:
            raise CapacityError(f"negative capacities for switches: {negative!r}")
        self._initial = dict(initial)
        self._residual = dict(initial)
        self._assignments: list[frozenset[NodeId]] = []
        self._drained: set[NodeId] = set()
        self._rebuild_availability()

    # ------------------------------------------------------------------ #
    # incrementally-maintained availability (set + digest)
    # ------------------------------------------------------------------ #

    def _rebuild_availability(self) -> None:
        """Recompute the Λ set and its digest from scratch (init / reset)."""
        self._available_set = {
            switch for switch, remaining in self._residual.items() if remaining > 0
        }
        self._available_digest = IncrementalDigest(
            repr(switch) for switch in self._available_set
        )
        self._available_cache: frozenset[NodeId] | None = None

    def _switch_entered(self, switch: NodeId) -> None:
        """A switch's residual went 0 -> positive: it (re)joins Λ."""
        self._available_set.add(switch)
        self._available_digest.add(repr(switch))
        self._available_cache = None

    def _switch_left(self, switch: NodeId) -> None:
        """A switch's residual hit 0 (or it drained): it leaves Λ."""
        self._available_set.discard(switch)
        self._available_digest.remove(repr(switch))
        self._available_cache = None

    @property
    def tree(self) -> TreeNetwork:
        """The network the tracker was created for."""
        return self._tree

    @property
    def num_assigned_workloads(self) -> int:
        """Number of workloads consumed so far."""
        return len(self._assignments)

    @property
    def assignments(self) -> tuple[frozenset[NodeId], ...]:
        """The blue sets consumed so far, in arrival order."""
        return tuple(self._assignments)

    def residual(self, switch: NodeId) -> int:
        """Residual capacity ``a_t(switch)`` before the next workload."""
        try:
            return self._residual[switch]
        except KeyError as exc:
            raise CapacityError(f"{switch!r} is not a switch of this network") from exc

    def residual_capacities(self) -> dict[NodeId, int]:
        """A copy of all residual capacities."""
        return dict(self._residual)

    def available(self) -> frozenset[NodeId]:
        """The availability set ``Λ_t`` for the next workload.

        Maintained incrementally across consume/release/drain, so the
        returned frozenset is cached: as long as Λ does not change, every
        call returns the *same object* (callers may use an identity check
        to detect churn cheaply).
        """
        if self._available_cache is None:
            self._available_cache = frozenset(self._available_set)
        return self._available_cache

    def availability_fingerprint(self) -> str:
        """Digest of ``Λ_t``, equal to ``fingerprint_nodes(self.available())``.

        Maintained incrementally: admit/release/drain churn updates it in
        O(switches whose availability changed) rather than re-digesting
        the whole fleet (``tests/test_cost_kernels.py`` pins the
        incremental-vs-full equivalence across churn traces).
        """
        return self._available_digest.hexdigest()

    def available_tree(self) -> TreeNetwork:
        """The network restricted to the currently available switches.

        Convenience for running any placement strategy against the residual
        capacities: the returned tree shares topology, rates and loads but
        its Λ equals :meth:`available`.
        """
        return self._tree.with_available(self.available())

    def consume(self, blue_nodes: Iterable[NodeId]) -> frozenset[NodeId]:
        """Record that a workload was assigned the given aggregation switches.

        Raises
        ------
        CapacityError
            If any of the switches has no residual capacity left.
        """
        blue = frozenset(blue_nodes)
        exhausted = [s for s in blue if self._residual.get(s, 0) <= 0]
        unknown = [s for s in blue if s not in self._residual]
        if unknown:
            raise CapacityError(f"unknown switches in assignment: {unknown!r}")
        if exhausted:
            raise CapacityError(
                f"switches have no residual aggregation capacity: {sorted(map(repr, exhausted))}"
            )
        for switch in blue:
            self._residual[switch] -= 1
            if self._residual[switch] == 0:
                self._switch_left(switch)
        self._assignments.append(blue)
        return blue

    @property
    def drained(self) -> frozenset[NodeId]:
        """Switches permanently removed from service via :meth:`drain`."""
        return frozenset(self._drained)

    def release(self, blue_nodes: Iterable[NodeId]) -> frozenset[NodeId]:
        """Return a departed workload's switch slots to the capacity pool.

        Drained switches keep residual capacity 0 — the tenant leaves, but
        the switch stays out of service.  Returns the switches whose
        capacity was actually restored.

        Raises
        ------
        CapacityError
            If a switch is unknown, or restoring a slot would exceed the
            switch's initial capacity (releasing something that was never
            consumed).
        """
        blue = frozenset(blue_nodes)
        unknown = [s for s in blue if s not in self._residual]
        if unknown:
            raise CapacityError(f"unknown switches in release: {unknown!r}")
        overfull = [
            s
            for s in blue
            if s not in self._drained and self._residual[s] + 1 > self._initial[s]
        ]
        if overfull:
            raise CapacityError(
                "release would exceed initial capacity for switches: "
                f"{sorted(map(repr, overfull))}"
            )
        restored = blue - self._drained
        for switch in restored:
            self._residual[switch] += 1
            if self._residual[switch] == 1:
                self._switch_entered(switch)
        return restored

    def drain(self, switch: NodeId) -> int:
        """Take a switch out of service permanently.

        Sets the residual capacity to 0 and remembers the switch as drained,
        so later :meth:`release` calls cannot resurrect it.  Idempotent.
        Returns the number of capacity slots forfeited (residual capacity at
        drain time; already-consumed slots are accounted by the caller when
        the displaced workloads are released).

        Raises
        ------
        CapacityError
            If ``switch`` is not a switch of this network.
        """
        if switch not in self._residual:
            raise CapacityError(f"{switch!r} is not a switch of this network")
        forfeited = self._residual[switch]
        self._residual[switch] = 0
        self._drained.add(switch)
        if forfeited > 0:
            self._switch_left(switch)
        return forfeited

    def reset(self) -> None:
        """Restore the initial capacities and forget assignments and drains."""
        self._residual = dict(self._initial)
        self._assignments = []
        self._drained = set()
        self._rebuild_availability()

    # ------------------------------------------------------------------ #
    # serialization hooks (fleet snapshots, :mod:`repro.service.persistence`)
    # ------------------------------------------------------------------ #

    def state_dict(self) -> dict:
        """JSON-serializable view of the tracker's mutable state.

        Switches are stringified (``str(switch)``, the same convention as
        trace events) so the payload survives JSON round-trips regardless
        of the node-id type; :meth:`load_state` resolves the names back
        against a caller-supplied index.  Captures everything
        :meth:`load_state` needs to resume bit-identically: initial and
        residual capacities, the drained set, and the consumed blue sets
        in arrival order.
        """
        return {
            "initial": {str(s): int(v) for s, v in self._initial.items()},
            "residual": {str(s): int(v) for s, v in self._residual.items()},
            "drained": sorted(str(s) for s in self._drained),
            "assignments": [
                sorted(str(s) for s in blue) for blue in self._assignments
            ],
        }

    def load_state(self, state: Mapping, node_index: Mapping[str, NodeId]) -> None:
        """Restore a :meth:`state_dict` payload onto this tracker.

        ``node_index`` maps ``str(switch)`` back to node ids (see
        :func:`repro.service.events.node_index`).  The incremental Λ digest
        is rebuilt from the restored residuals; the additive multiset
        construction guarantees it equals the digest an uninterrupted
        tracker would carry after the same churn.

        Raises
        ------
        CapacityError
            If the payload references switches unknown to this network.
        """

        def resolve(name: str) -> NodeId:
            try:
                return node_index[name]
            except KeyError as exc:
                raise CapacityError(
                    f"capacity snapshot references unknown switch {name!r}"
                ) from exc

        # Resolve everything into locals first: a payload referencing an
        # unknown switch raises before any field is touched, so a failed
        # restore leaves the tracker exactly as it was (atomicity rule).
        initial = {resolve(n): int(v) for n, v in state["initial"].items()}
        residual = {resolve(n): int(v) for n, v in state["residual"].items()}
        drained = {resolve(n) for n in state.get("drained", [])}
        assignments = [
            frozenset(resolve(n) for n in blue)
            for blue in state.get("assignments", [])
        ]
        self._initial = initial
        self._residual = residual
        self._drained = drained
        self._assignments = assignments
        self._rebuild_availability()

    def utilization_of_capacity(self) -> float:
        """Fraction of the in-service aggregation capacity consumed so far.

        Drained switches are excluded from both numerator and denominator:
        their forfeited slots are not "consumed", they no longer exist.
        """
        total = sum(
            value for s, value in self._initial.items() if s not in self._drained
        )
        if total == 0:
            return 0.0
        used = total - sum(
            value for s, value in self._residual.items() if s not in self._drained
        )
        return used / total

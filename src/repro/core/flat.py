"""Flat tensor view of a gather result, shared by the batched kernels.

The flat gather engine of :mod:`repro.core.engine` computes the SOAR dynamic
program directly on contiguous ``(l, i, node)`` tensors; the level-batched
colour kernel of :mod:`repro.core.color` traces placements out of the very
same layout.  :class:`FlatTables` is that layout made explicit: the tensors
plus the index metadata (node order, per-level slabs, ragged child lists,
breadcrumb slots) a batched traversal needs.

Results produced by the flat engine carry their :class:`FlatTables`
zero-copy (the per-node :class:`~repro.core.gather.NodeTables` are views
into the same memory).  Results produced by the per-node reference engine
do not; :func:`flat_tables_for` stacks them into the flat layout on first
use and caches the outcome on the result, so the batched colour kernel
works identically on both engines' tables — which is exactly what the
differential tests exploit.

The cost phase shares the layout too: :class:`FlatCostModel` is the
structural slice of the metadata (node order, parent pointers, per-link
``rho``, level slabs, the post-order permutation) that the flat cost
kernel of :mod:`repro.core.cost` batches Eq. (1) over.  A model depends
only on the *topology and rates* — loads and Λ are call-time inputs — so
one model serves every same-structure workload network, and a
:class:`~repro.core.solver.GatherTable` derives its model from the trace
metadata it already carries (:func:`cost_model_for`), which is why a warm
table hit never rebuilds the per-link message-count dicts.

Node order
----------
Nodes are laid out deepest level first (stable within a level), matching
the flat engine: every level is then one contiguous slab, recorded in
``level_slices``, so both the bottom-up gather and the top-down colour
trace touch contiguous runs.  The children of all nodes are concatenated
into one ragged array (``child_concat`` + ``child_offset``), keeping the
per-stage scatter of the colour traceback a single fancy-indexed gather
even on trees with wildly varying fan-out.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, field

import numpy as np

from repro.core.gather import GatherResult, NodeTables
from repro.core.tree import NodeId, TreeNetwork
from repro.exceptions import RepairError


@dataclass
class FlatTables:
    """Flat ``(l, i, node)`` tensors plus the traversal metadata.

    Attributes
    ----------
    tree:
        The instance the tables were gathered for — the network whose
        loads and Λ the cached ``load`` / ``avail`` arrays reflect.
        Consumers tracing for a *different* (same-structure) network must
        re-derive those two arrays from their own tree (the colour kernel
        does; see :func:`repro.core.color.soar_color_batched`).
    order:
        Nodes in flat order (deepest level first, stable within a level);
        position ``p`` of every other array refers to ``order[p]``.
    index:
        Inverse of ``order``: node id -> flat position.
    depth, load, avail, leaf, num_children:
        Per-node scalars in flat order.
    child_concat, child_offset:
        Ragged child lists: the children of the node at position ``p`` are
        ``child_concat[child_offset[p] : child_offset[p] + num_children[p]]``
        (as flat positions), in the tree's child order.
    stage_offset:
        Position ``p``'s first breadcrumb slot in the split tensors; a node
        with ``C`` children owns slots ``stage_offset[p] .. + C - 2``.
    level_slices:
        ``level_slices[d - 1]`` is the ``(start, stop)`` slab of the nodes
        at depth ``d`` (1-based; the root's level is first).
    y_blue, y_red:
        The final-stage colour-decision tables, shape
        ``(height + 1, k + 1, n)``.  Rows ``l > depth`` of a node are
        unspecified (never read: the traceback parameter satisfies
        ``l <= depth``).
    splits_blue, splits_red:
        Breadcrumb tensors of shape ``(height + 1, k + 1, total_stages)``.
    """

    tree: TreeNetwork
    order: tuple[NodeId, ...]
    index: dict[NodeId, int]
    depth: np.ndarray
    load: np.ndarray
    avail: np.ndarray
    leaf: np.ndarray
    num_children: np.ndarray
    child_concat: np.ndarray
    child_offset: np.ndarray
    stage_offset: np.ndarray
    level_slices: tuple[tuple[int, int], ...]
    y_blue: np.ndarray
    y_red: np.ndarray
    splits_blue: np.ndarray
    splits_red: np.ndarray
    #: Lazily-derived :class:`FlatCostModel` sharing this layout (see
    #: :func:`cost_model_for`); never built by the engines themselves.
    cost_model: "FlatCostModel | None" = field(default=None, repr=False, compare=False)

    def children_of(self, position: int) -> np.ndarray:
        """Flat positions of the children of the node at ``position``."""
        start = int(self.child_offset[position])
        return self.child_concat[start : start + int(self.num_children[position])]

    def node_tables(self, position: int) -> NodeTables:
        """The per-node slab views of one flat position, as :class:`NodeTables`.

        ``y_blue`` / ``y_red`` and the breadcrumb slices are zero-copy views
        into the flat tensors; ``x`` and ``choice`` are derived per node
        (``x = min(y_red, y_blue)`` elementwise and the strict
        ``y_blue < y_red`` decision), which is bit-identical to slicing the
        full-tensor versions the gather driver materializes — every valid
        ``x`` entry was *written* as exactly that minimum.  This is what
        lets a delta repair skip the O(n) view-materialization loop and
        hand out per-node tables on demand (:class:`LazyNodeTables`).
        """
        rows = int(self.depth[position]) + 1
        y_blue = self.y_blue[:rows, :, position]
        y_red = self.y_red[:rows, :, position]
        stages = max(int(self.num_children[position]) - 1, 0)
        base = int(self.stage_offset[position])
        return NodeTables(
            x=np.minimum(y_red, y_blue),
            y_blue=y_blue,
            y_red=y_red,
            choice=np.less(y_blue, y_red).view(np.uint8),
            splits_blue=[
                self.splits_blue[:rows, :, base + stage] for stage in range(stages)
            ],
            splits_red=[
                self.splits_red[:rows, :, base + stage] for stage in range(stages)
            ],
        )


@dataclass
class FlatCostModel:
    """Structural metadata the level-batched cost kernel traverses.

    The model captures only what Eq. (1) needs about the *topology and
    rates*: loads and the blue set are inputs of every evaluation.  One
    model therefore serves every workload network sharing the structure —
    the online scheduler builds one per shared fleet network and feeds
    per-arrival load mappings through it.

    Attributes
    ----------
    tree:
        The network the model was built from.  When an evaluation passes a
        *different* (same-structure, same-rates) tree, its loads are
        re-derived instead of trusting the cached ``load`` array — the
        same foreign-tree contract the batched colour kernel follows.
    order, index, level_slices:
        The canonical flat layout (see :class:`FlatTables`).
    parent:
        Flat position of every node's parent; ``-1`` for the root (whose
        parent is the destination).
    rho:
        Per-link transmission time ``rho((v, p(v)))`` in flat order.
    load:
        The model tree's own loads in flat order (used only when the
        evaluation passes neither ``loads`` nor a foreign tree).
    postorder:
        Permutation mapping post-order rank to flat position: iterating
        ``order[postorder[i]]`` visits the switches exactly as
        ``tree.switches`` does, which is what lets the kernel reproduce
        the reference summation order bit for bit.
    postorder_nodes:
        The switches in post-order (``tree.switches``), kept so per-link
        dictionaries can be zipped without per-node lookups.
    """

    tree: TreeNetwork
    order: tuple[NodeId, ...]
    index: dict[NodeId, int]
    parent: np.ndarray
    rho: np.ndarray
    load: np.ndarray
    level_slices: tuple[tuple[int, int], ...]
    postorder: np.ndarray
    postorder_nodes: tuple[NodeId, ...]

    def load_vector(self, loads: Mapping[NodeId, int]) -> np.ndarray:
        """A flat-order load array for an explicit load mapping.

        Mirrors the reference kernels' ``loads.get(switch, 0)`` contract:
        switches absent from the mapping carry load 0 and keys that are
        not switches of the network are ignored.
        """
        vector = np.zeros(len(self.order), dtype=np.int64)
        index = self.index
        for node, value in loads.items():
            position = index.get(node)
            if position is not None:
                vector[position] = int(value)
        return vector

    def loads_for(self, tree: TreeNetwork, loads: Mapping[NodeId, int] | None) -> np.ndarray:
        """Resolve the effective flat-order load array of one evaluation."""
        if loads is not None:
            return self.load_vector(loads)
        if tree is self.tree:
            return self.load
        return np.fromiter(
            (tree.load(node) for node in self.order),
            dtype=np.int64,
            count=len(self.order),
        )


def cost_model_for(tree: TreeNetwork, flat: FlatTables | None = None) -> FlatCostModel:
    """Build (or fetch) the :class:`FlatCostModel` of a network.

    When ``flat`` tables gathered for the *same* tree are given, the model
    reuses their order/index/load arrays and is cached on them, so a
    gather artifact pays the construction once across every placement it
    traces; bare trees get a fresh model (callers evaluating many
    placements over one network should hold on to it).
    """
    if flat is not None and flat.tree is tree and flat.cost_model is not None:
        return flat.cost_model
    if flat is not None and flat.tree is tree:
        order, index = flat.order, flat.index
        load = flat.load
        level_slices = flat.level_slices
    else:
        order = tuple(flat_order(tree))
        index = {node: position for position, node in enumerate(order)}
        load = np.fromiter((tree.load(v) for v in order), dtype=np.int64, count=len(order))
        depth = np.fromiter((tree.depth(v) for v in order), dtype=np.int64, count=len(order))
        level_slices = level_slices_for(depth, tree.height)
    n = len(order)
    destination = tree.destination
    parent = np.fromiter(
        (
            index[p] if (p := tree.parent(v)) != destination else -1
            for v in order
        ),
        dtype=np.int64,
        count=n,
    )
    rho = np.fromiter((tree.rho(v) for v in order), dtype=np.float64, count=n)
    postorder_nodes = tree.switches
    postorder = np.fromiter(
        (index[v] for v in postorder_nodes), dtype=np.int64, count=n
    )
    model = FlatCostModel(
        tree=tree,
        order=order,
        index=index,
        parent=parent,
        rho=rho,
        load=load,
        level_slices=level_slices,
        postorder=postorder,
        postorder_nodes=postorder_nodes,
    )
    if flat is not None and flat.tree is tree:
        flat.cost_model = model
    return model


def flat_order(tree: TreeNetwork) -> list[NodeId]:
    """The canonical flat node order: deepest level first, stable within."""
    return sorted(tree.switches, key=tree.depth, reverse=True)


def level_slices_for(depth: np.ndarray, height: int) -> tuple[tuple[int, int], ...]:
    """Per-level ``(start, stop)`` slabs of a descending-sorted depth array."""
    negated = -depth
    slices = []
    for level in range(1, height + 1):
        start = int(np.searchsorted(negated, -level, side="left"))
        stop = int(np.searchsorted(negated, -level, side="right"))
        slices.append((start, stop))
    return tuple(slices)


def build_metadata(
    tree: TreeNetwork,
    order: list[NodeId],
    index: dict[NodeId, int],
) -> dict:
    """Compute every non-tensor field of :class:`FlatTables` for ``tree``."""
    n = tree.num_switches
    depth = np.fromiter((tree.depth(v) for v in order), dtype=np.int64, count=n)
    load = np.fromiter((tree.load(v) for v in order), dtype=np.int64, count=n)
    avail = np.fromiter((v in tree.available for v in order), dtype=bool, count=n)
    num_children = np.fromiter(
        (tree.num_children(v) for v in order), dtype=np.int64, count=n
    )
    child_offset = np.concatenate(([0], np.cumsum(num_children)[:-1]))
    child_concat = np.fromiter(
        (index[c] for v in order for c in tree.children(v)),
        dtype=np.int64,
        count=int(num_children.sum()),
    )
    stage_counts = np.maximum(num_children - 1, 0)
    stage_offset = np.concatenate(([0], np.cumsum(stage_counts)[:-1]))
    return {
        "tree": tree,
        "order": tuple(order),
        "index": index,
        "depth": depth,
        "load": load,
        "avail": avail,
        "leaf": num_children == 0,
        "num_children": num_children,
        "child_concat": child_concat,
        "child_offset": child_offset,
        "stage_offset": stage_offset,
        "level_slices": level_slices_for(depth, tree.height),
    }


def _stack_result(tree: TreeNetwork, result: GatherResult) -> FlatTables:
    """Stack per-node :class:`NodeTables` into the flat layout.

    Used for results of the per-node reference engine (the flat engine
    attaches its tensors directly).  Rows beyond a node's depth are left
    uninitialized, exactly as the flat engine leaves them.
    """
    order = flat_order(tree)
    index = {node: position for position, node in enumerate(order)}
    meta = build_metadata(tree, order, index)
    n = tree.num_switches
    height = tree.height
    width = result.budget + 1
    stage_counts = np.maximum(meta["num_children"] - 1, 0)
    total_stages = int(stage_counts.sum())

    y_blue = np.empty((height + 1, width, n), dtype=np.float64)
    y_red = np.empty((height + 1, width, n), dtype=np.float64)
    splits_blue = np.zeros((height + 1, width, total_stages), dtype=np.int32)
    splits_red = np.zeros((height + 1, width, total_stages), dtype=np.int32)

    for position, node in enumerate(order):
        tables = result.tables[node]
        rows = int(meta["depth"][position]) + 1
        y_blue[:rows, :, position] = tables.y_blue
        y_red[:rows, :, position] = tables.y_red
        base = int(meta["stage_offset"][position])
        for stage, split in enumerate(tables.splits_blue):
            splits_blue[:rows, :, base + stage] = split
        for stage, split in enumerate(tables.splits_red):
            splits_red[:rows, :, base + stage] = split

    return FlatTables(
        y_blue=y_blue,
        y_red=y_red,
        splits_blue=splits_blue,
        splits_red=splits_red,
        **meta,
    )


def flat_tables_for(tree: TreeNetwork, result: GatherResult) -> FlatTables:
    """The :class:`FlatTables` of ``result``, building and caching if needed.

    Flat-engine results carry theirs from birth; reference-engine results
    pay one per-node stacking pass on first use, memoized on the result so
    budget sweeps over the same tables stack only once.
    """
    if result.flat is None:
        result.flat = _stack_result(tree, result)
    return result.flat


class LazyNodeTables(dict):
    """``node -> NodeTables`` mapping materialized on demand from flat tensors.

    A delta repair recomputes only the dirtied DP slabs; eagerly rebuilding
    all ``n`` per-node views afterwards would cost a sizeable fraction of a
    cold gather and defeat the point.  Repaired results therefore carry this
    mapping instead: a real ``dict`` (so every consumer treating ``tables``
    as a mapping keeps working) whose entries are built from
    :meth:`FlatTables.node_tables` the first time a node is looked up.  The
    batched colour kernel never reads ``tables`` at all, and
    ``cost_for_budget`` touches only the root, so the common warm path
    materializes a single node.

    Bulk protocols (iteration, ``len``, ``keys``/``values``/``items``,
    containment, equality) reflect the *full* node set: they materialize
    every node in canonical flat order first, making the mapping
    indistinguishable from the eager dict a cold gather builds.
    """

    def __init__(self, flat: FlatTables) -> None:
        super().__init__()
        self._flat = flat

    def __missing__(self, node: NodeId) -> NodeTables:
        tables = self._flat.node_tables(self._flat.index[node])
        dict.__setitem__(self, node, tables)
        return tables

    # ``dict.get`` does not consult ``__missing__``; route it through
    # ``__getitem__`` so lazily-absent nodes still resolve.
    def get(self, node, default=None):
        if node not in self._flat.index:
            return default
        return self[node]

    def _materialize_all(self) -> None:
        for node in self._flat.order:
            if not dict.__contains__(self, node):
                self[node]

    def __contains__(self, node: object) -> bool:
        return node in self._flat.index

    def __len__(self) -> int:
        return len(self._flat.order)

    def __iter__(self):
        self._materialize_all()
        return dict.__iter__(self)

    def keys(self):
        self._materialize_all()
        return dict.keys(self)

    def values(self):
        self._materialize_all()
        return dict.values(self)

    def items(self):
        self._materialize_all()
        return dict.items(self)

    def __eq__(self, other: object) -> bool:
        self._materialize_all()
        return dict.__eq__(self, other)

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        return result if result is NotImplemented else not result


def dirty_ancestor_positions(
    tree: TreeNetwork,
    index: dict[NodeId, int],
    delta: frozenset[NodeId] | set[NodeId],
) -> np.ndarray:
    """Flat positions whose DP slabs an availability delta invalidates.

    A switch's ``X`` table depends on the availability of every switch in
    its subtree, so flipping Λ membership of the delta switches dirties
    exactly those switches plus all their ancestors up to the root — the
    union of the delta's root paths.  Ancestor walks stop early when they
    hit a position already collected, so overlapping paths are not
    re-walked.  Returns the positions sorted ascending (``np.int64``).

    Raises
    ------
    RepairError
        If a delta entry is not a switch of ``tree`` (repairing towards a
        different structure is unsound).
    """
    destination = tree.destination
    dirty: set[int] = set()
    for switch in delta:
        if switch not in index:
            raise RepairError(
                f"availability delta entry {switch!r} is not a switch of the network"
            )
        node = switch
        while True:
            position = index[node]
            if position in dirty:
                break
            dirty.add(position)
            node = tree.parent(node)
            if node == destination:
                break
    return np.array(sorted(dirty), dtype=np.int64)


def dirty_level_groups(
    depth: np.ndarray, positions: np.ndarray
) -> list[tuple[int, np.ndarray]]:
    """Group dirty flat positions by level, deepest level first.

    Mirrors the cold gather's traversal order: levels descend (children
    are final before any parent is touched) and positions within a level
    stay ascending — the order ``positions`` already has.
    """
    levels = depth[positions]
    return [
        (int(level), positions[levels == level])
        for level in np.unique(levels)[::-1]
    ]

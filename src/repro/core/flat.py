"""Flat tensor view of a gather result, shared by the batched kernels.

The flat gather engine of :mod:`repro.core.engine` computes the SOAR dynamic
program directly on contiguous ``(l, i, node)`` tensors; the level-batched
colour kernel of :mod:`repro.core.color` traces placements out of the very
same layout.  :class:`FlatTables` is that layout made explicit: the tensors
plus the index metadata (node order, per-level slabs, ragged child lists,
breadcrumb slots) a batched traversal needs.

Results produced by the flat engine carry their :class:`FlatTables`
zero-copy (the per-node :class:`~repro.core.gather.NodeTables` are views
into the same memory).  Results produced by the per-node reference engine
do not; :func:`flat_tables_for` stacks them into the flat layout on first
use and caches the outcome on the result, so the batched colour kernel
works identically on both engines' tables — which is exactly what the
differential tests exploit.

Node order
----------
Nodes are laid out deepest level first (stable within a level), matching
the flat engine: every level is then one contiguous slab, recorded in
``level_slices``, so both the bottom-up gather and the top-down colour
trace touch contiguous runs.  The children of all nodes are concatenated
into one ragged array (``child_concat`` + ``child_offset``), keeping the
per-stage scatter of the colour traceback a single fancy-indexed gather
even on trees with wildly varying fan-out.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.gather import GatherResult
from repro.core.tree import NodeId, TreeNetwork


@dataclass
class FlatTables:
    """Flat ``(l, i, node)`` tensors plus the traversal metadata.

    Attributes
    ----------
    tree:
        The instance the tables were gathered for — the network whose
        loads and Λ the cached ``load`` / ``avail`` arrays reflect.
        Consumers tracing for a *different* (same-structure) network must
        re-derive those two arrays from their own tree (the colour kernel
        does; see :func:`repro.core.color.soar_color_batched`).
    order:
        Nodes in flat order (deepest level first, stable within a level);
        position ``p`` of every other array refers to ``order[p]``.
    index:
        Inverse of ``order``: node id -> flat position.
    depth, load, avail, leaf, num_children:
        Per-node scalars in flat order.
    child_concat, child_offset:
        Ragged child lists: the children of the node at position ``p`` are
        ``child_concat[child_offset[p] : child_offset[p] + num_children[p]]``
        (as flat positions), in the tree's child order.
    stage_offset:
        Position ``p``'s first breadcrumb slot in the split tensors; a node
        with ``C`` children owns slots ``stage_offset[p] .. + C - 2``.
    level_slices:
        ``level_slices[d - 1]`` is the ``(start, stop)`` slab of the nodes
        at depth ``d`` (1-based; the root's level is first).
    y_blue, y_red:
        The final-stage colour-decision tables, shape
        ``(height + 1, k + 1, n)``.  Rows ``l > depth`` of a node are
        unspecified (never read: the traceback parameter satisfies
        ``l <= depth``).
    splits_blue, splits_red:
        Breadcrumb tensors of shape ``(height + 1, k + 1, total_stages)``.
    """

    tree: TreeNetwork
    order: tuple[NodeId, ...]
    index: dict[NodeId, int]
    depth: np.ndarray
    load: np.ndarray
    avail: np.ndarray
    leaf: np.ndarray
    num_children: np.ndarray
    child_concat: np.ndarray
    child_offset: np.ndarray
    stage_offset: np.ndarray
    level_slices: tuple[tuple[int, int], ...]
    y_blue: np.ndarray
    y_red: np.ndarray
    splits_blue: np.ndarray
    splits_red: np.ndarray


def flat_order(tree: TreeNetwork) -> list[NodeId]:
    """The canonical flat node order: deepest level first, stable within."""
    return sorted(tree.switches, key=tree.depth, reverse=True)


def level_slices_for(depth: np.ndarray, height: int) -> tuple[tuple[int, int], ...]:
    """Per-level ``(start, stop)`` slabs of a descending-sorted depth array."""
    negated = -depth
    slices = []
    for level in range(1, height + 1):
        start = int(np.searchsorted(negated, -level, side="left"))
        stop = int(np.searchsorted(negated, -level, side="right"))
        slices.append((start, stop))
    return tuple(slices)


def build_metadata(
    tree: TreeNetwork,
    order: list[NodeId],
    index: dict[NodeId, int],
) -> dict:
    """Compute every non-tensor field of :class:`FlatTables` for ``tree``."""
    n = tree.num_switches
    depth = np.fromiter((tree.depth(v) for v in order), dtype=np.int64, count=n)
    load = np.fromiter((tree.load(v) for v in order), dtype=np.int64, count=n)
    avail = np.fromiter((v in tree.available for v in order), dtype=bool, count=n)
    num_children = np.fromiter(
        (tree.num_children(v) for v in order), dtype=np.int64, count=n
    )
    child_offset = np.concatenate(([0], np.cumsum(num_children)[:-1]))
    child_concat = np.fromiter(
        (index[c] for v in order for c in tree.children(v)),
        dtype=np.int64,
        count=int(num_children.sum()),
    )
    stage_counts = np.maximum(num_children - 1, 0)
    stage_offset = np.concatenate(([0], np.cumsum(stage_counts)[:-1]))
    return {
        "tree": tree,
        "order": tuple(order),
        "index": index,
        "depth": depth,
        "load": load,
        "avail": avail,
        "leaf": num_children == 0,
        "num_children": num_children,
        "child_concat": child_concat,
        "child_offset": child_offset,
        "stage_offset": stage_offset,
        "level_slices": level_slices_for(depth, tree.height),
    }


def _stack_result(tree: TreeNetwork, result: GatherResult) -> FlatTables:
    """Stack per-node :class:`NodeTables` into the flat layout.

    Used for results of the per-node reference engine (the flat engine
    attaches its tensors directly).  Rows beyond a node's depth are left
    uninitialized, exactly as the flat engine leaves them.
    """
    order = flat_order(tree)
    index = {node: position for position, node in enumerate(order)}
    meta = build_metadata(tree, order, index)
    n = tree.num_switches
    height = tree.height
    width = result.budget + 1
    stage_counts = np.maximum(meta["num_children"] - 1, 0)
    total_stages = int(stage_counts.sum())

    y_blue = np.empty((height + 1, width, n), dtype=np.float64)
    y_red = np.empty((height + 1, width, n), dtype=np.float64)
    splits_blue = np.zeros((height + 1, width, total_stages), dtype=np.int32)
    splits_red = np.zeros((height + 1, width, total_stages), dtype=np.int32)

    for position, node in enumerate(order):
        tables = result.tables[node]
        rows = int(meta["depth"][position]) + 1
        y_blue[:rows, :, position] = tables.y_blue
        y_red[:rows, :, position] = tables.y_red
        base = int(meta["stage_offset"][position])
        for stage, split in enumerate(tables.splits_blue):
            splits_blue[:rows, :, base + stage] = split
        for stage, split in enumerate(tables.splits_red):
            splits_red[:rows, :, base + stage] = split

    return FlatTables(
        y_blue=y_blue,
        y_red=y_red,
        splits_blue=splits_blue,
        splits_red=splits_red,
        **meta,
    )


def flat_tables_for(tree: TreeNetwork, result: GatherResult) -> FlatTables:
    """The :class:`FlatTables` of ``result``, building and caching if needed.

    Flat-engine results carry theirs from birth; reference-engine results
    pay one per-node stacking pass on first use, memoized on the result so
    budget sweeps over the same tables stack only once.
    """
    if result.flat is None:
        result.flat = _stack_result(tree, result)
    return result.flat

"""The SOAR algorithm: optimal bounded in-network aggregation placement.

This module is the public entry point for solving the φ-BIC problem
(Definition 2.1 of the paper): given a weighted tree network, a load, an
availability set Λ and a budget ``k``, find at most ``k`` aggregation (blue)
switches minimizing the network utilization complexity of a Reduce.

:func:`solve` runs the two phases — :func:`repro.core.gather.soar_gather`
followed by :func:`repro.core.color.soar_color` — and wraps the outcome in a
:class:`SoarSolution` carrying the chosen placement, its cost, and the DP
tables (useful for budget sweeps and for inspecting the breadcrumbs).

Example
-------
>>> from repro.topology import complete_binary_tree
>>> from repro.core.soar import solve
>>> tree = complete_binary_tree(4, leaf_loads=[2, 6, 5, 4])
>>> solution = solve(tree, budget=2)
>>> solution.cost
20.0
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.core.color import soar_color
from repro.core.cost import utilization_cost
from repro.core.engine import DEFAULT_ENGINE, gather
from repro.core.gather import GatherResult
from repro.core.tree import NodeId, TreeNetwork


@dataclass(frozen=True)
class SoarSolution:
    """Result of running SOAR on a φ-BIC instance.

    Attributes
    ----------
    blue_nodes:
        The selected aggregation switches ``U`` (``|U| <= budget``).
    cost:
        The utilization complexity ``phi(T, L, U)`` of the placement,
        recomputed from the Reduce message counts (not just read from the DP
        table) so it is verifiable against the cost module.
    predicted_cost:
        The optimum announced by the gather table ``X_r(1, k)``.  Equal to
        ``cost`` whenever the tables are consistent; the test-suite asserts
        this on every solve.
    budget:
        The budget ``k`` this solution was traced for.
    gather:
        The full gather result, kept for budget sweeps and diagnostics.
    """

    blue_nodes: frozenset[NodeId]
    cost: float
    predicted_cost: float
    budget: int
    gather: GatherResult

    @property
    def num_blue(self) -> int:
        """Number of aggregation switches actually used."""
        return len(self.blue_nodes)


def solve(
    tree: TreeNetwork,
    budget: int,
    exact_k: bool = False,
    gathered: GatherResult | None = None,
    engine: str = DEFAULT_ENGINE,
) -> SoarSolution:
    """Solve the φ-BIC problem optimally with SOAR.

    Parameters
    ----------
    tree:
        The tree network (topology, link rates, loads, availability Λ).
    budget:
        Maximum number of blue nodes ``k``.
    exact_k:
        Budget semantics; see :mod:`repro.core.gather`.  The default
        (at-most-k) is never worse than the paper-literal exactly-k mode.
    gathered:
        Optional pre-computed gather tables.  When sweeping budgets
        ``1 .. k`` it is much cheaper to gather once at the largest budget
        and trace each smaller budget from the same tables.
    engine:
        Gather engine to use: ``"flat"`` (vectorized, the default) or
        ``"reference"`` (per-node Algorithm 3); see
        :mod:`repro.core.engine`.  Both produce identical tables; the
        reference engine is retained for differential testing.

    Returns
    -------
    SoarSolution
        The optimal placement and its cost.
    """
    if gathered is None or gathered.budget < min(budget, len(tree.available)):
        gathered = gather(tree, budget, exact_k=exact_k, engine=engine)
    effective_budget = min(int(budget), gathered.budget)
    blue = soar_color(tree, gathered, budget=effective_budget)
    achieved = utilization_cost(tree, blue)
    predicted = gathered.cost_for_budget(effective_budget)
    return SoarSolution(
        blue_nodes=blue,
        cost=achieved,
        predicted_cost=predicted,
        budget=effective_budget,
        gather=gathered,
    )


def solve_budget_sweep(
    tree: TreeNetwork,
    budgets: Iterable[int],
    exact_k: bool = False,
    engine: str = DEFAULT_ENGINE,
) -> dict[int, SoarSolution]:
    """Solve the φ-BIC problem for several budgets using a single gather.

    This is how the evaluation figures (e.g. Figure 6, x-axis ``k``) are
    produced: the gather tables for the largest budget contain every smaller
    budget as a column, so only the cheap colouring phase is repeated.
    """
    budget_list = sorted({int(b) for b in budgets})
    if not budget_list:
        return {}
    if min(budget_list) < 0:
        raise ValueError("budgets must be non-negative")
    gathered = gather(tree, max(budget_list), exact_k=exact_k, engine=engine)
    return {
        budget: solve(tree, budget, exact_k=exact_k, gathered=gathered)
        for budget in budget_list
    }


def optimal_cost(
    tree: TreeNetwork,
    budget: int,
    exact_k: bool = False,
    engine: str = DEFAULT_ENGINE,
) -> float:
    """Convenience wrapper returning only the optimal utilization value."""
    return solve(tree, budget, exact_k=exact_k, engine=engine).cost

"""Deprecated keyword-threaded solver entry points (pre-``Solver`` API).

.. deprecated::
    :func:`solve`, :func:`solve_budget_sweep`, and :func:`optimal_cost` are
    thin shims over the staged artifact API of :mod:`repro.core.solver` and
    emit :class:`DeprecationWarning`.  Migrate::

        solve(tree, k)                     -> Solver().solve(tree, k)
        solve(tree, k, exact_k=True)       -> Solver(exact_k=True).solve(tree, k)
        solve(tree, k, gathered=g)         -> table.place(k)   # table = solver.gather(...)
        solve_budget_sweep(tree, ks)       -> Solver().sweep(tree, ks)
        optimal_cost(tree, k)              -> Solver().cost(tree, k)

    The shims delegate to the very same gather engines and colour kernels,
    so their results are bit-identical to the staged path (asserted on
    hundreds of seeded instances by ``tests/test_api_equivalence.py``).

Unlike the historical implementation, reusing ``gathered=`` tables built
under different budget semantics (or by a different engine than the
``engine=`` argument claims) now raises
:class:`~repro.exceptions.SemanticsMismatchError` /
:class:`~repro.exceptions.EngineMismatchError` instead of silently tracing
answers for the wrong problem.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Iterable

from repro.core.color import DEFAULT_COLOR
from repro.core.engine import DEFAULT_ENGINE
from repro.core.gather import GatherResult
from repro.core.solver import GatherTable, Placement, Solver
from repro.core.tree import NodeId, TreeNetwork


@dataclass(frozen=True)
class SoarSolution:
    """Result of running SOAR on a φ-BIC instance (legacy shape).

    The staged API returns :class:`repro.core.solver.Placement` instead;
    the fields below are identical except that ``gather`` holds the raw
    :class:`~repro.core.gather.GatherResult` rather than the
    :class:`~repro.core.solver.GatherTable` artifact.
    """

    blue_nodes: frozenset[NodeId]
    cost: float
    predicted_cost: float
    budget: int
    gather: GatherResult

    @property
    def num_blue(self) -> int:
        """Number of aggregation switches actually used."""
        return len(self.blue_nodes)


def _warn(name: str, replacement: str) -> None:
    warnings.warn(
        f"repro.core.soar.{name}() is deprecated; use {replacement} "
        "(see repro.core.solver)",
        DeprecationWarning,
        stacklevel=3,
    )


def _as_table(
    tree: TreeNetwork,
    gathered: GatherResult | GatherTable,
    exact_k: bool,
    engine: str,
) -> GatherTable:
    """Wrap a legacy ``gathered=`` argument and enforce the reuse contract."""
    if isinstance(gathered, GatherTable):
        table = gathered
    else:
        table = GatherTable(
            result=gathered,
            tree=tree,
            engine=gathered.engine,
            exact_k=gathered.exact_k,
            color=DEFAULT_COLOR,
            fingerprint=tree.fingerprint(),
        )
    table.require(engine=engine, exact_k=exact_k)
    return table


def _legacy(placement: Placement) -> SoarSolution:
    return SoarSolution(
        blue_nodes=placement.blue_nodes,
        cost=placement.cost,
        predicted_cost=placement.predicted_cost,
        budget=placement.budget,
        gather=placement.table.result,
    )


def solve(
    tree: TreeNetwork,
    budget: int,
    exact_k: bool = False,
    gathered: GatherResult | GatherTable | None = None,
    engine: str = DEFAULT_ENGINE,
) -> SoarSolution:
    """Solve the φ-BIC problem optimally with SOAR.

    .. deprecated:: use ``Solver(engine=..., exact_k=...).solve(tree, budget)``,
       or ``table.place(budget)`` to reuse a gathered table.
    """
    _warn("solve", "Solver(...).solve(tree, budget) or GatherTable.place(budget)")
    solver = Solver(engine=engine, exact_k=exact_k)
    if gathered is not None:
        table = _as_table(tree, gathered, exact_k, engine)
        if table.budget >= min(int(budget), len(tree.available)):
            return _legacy(table.place(min(int(budget), table.budget)))
        # Historical behaviour: tables too narrow for the request are
        # silently re-gathered at the requested budget.
    return _legacy(solver.solve(tree, budget))


def solve_budget_sweep(
    tree: TreeNetwork,
    budgets: Iterable[int],
    exact_k: bool = False,
    engine: str = DEFAULT_ENGINE,
) -> dict[int, SoarSolution]:
    """Solve the φ-BIC problem for several budgets using a single gather.

    .. deprecated:: use ``Solver(engine=..., exact_k=...).sweep(tree, budgets)``.
    """
    _warn("solve_budget_sweep", "Solver(...).sweep(tree, budgets)")
    placements = Solver(engine=engine, exact_k=exact_k).sweep(tree, budgets)
    return {budget: _legacy(placement) for budget, placement in placements.items()}


def optimal_cost(
    tree: TreeNetwork,
    budget: int,
    exact_k: bool = False,
    engine: str = DEFAULT_ENGINE,
) -> float:
    """Convenience wrapper returning only the optimal utilization value.

    .. deprecated:: use ``Solver(engine=..., exact_k=...).cost(tree, budget)``.
    """
    _warn("optimal_cost", "Solver(...).cost(tree, budget)")
    return Solver(engine=engine, exact_k=exact_k).cost(tree, budget)

"""Utilization complexity and related cost metrics.

This module implements the objective function of the φ-BIC problem:

* :func:`utilization_cost` — Eq. (1): ``phi(T, L, U) = sum_e msg_e * rho(e)``,
* :func:`utilization_cost_barrier` — the equivalent "barrier" formulation of
  Lemma 4.2 / Eq. (3), expressed in terms of each node's closest blue
  ancestor (used both as an independent cross-check and as the conceptual
  basis of the SOAR dynamic program),
* :func:`per_link_utilization` — the per-link breakdown used by the paper's
  worked examples (Figures 2 and 3 annotate each link with its utilization),
* :func:`byte_cost` — the byte complexity of Section 5.3 given a message-size
  model.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

from repro.core.reduce_op import link_message_counts, validate_placement
from repro.core.tree import NodeId, TreeNetwork


def per_link_utilization(
    tree: TreeNetwork,
    blue_nodes: Iterable[NodeId],
    loads: Mapping[NodeId, int] | None = None,
    validate: bool = True,
) -> dict[NodeId, float]:
    """Return ``msg_e * rho(e)`` for every link, keyed by the child switch."""
    counts = link_message_counts(tree, blue_nodes, loads=loads, validate=validate)
    return {switch: counts[switch] * tree.rho(switch) for switch in counts}


def utilization_cost(
    tree: TreeNetwork,
    blue_nodes: Iterable[NodeId],
    loads: Mapping[NodeId, int] | None = None,
    validate: bool = True,
) -> float:
    """Compute the network utilization cost ``phi(T, L, U)`` of Eq. (1)."""
    counts = link_message_counts(tree, blue_nodes, loads=loads, validate=validate)
    return float(sum(counts[switch] * tree.rho(switch) for switch in counts))


def closest_blue_ancestor_distance(
    tree: TreeNetwork,
    node: NodeId,
    blue_nodes: frozenset[NodeId],
) -> int:
    """Return the number of edges from ``node`` to ``p*_node``.

    ``p*_node`` is the closest strict blue ancestor of ``node`` if one
    exists, and the destination otherwise (Lemma 4.2).
    """
    distance = 0
    current = node
    while True:
        current = tree.parent(current)
        distance += 1
        if current == tree.destination or current in blue_nodes:
            return distance


def utilization_cost_barrier(
    tree: TreeNetwork,
    blue_nodes: Iterable[NodeId],
    loads: Mapping[NodeId, int] | None = None,
) -> float:
    """Compute ``phi`` via the barrier re-formulation of Lemma 4.2 (Eq. 3).

    ``phi = sum_{v in U} rho(v, p*_v) + sum_{v not in U} L(v) * rho(v, p*_v)``
    where ``p*_v`` is the closest blue ancestor of ``v`` (or the destination).
    The value is identical to :func:`utilization_cost`; having both lets the
    test-suite cross-check the implementations against each other.
    """
    blue = validate_placement(tree, blue_nodes)
    load_of = tree.load if loads is None else lambda s: int(loads.get(s, 0))

    total = 0.0
    for switch in tree.switches:
        distance = closest_blue_ancestor_distance(tree, switch, blue)
        path_cost = tree.path_rho(switch, distance)
        if switch in blue:
            total += path_cost
        else:
            total += load_of(switch) * path_cost
    return float(total)


def all_red_cost(
    tree: TreeNetwork,
    loads: Mapping[NodeId, int] | None = None,
) -> float:
    """Utilization of the all-red solution (no aggregation anywhere)."""
    return utilization_cost(tree, frozenset(), loads=loads, validate=False)


def all_blue_cost(
    tree: TreeNetwork,
    loads: Mapping[NodeId, int] | None = None,
    respect_availability: bool = False,
) -> float:
    """Utilization when every switch aggregates.

    By default the availability set Λ is ignored (the paper uses the
    unrestricted all-blue solution purely as a lower-bound reference curve);
    pass ``respect_availability=True`` to colour only the switches in Λ.
    """
    blue = tree.available if respect_availability else frozenset(tree.switches)
    return utilization_cost(tree, blue, loads=loads, validate=False)


def normalized_utilization(
    tree: TreeNetwork,
    blue_nodes: Iterable[NodeId],
    loads: Mapping[NodeId, int] | None = None,
) -> float:
    """Utilization of ``blue_nodes`` divided by the all-red utilization.

    This is the quantity plotted on the y-axis of Figures 6, 7, 8a, 10 and
    11 of the paper.  A value of ``alpha`` means the placement incurs an
    ``alpha`` fraction of the cost of performing the Reduce without any
    in-network aggregation.
    """
    baseline = all_red_cost(tree, loads=loads)
    if baseline == 0.0:
        return 0.0
    return utilization_cost(tree, blue_nodes, loads=loads) / baseline


def cost_reduction(
    tree: TreeNetwork,
    blue_nodes: Iterable[NodeId],
    loads: Mapping[NodeId, int] | None = None,
) -> float:
    """Fractional saving compared to all-red: ``1 - normalized_utilization``."""
    return 1.0 - normalized_utilization(tree, blue_nodes, loads=loads)


def byte_cost(link_bytes: Mapping[NodeId, float], tree: TreeNetwork) -> float:
    """Aggregate a per-link byte map into the byte complexity.

    The byte complexity of Section 5.3 weights the bytes crossing each link
    by the per-message link time only implicitly (the paper evaluates it for
    constant rates); we follow the paper and report the plain byte total.
    ``tree`` is accepted for signature symmetry and future rate-weighted
    variants but only used for validation of the keys.
    """
    for switch in link_bytes:
        if not tree.is_switch(switch):
            raise KeyError(f"byte map references unknown switch {switch!r}")
    return float(sum(link_bytes.values()))

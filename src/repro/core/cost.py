"""Utilization complexity and related cost metrics.

This module implements the objective function of the φ-BIC problem:

* :func:`utilization_cost` — Eq. (1): ``phi(T, L, U) = sum_e msg_e * rho(e)``,
* :func:`utilization_cost_barrier` — the equivalent "barrier" formulation of
  Lemma 4.2 / Eq. (3), expressed in terms of each node's closest blue
  ancestor (used both as an independent cross-check and as the conceptual
  basis of the SOAR dynamic program),
* :func:`per_link_utilization` — the per-link breakdown used by the paper's
  worked examples (Figures 2 and 3 annotate each link with its utilization),
* :func:`byte_cost` — the byte complexity of Section 5.3 given a message-size
  model.

Cost kernels
------------
Eq. (1) ships two interchangeable kernels, registered in
:data:`COST_KERNELS` exactly as the colour kernels are in
:data:`repro.core.color.COLOR_KERNELS`:

``"reference"``
    :func:`utilization_cost` via :func:`~repro.core.reduce_op.link_message_counts`
    — the per-node post-order Python walk of Algorithm 1's accounting.

``"flat"`` (the default of :class:`~repro.core.solver.Solver`)
    :func:`utilization_cost_flat` — level-batched passes over the flat
    node order of :mod:`repro.core.flat`: every tree level's message
    counts resolve in one vectorized step, and the final reduction walks
    the post-order permutation so the floating-point summation order is
    *identical* to the reference.  The two kernels return the same float
    bit for bit (``tests/test_cost_kernels.py`` enforces this on the
    seeded generator profiles, near-ties and straddling Λ included).

The flat kernel exists for the service's warm path: a gather-table cache
hit is a batched colour trace plus this cost recompute, and the per-node
reference walk used to dominate that latency (see the
``cost_kernel_speedup`` column of ``benchmarks/results/service_throughput.csv``).
Use :func:`evaluate_cost` to pick a kernel by name; pass a prebuilt
:class:`~repro.core.flat.FlatCostModel` (``model=``) when evaluating many
placements over one structure so the metadata is built once.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Mapping

import numpy as np

from repro.core.engine_compiled import sequential_sum
from repro.core.flat import FlatCostModel, cost_model_for
from repro.core.reduce_op import link_message_counts, validate_placement
from repro.core.tree import NodeId, TreeNetwork


def per_link_utilization(
    tree: TreeNetwork,
    blue_nodes: Iterable[NodeId],
    loads: Mapping[NodeId, int] | None = None,
    validate: bool = True,
) -> dict[NodeId, float]:
    """Return ``msg_e * rho(e)`` for every link, keyed by the child switch."""
    counts = link_message_counts(tree, blue_nodes, loads=loads, validate=validate)
    return {switch: counts[switch] * tree.rho(switch) for switch in counts}


def utilization_cost(
    tree: TreeNetwork,
    blue_nodes: Iterable[NodeId],
    loads: Mapping[NodeId, int] | None = None,
    validate: bool = True,
) -> float:
    """Compute the network utilization cost ``phi(T, L, U)`` of Eq. (1)."""
    counts = link_message_counts(tree, blue_nodes, loads=loads, validate=validate)
    return float(sum(counts[switch] * tree.rho(switch) for switch in counts))


# --------------------------------------------------------------------------- #
# the level-batched flat cost kernel
# --------------------------------------------------------------------------- #


def flat_link_message_counts(
    model: FlatCostModel,
    blue_mask: np.ndarray,
    load: np.ndarray,
) -> np.ndarray:
    """``msg_e`` for every link as an int64 array in flat node order.

    One vectorized pass per tree level, deepest first: a level's arrivals
    are its accumulated child messages plus its local loads, blue nodes
    collapse theirs to a single message, and the outgoing counts scatter
    onto the parents (all of whom sit in the next-shallower slab).  The
    counts are exact integers, so this stage introduces no rounding at
    all — bit-identity with the reference is decided purely by the final
    weighted reduction.
    """
    n = len(model.order)
    outgoing = np.empty(n, dtype=np.int64)
    incoming = np.zeros(n, dtype=np.int64)
    for start, stop in reversed(model.level_slices):
        arrived = incoming[start:stop] + load[start:stop]
        slab = np.where(blue_mask[start:stop], 1, arrived)
        outgoing[start:stop] = slab
        targets = model.parent[start:stop]
        live = targets >= 0
        np.add.at(incoming, targets[live], slab[live])
    return outgoing


def _flat_contributions(
    tree: TreeNetwork,
    blue_nodes: Iterable[NodeId],
    loads: Mapping[NodeId, int] | None,
    validate: bool,
    model: FlatCostModel | None,
) -> tuple[FlatCostModel, np.ndarray]:
    """Per-link ``msg_e * rho(e)`` in *post-order*, shared by the flat kernels."""
    blue = validate_placement(tree, blue_nodes) if validate else frozenset(blue_nodes)
    if model is None:
        model = cost_model_for(tree)
    load = model.loads_for(tree, loads)
    blue_mask = np.zeros(len(model.order), dtype=bool)
    index = model.index
    for node in blue:
        position = index.get(node)
        if position is not None:  # unknown blue ids are ignored, as reference
            blue_mask[position] = True
    counts = flat_link_message_counts(model, blue_mask, load)
    return model, (counts * model.rho)[model.postorder]


def utilization_cost_flat(
    tree: TreeNetwork,
    blue_nodes: Iterable[NodeId],
    loads: Mapping[NodeId, int] | None = None,
    validate: bool = True,
    model: FlatCostModel | None = None,
) -> float:
    """Eq. (1) evaluated by the level-batched flat kernel.

    Bit-identical to :func:`utilization_cost` — the message counts are
    exact integers either way, the per-link products round identically,
    and the final sum walks the same post-order left to right (a plain
    sequential reduction, *not* numpy's pairwise ``sum``).  ``model``
    optionally supplies a prebuilt :class:`~repro.core.flat.FlatCostModel`
    for ``tree``'s structure; loads are taken from ``loads``, else from
    ``tree`` itself (the model's cached loads only apply to its own tree).
    """
    _, contributions = _flat_contributions(tree, blue_nodes, loads, validate, model)
    return float(sum(contributions.tolist()))


def per_link_utilization_flat(
    tree: TreeNetwork,
    blue_nodes: Iterable[NodeId],
    loads: Mapping[NodeId, int] | None = None,
    validate: bool = True,
    model: FlatCostModel | None = None,
) -> dict[NodeId, float]:
    """:func:`per_link_utilization` evaluated by the flat kernel.

    Returns the identical dictionary (same keys in the same post-order
    insertion order, same float values) with the per-node accounting walk
    replaced by the level-batched passes.
    """
    model, contributions = _flat_contributions(tree, blue_nodes, loads, validate, model)
    return dict(zip(model.postorder_nodes, contributions.tolist()))


def closest_blue_ancestor_distance(
    tree: TreeNetwork,
    node: NodeId,
    blue_nodes: frozenset[NodeId],
) -> int:
    """Return the number of edges from ``node`` to ``p*_node``.

    ``p*_node`` is the closest strict blue ancestor of ``node`` if one
    exists, and the destination otherwise (Lemma 4.2).
    """
    distance = 0
    current = node
    while True:
        current = tree.parent(current)
        distance += 1
        if current == tree.destination or current in blue_nodes:
            return distance


def utilization_cost_barrier(
    tree: TreeNetwork,
    blue_nodes: Iterable[NodeId],
    loads: Mapping[NodeId, int] | None = None,
) -> float:
    """Compute ``phi`` via the barrier re-formulation of Lemma 4.2 (Eq. 3).

    ``phi = sum_{v in U} rho(v, p*_v) + sum_{v not in U} L(v) * rho(v, p*_v)``
    where ``p*_v`` is the closest blue ancestor of ``v`` (or the destination).
    The value is identical to :func:`utilization_cost`; having both lets the
    test-suite cross-check the implementations against each other.
    """
    blue = validate_placement(tree, blue_nodes)
    load_of = tree.load if loads is None else lambda s: int(loads.get(s, 0))

    total = 0.0
    for switch in tree.switches:
        distance = closest_blue_ancestor_distance(tree, switch, blue)
        path_cost = tree.path_rho(switch, distance)
        if switch in blue:
            total += path_cost
        else:
            total += load_of(switch) * path_cost
    return float(total)


def all_red_cost(
    tree: TreeNetwork,
    loads: Mapping[NodeId, int] | None = None,
) -> float:
    """Utilization of the all-red solution (no aggregation anywhere)."""
    return utilization_cost(tree, frozenset(), loads=loads, validate=False)


def all_blue_cost(
    tree: TreeNetwork,
    loads: Mapping[NodeId, int] | None = None,
    respect_availability: bool = False,
) -> float:
    """Utilization when every switch aggregates.

    By default the availability set Λ is ignored (the paper uses the
    unrestricted all-blue solution purely as a lower-bound reference curve);
    pass ``respect_availability=True`` to colour only the switches in Λ.
    """
    blue = tree.available if respect_availability else frozenset(tree.switches)
    return utilization_cost(tree, blue, loads=loads, validate=False)


def normalized_utilization(
    tree: TreeNetwork,
    blue_nodes: Iterable[NodeId],
    loads: Mapping[NodeId, int] | None = None,
) -> float:
    """Utilization of ``blue_nodes`` divided by the all-red utilization.

    This is the quantity plotted on the y-axis of Figures 6, 7, 8a, 10 and
    11 of the paper.  A value of ``alpha`` means the placement incurs an
    ``alpha`` fraction of the cost of performing the Reduce without any
    in-network aggregation.
    """
    baseline = all_red_cost(tree, loads=loads)
    if baseline == 0.0:
        return 0.0
    return utilization_cost(tree, blue_nodes, loads=loads) / baseline


def cost_reduction(
    tree: TreeNetwork,
    blue_nodes: Iterable[NodeId],
    loads: Mapping[NodeId, int] | None = None,
) -> float:
    """Fractional saving compared to all-red: ``1 - normalized_utilization``."""
    return 1.0 - normalized_utilization(tree, blue_nodes, loads=loads)


def byte_cost(link_bytes: Mapping[NodeId, float], tree: TreeNetwork) -> float:
    """Aggregate a per-link byte map into the byte complexity.

    The byte complexity of Section 5.3 weights the bytes crossing each link
    by the per-message link time only implicitly (the paper evaluates it for
    constant rates); we follow the paper and report the plain byte total.
    ``tree`` is accepted for signature symmetry and future rate-weighted
    variants but only used for validation of the keys.
    """
    for switch in link_bytes:
        if not tree.is_switch(switch):
            raise KeyError(f"byte map references unknown switch {switch!r}")
    return float(sum(link_bytes.values()))


# --------------------------------------------------------------------------- #
# the cost-kernel registry
# --------------------------------------------------------------------------- #


def _reference_cost_kernel(
    tree: TreeNetwork,
    blue_nodes: Iterable[NodeId],
    loads: Mapping[NodeId, int] | None = None,
    validate: bool = True,
    model: FlatCostModel | None = None,
) -> float:
    """:func:`utilization_cost` behind the uniform kernel signature.

    The per-node reference never consults a flat model; the parameter is
    accepted (and ignored) so every :data:`COST_KERNELS` entry is callable
    interchangeably, which is what the differential suite relies on.
    """
    return utilization_cost(tree, blue_nodes, loads=loads, validate=validate)


def utilization_cost_compiled(
    tree: TreeNetwork,
    blue_nodes: Iterable[NodeId],
    loads: Mapping[NodeId, int] | None = None,
    validate: bool = True,
    model: FlatCostModel | None = None,
) -> float:
    """Eq. (1) by the flat passes with the reduction in the C backend.

    Identical per-link contributions as :func:`utilization_cost_flat`;
    the final left-to-right reduction runs through the compiled
    ``sequential_sum`` kernel of :mod:`repro.core.engine_compiled` (one C
    loop instead of a Python-list walk), which accumulates the same
    doubles in the same order and therefore returns the bit-identical
    float — with a pure-Python fallback when the C backend is absent.
    Registered as ``"compiled"`` so a fully compiled
    ``Solver(engine="compiled", color="compiled", cost_kernel="compiled")``
    configuration is uniformly valid.
    """
    _, contributions = _flat_contributions(tree, blue_nodes, loads, validate, model)
    return sequential_sum(contributions)


#: Name of the level-batched flat cost kernel (the solver-path default).
FLAT_COST: str = "flat"
#: Name of the per-node reference evaluation of Eq. (1).
REFERENCE_COST: str = "reference"
#: Name of the flat kernel with the C-backend reduction.
COMPILED_COST: str = "compiled"
#: Kernel used when callers do not ask for a specific one.
DEFAULT_COST: str = FLAT_COST

#: Registry of cost kernels, keyed by their public name (the cost-phase
#: counterpart of :data:`repro.core.color.COLOR_KERNELS`); every entry
#: shares the signature ``kernel(tree, blue, loads=, validate=, model=)``
#: and returns the bit-identical Eq. (1) value.
COST_KERNELS: dict[str, Callable[..., float]] = {
    FLAT_COST: utilization_cost_flat,
    REFERENCE_COST: _reference_cost_kernel,
    COMPILED_COST: utilization_cost_compiled,
}

#: Engines with no same-named cost kernel declare their cost kernel here
#: (the registry-coherence lint cross-checks this against
#: :data:`repro.core.engine.ENGINES`).  Currently empty: every engine
#: name resolves directly in :data:`COST_KERNELS`.
ENGINE_COST_FALLBACKS: dict[str, str] = {}


def evaluate_cost(
    tree: TreeNetwork,
    blue_nodes: Iterable[NodeId],
    loads: Mapping[NodeId, int] | None = None,
    validate: bool = True,
    cost: str = DEFAULT_COST,
    model: FlatCostModel | None = None,
) -> float:
    """Evaluate ``phi(T, L, U)`` with the named cost kernel.

    ``"flat"`` (default), ``"compiled"``, or ``"reference"``; all produce
    identical floats, the reference kernel is retained as ground truth for
    differential testing — mirroring :func:`repro.core.color.trace_color`.
    ``model`` is forwarded to the flat kernels (ignored by the reference).
    """
    try:
        kernel = COST_KERNELS[cost]
    except KeyError:
        known = ", ".join(sorted(COST_KERNELS))
        raise ValueError(f"unknown cost kernel {cost!r}; expected one of: {known}")
    return kernel(tree, blue_nodes, loads=loads, validate=validate, model=model)

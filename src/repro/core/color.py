"""SOAR-Color: tracing an optimal colouring out of the gather tables.

Algorithm 4 of the paper walks the tree from the destination downwards.
Every node receives, from its parent, the pair ``(i, l*)``: the number of
blue nodes to distribute inside its subtree and its distance to the closest
blue ancestor (or to the destination if no blue ancestor exists).  The node
then

1. decides its own colour by comparing the blue and red entries of its
   final-stage ``Y`` table at ``(l*, i)``,
2. splits the remaining budget among its children by re-deriving the argmin
   of the ``mCost`` convolution (we stored those argmins during gather, so
   the traceback is a pure table lookup), and
3. forwards ``(i_child, l_child)`` to each child, where ``l_child = 1`` when
   the node is blue and ``l* + 1`` otherwise.

The traceback is iterative (explicit work list) so arbitrarily deep trees do
not hit the recursion limit, mirroring the distributed description of the
paper where each switch acts on the message received from its parent.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.gather import GatherResult
from repro.core.tree import NodeId, TreeNetwork
from repro.exceptions import PlacementError


@dataclass(frozen=True)
class ColoringAssignment:
    """The ``(i, l*)`` pair a node receives from its parent during traceback."""

    node: NodeId
    budget: int
    distance: int


def _leaf_is_blue(
    tree: TreeNetwork,
    node: NodeId,
    budget: int,
    exact_k: bool,
) -> bool:
    """Decide a leaf's colour (Algorithm 4 lines 4-5, adapted per semantics).

    The paper colours a leaf blue whenever it received a positive budget.
    Under at-most-k semantics we additionally require the blue colour to
    strictly reduce the cost (load greater than one); a leaf with load 0 or 1
    gains nothing from aggregating, so the budget is simply left unused.
    """
    if budget <= 0 or node not in tree.available:
        return False
    if exact_k:
        return True
    return tree.load(node) > 1


def soar_color(
    tree: TreeNetwork,
    gathered: GatherResult,
    budget: int | None = None,
) -> frozenset[NodeId]:
    """Trace back an optimal set of blue nodes from gather tables.

    Parameters
    ----------
    tree:
        The network the tables were computed for.
    gathered:
        Output of :func:`repro.core.gather.soar_gather`.
    budget:
        Budget to trace for.  Defaults to the budget the tables were built
        with; any smaller value is also valid because the tables carry every
        column, which lets a single gather answer a whole budget sweep.

    Returns
    -------
    frozenset
        The selected blue switches ``U`` with ``|U| <= budget``.

    Raises
    ------
    PlacementError
        If ``budget`` exceeds the budget the tables were built for, or the
        tables do not belong to this tree.
    """
    if gathered.root != tree.root:
        raise PlacementError("gather tables were computed for a different network")
    if budget is None:
        budget = gathered.budget
    if budget > gathered.budget:
        raise PlacementError(
            f"requested budget {budget} exceeds the gathered budget {gathered.budget}"
        )
    if budget < 0:
        raise PlacementError(f"budget must be non-negative, got {budget}")

    blue: set[NodeId] = set()
    # The destination sends (k, 1) to the root (Algorithm 4 line 2).
    pending: list[ColoringAssignment] = [
        ColoringAssignment(node=tree.root, budget=int(budget), distance=1)
    ]

    while pending:
        assignment = pending.pop()
        node = assignment.node
        i = assignment.budget
        distance = assignment.distance
        tables = gathered.tables[node]
        children = tree.children(node)

        if not children:
            if _leaf_is_blue(tree, node, i, gathered.exact_k):
                blue.add(node)
            continue

        node_is_blue = bool(tables.y_blue[distance, i] < tables.y_red[distance, i])
        if node_is_blue:
            blue.add(node)
            child_distance = 1
            splits = tables.splits_blue
        else:
            child_distance = distance + 1
            splits = tables.splits_red

        # Children c_C .. c_2 take the budgets recorded at gather time; the
        # first child receives whatever remains (minus one when the node
        # itself is blue and therefore consumed one unit).
        remaining = i
        child_budgets: dict[NodeId, int] = {}
        for index in range(len(children) - 1, 0, -1):
            split_table = splits[index - 1]
            share = int(split_table[distance, remaining])
            child_budgets[children[index]] = share
            remaining -= share
        child_budgets[children[0]] = remaining - 1 if node_is_blue else remaining

        for child, share in child_budgets.items():
            if share < 0:
                raise PlacementError(
                    f"traceback assigned a negative budget to {child!r}; "
                    "the gather tables are inconsistent"
                )
            pending.append(
                ColoringAssignment(node=child, budget=share, distance=child_distance)
            )

    if len(blue) > budget:
        raise PlacementError(
            f"traceback selected {len(blue)} blue nodes for budget {budget}; "
            "the gather tables are inconsistent"
        )
    return frozenset(blue)

"""SOAR-Color: tracing an optimal colouring out of the gather tables.

Algorithm 4 of the paper walks the tree from the destination downwards.
Every node receives, from its parent, the pair ``(i, l*)``: the number of
blue nodes to distribute inside its subtree and its distance to the closest
blue ancestor (or to the destination if no blue ancestor exists).  The node
then

1. decides its own colour by comparing the blue and red entries of its
   final-stage ``Y`` table at ``(l*, i)``,
2. splits the remaining budget among its children by re-deriving the argmin
   of the ``mCost`` convolution (we stored those argmins during gather, so
   the traceback is a pure table lookup), and
3. forwards ``(i_child, l_child)`` to each child, where ``l_child = 1`` when
   the node is blue and ``l* + 1`` otherwise.

Two interchangeable kernels implement this trace:

:func:`soar_color` (``"reference"``)
    The per-node work-list traversal following the distributed description
    of the paper, where each switch acts on the message received from its
    parent.  Iterative, so arbitrarily deep trees do not hit the recursion
    limit.

:func:`soar_color_batched` (``"batched"``, the default)
    A level-batched traversal over the flat ``(l, i, node)`` tensors of
    :mod:`repro.core.flat`: every level of the tree decides its colours in
    one vectorized comparison and scatters its children's budgets in a
    handful of fancy-indexed passes — the same batching strategy the flat
    gather engine applies bottom-up, applied top-down.  The colour trace is
    the *entire* cost of a warm gather-table cache hit in
    :mod:`repro.service`, which is what makes this kernel worth having.

Both kernels read the same breadcrumbs and compare the same floats with the
same strict inequality, so they produce **identical** placements — including
on exact ties, where the shared ``<`` keeps the node red and the stored
ascending-``j`` argmin picks the same split.  The differential suites
(``tests/test_api_equivalence.py``, ``tests/test_invariants.py``) enforce
this on both engines' tables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.core.engine_compiled import strict_less
from repro.core.flat import flat_tables_for
from repro.core.gather import GatherResult
from repro.core.tree import NodeId, TreeNetwork
from repro.exceptions import PlacementError


@dataclass(frozen=True)
class ColoringAssignment:
    """The ``(i, l*)`` pair a node receives from its parent during traceback."""

    node: NodeId
    budget: int
    distance: int


def _validated_budget(
    tree: TreeNetwork,
    gathered: GatherResult,
    budget: int | None,
) -> int:
    """Shared argument validation of the colour kernels."""
    if gathered.root != tree.root:
        raise PlacementError("gather tables were computed for a different network")
    if budget is None:
        budget = gathered.budget
    if budget > gathered.budget:
        raise PlacementError(
            f"requested budget {budget} exceeds the gathered budget {gathered.budget}"
        )
    if budget < 0:
        raise PlacementError(f"budget must be non-negative, got {budget}")
    return int(budget)


def _leaf_is_blue(
    tree: TreeNetwork,
    node: NodeId,
    budget: int,
    exact_k: bool,
) -> bool:
    """Decide a leaf's colour (Algorithm 4 lines 4-5, adapted per semantics).

    The paper colours a leaf blue whenever it received a positive budget.
    Under at-most-k semantics we additionally require the blue colour to
    strictly reduce the cost (load greater than one); a leaf with load 0 or 1
    gains nothing from aggregating, so the budget is simply left unused.
    """
    if budget <= 0 or node not in tree.available:
        return False
    if exact_k:
        return True
    return tree.load(node) > 1


def soar_color(
    tree: TreeNetwork,
    gathered: GatherResult,
    budget: int | None = None,
) -> frozenset[NodeId]:
    """Trace back an optimal set of blue nodes from gather tables.

    Parameters
    ----------
    tree:
        The network the tables were computed for.
    gathered:
        Output of :func:`repro.core.gather.soar_gather`.
    budget:
        Budget to trace for.  Defaults to the budget the tables were built
        with; any smaller value is also valid because the tables carry every
        column, which lets a single gather answer a whole budget sweep.

    Returns
    -------
    frozenset
        The selected blue switches ``U`` with ``|U| <= budget``.

    Raises
    ------
    PlacementError
        If ``budget`` exceeds the budget the tables were built for, or the
        tables do not belong to this tree.
    """
    budget = _validated_budget(tree, gathered, budget)

    blue: set[NodeId] = set()
    # The destination sends (k, 1) to the root (Algorithm 4 line 2).
    pending: list[ColoringAssignment] = [
        ColoringAssignment(node=tree.root, budget=int(budget), distance=1)
    ]

    while pending:
        assignment = pending.pop()
        node = assignment.node
        i = assignment.budget
        distance = assignment.distance
        tables = gathered.tables[node]
        children = tree.children(node)

        if not children:
            if _leaf_is_blue(tree, node, i, gathered.exact_k):
                blue.add(node)
            continue

        node_is_blue = bool(tables.y_blue[distance, i] < tables.y_red[distance, i])
        if node_is_blue:
            blue.add(node)
            child_distance = 1
            splits = tables.splits_blue
        else:
            child_distance = distance + 1
            splits = tables.splits_red

        # Children c_C .. c_2 take the budgets recorded at gather time; the
        # first child receives whatever remains (minus one when the node
        # itself is blue and therefore consumed one unit).
        remaining = i
        child_budgets: dict[NodeId, int] = {}
        for index in range(len(children) - 1, 0, -1):
            split_table = splits[index - 1]
            share = int(split_table[distance, remaining])
            child_budgets[children[index]] = share
            remaining -= share
        child_budgets[children[0]] = remaining - 1 if node_is_blue else remaining

        for child, share in child_budgets.items():
            if share < 0:
                raise PlacementError(
                    f"traceback assigned a negative budget to {child!r}; "
                    "the gather tables are inconsistent"
                )
            pending.append(
                ColoringAssignment(node=child, budget=share, distance=child_distance)
            )

    if len(blue) > budget:
        raise PlacementError(
            f"traceback selected {len(blue)} blue nodes for budget {budget}; "
            "the gather tables are inconsistent"
        )
    return frozenset(blue)


def soar_color_batched(
    tree: TreeNetwork,
    gathered: GatherResult,
    budget: int | None = None,
    _decide: Callable[[np.ndarray, np.ndarray], np.ndarray] | None = None,
) -> frozenset[NodeId]:
    """Level-batched colour trace over the flat ``(l, i, node)`` tensors.

    Same parameters, same result, and same raised errors as
    :func:`soar_color`; the traversal is batched per tree level instead of
    per node.  Every child of a depth-``d`` node sits at depth ``d + 1``,
    so processing the levels root-down visits parents strictly before their
    children; within a level, colour decisions are one fancy-indexed tensor
    comparison and the budget split walks the convolution stages exactly as
    the reference does — highest child first, running remainder — but
    vectorized across every node of the level that still has an ``m``-th
    child.

    ``_decide`` optionally replaces the elementwise strict-``<`` used for
    the per-level colour decisions (the compiled kernel routes it through
    the C comparison); any substitute must implement exactly
    :func:`np.less` over float64.
    """
    budget = _validated_budget(tree, gathered, budget)
    decide = np.less if _decide is None else _decide
    flat = flat_tables_for(tree, gathered)
    n = len(flat.order)

    # The leaf colour rule depends on the *caller's* loads and Λ, exactly
    # as the reference consults ``tree`` rather than gather-time state.
    # On the hot path (service table hits, GatherTable.place) the caller's
    # tree IS the gather-time tree and the cached arrays apply; a legacy
    # caller tracing the tables against a modified same-structure network
    # gets the arrays re-derived from its own tree.
    if tree is flat.tree:
        load, avail = flat.load, flat.avail
    else:
        load = np.fromiter((tree.load(v) for v in flat.order), dtype=np.int64, count=n)
        avail = np.fromiter((v in tree.available for v in flat.order), dtype=bool, count=n)

    # (budget, distance) each node receives from its parent; the
    # destination sends (k, 1) to the root (Algorithm 4 line 2).
    budget_vec = np.zeros(n, dtype=np.int64)
    dist_vec = np.ones(n, dtype=np.int64)
    budget_vec[flat.index[gathered.root]] = budget

    chosen: list[np.ndarray] = []
    for start, stop in flat.level_slices:
        level = np.arange(start, stop)
        leaf_mask = flat.leaf[start:stop]

        leaves = level[leaf_mask]
        if leaves.size:
            # Algorithm 4 lines 4-5, adapted per semantics (_leaf_is_blue).
            blue_leaf = (budget_vec[leaves] > 0) & avail[leaves]
            if not gathered.exact_k:
                blue_leaf &= load[leaves] > 1
            chosen.append(leaves[blue_leaf])

        internal = level[~leaf_mask]
        if not internal.size:
            continue
        l_params = dist_vec[internal]
        budgets = budget_vec[internal]
        node_blue = decide(
            flat.y_blue[l_params, budgets, internal],
            flat.y_red[l_params, budgets, internal],
        )
        chosen.append(internal[node_blue])
        child_distance = np.where(node_blue, 1, l_params + 1)

        # Children c_C .. c_2 take the breadcrumb budgets; the running
        # remainder mirrors the reference's descending-stage walk.
        remaining = budgets.copy()
        counts = flat.num_children[internal]
        for stage in range(int(counts.max()), 1, -1):
            active = counts >= stage
            nodes = internal[active]
            slot = flat.stage_offset[nodes] + (stage - 2)
            l_sel = l_params[active]
            r_sel = remaining[active]
            share = np.where(
                node_blue[active],
                flat.splits_blue[l_sel, r_sel, slot],
                flat.splits_red[l_sel, r_sel, slot],
            ).astype(np.int64)
            child = flat.child_concat[flat.child_offset[nodes] + (stage - 1)]
            budget_vec[child] = share
            dist_vec[child] = child_distance[active]
            remaining[active] -= share

        first = flat.child_concat[flat.child_offset[internal]]
        budget_vec[first] = remaining - node_blue
        dist_vec[first] = child_distance

    # A negative assignment means inconsistent tables; every non-root node's
    # budget was written by its parent above, so one pass over the levels
    # below the root is the batched equivalent of the reference's per-child
    # guard.
    for start, stop in flat.level_slices[1:]:
        window = budget_vec[start:stop]
        if window.size and int(window.min()) < 0:
            offender = flat.order[start + int(np.argmin(window))]
            raise PlacementError(
                f"traceback assigned a negative budget to {offender!r}; "
                "the gather tables are inconsistent"
            )

    blue = frozenset(
        flat.order[position]
        for position in (np.concatenate(chosen) if chosen else ())
    )
    if len(blue) > budget:
        raise PlacementError(
            f"traceback selected {len(blue)} blue nodes for budget {budget}; "
            "the gather tables are inconsistent"
        )
    return blue


def soar_color_compiled(
    tree: TreeNetwork,
    gathered: GatherResult,
    budget: int | None = None,
) -> frozenset[NodeId]:
    """The batched trace with its colour decisions in the C backend.

    Identical traversal (and identical placements) as
    :func:`soar_color_batched`; the per-level ``y_blue < y_red``
    comparisons run through the compiled ``strict_less`` kernel of
    :mod:`repro.core.engine_compiled`, falling back to :func:`np.less`
    when the C backend is unavailable.  Registered as ``"compiled"`` so a
    ``Solver(engine="compiled", color="compiled")`` configuration is
    uniformly valid.
    """
    return soar_color_batched(tree, gathered, budget=budget, _decide=strict_less)


#: Name of the level-batched colour kernel (the default).
BATCHED_COLOR: str = "batched"
#: Name of the per-node reference trace of Algorithm 4.
REFERENCE_COLOR: str = "reference"
#: Name of the batched kernel with C-backend decisions.
COMPILED_COLOR: str = "compiled"
#: Kernel used when callers do not ask for a specific one.
DEFAULT_COLOR: str = BATCHED_COLOR

#: Registry of colour kernels, keyed by their public name (the colour-phase
#: counterpart of :data:`repro.core.engine.ENGINES`).
COLOR_KERNELS: dict[str, Callable[..., frozenset[NodeId]]] = {
    BATCHED_COLOR: soar_color_batched,
    REFERENCE_COLOR: soar_color,
    COMPILED_COLOR: soar_color_compiled,
}

#: Engines with no same-named colour kernel declare which kernel traces
#: their colour phase here (the registry-coherence lint cross-checks
#: this against :data:`repro.core.engine.ENGINES`): the ``flat`` gather
#: engine colours with the batched kernel.
ENGINE_COLOR_FALLBACKS: dict[str, str] = {
    "flat": BATCHED_COLOR,
}


def trace_color(
    tree: TreeNetwork,
    gathered: GatherResult,
    budget: int | None = None,
    color: str = DEFAULT_COLOR,
) -> frozenset[NodeId]:
    """Trace a placement with the named colour kernel.

    ``"batched"`` (default), ``"compiled"``, or ``"reference"``; all
    produce identical placements, the reference kernel is retained as
    ground truth for differential testing — mirroring
    :func:`repro.core.engine.gather`.
    """
    try:
        kernel = COLOR_KERNELS[color]
    except KeyError:
        known = ", ".join(sorted(COLOR_KERNELS))
        raise ValueError(f"unknown colour kernel {color!r}; expected one of: {known}")
    return kernel(tree, gathered, budget=budget)

"""The ``"compiled"`` gather engine: C kernels behind the flat driver.

The flat engine's three hot blocks — the leaf broadcast, the batched
``mCost`` convolution, and the colour decision — account for essentially
all of a gather's arithmetic, and under numpy they hold the GIL for the
whole solve, which is why thread-level replay never scaled
(``concurrent_speedup = 0.78`` at 4 workers on BT(256) before this
backend existed).  This module compiles the same three blocks from
``_gather_kernels.c`` into a small shared library and calls them through
``ctypes``, which **releases the GIL for the duration of every kernel
call**; the surrounding orchestration is the unchanged
:func:`repro.core.engine._gather_flat_tensors` driver.

Bit-identity
------------
Each C kernel performs the identical per-element IEEE-754 operations in
the identical order as its numpy counterpart (a single multiply or add
followed by a strict ``<``; ascending-``j`` argmin with strict
improvement), so the compiled engine's tables, breadcrumbs, placements,
and costs are byte-identical to ``"flat"`` — enforced across the seeded
generator corpus by ``tests/test_engine_differential.py``.

Build and fallback
------------------
No third-party dependency is required: the kernels are plain C99 built on
demand with the system compiler (``$CC``, ``cc``, ``gcc``, or ``clang`` —
whichever is found first) as ``-O2 -fPIC -shared`` and cached by source
digest under ``$REPRO_KERNEL_CACHE`` (default: ``<tmpdir>/repro-kernels``),
so the compile runs once per source revision per machine.  The publish is
an atomic :func:`os.replace`, making concurrent first builds safe.

When no compiler is available, the build fails, or ``REPRO_NO_COMPILED``
is set (the CI no-backend job), the ``"compiled"`` registry entry stays
callable and transparently computes with the numpy kernels — same name,
bit-identical results, no consumer changes.  :data:`HAVE_COMPILED` (and
:func:`compiled_available`) report which path is active; compiled-specific
tests skip when it is ``False``.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
from pathlib import Path

import numpy as np
from numpy.ctypeslib import ndpointer

from repro.core.engine import (
    COMPILED_ENGINE,
    ENGINES,
    NUMPY_KERNELS,
    REPAIRERS,
    GatherKernels,
    _gather_flat_tensors,
    _repair_flat_tensors,
)
from repro.core.gather import GatherResult
from repro.core.tree import TreeNetwork

#: Set this environment variable (to any non-empty value) to skip the C
#: backend entirely and force the numpy fallback — the CI no-backend job
#: uses it to prove the fallback path stays green.
DISABLE_ENV: str = "REPRO_NO_COMPILED"
#: Overrides the directory the compiled library is cached in.
CACHE_ENV: str = "REPRO_KERNEL_CACHE"

_SOURCE = Path(__file__).with_name("_gather_kernels.c")

_f64 = ndpointer(dtype=np.float64, flags="C_CONTIGUOUS")
_i64 = ndpointer(dtype=np.int64, flags="C_CONTIGUOUS")
_i32 = ndpointer(dtype=np.int32, flags="C_CONTIGUOUS")
_u8 = ndpointer(dtype=np.uint8, flags="C_CONTIGUOUS")
_ll = ctypes.c_longlong


def _find_compiler() -> str | None:
    """The first working C compiler: ``$CC``, then cc / gcc / clang."""
    for candidate in (os.environ.get("CC"), "cc", "gcc", "clang"):
        if candidate and shutil.which(candidate):
            return candidate
    return None


def _configure(library: ctypes.CDLL) -> ctypes.CDLL:
    """Attach prototypes so ctypes checks dtypes and contiguity for us."""
    library.repro_leaf_init.argtypes = [
        _f64, _f64, _f64, _f64, _f64, _i64, _ll, _u8, _ll, _ll, _ll, ctypes.c_int32,
    ]
    library.repro_leaf_init.restype = None
    library.repro_batched_combine.argtypes = [
        _f64, _f64, _f64, _i32, _ll, _ll, _ll, _ll, ctypes.c_int32, _ll,
    ]
    library.repro_batched_combine.restype = None
    library.repro_strict_less.argtypes = [_f64, _f64, _u8, _ll]
    library.repro_strict_less.restype = None
    library.repro_sequential_sum.argtypes = [_f64, _ll]
    library.repro_sequential_sum.restype = ctypes.c_double
    return library


def _build_library() -> ctypes.CDLL | None:
    """Compile (or reuse) the kernel library; ``None`` means fall back."""
    if os.environ.get(DISABLE_ENV):
        return None
    if not _SOURCE.exists():
        return None
    source_bytes = _SOURCE.read_bytes()
    digest = hashlib.sha256(source_bytes).hexdigest()[:16]
    cache_root = Path(
        os.environ.get(CACHE_ENV) or Path(tempfile.gettempdir()) / "repro-kernels"
    )
    lib_path = cache_root / f"gather_kernels-{digest}.so"
    if not lib_path.exists():
        compiler = _find_compiler()
        if compiler is None:
            return None
        try:
            cache_root.mkdir(parents=True, exist_ok=True)
            handle, staging = tempfile.mkstemp(dir=cache_root, suffix=".so")
            os.close(handle)
        except OSError:
            return None
        try:
            subprocess.run(
                [compiler, "-O2", "-fPIC", "-shared", "-o", staging, str(_SOURCE)],
                check=True,
                capture_output=True,
            )
            os.replace(staging, lib_path)  # atomic publish; racing builds both win
        except (OSError, subprocess.SubprocessError):
            try:
                os.unlink(staging)
            except OSError:
                pass
            return None
    try:
        return _configure(ctypes.CDLL(str(lib_path)))
    except OSError:
        return None


_LIB = _build_library()

#: True when the C kernels compiled and loaded; False means the
#: ``"compiled"`` engine name still works but computes with numpy.
HAVE_COMPILED: bool = _LIB is not None


def compiled_available() -> bool:
    """Whether the C backend is active (vs. the numpy fallback)."""
    return HAVE_COMPILED


# --------------------------------------------------------------------------- #
# kernel wrappers (see repro.core.engine.GatherKernels for the contracts)
# --------------------------------------------------------------------------- #


def _combine_compiled(
    previous: np.ndarray,
    child_row: np.ndarray,
    budget: int,
    blue: bool,
    j_max: int | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    height, width, batch = previous.shape[0], budget + 1, previous.shape[2]
    previous = np.ascontiguousarray(previous)
    child_row = np.ascontiguousarray(child_row)
    best = np.empty((height, width, batch), dtype=np.float64)
    best_split = np.empty((height, width, batch), dtype=np.int32)
    j_limit = budget if j_max is None else min(budget, j_max)
    _LIB.repro_batched_combine(
        previous,
        child_row,
        best,
        best_split,
        height,
        width,
        batch,
        child_row.shape[0],
        int(blue),
        j_limit,
    )
    return best, best_split


def _leaf_init_compiled(
    x_flat: np.ndarray,
    y_blue_flat: np.ndarray,
    y_red_flat: np.ndarray,
    path_rho: np.ndarray,
    load: np.ndarray,
    leaves: np.ndarray,
    avail: np.ndarray,
    exact_k: bool,
    k: int,
) -> None:
    positions = np.ascontiguousarray(leaves, dtype=np.int64)
    rows, width, n = x_flat.shape
    _LIB.repro_leaf_init(
        x_flat,
        y_blue_flat,
        y_red_flat,
        np.ascontiguousarray(path_rho),
        np.ascontiguousarray(load),
        positions,
        positions.size,
        avail.view(np.uint8),
        rows,
        width,
        n,
        int(exact_k),
    )


def _color_choice_compiled(y_blue: np.ndarray, y_red: np.ndarray) -> np.ndarray:
    out = np.empty(y_blue.shape, dtype=np.uint8)
    _LIB.repro_strict_less(y_blue, y_red, out, y_blue.size)
    return out


#: The kernel set of the ``"compiled"`` engine — the C kernels when the
#: library built, the numpy kernels otherwise (bit-identical either way).
COMPILED_KERNELS: GatherKernels = (
    GatherKernels(
        combine=_combine_compiled,
        leaf_init=_leaf_init_compiled,
        color_choice=_color_choice_compiled,
    )
    if HAVE_COMPILED
    else NUMPY_KERNELS
)


def compiled_gather(
    tree: TreeNetwork,
    budget: int,
    exact_k: bool = False,
) -> GatherResult:
    """Run SOAR-Gather with the compiled (GIL-releasing) kernels.

    Drop-in replacement for :func:`repro.core.engine.flat_gather` with
    byte-identical output.  When the C backend is unavailable (see the
    module docstring) this computes with the numpy kernels instead; the
    result still records ``engine="compiled"`` — provenance names the
    registry entry that produced it, and the entries are bit-identical by
    contract, with :data:`HAVE_COMPILED` distinguishing the backends.
    """
    return _gather_flat_tensors(
        tree, budget, exact_k, kernels=COMPILED_KERNELS, engine=COMPILED_ENGINE
    )


def compiled_repair(result: GatherResult, tree: TreeNetwork) -> GatherResult:
    """Delta-repair a compiled-engine gather result towards ``tree``.

    The shared repair driver of :mod:`repro.core.engine` parameterized by
    the compiled kernel set — the dirty-slab convolutions and the leaf
    re-broadcast run in C (releasing the GIL) when the backend is active,
    and fall back to numpy otherwise, bit-identical either way.
    """
    return _repair_flat_tensors(
        result, tree, kernels=COMPILED_KERNELS, engine=COMPILED_ENGINE
    )


# --------------------------------------------------------------------------- #
# helpers for the compiled colour / cost kernels
# --------------------------------------------------------------------------- #


def strict_less(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Elementwise strict ``a < b`` as a bool array (numpy fallback inside).

    The compiled colour kernel routes its per-level blue/red decisions
    through this — the same comparison, the same NaN-compares-false
    semantics as :func:`np.less`.
    """
    a = np.ascontiguousarray(a, dtype=np.float64)
    b = np.ascontiguousarray(b, dtype=np.float64)
    if _LIB is None:
        return np.less(a, b)
    out = np.empty(a.shape, dtype=np.uint8)
    _LIB.repro_strict_less(a, b, out, a.size)
    return out.view(np.bool_)


def sequential_sum(values: np.ndarray) -> float:
    """Left-to-right sum of a float64 vector, as one C loop.

    Bit-identical to ``float(sum(values.tolist()))`` — the reduction the
    flat cost kernel performs — because both are a plain sequential
    accumulation of the same doubles in the same order.
    """
    values = np.ascontiguousarray(values, dtype=np.float64)
    if _LIB is None:
        return float(sum(values.tolist()))
    return float(_LIB.repro_sequential_sum(values, values.size))


# Self-registration: done here (not in repro.core.engine) so the modules
# can be imported in either order without a partially-initialized cycle.
ENGINES[COMPILED_ENGINE] = compiled_gather
REPAIRERS[COMPILED_ENGINE] = compiled_repair

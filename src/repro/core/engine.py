"""Gather engines: interchangeable implementations of SOAR-Gather.

The reference implementation in :mod:`repro.core.gather` follows Algorithm 3
closely: it walks the post-order with a Python loop and builds one
:class:`~repro.core.gather.NodeTables` per node, combining children one at a
time.  That structure is ideal for studying the algorithm but the per-node
Python work dominates the running time on the larger instances of Figures 9
and 10.

The **flat engine** in this module computes the very same dynamic program on
one contiguous tensor ``X`` indexed by ``(l, i, node)`` over the post-order
traversal:

* all leaves are initialized in a single broadcast (no per-leaf loop),
* internal nodes are processed level by level (deepest first) and the
  ``mCost`` (min,+)-convolution of Algorithm 3 runs batched across *every
  node of a level at once*, vectorizing over ``(l, i, node)`` simultaneously
  instead of only over ``(l, i)``,
* the blue/red colour decision is a single tensor comparison at the end.

The node axis is the contiguous innermost one, so every update in the
convolution streams over long same-shaped runs — this is where the engine
gets its speed; see ``benchmarks/bench_fig9_runtime.py`` (comparison mode)
and ``benchmarks/bench_fig10_scaling.py`` for the measured speedups.

The registry holds **three** engines:

``"flat"`` (the default)
    The numpy implementation described above.

``"reference"``
    The per-node Algorithm 3 walk of :mod:`repro.core.gather`, retained as
    ground truth for differential testing (see :mod:`repro.testing` and
    ``tests/test_engine_differential.py``).

``"compiled"``
    The same flat orchestration with its three hot blocks — the leaf
    broadcast, the batched convolution, and the colour decision — swapped
    for C kernels built on demand from ``_gather_kernels.c`` and called
    through ``ctypes``, which releases the GIL around every kernel call
    (:mod:`repro.core.engine_compiled`).  When no C compiler is available
    (or ``REPRO_NO_COMPILED`` is set) the entry stays registered and
    **falls back to the numpy kernels**: same name, same results, no
    consumer changes — ``repro.core.engine_compiled.HAVE_COMPILED`` tells
    you which path is active, and the compiled-specific tests skip.

Per element the arithmetic (and its floating-point evaluation order) is
identical across all three, including the ascending-``j`` tie-breaking of
the convolution argmin, so the engines produce **bit-identical** tables,
costs, and traceback breadcrumbs.  The flat engines materialize their
output as ordinary :class:`~repro.core.gather.NodeTables` whose arrays are
views into the flat tensors, so :func:`repro.core.color.soar_color` traces
the result unchanged.

Use :func:`gather` to pick an engine by name.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, replace

import numpy as np

from repro.core.flat import (
    FlatTables,
    LazyNodeTables,
    dirty_ancestor_positions,
    dirty_level_groups,
    flat_order,
    level_slices_for,
)
from repro.core.gather import (
    BLUE,
    RED,
    GatherResult,
    NodeTables,
    normalize_budget,
    soar_gather,
)
from repro.core.tree import TreeNetwork
from repro.exceptions import RepairError

#: Name of the vectorized flat-array engine (the default).
FLAT_ENGINE: str = "flat"
#: Name of the per-node reference engine of :mod:`repro.core.gather`.
REFERENCE_ENGINE: str = "reference"
#: Name of the C-kernel engine of :mod:`repro.core.engine_compiled`.
COMPILED_ENGINE: str = "compiled"
#: Engine used when callers do not ask for a specific one.
DEFAULT_ENGINE: str = FLAT_ENGINE


@dataclass(frozen=True)
class GatherKernels:
    """The three swappable hot blocks of the flat gather driver.

    ``combine(previous, child_row, budget, blue, j_max) -> (best, split)``
        The batched ``mCost`` convolution.
    ``leaf_init(x, y_blue, y_red, path_rho, load, leaves, avail, exact_k, k)``
        The leaf-frontier broadcast, writing the three tables in place.
    ``color_choice(y_blue, y_red) -> uint8 tensor``
        The elementwise strict ``y_blue < y_red`` decision.

    Every implementation must perform the identical per-element IEEE-754
    operations in the identical order — the differential suite holds all
    kernel sets to bit-identical outputs.
    """

    combine: Callable[..., tuple[np.ndarray, np.ndarray]]
    leaf_init: Callable[..., None]
    color_choice: Callable[[np.ndarray, np.ndarray], np.ndarray]


def _combine_small_batch(
    previous: np.ndarray,
    child_row: np.ndarray,
    budget: int,
    blue: bool,
    j_max: int | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Stacked-candidate variant of :func:`_batched_combine` for tiny batches.

    The sequential split loop of the batched kernel pays ~6 numpy
    dispatches per ``j``; on the big level slabs of a cold gather that
    overhead amortizes over hundreds of node columns, but the delta-repair
    path calls the kernel with a handful of dirty nodes per level, where
    dispatch dominates the arithmetic.  This variant materializes every
    candidate split in one ``(J, H, k + 1, B)`` stack (invalid cells
    ``+inf``) and reduces with a single min/argmin pair.

    Bit-identity with the sequential loop: every candidate value is the
    same ``np.add`` of the same operands; the one-shot minimum of a
    NaN-free, ``-0.0``-free candidate set is the exact same float the
    running ``np.minimum`` converges to (float min is exact, order-free);
    and ``np.argmin``'s first-minimum rule reproduces the loop's
    smallest-split strict-improvement tie-break, including split 0 for
    all-``inf`` columns.
    """
    height, width, batch = previous.shape[0], budget + 1, previous.shape[2]
    if j_max is None:
        j_max = budget
    offset = 1 if blue else 0  # a blue parent keeps one unit for itself
    splits = min(budget, j_max) + 1
    stacked = np.full((splits, height, width, batch), np.inf, dtype=np.float64)
    for j in range(splits):
        start = j + offset
        if start > budget:
            break
        np.add(
            previous[:, offset : width - j],
            child_row[:, j : j + 1],
            out=stacked[j, :, start:],
        )
    best = stacked.min(axis=0)
    best_split = stacked.argmin(axis=0).astype(np.int32)
    return best, best_split


def _batched_combine(
    previous: np.ndarray,
    child_row: np.ndarray,
    budget: int,
    blue: bool,
    j_max: int | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Batched ``mCost`` (min,+)-convolution over the budget axis.

    ``previous`` has shape ``(H, k + 1, B)`` holding ``Y^{m-1}`` for ``B``
    same-depth nodes; ``child_row`` has shape ``(H, k + 1, B)`` (red parent:
    child indexed at ``l + 1``) or ``(1, k + 1, B)`` (blue parent: child
    always sees ``l = 1``, broadcast over the parameter axis).  Mirrors
    :func:`repro.core.gather._combine_child` element for element — same
    iteration order over the split ``j``, same strict-improvement update —
    batched over the trailing node axis.

    The running minimum is maintained with ``np.minimum`` and the argmin
    with integer mask arithmetic rather than masked assignment: with the
    node axis contiguous these are straight SIMD streams, several times
    faster than ``np.copyto(..., where=)``.

    ``j_max`` optionally caps the split range at the number of available
    switches inside the child subtree.  Larger splits cannot strictly
    improve any entry — under at-most-k semantics the child columns beyond
    ``j_max`` are exact copies of column ``j_max`` while the ``previous``
    side is non-increasing in the budget, and under exactly-k they are
    ``+inf`` — so the capped convolution is bit-identical to the full one,
    including the stored argmin (the uncapped candidates never win the
    strict-improvement tie-break).

    Tiny batches (a few dirty nodes during a delta repair, the near-root
    levels of a cold gather) are routed to the bit-identical
    :func:`_combine_small_batch`, which trades the per-split dispatch
    overhead for one stacked min/argmin reduction.
    """
    if previous.shape[0] * previous.shape[2] <= 64:
        return _combine_small_batch(previous, child_row, budget, blue, j_max)
    height, width, batch = previous.shape[0], budget + 1, previous.shape[2]
    if j_max is None:
        j_max = budget
    best = np.empty((height, width, batch), dtype=np.float64)
    best_split = np.zeros((height, width, batch), dtype=np.int32)

    # j = 0 seeds the running minimum directly (split 0, like the reference's
    # first strict improvement over the +inf initialization).
    start0 = 1 if blue else 0
    if start0 > budget:
        best.fill(np.inf)
        return best, best_split
    best[:, :start0] = np.inf
    np.add(previous[:, start0:], child_row[:, 0:1], out=best[:, start0:])

    candidate = np.empty((height, width, batch), dtype=np.float64)
    improved = np.empty((height, width, batch), dtype=bool)
    scratch = np.empty((height, width, batch), dtype=np.int32)
    for j in range(1, min(budget, j_max) + 1):
        start = j + 1 if blue else j  # blue parent keeps one unit for itself
        if start > budget:
            break
        cand = candidate[:, : width - start]
        np.add(
            previous[:, start - j : width - j],
            child_row[:, j : j + 1],
            out=cand,
        )
        target = best[:, start:]
        # Strictly-better mask first (ties keep the smaller split j), then a
        # branch-free minimum and argmin update.
        better = np.less(cand, target, out=improved[:, : width - start])
        np.minimum(target, cand, out=target)
        split_target = best_split[:, start:]
        delta = scratch[:, : width - start]
        np.subtract(np.int32(j), split_target, out=delta)
        np.multiply(delta, better, out=delta)
        np.add(split_target, delta, out=split_target)
    return best, best_split


def _leaf_init_numpy(
    x_flat: np.ndarray,
    y_blue_flat: np.ndarray,
    y_red_flat: np.ndarray,
    path_rho: np.ndarray,
    load: np.ndarray,
    leaves: np.ndarray,
    avail: np.ndarray,
    exact_k: bool,
    k: int,
) -> None:
    """Initialize the whole leaf frontier in one numpy broadcast."""
    leaf_paths = path_rho[:, leaves]  # (height + 1, m)
    red_columns = leaf_paths * load[leaves]
    blue_leaves = leaves[avail[leaves]]
    y_blue_flat[:, :, leaves] = np.inf
    if exact_k:
        y_red_flat[:, :, leaves] = np.inf
        y_red_flat[:, 0, leaves] = red_columns
        if k >= 1 and blue_leaves.size:
            y_blue_flat[:, 1, blue_leaves] = path_rho[:, blue_leaves]
    else:
        y_red_flat[:, :, leaves] = red_columns[:, None, :]
        if k >= 1 and blue_leaves.size:
            y_blue_flat[:, 1:, blue_leaves] = path_rho[:, blue_leaves][:, None, :]
    x_flat[:, :, leaves] = np.minimum(
        y_red_flat[:, :, leaves], y_blue_flat[:, :, leaves]
    )


def _color_choice_numpy(y_blue: np.ndarray, y_red: np.ndarray) -> np.ndarray:
    """The blue/red decision tensor: strict ``y_blue < y_red`` as uint8."""
    # BLUE == 1 == True and RED == 0 == False, so the boolean comparison
    # reinterpreted as uint8 is exactly the choice table.
    return np.less(y_blue, y_red).view(np.uint8)


#: The pure-numpy kernel set of the ``"flat"`` engine (and the fallback of
#: the ``"compiled"`` one).
NUMPY_KERNELS = GatherKernels(
    combine=_batched_combine,
    leaf_init=_leaf_init_numpy,
    color_choice=_color_choice_numpy,
)


def subtree_available_counts(
    depth: np.ndarray,
    parent: np.ndarray,
    avail: np.ndarray,
    height: int,
) -> np.ndarray:
    """``|Λ ∩ T_v|`` for every node, in the flat node order.

    Accumulated child -> parent level by level, walking every level down
    to 1 with nodes whose parent is the destination (``parent == -1``)
    masked out: an unguarded walk would wrap the destination's ``-1``
    onto the *last* flat-order position — the root, in the canonical
    deepest-level-first order — and silently double its count.  The
    convolution cap only ever reads non-root entries (the root is never a
    convolution child), but kernels that reuse this array — the compiled
    backend, subtree diagnostics — rely on every entry being the true
    count, the root's being exactly ``|Λ|``.
    """
    counts = avail.astype(np.int64)
    for level in range(height, 0, -1):
        members = np.nonzero(depth == level)[0]
        targets = parent[members]
        in_tree = targets >= 0
        if in_tree.any():
            np.add.at(counts, targets[in_tree], counts[members[in_tree]])
    return counts


def _gather_flat_tensors(
    tree: TreeNetwork,
    budget: int,
    exact_k: bool,
    kernels: GatherKernels,
    engine: str,
) -> GatherResult:
    """The shared flat-tensor gather driver, parameterized by kernel set."""
    k = normalize_budget(tree, budget)
    n = tree.num_switches
    height = tree.height
    width = k + 1
    # Node axis of the flat tensors: the canonical deepest-level-first
    # order of repro.core.flat.  Every level is then a contiguous slab, so
    # the child gathers and table writes of the level-batched loop stay
    # cache-local; children still precede parents, as the DP requires.
    order = flat_order(tree)
    index = {node: i for i, node in enumerate(order)}

    depth = np.fromiter((tree.depth(v) for v in order), dtype=np.int64, count=n)
    load = np.fromiter((tree.load(v) for v in order), dtype=np.float64, count=n)
    rho = np.fromiter((tree.rho(v) for v in order), dtype=np.float64, count=n)
    avail = np.fromiter((v in tree.available for v in order), dtype=bool, count=n)
    parent = np.fromiter(
        (index.get(tree.parent(v), -1) for v in order), dtype=np.int64, count=n
    )
    children_idx: list[np.ndarray] = [
        np.fromiter((index[c] for c in tree.children(v)), dtype=np.int64)
        for v in order
    ]

    # P[l, v] = rho(v, A^l_v), accumulated bottom-up exactly like
    # TreeNetwork.path_rho_prefix (same summation order, hence the same
    # floating-point values).  Rows l > D(v) are never read.
    path_rho = np.zeros((height + 1, n), dtype=np.float64)
    ancestor = np.arange(n)
    for level in range(1, height + 1):
        live = depth >= level
        path_rho[level, live] = path_rho[level - 1, live] + rho[ancestor[live]]
        ancestor[live] = parent[ancestor[live]]

    # The flat tables.  Entries at rows l > D(v) are uninitialized and are
    # neither read by parents (a parent at depth d reads child rows
    # 1 .. d + 1 <= D(child) + 1) nor exposed through the NodeTables views;
    # the infinities the DP relies on are written explicitly below.
    x_flat = np.empty((height + 1, width, n), dtype=np.float64)
    y_blue_flat = np.empty((height + 1, width, n), dtype=np.float64)
    y_red_flat = np.empty((height + 1, width, n), dtype=np.float64)

    # Split breadcrumbs: node v with C(v) children owns C(v) - 1 stage slots.
    stage_counts = np.array([max(0, len(c) - 1) for c in children_idx], dtype=np.int64)
    stage_offset = np.concatenate(([0], np.cumsum(stage_counts)[:-1]))
    total_stages = int(stage_counts.sum())
    splits_red_flat = np.zeros((height + 1, width, total_stages), dtype=np.int32)
    splits_blue_flat = np.zeros((height + 1, width, total_stages), dtype=np.int32)

    # ---- leaves: one broadcast for the whole frontier ---------------------
    leaf_rows = np.fromiter((len(c) == 0 for c in children_idx), dtype=bool, count=n)
    leaves = np.nonzero(leaf_rows)[0]
    if leaves.size:
        kernels.leaf_init(
            x_flat, y_blue_flat, y_red_flat, path_rho, load, leaves, avail, exact_k, k
        )

    # |Λ ∩ T_v| for every node; it caps the convolution split range (see
    # _batched_combine).
    subtree_avail = subtree_available_counts(depth, parent, avail, height)

    # ---- internal nodes, level-batched from the deepest level up ----------
    internal_by_depth: dict[int, list[int]] = {}
    for i in np.nonzero(~leaf_rows)[0]:
        internal_by_depth.setdefault(int(depth[i]), []).append(int(i))

    for level in sorted(internal_by_depth, reverse=True):
        group = np.asarray(internal_by_depth[level], dtype=np.int64)
        rows = level + 1  # parameters l = 0 .. D(v)
        num_children = np.array([len(children_idx[i]) for i in group])
        upward = path_rho[:rows, group]  # (rows, B)
        can_blue = avail[group] & (k >= 1)

        # stage m = 1
        first_child = np.array([children_idx[i][0] for i in group])
        y_red = x_flat[1 : rows + 1, :, first_child] + (
            upward * load[group]
        )[:, None, :]
        y_blue = np.full_like(y_red, np.inf)
        if can_blue.any():  # can_blue already folds in k >= 1
            sel = np.nonzero(can_blue)[0]
            # x_flat[1] first: a scalar index combined with the node fancy
            # index would move the broadcast axes to the front.
            y_blue[:, 1:, sel] = (
                x_flat[1][:k, first_child[sel]][None, :, :] + upward[:, sel][:, None, :]
            )

        # stages m = 2 .. C(v): batched convolution over every node of the
        # level that still has an m-th child.
        for stage in range(2, int(num_children.max(initial=1)) + 1):
            active = np.nonzero(num_children >= stage)[0]
            if not active.size:
                break
            nodes = group[active]
            child = np.array([children_idx[i][stage - 1] for i in nodes])
            slots = stage_offset[nodes] + (stage - 2)

            j_cap = int(subtree_avail[child].max())

            child_red = x_flat[1 : rows + 1, :, child]
            merged_red, split_red = kernels.combine(
                y_red[:, :, active], child_red, k, blue=False, j_max=j_cap
            )
            y_red[:, :, active] = merged_red
            splits_red_flat[:rows, :, slots] = split_red

            blue_active = np.nonzero(can_blue[active])[0]
            if blue_active.size:
                child_blue = x_flat[1][:, child[blue_active]][None, :, :]
                merged_blue, split_blue = kernels.combine(
                    y_blue[:, :, active[blue_active]], child_blue, k, blue=True, j_max=j_cap
                )
                y_blue[:, :, active[blue_active]] = merged_blue
                splits_blue_flat[:rows, :, slots[blue_active]] = split_blue

        x_flat[:rows, :, group] = np.minimum(y_blue, y_red)
        y_red_flat[:rows, :, group] = y_red
        y_blue_flat[:rows, :, group] = y_blue

    choice_flat = kernels.color_choice(y_blue_flat, y_red_flat)

    # ---- materialize the reference breadcrumb format as views -------------
    tables: dict = {}
    for i, node in enumerate(order):
        rows = int(depth[i]) + 1
        stages = int(stage_counts[i])
        base = int(stage_offset[i])
        tables[node] = NodeTables(
            x=x_flat[:rows, :, i],
            y_blue=y_blue_flat[:rows, :, i],
            y_red=y_red_flat[:rows, :, i],
            choice=choice_flat[:rows, :, i],
            splits_blue=[splits_blue_flat[:rows, :, base + s] for s in range(stages)],
            splits_red=[splits_red_flat[:rows, :, base + s] for s in range(stages)],
        )

    num_children = np.fromiter(
        (len(c) for c in children_idx), dtype=np.int64, count=n
    )
    # The per-node arrays double as the FlatTables metadata; the layout
    # matches repro.core.flat.build_metadata field for field.
    flat = FlatTables(
        tree=tree,
        order=tuple(order),
        index=index,
        depth=depth,
        load=load.astype(np.int64),
        avail=avail,
        leaf=leaf_rows,
        num_children=num_children,
        child_concat=(
            np.concatenate(children_idx)
            if children_idx
            else np.empty(0, dtype=np.int64)
        ),
        child_offset=np.concatenate(([0], np.cumsum(num_children)[:-1])),
        stage_offset=stage_offset,
        level_slices=level_slices_for(depth, height),
        y_blue=y_blue_flat,
        y_red=y_red_flat,
        splits_blue=splits_blue_flat,
        splits_red=splits_red_flat,
    )

    return GatherResult(
        tables=tables,
        root=tree.root,
        budget=k,
        requested_budget=int(budget),
        exact_k=exact_k,
        engine=engine,
        flat=flat,
    )


def flat_gather(
    tree: TreeNetwork,
    budget: int,
    exact_k: bool = False,
) -> GatherResult:
    """Run SOAR-Gather on flat ``(l, i, node)`` tensors.

    Drop-in replacement for :func:`repro.core.gather.soar_gather`: same
    parameters, same :class:`~repro.core.gather.GatherResult` (the per-node
    tables are numpy views into the contiguous tensors).
    """
    return _gather_flat_tensors(
        tree, budget, exact_k, kernels=NUMPY_KERNELS, engine=FLAT_ENGINE
    )


def _repair_flat_tensors(
    result: GatherResult,
    tree: TreeNetwork,
    kernels: GatherKernels,
    engine: str,
) -> GatherResult:
    """Delta-repair a flat gather result towards ``tree``'s availability.

    ``result`` was gathered for ``result.flat.tree`` (availability Λ₀);
    ``tree`` is the same structure and loads under a different Λ.  Only the
    switches of the symmetric difference Λ₀ ^ Λ and their ancestors have
    stale DP slabs — every other subtree sees an unchanged Λ ∩ T_v — so
    the repair clones the flat tensors and re-runs the level-batched
    convolution for the dirty columns alone: O(depth · k² · |delta|) work
    instead of the cold gather's O(n · k²).

    Bit-identity with a cold gather is preserved end to end:

    * dirty columns are recomputed with the *same kernels* in the same
      level order, reading child ``x`` rows as ``min(y_red, y_blue)`` —
      exactly the values the cold driver materialized in its ``x`` tensor
      (every valid entry was written as that minimum, and the inputs are
      NaN-free and sign-consistent, so the minimum is bitwise unique);
    * the convolution runs uncapped (no ``j_max``), which the kernel
      contract guarantees is bit-identical to the subtree-availability
      capped run, argmin included (see :func:`_batched_combine`);
    * ``path_rho`` for dirty columns is rebuilt from
      ``TreeNetwork.path_rho_prefix`` — the accumulation the cold driver's
      level walk reproduces value for value;
    * stale blue breadcrumbs of dirty nodes are re-zeroed before the blue
      convolution writes, matching the cold driver's zero-initialized
      split tensors for nodes that can no longer be blue.

    Clean columns keep their cloned values untouched, rows beyond a
    node's depth stay unspecified (never read) exactly as in a cold
    gather, and the repaired result carries :class:`LazyNodeTables` so no
    per-node view materialization is paid up front.

    Raises :class:`~repro.exceptions.RepairError` when repair is unsound:
    no flat tensors, different structure or loads, or a changed effective
    budget (the tensor width would differ).
    """
    old_flat = result.flat
    if not isinstance(old_flat, FlatTables):
        raise RepairError("gather result carries no flat tensors to repair")
    old_tree = old_flat.tree
    if old_tree.structure_fingerprint() != tree.structure_fingerprint():
        raise RepairError(
            "cannot repair a gather table across structure changes; "
            "the flat tensor layout is structure-specific"
        )
    if old_tree.loads_fingerprint() != tree.loads_fingerprint():
        raise RepairError(
            "cannot repair a gather table across load changes; "
            "every column of the DP depends on its subtree loads"
        )
    k = normalize_budget(tree, result.requested_budget)
    if k != result.budget:
        raise RepairError(
            f"effective budget changed ({result.budget} -> {k}): the delta "
            "moved |Λ| across the requested budget, so the tensor width of "
            "the cached tables no longer matches"
        )

    order = old_flat.order
    index = old_flat.index
    depth = old_flat.depth
    leaf = old_flat.leaf
    child_concat = old_flat.child_concat
    child_offset = old_flat.child_offset
    stage_offset = old_flat.stage_offset
    n = len(order)
    height = tree.height
    width = k + 1
    load = old_flat.load.astype(np.float64)

    delta = old_tree.available ^ tree.available
    dirty = dirty_ancestor_positions(tree, index, delta)

    avail = old_flat.avail.copy()
    for switch in delta:
        avail[index[switch]] = switch in tree.available

    # Copy-on-write clone: the repaired result must not mutate the cached
    # tensors (the cache may repair the same artifact towards several Λ's).
    y_blue_flat = old_flat.y_blue.copy()
    y_red_flat = old_flat.y_red.copy()
    splits_blue_flat = old_flat.splits_blue.copy()
    splits_red_flat = old_flat.splits_red.copy()

    # rho(v, A^l_v) for the dirty columns only; rows beyond a node's depth
    # stay 0.0, exactly like the cold driver's level walk leaves them.
    path_rho = np.zeros((height + 1, n), dtype=np.float64)
    for position in dirty.tolist():
        prefix = tree.path_rho_prefix(order[position])
        path_rho[: len(prefix), position] = prefix

    # ---- dirty leaves: the same frontier broadcast, restricted ------------
    dirty_leaves = dirty[leaf[dirty]]
    if dirty_leaves.size:
        # The driver's x tensor is never kept by repairs (child x rows are
        # re-derived as min(y_red, y_blue) below); leaf_init still writes
        # one, so hand it a scratch tensor that is dropped afterwards.
        x_scratch = np.empty((height + 1, width, n), dtype=np.float64)
        kernels.leaf_init(
            x_scratch,
            y_blue_flat,
            y_red_flat,
            path_rho,
            load,
            dirty_leaves,
            avail,
            result.exact_k,
            k,
        )

    # ---- dirty internal nodes, level-batched from the deepest level up ----
    dirty_internal = dirty[~leaf[dirty]]
    for level, group in dirty_level_groups(depth, dirty_internal):
        rows = level + 1
        num_children = old_flat.num_children[group]
        upward = path_rho[:rows, group]
        can_blue = avail[group] & (k >= 1)

        # Children live one level deeper and were finalized before this
        # level (dirty or clean alike), so their x rows are the minimum of
        # the y tensors as they stand now.
        x_row1 = np.minimum(y_red_flat[1], y_blue_flat[1])

        # stage m = 1
        first_child = child_concat[child_offset[group]]
        child_x = np.minimum(
            y_red_flat[1 : rows + 1, :, first_child],
            y_blue_flat[1 : rows + 1, :, first_child],
        )
        y_red = child_x + (upward * load[group])[:, None, :]
        y_blue = np.full_like(y_red, np.inf)
        if can_blue.any():  # can_blue already folds in k >= 1
            sel = np.nonzero(can_blue)[0]
            y_blue[:, 1:, sel] = (
                x_row1[:k, first_child[sel]][None, :, :] + upward[:, sel][:, None, :]
            )

        # stages m = 2 .. C(v)
        for stage in range(2, int(num_children.max(initial=1)) + 1):
            active = np.nonzero(num_children >= stage)[0]
            if not active.size:
                break
            nodes = group[active]
            child = child_concat[child_offset[nodes] + (stage - 1)]
            slots = stage_offset[nodes] + (stage - 2)

            child_red = np.minimum(
                y_red_flat[1 : rows + 1, :, child],
                y_blue_flat[1 : rows + 1, :, child],
            )
            merged_red, split_red = kernels.combine(
                y_red[:, :, active], child_red, k, blue=False
            )
            y_red[:, :, active] = merged_red
            splits_red_flat[:rows, :, slots] = split_red

            # A dirty node that could be blue at Λ₀ but cannot any more
            # would otherwise keep its stale breadcrumbs; the cold driver
            # leaves such slots zero-initialized.
            splits_blue_flat[:rows, :, slots] = 0
            blue_active = np.nonzero(can_blue[active])[0]
            if blue_active.size:
                child_blue = x_row1[:, child[blue_active]][None, :, :]
                merged_blue, split_blue = kernels.combine(
                    y_blue[:, :, active[blue_active]], child_blue, k, blue=True
                )
                y_blue[:, :, active[blue_active]] = merged_blue
                splits_blue_flat[:rows, :, slots[blue_active]] = split_blue

        y_red_flat[:rows, :, group] = y_red
        y_blue_flat[:rows, :, group] = y_blue

    new_flat = FlatTables(
        tree=tree,
        order=order,
        index=index,
        depth=depth,
        load=old_flat.load,
        avail=avail,
        leaf=leaf,
        num_children=old_flat.num_children,
        child_concat=child_concat,
        child_offset=child_offset,
        stage_offset=stage_offset,
        level_slices=old_flat.level_slices,
        y_blue=y_blue_flat,
        y_red=y_red_flat,
        splits_blue=splits_blue_flat,
        splits_red=splits_red_flat,
    )
    old_model = old_flat.cost_model
    if old_model is not None:
        # The cost model depends on structure, rates, and loads only — all
        # unchanged by construction — so the repaired artifact inherits it
        # (rebased onto the new tree) and its first placement skips the
        # O(n) model build.
        new_flat.cost_model = replace(old_model, tree=tree)

    return GatherResult(
        tables=LazyNodeTables(new_flat),
        root=tree.root,
        budget=k,
        requested_budget=result.requested_budget,
        exact_k=result.exact_k,
        engine=engine,
        flat=new_flat,
        cost_model=new_flat.cost_model,
    )


def flat_repair(result: GatherResult, tree: TreeNetwork) -> GatherResult:
    """Delta-repair a flat-engine gather result towards ``tree``.

    Drop-in sibling of :func:`flat_gather`: the returned result is
    bit-identical (costs, tables, breadcrumbs, traced placements) to
    ``flat_gather(tree, result.requested_budget, result.exact_k)``.
    """
    return _repair_flat_tensors(result, tree, kernels=NUMPY_KERNELS, engine=FLAT_ENGINE)


#: Registry of gather-table repairers, keyed by engine name.  The
#: ``"compiled"`` entry is appended by :mod:`repro.core.engine_compiled`;
#: the ``"reference"`` engine has none (its results may not carry flat
#: tensors), so repairing a reference table falls back to a cold gather.
REPAIRERS: dict[str, Callable[[GatherResult, TreeNetwork], GatherResult]] = {
    FLAT_ENGINE: flat_repair,
}


def repair(result: GatherResult, tree: TreeNetwork, engine: str | None = None) -> GatherResult:
    """Delta-repair ``result`` towards ``tree`` with the named engine.

    Defaults to the engine that produced the result.  Raises
    :class:`~repro.exceptions.RepairError` when the engine has no
    registered repairer or the repair would be unsound (see
    :func:`_repair_flat_tensors`); callers handle it by re-gathering.
    """
    name = result.engine if engine is None else engine
    repairer = REPAIRERS.get(name)
    if repairer is None:
        raise RepairError(
            f"no gather-table repairer registered for engine {name!r}"
        )
    return repairer(result, tree)


#: Registry of gather engines, keyed by their public name.  The
#: ``"compiled"`` entry is appended by :mod:`repro.core.engine_compiled`
#: at the bottom of this module (it needs the driver defined first).
ENGINES: dict[str, Callable[..., GatherResult]] = {
    FLAT_ENGINE: flat_gather,
    REFERENCE_ENGINE: soar_gather,
}


def gather(
    tree: TreeNetwork,
    budget: int,
    exact_k: bool = False,
    engine: str = DEFAULT_ENGINE,
) -> GatherResult:
    """Run SOAR-Gather with the named engine.

    ``"flat"`` (default), ``"compiled"``, or ``"reference"``; all three
    produce bit-identical results — see the module docstring.
    """
    try:
        implementation = ENGINES[engine]
    except KeyError:
        known = ", ".join(sorted(ENGINES))
        raise ValueError(f"unknown gather engine {engine!r}; expected one of: {known}")
    return implementation(tree, budget, exact_k=exact_k)


# Registers the "compiled" engine (self-registration keeps the import
# order safe whichever module is imported first).
import repro.core.engine_compiled  # noqa: E402,F401  (registration side effect)

"""Rooted tree network model used by every other part of the library.

The paper's system model (Section 2) is a weighted tree ``T = (V, E, w)``
where ``V`` is the set of switches plus a special destination server ``d``,
every edge is directed towards ``d``, every switch has a load ``L(s)``
(the number of servers attached to it), and every edge has a rate ``w(e)``
in messages per second.  The reciprocal ``rho(e) = 1 / w(e)`` is the
transmission time of a single message on the edge.

:class:`TreeNetwork` stores this model and precomputes the structural
queries every algorithm in the library relies on:

* parent / children relations and a post-order traversal of the switches,
* the depth ``D(v)`` of every node, measured in edges from ``v`` to the
  destination (``D(d) = 0``, ``D(r) = 1``),
* the cumulative path cost ``rho(v, A^l_v)`` of walking ``l`` edges upward
  from ``v`` (the parameterized potential of the SOAR dynamic program is
  indexed by exactly this quantity).

Instances are conceptually immutable: the "modify" helpers
(:meth:`TreeNetwork.with_loads`, :meth:`TreeNetwork.with_available`,
:meth:`TreeNetwork.with_rates`) return new objects sharing the topology.
"""

from __future__ import annotations

import hashlib
import math
from collections.abc import Hashable, Iterable, Mapping, Sequence
from typing import Any

import networkx as nx

from repro.exceptions import (
    AvailabilityError,
    InvalidLoadError,
    InvalidRateError,
    TreeStructureError,
)

NodeId = Hashable

#: Default identifier of the destination server.
DEFAULT_DESTINATION: str = "d"


def _digest(parts: Iterable[str]) -> str:
    """Short hex digest of an iterable of canonical strings."""
    hasher = hashlib.blake2b(digest_size=16)
    for part in parts:
        hasher.update(part.encode())
        hasher.update(b"\x00")
    return hasher.hexdigest()


#: Modulus of the :class:`IncrementalDigest` additive combine (256 bits).
_COMBINE_BITS: int = 256
_COMBINE_MODULUS: int = 1 << _COMBINE_BITS


def _entry_digest(part: str) -> int:
    """256-bit digest of one canonical entry string (see IncrementalDigest)."""
    return int.from_bytes(
        hashlib.blake2b(part.encode(), digest_size=_COMBINE_BITS // 8).digest(), "big"
    )


class IncrementalDigest:
    """Order-independent digest of a set of canonical strings, maintainable
    under point updates.

    Entries combine by *addition modulo 2**256* of their individual
    blake2b digests (the AdHash multiset-hash construction), so the
    combined value is independent of insertion order and every ``add``
    has an exact inverse ``remove``.  This is what lets the placement
    service keep the Λ fingerprint current across admit/release/drain
    churn in O(changed switches) instead of re-digesting the whole set —
    while :func:`fingerprint_nodes` (defined on top of the same combine)
    remains the ground truth a maintained digest can be checked against
    at any time.

    Any incrementally-maintainable combine is necessarily homomorphic,
    which is weaker against *adversarially constructed* collisions than a
    chained hash over the sorted entries; the wide 256-bit additive group
    is the standard mitigation (finding colliding subsets is a hard
    lattice problem rather than GF(2) Gaussian elimination).  The inputs
    here are the operator's own switch ids, not attacker-chosen strings —
    digests that *are* fed attacker-adjacent data (request load mappings,
    :func:`fingerprint_loads`) stay on the chained construction.
    """

    __slots__ = ("_combined",)

    def __init__(self, parts: Iterable[str] = ()) -> None:
        self._combined = 0
        for part in parts:
            self.add(part)

    def add(self, part: str) -> None:
        """Fold one entry into the digest."""
        self._combined = (self._combined + _entry_digest(part)) % _COMBINE_MODULUS

    def remove(self, part: str) -> None:
        """Fold one entry out of the digest (the exact inverse of ``add``)."""
        self._combined = (self._combined - _entry_digest(part)) % _COMBINE_MODULUS

    def copy(self) -> "IncrementalDigest":
        clone = IncrementalDigest()
        clone._combined = self._combined
        return clone

    @classmethod
    def from_hexdigest(cls, hexdigest: str) -> "IncrementalDigest":
        """Resume a digest from a previously recorded :meth:`hexdigest`.

        The hex form is the combined group element verbatim, so a resumed
        digest behaves exactly like a :meth:`copy` of the instance that
        produced it — this is what lets :meth:`TreeNetwork.with_available`
        patch a memoized Λ fingerprint by the delta instead of re-digesting
        the whole set.
        """
        clone = cls()
        clone._combined = int(hexdigest, 16) % _COMBINE_MODULUS
        return clone

    def hexdigest(self) -> str:
        """Current combined digest (64 hex chars)."""
        return format(self._combined, f"0{_COMBINE_BITS // 4}x")


def fingerprint_loads(loads: Mapping[NodeId, int]) -> str:
    """Order-independent digest of a load function.

    Zero entries are skipped, so a mapping covering only the loaded switches
    (e.g. the per-leaf workloads of the online setting) digests identically
    to the full load function of a tree built from it — which is what lets
    the placement service key its cache on a request's loads without
    constructing the :class:`TreeNetwork` first.

    Loads arrive from requests, so this stays a chained blake2b over the
    sorted entries (full collision resistance); services avoid repeated
    recomputes by *memoizing* the value (tenant records carry theirs from
    admission), not by maintaining it incrementally.
    """
    return _digest(
        sorted(f"{node!r}={int(value)}" for node, value in loads.items() if int(value) != 0)
    )


def fingerprint_nodes(nodes: Iterable[NodeId]) -> str:
    """Order-independent digest of a set of node identifiers (e.g. Λ).

    Defined as the :class:`IncrementalDigest` combine over the node
    reprs, so a digest maintained incrementally across set churn equals
    this full recompute entry for entry.  The input is treated as a
    *set*: duplicates are collapsed before combining (a multiset combine
    would otherwise distinguish multiplicities).
    """
    return IncrementalDigest({repr(node) for node in nodes}).hexdigest()


#: Sentinel distinguishing "keep the current Λ" from an explicit ``None``
#: (which, as in the constructor, means "all switches available").
_KEEP_AVAILABLE: Any = object()


def _validate_rate(node: NodeId, rate: float) -> float:
    """Return ``rate`` as a float after checking it is finite and positive."""
    try:
        value = float(rate)
    except (TypeError, ValueError) as exc:
        raise InvalidRateError(f"rate of link above {node!r} is not a number: {rate!r}") from exc
    if not math.isfinite(value) or value <= 0.0:
        raise InvalidRateError(
            f"rate of link above {node!r} must be a positive finite number, got {rate!r}"
        )
    return value


def _validate_load(node: NodeId, load: Any) -> int:
    """Return ``load`` as an int after checking it is a non-negative integer."""
    try:
        value = int(load)
    except (TypeError, ValueError) as exc:
        raise InvalidLoadError(f"load of switch {node!r} is not an integer: {load!r}") from exc
    if value != load:
        raise InvalidLoadError(f"load of switch {node!r} must be integral, got {load!r}")
    if value < 0:
        raise InvalidLoadError(f"load of switch {node!r} must be non-negative, got {load!r}")
    return value


class TreeNetwork:
    """A weighted tree of switches rooted (logically) at a destination server.

    Parameters
    ----------
    parents:
        Mapping from every switch to its parent.  Exactly one switch (the
        *root* ``r``) must have the destination as its parent.  The
        destination itself must not appear as a key.
    rates:
        Mapping from a switch ``s`` to the rate ``w((s, p(s)))`` of the link
        connecting it to its parent, in messages per second.  Switches
        missing from the mapping default to rate ``1.0``.
    loads:
        Mapping from a switch to the number of servers attached to it
        (the network load ``L``).  Missing switches default to ``0``.
    available:
        The set Λ of switches that may be turned into aggregation (blue)
        switches.  ``None`` (the default) means every switch is available.
    destination:
        Identifier of the destination server ``d``.

    Raises
    ------
    TreeStructureError
        If the parent pointers do not describe a tree whose edges all lead
        to the destination.
    InvalidRateError, InvalidLoadError, AvailabilityError
        If rates, loads, or Λ are malformed.
    """

    __slots__ = (
        "_destination",
        "_root",
        "_parents",
        "_children",
        "_rates",
        "_rho",
        "_loads",
        "_available",
        "_depth",
        "_postorder",
        "_cum_rho",
        "_height",
        "_fingerprints",
    )

    def __init__(
        self,
        parents: Mapping[NodeId, NodeId],
        rates: Mapping[NodeId, float] | None = None,
        loads: Mapping[NodeId, int] | None = None,
        available: Iterable[NodeId] | None = None,
        destination: NodeId = DEFAULT_DESTINATION,
    ) -> None:
        if destination in parents:
            raise TreeStructureError("the destination must not have a parent")
        if not parents:
            raise TreeStructureError("a tree network needs at least one switch")

        self._destination: NodeId = destination
        self._parents: dict[NodeId, NodeId] = dict(parents)

        roots = [s for s, p in self._parents.items() if p == destination]
        if len(roots) != 1:
            raise TreeStructureError(
                f"exactly one switch must have the destination as parent, found {len(roots)}"
            )
        self._root: NodeId = roots[0]

        self._children: dict[NodeId, list[NodeId]] = {s: [] for s in self._parents}
        self._children[destination] = []
        for switch, parent in self._parents.items():
            if switch == parent:
                raise TreeStructureError(f"switch {switch!r} is its own parent")
            if parent != destination and parent not in self._parents:
                raise TreeStructureError(
                    f"switch {switch!r} points at unknown parent {parent!r}"
                )
            self._children[parent].append(switch)

        rates = rates or {}
        loads = loads or {}
        for key in rates:
            if key not in self._parents:
                raise InvalidRateError(f"rate given for unknown switch {key!r}")
        for key in loads:
            if key not in self._parents:
                raise InvalidLoadError(f"load given for unknown switch {key!r}")

        self._rates: dict[NodeId, float] = {
            s: _validate_rate(s, rates.get(s, 1.0)) for s in self._parents
        }
        self._rho: dict[NodeId, float] = {s: 1.0 / r for s, r in self._rates.items()}
        self._loads: dict[NodeId, int] = {
            s: _validate_load(s, loads.get(s, 0)) for s in self._parents
        }

        if available is None:
            self._available: frozenset[NodeId] = frozenset(self._parents)
        else:
            available_set = frozenset(available)
            unknown = available_set - set(self._parents)
            if unknown:
                raise AvailabilityError(
                    f"availability set references unknown switches: {sorted(map(repr, unknown))}"
                )
            self._available = available_set

        self._depth: dict[NodeId, int] = {}
        self._cum_rho: dict[NodeId, float] = {destination: 0.0}
        self._postorder: tuple[NodeId, ...] = self._compute_order()
        self._height: int = max(self._depth.values(), default=0)
        self._fingerprints: dict[str, str] = {}

    # ------------------------------------------------------------------ #
    # construction helpers
    # ------------------------------------------------------------------ #

    def _compute_order(self) -> tuple[NodeId, ...]:
        """Compute depths, cumulative path costs, and a post-order traversal.

        Uses an explicit stack so arbitrarily deep trees (e.g. path graphs
        with thousands of switches) do not hit the interpreter recursion
        limit.  Also detects cycles / disconnected switches.
        """
        depth = self._depth
        cum_rho = self._cum_rho
        depth[self._destination] = 0

        order: list[NodeId] = []
        stack: list[tuple[NodeId, bool]] = [(self._root, False)]
        visited: set[NodeId] = set()
        while stack:
            node, expanded = stack.pop()
            if expanded:
                order.append(node)
                continue
            if node in visited:
                raise TreeStructureError(f"cycle detected at switch {node!r}")
            visited.add(node)
            parent = self._parents[node]
            depth[node] = depth[parent] + 1
            cum_rho[node] = cum_rho[parent] + self._rho[node]
            stack.append((node, True))
            for child in self._children[node]:
                stack.append((child, False))

        if len(visited) != len(self._parents):
            missing = set(self._parents) - visited
            raise TreeStructureError(
                f"switches unreachable from the root: {sorted(map(repr, missing))}"
            )
        return tuple(order)

    @classmethod
    def from_networkx(
        cls,
        graph: nx.Graph | nx.DiGraph,
        root: NodeId,
        loads: Mapping[NodeId, int] | None = None,
        rates: Mapping[NodeId, float] | None = None,
        available: Iterable[NodeId] | None = None,
        destination: NodeId = DEFAULT_DESTINATION,
        rate_attribute: str = "rate",
        load_attribute: str = "load",
    ) -> "TreeNetwork":
        """Build a :class:`TreeNetwork` from an (undirected) networkx tree.

        The graph must be a tree over the switches only; a fresh destination
        node is attached above ``root``.  Edge rates are read from the
        ``rate_attribute`` edge attribute unless overridden by ``rates``
        (keyed by the child switch); node loads are read from the
        ``load_attribute`` node attribute unless overridden by ``loads``.
        The rate of the new ``(root, destination)`` link defaults to ``1.0``
        and can be set via ``rates[root]``.
        """
        undirected = graph.to_undirected() if graph.is_directed() else graph
        if root not in undirected:
            raise TreeStructureError(f"root {root!r} is not a node of the graph")
        if destination in undirected:
            raise TreeStructureError(
                f"destination id {destination!r} already exists in the graph; choose another"
            )
        if not nx.is_tree(undirected):
            raise TreeStructureError("the supplied graph is not a tree")

        parents: dict[NodeId, NodeId] = {root: destination}
        for parent, child in nx.bfs_edges(undirected, root):
            parents[child] = parent

        effective_rates: dict[NodeId, float] = {}
        for child, parent in parents.items():
            if parent == destination:
                effective_rates[child] = 1.0
                continue
            data = undirected.get_edge_data(child, parent, default={})
            effective_rates[child] = data.get(rate_attribute, 1.0)
        if rates:
            effective_rates.update(rates)

        effective_loads: dict[NodeId, int] = {
            node: undirected.nodes[node].get(load_attribute, 0) for node in parents
        }
        if loads:
            effective_loads.update(loads)

        return cls(
            parents,
            rates=effective_rates,
            loads=effective_loads,
            available=available,
            destination=destination,
        )

    def to_networkx(self) -> nx.DiGraph:
        """Export the network (including the destination) as a directed graph.

        Edges point towards the destination and carry ``rate`` and ``rho``
        attributes; switch nodes carry ``load`` and ``available`` attributes.
        """
        graph = nx.DiGraph()
        graph.add_node(self._destination, kind="destination")
        for switch in self._parents:
            graph.add_node(
                switch,
                kind="switch",
                load=self._loads[switch],
                available=switch in self._available,
            )
        for switch, parent in self._parents.items():
            graph.add_edge(switch, parent, rate=self._rates[switch], rho=self._rho[switch])
        return graph

    # ------------------------------------------------------------------ #
    # basic accessors
    # ------------------------------------------------------------------ #

    @property
    def destination(self) -> NodeId:
        """The destination server ``d``."""
        return self._destination

    @property
    def root(self) -> NodeId:
        """The root switch ``r`` (the unique child of the destination)."""
        return self._root

    @property
    def switches(self) -> tuple[NodeId, ...]:
        """All switches in post-order (children before parents, root last)."""
        return self._postorder

    @property
    def num_switches(self) -> int:
        """Number of switches ``n`` (the destination is not counted)."""
        return len(self._parents)

    @property
    def available(self) -> frozenset[NodeId]:
        """The availability set Λ of switches allowed to aggregate."""
        return self._available

    @property
    def loads(self) -> dict[NodeId, int]:
        """A copy of the load function ``L``."""
        return dict(self._loads)

    @property
    def rates(self) -> dict[NodeId, float]:
        """A copy of the rate function, keyed by the child switch of each link."""
        return dict(self._rates)

    @property
    def height(self) -> int:
        """Height of the tree: the largest depth ``D(v)`` over all switches."""
        return self._height

    @property
    def total_load(self) -> int:
        """Total number of servers attached to the network."""
        return sum(self._loads.values())

    def __contains__(self, node: NodeId) -> bool:
        return node in self._parents or node == self._destination

    def __len__(self) -> int:
        return len(self._parents)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TreeNetwork(n={self.num_switches}, height={self.height}, "
            f"total_load={self.total_load})"
        )

    def is_switch(self, node: NodeId) -> bool:
        """Return ``True`` when ``node`` is a switch of the network."""
        return node in self._parents

    def parent(self, node: NodeId) -> NodeId:
        """Return the parent ``p(node)`` of a switch."""
        try:
            return self._parents[node]
        except KeyError as exc:
            raise TreeStructureError(f"{node!r} is not a switch of this network") from exc

    def children(self, node: NodeId) -> tuple[NodeId, ...]:
        """Return the children of ``node`` (which may be the destination)."""
        try:
            return tuple(self._children[node])
        except KeyError as exc:
            raise TreeStructureError(f"{node!r} is not a node of this network") from exc

    def num_children(self, node: NodeId) -> int:
        """Return ``C(node)``, the number of children of ``node``."""
        return len(self.children(node))

    def is_leaf(self, node: NodeId) -> bool:
        """Return ``True`` when the switch has no children."""
        return self.is_switch(node) and not self._children[node]

    def leaves(self) -> tuple[NodeId, ...]:
        """Return all leaf switches in post-order."""
        return tuple(s for s in self._postorder if not self._children[s])

    def load(self, node: NodeId) -> int:
        """Return the load ``L(node)`` of a switch."""
        try:
            return self._loads[node]
        except KeyError as exc:
            raise InvalidLoadError(f"{node!r} is not a switch of this network") from exc

    def rate(self, node: NodeId) -> float:
        """Return the rate of the link between ``node`` and its parent."""
        try:
            return self._rates[node]
        except KeyError as exc:
            raise InvalidRateError(f"{node!r} is not a switch of this network") from exc

    def rho(self, node: NodeId) -> float:
        """Return ``rho((node, p(node))) = 1 / rate``, the per-message link time."""
        try:
            return self._rho[node]
        except KeyError as exc:
            raise InvalidRateError(f"{node!r} is not a switch of this network") from exc

    def depth(self, node: NodeId) -> int:
        """Return ``D(node)``: the number of edges between ``node`` and ``d``."""
        try:
            return self._depth[node]
        except KeyError as exc:
            raise TreeStructureError(f"{node!r} is not a node of this network") from exc

    # ------------------------------------------------------------------ #
    # fingerprints
    # ------------------------------------------------------------------ #

    def structure_fingerprint(self) -> str:
        """Digest of the topology and rates (parents, destination, ``w``).

        Two networks with the same structure fingerprint describe the same
        weighted tree; they may still differ in loads and availability.
        Fingerprints are memoized per instance (the network is immutable).
        """
        cached = self._fingerprints.get("structure")
        if cached is None:
            cached = _digest(
                [repr(self._destination)]
                + sorted(
                    f"{s!r}->{p!r}@{self._rates[s]!r}" for s, p in self._parents.items()
                )
            )
            self._fingerprints["structure"] = cached
        return cached

    def loads_fingerprint(self) -> str:
        """Digest of the load function ``L`` (see :func:`fingerprint_loads`)."""
        cached = self._fingerprints.get("loads")
        if cached is None:
            cached = fingerprint_loads(self._loads)
            self._fingerprints["loads"] = cached
        return cached

    def availability_fingerprint(self) -> str:
        """Digest of the availability set Λ (see :func:`fingerprint_nodes`)."""
        cached = self._fingerprints.get("available")
        if cached is None:
            cached = fingerprint_nodes(self._available)
            self._fingerprints["available"] = cached
        return cached

    def fingerprint(self) -> str:
        """Digest of the whole φ-BIC instance: structure, loads, and Λ.

        Equal fingerprints mean equal problem instances, so any solver
        output (gather tables, placements, costs) computed for one network
        is valid verbatim for the other — the contract the gather-table
        cache of :mod:`repro.service` is built on.
        """
        cached = self._fingerprints.get("full")
        if cached is None:
            cached = _digest(
                [
                    self.structure_fingerprint(),
                    self.loads_fingerprint(),
                    self.availability_fingerprint(),
                ]
            )
            self._fingerprints["full"] = cached
        return cached

    # ------------------------------------------------------------------ #
    # path and subtree queries
    # ------------------------------------------------------------------ #

    def ancestor_at(self, node: NodeId, distance: int) -> NodeId:
        """Return ``A^distance_node``, the ancestor ``distance`` edges above ``node``.

        ``distance = 0`` returns ``node`` itself; ``distance = D(node)``
        returns the destination.
        """
        if distance < 0 or distance > self.depth(node):
            raise TreeStructureError(
                f"node {node!r} has no ancestor at distance {distance} (depth {self.depth(node)})"
            )
        current = node
        for _ in range(distance):
            current = self._parents[current]
        return current

    def ancestors(self, node: NodeId) -> tuple[NodeId, ...]:
        """Return the ancestors of ``node`` from its parent up to the destination."""
        result: list[NodeId] = []
        current = node
        while current != self._destination:
            current = self._parents[current]
            result.append(current)
        return tuple(result)

    def path_rho(self, node: NodeId, distance: int) -> float:
        """Return ``rho(node, A^distance_node)``: total per-message time of the
        ``distance`` links on the path from ``node`` towards the destination.
        """
        ancestor = self.ancestor_at(node, distance)
        return self._cum_rho[node] - self._cum_rho[ancestor]

    def path_rho_prefix(self, node: NodeId) -> list[float]:
        """Return ``[path_rho(node, l) for l in 0..D(node)]`` as one list.

        The SOAR dynamic program needs all of these values for every node;
        returning them in one call avoids repeated ancestor walks.
        """
        prefix: list[float] = [0.0]
        current = node
        total = 0.0
        while current != self._destination:
            total += self._rho[current]
            prefix.append(total)
            current = self._parents[current]
        return prefix

    def rho_to_destination(self, node: NodeId) -> float:
        """Return the total per-message time from ``node`` all the way to ``d``."""
        if node == self._destination:
            return 0.0
        try:
            return self._cum_rho[node]
        except KeyError as exc:
            raise TreeStructureError(f"{node!r} is not a node of this network") from exc

    def subtree(self, node: NodeId) -> tuple[NodeId, ...]:
        """Return all switches in the subtree rooted at ``node`` (including it)."""
        if not self.is_switch(node):
            raise TreeStructureError(f"{node!r} is not a switch of this network")
        result: list[NodeId] = []
        stack = [node]
        while stack:
            current = stack.pop()
            result.append(current)
            stack.extend(self._children[current])
        return tuple(result)

    def subtree_load(self, node: NodeId) -> int:
        """Return the total load of the subtree rooted at ``node``."""
        return sum(self._loads[s] for s in self.subtree(node))

    def levels(self) -> list[list[NodeId]]:
        """Return switches grouped by depth: ``levels()[0]`` is ``[root]``.

        Level index ``i`` holds the switches at depth ``i + 1`` from the
        destination (i.e. distance ``i`` from the root switch).
        """
        grouped: dict[int, list[NodeId]] = {}
        for switch in self._postorder:
            grouped.setdefault(self._depth[switch] - 1, []).append(switch)
        return [grouped[i] for i in sorted(grouped)]

    # ------------------------------------------------------------------ #
    # derived copies
    # ------------------------------------------------------------------ #

    def with_loads(
        self,
        loads: Mapping[NodeId, int],
        available: Iterable[NodeId] | None = _KEEP_AVAILABLE,
    ) -> "TreeNetwork":
        """Return a copy of the network with a different load function.

        Switches absent from ``loads`` get load 0 (the mapping fully replaces
        the previous loads; use ``{**tree.loads, ...}`` to patch instead).
        ``available`` optionally replaces Λ in the same single construction
        (``None`` means all switches, as in the constructor); omitting it
        keeps the current Λ.  One combined call is how hot paths avoid
        paying the structural validation twice for
        ``with_loads(...).with_available(...)``.
        """
        if available is _KEEP_AVAILABLE:
            available = self._available
        return TreeNetwork(
            self._parents,
            rates=self._rates,
            loads=loads,
            available=available,
            destination=self._destination,
        )

    def with_available(self, available: Iterable[NodeId] | None) -> "TreeNetwork":
        """Return a copy of the network with a different availability set Λ.

        The copy *structurally shares* every Λ-independent attribute with
        ``self`` — parents, children, rates, loads, depths, cumulative
        path costs, the post-order — instead of re-running the O(n)
        constructor: none of them can change when only Λ does, all of
        them are treated as immutable after construction, and the churn
        hot path (one availability flip per drain, repaired rather than
        re-gathered) calls this per request.  Only the new Λ itself is
        validated.

        Fingerprint memos ride along the same way: structure and loads
        are unaffected by Λ, so their cached digests transfer verbatim,
        and a memoized availability fingerprint is *patched by the
        delta* — the :class:`IncrementalDigest` is resumed from the
        cached hex value and the added/removed switches are folded
        in/out, O(|delta|) instead of O(|Λ|).  :func:`fingerprint_nodes`
        remains the ground truth the patched digest is equivalent to
        (the combine is order-independent and every ``add`` has an exact
        inverse), which the test-suite pins against the full recompute.
        """
        if available is None:
            available_set = frozenset(self._parents)
        else:
            available_set = frozenset(available)
            unknown = available_set - set(self._parents)
            if unknown:
                raise AvailabilityError(
                    f"availability set references unknown switches: "
                    f"{sorted(map(repr, unknown))}"
                )
        clone = object.__new__(TreeNetwork)
        clone._destination = self._destination
        clone._parents = self._parents
        clone._root = self._root
        clone._children = self._children
        clone._rates = self._rates
        clone._rho = self._rho
        clone._loads = self._loads
        clone._available = available_set
        clone._depth = self._depth
        clone._cum_rho = self._cum_rho
        clone._postorder = self._postorder
        clone._height = self._height
        clone._fingerprints = {}
        for key in ("structure", "loads"):
            cached = self._fingerprints.get(key)
            if cached is not None:
                clone._fingerprints[key] = cached
        cached = self._fingerprints.get("available")
        if cached is not None:
            digest = IncrementalDigest.from_hexdigest(cached)
            for node in self._available - clone._available:
                digest.remove(repr(node))
            for node in clone._available - self._available:
                digest.add(repr(node))
            clone._fingerprints["available"] = digest.hexdigest()
        return clone

    def with_rates(self, rates: Mapping[NodeId, float]) -> "TreeNetwork":
        """Return a copy of the network with different link rates.

        Switches absent from ``rates`` keep their current rate.
        """
        merged = dict(self._rates)
        merged.update(rates)
        return TreeNetwork(
            self._parents,
            rates=merged,
            loads=self._loads,
            available=self._available,
            destination=self._destination,
        )

    # ------------------------------------------------------------------ #
    # convenience constructors for tests and examples
    # ------------------------------------------------------------------ #

    @classmethod
    def from_edges(
        cls,
        edges: Sequence[tuple[NodeId, NodeId]],
        rates: Mapping[NodeId, float] | None = None,
        loads: Mapping[NodeId, int] | None = None,
        available: Iterable[NodeId] | None = None,
        destination: NodeId = DEFAULT_DESTINATION,
    ) -> "TreeNetwork":
        """Build a network from ``(child, parent)`` edge pairs.

        Exactly one edge must have the destination as its parent endpoint.
        """
        parents = {child: parent for child, parent in edges}
        if len(parents) != len(edges):
            raise TreeStructureError("duplicate child in edge list")
        return cls(
            parents,
            rates=rates,
            loads=loads,
            available=available,
            destination=destination,
        )

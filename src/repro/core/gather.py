"""SOAR-Gather: the dynamic-programming table construction (Algorithm 3).

The gather phase scans the switches from the leaves towards the root and, for
every node ``v``, computes the table

``X_v(l, i)`` — the minimum possible value of the parameterized potential
``pi_v(l, U)`` over all sets ``U`` of at most ``i`` blue nodes inside the
subtree ``T_v``, where ``l`` is the (hypothetical) distance between ``v`` and
its closest blue ancestor (or the destination when no blue ancestor exists).

The potential (Eq. 4 of the paper) charges every message leaving the subtree
for the whole path of ``l`` links up to that ancestor, which is exactly what
makes subtrees independently optimizable once ``l`` and the colour of the
parent side are fixed.

Two budget semantics are supported:

``exact_k=False`` (default, "at most k")
    ``X_v(l, i)`` minimizes over ``|U| <= i``.  This follows the prose of
    Definition 2.1 and can never be worse than the literal Eq. (2); a blue
    node is only used where it strictly helps.

``exact_k=True`` (paper-literal)
    Leaf entries follow Algorithm 3 lines 3-8 verbatim, reproducing the
    running-example tables of Figure 5.  For strictly positive leaf loads
    the two modes coincide.

Besides the ``X`` tables the gather phase records, for every node, the
colour decision and the per-child budget splits that achieved each minimum.
These "breadcrumbs" are what :mod:`repro.core.color` traces back.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.tree import NodeId, TreeNetwork
from repro.exceptions import InvalidBudgetError

#: Marker used in colour-choice tables.
RED: int = 0
BLUE: int = 1


@dataclass
class NodeTables:
    """Per-node output of SOAR-Gather.

    Attributes
    ----------
    x:
        Array of shape ``(D(v) + 1, k + 1)``: ``x[l, i]`` is the minimum
        potential of the subtree rooted at the node, for distance ``l`` to
        the closest blue ancestor and budget ``i``.
    y_blue, y_red:
        The final-stage ``Y^{C(v)}`` tables (same shape as ``x``) used to
        decide the node's colour.  For leaves these equal the blue / red
        leaf expressions.
    choice:
        ``choice[l, i]`` is :data:`BLUE` when colouring the node blue attains
        the minimum in ``x[l, i]`` (strictly better than red), else
        :data:`RED`.
    splits_blue, splits_red:
        For a node with ``C(v) = c`` children, lists of ``c - 1`` integer
        arrays (children ``c_2 .. c_C``).  ``splits_red[m - 2][l, i]`` is the
        number of blue nodes assigned to the subtree of child ``c_m`` when
        the node is red, holds budget ``i`` at stage ``m`` and parameter
        ``l``; analogously for blue.  Child ``c_1`` receives whatever budget
        remains (minus one if the node itself is blue).
    """

    x: np.ndarray
    y_blue: np.ndarray
    y_red: np.ndarray
    choice: np.ndarray
    splits_blue: list[np.ndarray] = field(default_factory=list)
    splits_red: list[np.ndarray] = field(default_factory=list)


@dataclass
class GatherResult:
    """Complete output of the gather phase.

    Attributes
    ----------
    tables:
        Mapping from every switch to its :class:`NodeTables`.
    root:
        The root switch ``r`` of the network the tables were built for.
    budget:
        The effective budget used when building the tables (the requested
        ``k`` clamped to the number of available switches).
    requested_budget:
        The budget the caller asked for.
    exact_k:
        Which budget semantics the tables encode.
    engine:
        Name of the gather engine that produced the tables (provenance;
        the engines are bit-identical but artifacts advertise their
        origin so reuse mismatches are detectable).
    flat:
        The :class:`~repro.core.flat.FlatTables` layout of the tables,
        attached by the flat engine at construction and lazily stacked
        for reference-engine results (see
        :func:`repro.core.flat.flat_tables_for`).
    cost_model:
        The :class:`~repro.core.flat.FlatCostModel` the flat cost kernel
        evaluates placements traced from these tables with; built lazily
        by :meth:`repro.core.solver.GatherTable.place` and cached here so
        budget sweeps over one gather price the metadata once.
    """

    tables: dict[NodeId, NodeTables]
    root: NodeId
    budget: int
    requested_budget: int
    exact_k: bool
    engine: str = "reference"
    flat: "object | None" = field(default=None, repr=False, compare=False)
    cost_model: "object | None" = field(default=None, repr=False, compare=False)

    @property
    def optimal_cost(self) -> float:
        """``X_r(1, budget)``: the minimum utilization achievable (Eq. 6)."""
        return float(self.tables[self.root].x[1, self.budget])

    def cost_for_budget(self, budget: int | None = None) -> float:
        """Return the optimal utilization for ``budget`` (default: full budget).

        Because the gather tables carry every column ``0 .. k`` this lookup
        answers the whole budget sweep of Figure 3 from a single gather run.
        """
        if budget is None:
            budget = self.budget
        budget = min(int(budget), self.budget)
        return float(self.tables[self.root].x[1, budget])


def normalize_budget(tree: TreeNetwork, budget: int) -> int:
    """Validate ``budget`` and clamp it to the number of available switches."""
    if not isinstance(budget, (int, np.integer)) or isinstance(budget, bool):
        raise InvalidBudgetError(f"budget must be an integer, got {budget!r}")
    if budget < 0:
        raise InvalidBudgetError(f"budget must be non-negative, got {budget}")
    return int(min(int(budget), len(tree.available)))


def _leaf_tables(
    tree: TreeNetwork,
    node: NodeId,
    budget: int,
    exact_k: bool,
) -> NodeTables:
    """Base case of the dynamic program (Algorithm 3 lines 1-9)."""
    rho_prefix = np.asarray(tree.path_rho_prefix(node), dtype=np.float64)
    depth = tree.depth(node)
    load = tree.load(node)
    available = node in tree.available

    red_column = rho_prefix * float(load)

    if exact_k:
        # Exactly-i semantics: a leaf subtree holds a single switch, so only
        # i = 0 (red) and i = 1 (blue, if available) are feasible; any larger
        # budget is infeasible and propagates upward as infinity.
        y_red = np.full((depth + 1, budget + 1), np.inf, dtype=np.float64)
        y_red[:, 0] = red_column
        y_blue = np.full_like(y_red, np.inf)
        if available and budget >= 1:
            y_blue[:, 1] = rho_prefix
        x = np.minimum(y_red, y_blue)
    else:
        # At-most-i semantics: extra budget can always be left unused.
        y_red = np.tile(red_column[:, None], (1, budget + 1))
        y_blue = np.full_like(y_red, np.inf)
        if available and budget >= 1:
            y_blue[:, 1:] = rho_prefix[:, None]
        x = np.minimum(y_red, y_blue)

    choice = np.where(y_blue < y_red, BLUE, RED).astype(np.uint8)
    return NodeTables(x=x, y_blue=y_blue, y_red=y_red, choice=choice)


def _combine_child(
    previous: np.ndarray,
    child_row: np.ndarray,
    budget: int,
    blue: bool,
) -> tuple[np.ndarray, np.ndarray]:
    """One step of the ``mCost`` (min,+)-convolution over the budget axis.

    ``previous`` has shape ``(H, k + 1)`` and holds ``Y^{m-1}`` for every
    parameter ``l``; ``child_row`` has shape ``(H, k + 1)`` and holds
    ``X_{c_m}`` already indexed at the parameter the child will see
    (``l + 1`` for a red parent, ``1`` for a blue parent).  Returns the new
    ``Y^m`` table and the argmin split (budget given to child ``c_m``).

    For a blue parent the split ``j`` ranges over ``0 <= j < i`` because the
    parent itself consumes one unit of the budget that must remain on the
    ``previous`` side (Algorithm 3 line 32).
    """
    height = previous.shape[0]
    best = np.full((height, budget + 1), np.inf, dtype=np.float64)
    best_split = np.zeros((height, budget + 1), dtype=np.int32)

    for j in range(budget + 1):
        # candidate[l, i] = previous[l, i - j] + child_row[l, j] for i >= j
        start = j if not blue else j + 1  # blue requires i - j >= 1
        if start > budget:
            break
        prev_slice = previous[:, start - j : budget + 1 - j]
        candidate = prev_slice + child_row[:, j : j + 1]
        target = best[:, start : budget + 1]
        improved = candidate < target
        target[improved] = candidate[improved]
        split_target = best_split[:, start : budget + 1]
        split_target[improved] = j
    return best, best_split


def _internal_tables(
    tree: TreeNetwork,
    node: NodeId,
    children_x: list[np.ndarray],
    budget: int,
) -> NodeTables:
    """Inductive step of the dynamic program (Algorithm 3 lines 10-29)."""
    rho_prefix = np.asarray(tree.path_rho_prefix(node), dtype=np.float64)
    depth = tree.depth(node)
    load = tree.load(node)
    available = node in tree.available
    height = depth + 1

    # Child tables indexed at the parameter each child will observe:
    #   red parent at parameter l  -> child sees l + 1,
    #   blue parent                -> child sees 1.
    # Children are one level deeper, so their tables have ``height + 1`` rows
    # and rows 1 .. height are exactly the l + 1 values we need.
    child_rows_red = [child_x[1 : height + 1, :] for child_x in children_x]
    child_rows_blue = [np.tile(child_x[1, :][None, :], (height, 1)) for child_x in children_x]

    upward_red = rho_prefix * float(load)
    upward_blue = rho_prefix

    # --- stage m = 1 -----------------------------------------------------
    y_red = child_rows_red[0] + upward_red[:, None]
    y_blue = np.full((height, budget + 1), np.inf, dtype=np.float64)
    if available and budget >= 1:
        # X_{c_1}(1, i - 1) + rho(v, A^l_v)
        y_blue[:, 1:] = child_rows_blue[0][:, : budget] + upward_blue[:, None]

    splits_red: list[np.ndarray] = []
    splits_blue: list[np.ndarray] = []

    # --- stages m = 2 .. C(v) --------------------------------------------
    for child_red, child_blue in zip(child_rows_red[1:], child_rows_blue[1:]):
        y_red, split_red = _combine_child(y_red, child_red, budget, blue=False)
        splits_red.append(split_red)
        if available and budget >= 1:
            y_blue, split_blue = _combine_child(y_blue, child_blue, budget, blue=True)
        else:
            split_blue = np.zeros((height, budget + 1), dtype=np.int32)
        splits_blue.append(split_blue)

    x = np.minimum(y_blue, y_red)
    choice = np.where(y_blue < y_red, BLUE, RED).astype(np.uint8)
    return NodeTables(
        x=x,
        y_blue=y_blue,
        y_red=y_red,
        choice=choice,
        splits_blue=splits_blue,
        splits_red=splits_red,
    )


def soar_gather(
    tree: TreeNetwork,
    budget: int,
    exact_k: bool = False,
) -> GatherResult:
    """Run the SOAR-Gather phase over the whole tree.

    Parameters
    ----------
    tree:
        The tree network (topology, rates, loads, availability Λ).
    budget:
        The bound ``k`` on the number of blue nodes.  Internally clamped to
        ``|Λ|`` since additional budget can never be spent.
    exact_k:
        Budget semantics; see the module docstring.

    Returns
    -------
    GatherResult
        All per-node DP tables plus metadata, ready to be traced back by
        :func:`repro.core.color.soar_color`.
    """
    effective = normalize_budget(tree, budget)
    tables: dict[NodeId, NodeTables] = {}

    for node in tree.switches:  # post-order guarantees children are ready
        children = tree.children(node)
        if not children:
            tables[node] = _leaf_tables(tree, node, effective, exact_k)
        else:
            children_x = [tables[child].x for child in children]
            tables[node] = _internal_tables(tree, node, children_x, effective)

    return GatherResult(
        tables=tables,
        root=tree.root,
        budget=effective,
        requested_budget=int(budget),
        exact_k=exact_k,
        engine="reference",
    )

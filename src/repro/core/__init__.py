"""Core of the reproduction: the tree model, the cost metrics, and SOAR.

The sub-modules map directly onto the paper's sections:

* :mod:`repro.core.tree` — the weighted tree network of Section 2,
* :mod:`repro.core.reduce_op` — the Reduce operation (Algorithm 1) and its
  per-link message accounting,
* :mod:`repro.core.cost` — the utilization complexity (Eq. 1) and its
  barrier re-formulation (Lemma 4.2),
* :mod:`repro.core.gather` / :mod:`repro.core.color` — the two phases of
  SOAR (Algorithms 3 and 4); each phase ships a batched kernel and a
  per-node reference implementation,
* :mod:`repro.core.engine` — the gather-engine registry,
* :mod:`repro.core.flat` — the flat ``(l, i, node)`` tensor layout the
  batched kernels share,
* :mod:`repro.core.solver` — the user-facing staged API
  (:class:`Solver` / :class:`GatherTable` / :class:`Placement`),
* :mod:`repro.core.soar` — deprecated keyword-threaded shims over it,
* :mod:`repro.core.bruteforce` — the exhaustive reference used for
  optimality certification in the tests.
"""

from repro.core.bruteforce import BruteForceSolution, solve_bruteforce
from repro.core.color import (
    BATCHED_COLOR,
    COLOR_KERNELS,
    DEFAULT_COLOR,
    REFERENCE_COLOR,
    soar_color,
    soar_color_batched,
    trace_color,
)
from repro.core.cost import (
    all_blue_cost,
    all_red_cost,
    cost_reduction,
    normalized_utilization,
    per_link_utilization,
    utilization_cost,
    utilization_cost_barrier,
)
from repro.core.engine import (
    DEFAULT_ENGINE,
    ENGINES,
    FLAT_ENGINE,
    REFERENCE_ENGINE,
    flat_gather,
    gather,
)
from repro.core.gather import GatherResult, NodeTables, soar_gather
from repro.core.reduce_op import (
    ReduceTrace,
    link_message_counts,
    run_reduce,
    total_messages,
    validate_placement,
)
from repro.core.soar import SoarSolution, optimal_cost, solve, solve_budget_sweep
from repro.core.solver import GatherTable, Placement, Solver
from repro.core.tree import (
    DEFAULT_DESTINATION,
    NodeId,
    TreeNetwork,
    fingerprint_loads,
    fingerprint_nodes,
)

__all__ = [
    "BATCHED_COLOR",
    "BruteForceSolution",
    "COLOR_KERNELS",
    "DEFAULT_COLOR",
    "DEFAULT_DESTINATION",
    "DEFAULT_ENGINE",
    "ENGINES",
    "FLAT_ENGINE",
    "GatherResult",
    "GatherTable",
    "NodeId",
    "NodeTables",
    "Placement",
    "REFERENCE_COLOR",
    "REFERENCE_ENGINE",
    "ReduceTrace",
    "SoarSolution",
    "Solver",
    "TreeNetwork",
    "all_blue_cost",
    "all_red_cost",
    "cost_reduction",
    "fingerprint_loads",
    "fingerprint_nodes",
    "flat_gather",
    "gather",
    "link_message_counts",
    "normalized_utilization",
    "optimal_cost",
    "per_link_utilization",
    "run_reduce",
    "soar_color",
    "soar_color_batched",
    "soar_gather",
    "solve",
    "trace_color",
    "solve_bruteforce",
    "solve_budget_sweep",
    "total_messages",
    "utilization_cost",
    "utilization_cost_barrier",
    "validate_placement",
]

"""Core of the reproduction: the tree model, the cost metrics, and SOAR.

The sub-modules map directly onto the paper's sections:

* :mod:`repro.core.tree` — the weighted tree network of Section 2,
* :mod:`repro.core.reduce_op` — the Reduce operation (Algorithm 1) and its
  per-link message accounting,
* :mod:`repro.core.cost` — the utilization complexity (Eq. 1) and its
  barrier re-formulation (Lemma 4.2); ships the :data:`COST_KERNELS`
  registry (per-node ``"reference"`` walk vs the level-batched ``"flat"``
  kernel, bit-identical including summation order),
* :mod:`repro.core.gather` / :mod:`repro.core.color` — the two phases of
  SOAR (Algorithms 3 and 4); each phase ships a batched kernel and a
  per-node reference implementation,
* :mod:`repro.core.engine` — the gather-engine registry,
* :mod:`repro.core.flat` — the flat ``(l, i, node)`` tensor layout the
  batched kernels share, plus the :class:`~repro.core.flat.FlatCostModel`
  metadata the flat cost kernel traverses,
* :mod:`repro.core.solver` — the user-facing staged API
  (:class:`Solver` / :class:`GatherTable` / :class:`Placement`),
* :mod:`repro.core.bruteforce` — the exhaustive reference used for
  optimality certification in the tests.

The pre-``Solver`` free functions (``solve`` / ``solve_budget_sweep`` /
``optimal_cost``) went through a deprecation release as bit-identical
shims and have been removed; see the migration table in ``CHANGES.md``.
"""

from repro.core.bruteforce import BruteForceSolution, solve_bruteforce
from repro.core.color import (
    BATCHED_COLOR,
    COLOR_KERNELS,
    DEFAULT_COLOR,
    REFERENCE_COLOR,
    soar_color,
    soar_color_batched,
    trace_color,
)
from repro.core.cost import (
    COST_KERNELS,
    DEFAULT_COST,
    FLAT_COST,
    REFERENCE_COST,
    all_blue_cost,
    all_red_cost,
    cost_reduction,
    evaluate_cost,
    normalized_utilization,
    per_link_utilization,
    per_link_utilization_flat,
    utilization_cost,
    utilization_cost_barrier,
    utilization_cost_flat,
)
from repro.core.engine import (
    DEFAULT_ENGINE,
    ENGINES,
    FLAT_ENGINE,
    REFERENCE_ENGINE,
    flat_gather,
    gather,
)
from repro.core.flat import FlatCostModel, FlatTables, cost_model_for
from repro.core.gather import GatherResult, NodeTables, soar_gather
from repro.core.reduce_op import (
    ReduceTrace,
    link_message_counts,
    run_reduce,
    total_messages,
    validate_placement,
)
from repro.core.solver import GatherTable, Placement, Solver
from repro.core.tree import (
    DEFAULT_DESTINATION,
    IncrementalDigest,
    NodeId,
    TreeNetwork,
    fingerprint_loads,
    fingerprint_nodes,
)

__all__ = [
    "BATCHED_COLOR",
    "BruteForceSolution",
    "COLOR_KERNELS",
    "COST_KERNELS",
    "DEFAULT_COLOR",
    "DEFAULT_COST",
    "DEFAULT_DESTINATION",
    "DEFAULT_ENGINE",
    "ENGINES",
    "FLAT_COST",
    "FLAT_ENGINE",
    "FlatCostModel",
    "FlatTables",
    "GatherResult",
    "GatherTable",
    "IncrementalDigest",
    "NodeId",
    "NodeTables",
    "Placement",
    "REFERENCE_COLOR",
    "REFERENCE_COST",
    "REFERENCE_ENGINE",
    "ReduceTrace",
    "Solver",
    "TreeNetwork",
    "all_blue_cost",
    "all_red_cost",
    "cost_model_for",
    "cost_reduction",
    "evaluate_cost",
    "fingerprint_loads",
    "fingerprint_nodes",
    "flat_gather",
    "gather",
    "link_message_counts",
    "normalized_utilization",
    "per_link_utilization",
    "per_link_utilization_flat",
    "run_reduce",
    "soar_color",
    "soar_color_batched",
    "soar_gather",
    "trace_color",
    "solve_bruteforce",
    "total_messages",
    "utilization_cost",
    "utilization_cost_barrier",
    "utilization_cost_flat",
    "validate_placement",
]

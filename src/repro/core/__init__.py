"""Core of the reproduction: the tree model, the cost metrics, and SOAR.

The sub-modules map directly onto the paper's sections:

* :mod:`repro.core.tree` — the weighted tree network of Section 2,
* :mod:`repro.core.reduce_op` — the Reduce operation (Algorithm 1) and its
  per-link message accounting,
* :mod:`repro.core.cost` — the utilization complexity (Eq. 1) and its
  barrier re-formulation (Lemma 4.2),
* :mod:`repro.core.gather` / :mod:`repro.core.color` — the two phases of
  SOAR (Algorithms 3 and 4),
* :mod:`repro.core.engine` — interchangeable gather engines: the vectorized
  flat-array kernel (default) and the per-node reference implementation,
* :mod:`repro.core.soar` — the user-facing solver,
* :mod:`repro.core.bruteforce` — the exhaustive reference used for
  optimality certification in the tests.
"""

from repro.core.bruteforce import BruteForceSolution, solve_bruteforce
from repro.core.color import soar_color
from repro.core.cost import (
    all_blue_cost,
    all_red_cost,
    cost_reduction,
    normalized_utilization,
    per_link_utilization,
    utilization_cost,
    utilization_cost_barrier,
)
from repro.core.engine import (
    DEFAULT_ENGINE,
    ENGINES,
    FLAT_ENGINE,
    REFERENCE_ENGINE,
    flat_gather,
    gather,
)
from repro.core.gather import GatherResult, NodeTables, soar_gather
from repro.core.reduce_op import (
    ReduceTrace,
    link_message_counts,
    run_reduce,
    total_messages,
    validate_placement,
)
from repro.core.soar import SoarSolution, optimal_cost, solve, solve_budget_sweep
from repro.core.tree import (
    DEFAULT_DESTINATION,
    NodeId,
    TreeNetwork,
    fingerprint_loads,
    fingerprint_nodes,
)

__all__ = [
    "BruteForceSolution",
    "DEFAULT_DESTINATION",
    "DEFAULT_ENGINE",
    "ENGINES",
    "FLAT_ENGINE",
    "GatherResult",
    "NodeId",
    "NodeTables",
    "REFERENCE_ENGINE",
    "ReduceTrace",
    "SoarSolution",
    "TreeNetwork",
    "all_blue_cost",
    "all_red_cost",
    "cost_reduction",
    "fingerprint_loads",
    "fingerprint_nodes",
    "flat_gather",
    "gather",
    "link_message_counts",
    "normalized_utilization",
    "optimal_cost",
    "per_link_utilization",
    "run_reduce",
    "soar_color",
    "soar_gather",
    "solve",
    "solve_bruteforce",
    "solve_budget_sweep",
    "total_messages",
    "utilization_cost",
    "utilization_cost_barrier",
    "validate_placement",
]

/* Compiled kernels for the "compiled" gather engine.
 *
 * Each kernel mirrors one numpy block of repro.core.engine bit for bit:
 * the per-element arithmetic (a single double multiply or add followed by
 * a strict `<` comparison) is evaluated in the identical order, so the
 * compiled engine produces byte-identical tables, breadcrumbs, and costs.
 * No -ffast-math, no reassociation: every element's value is the result
 * of the same IEEE-754 operations the numpy engine performs.
 *
 * Built on demand by repro.core.engine_compiled with the system C
 * compiler (`cc -O2 -fPIC -shared`) and loaded through ctypes, which
 * releases the GIL around every call — that is the whole point: the
 * convolution below dominates SOAR-Gather, and with the GIL released the
 * service can run gathers truly in parallel.
 *
 * All tensors arrive C-contiguous with the layouts noted per kernel.
 */

#include <stdint.h>

#define INF (1.0 / 0.0)

/* Leaf broadcast of flat_gather: initialize y_red / y_blue / x for every
 * leaf in one pass.
 *
 *   x, y_blue, y_red : (rows, width, n) float64
 *   path_rho         : (rows, n)        float64
 *   load             : (n,)             float64
 *   leaves           : (num_leaves,)    int64 node positions
 *   avail            : (n,)             uint8 (bool)
 *
 * Mirrors the numpy block: red entries are path_rho * load (every column
 * under at-most-k, column 0 under exactly-k), blue entries are +inf
 * except column 1 (exactly-k) / columns 1..k (at-most-k) of available
 * leaves, and x is the elementwise minimum.
 */
void repro_leaf_init(double *x, double *y_blue, double *y_red,
                     const double *path_rho, const double *load,
                     const int64_t *leaves, int64_t num_leaves,
                     const uint8_t *avail, int64_t rows, int64_t width,
                     int64_t n, int32_t exact_k) {
  const int64_t k = width - 1;
  for (int64_t m = 0; m < num_leaves; m++) {
    const int64_t v = leaves[m];
    const int can_blue = avail[v] && k >= 1;
    for (int64_t l = 0; l < rows; l++) {
      const double path = path_rho[l * n + v];
      const double red = path * load[v];
      double *yr = y_red + (l * width) * n + v;
      double *yb = y_blue + (l * width) * n + v;
      double *xv = x + (l * width) * n + v;
      for (int64_t b = 0; b < width; b++) {
        yr[b * n] = (exact_k && b != 0) ? INF : red;
        yb[b * n] = INF;
      }
      if (can_blue) {
        if (exact_k) {
          yb[1 * (int64_t)n] = path;
        } else {
          for (int64_t b = 1; b < width; b++) {
            yb[b * n] = path;
          }
        }
      }
      for (int64_t b = 0; b < width; b++) {
        const double r = yr[b * n], bl = yb[b * n];
        xv[b * n] = (bl < r) ? bl : r;
      }
    }
  }
}

/* The mCost (min,+)-convolution of _batched_combine.
 *
 *   previous   : (height, width, batch) float64 — Y^{m-1}
 *   child      : (child_height, width, batch) float64; child_height is
 *                `height` for red parents and 1 for blue parents (the
 *                child always sees l = 1, broadcast over the height axis)
 *   best       : (height, width, batch) float64 out
 *   best_split : (height, width, batch) int32 out
 *
 * Element semantics, identical to the numpy kernel: for each (h, b, v)
 * the minimum over j = 0 .. j_limit with j + (blue ? 1 : 0) <= b of
 * previous[h, b - j, v] + child[h or 0, j, v]; ties keep the smallest j
 * (ascending scan, strict improvement).  Entries with no feasible split
 * (blue, b = 0) are +inf with split 0.
 */
void repro_batched_combine(const double *previous, const double *child,
                           double *best, int32_t *best_split, int64_t height,
                           int64_t width, int64_t batch, int64_t child_height,
                           int32_t blue, int64_t j_limit) {
  const int64_t start0 = blue ? 1 : 0;
  for (int64_t h = 0; h < height; h++) {
    const double *prev_h = previous + h * width * batch;
    const double *child_h = child + (child_height == 1 ? 0 : h) * width * batch;
    double *best_h = best + h * width * batch;
    int32_t *split_h = best_split + h * width * batch;

    for (int64_t b = 0; b < start0 && b < width; b++) {
      for (int64_t v = 0; v < batch; v++) {
        best_h[b * batch + v] = INF;
        split_h[b * batch + v] = 0;
      }
    }
    for (int64_t b = start0; b < width; b++) {
      const double *prev_b = prev_h + b * batch;
      double *best_b = best_h + b * batch;
      int32_t *split_b = split_h + b * batch;
      for (int64_t v = 0; v < batch; v++) {
        best_b[v] = prev_b[v] + child_h[v]; /* j = 0 seed, split 0 */
        split_b[v] = 0;
      }
    }
    for (int64_t j = 1; j <= j_limit; j++) {
      const int64_t start = blue ? j + 1 : j;
      if (start >= width)
        break;
      const double *child_j = child_h + j * batch;
      for (int64_t b = start; b < width; b++) {
        const double *prev_b = prev_h + (b - j) * batch;
        double *best_b = best_h + b * batch;
        int32_t *split_b = split_h + b * batch;
        for (int64_t v = 0; v < batch; v++) {
          const double cand = prev_b[v] + child_j[v];
          if (cand < best_b[v]) {
            best_b[v] = cand;
            split_b[v] = (int32_t)j;
          }
        }
      }
    }
  }
}

/* The colour decision: out = (a < b), elementwise over flat buffers.
 * Used for the engine's final choice tensor (y_blue < y_red) and the
 * per-level decisions of the compiled colour kernel.  NaNs (possible in
 * the engine's never-read uninitialized rows) compare false, exactly as
 * numpy's np.less. */
void repro_strict_less(const double *a, const double *b, uint8_t *out,
                       int64_t size) {
  for (int64_t i = 0; i < size; i++) {
    out[i] = a[i] < b[i];
  }
}

/* Left-to-right sequential sum, the reduction order of the flat cost
 * kernel's `float(sum(contributions.tolist()))` — a plain running double
 * accumulation, so the result is bit-identical to the Python sum. */
double repro_sequential_sum(const double *values, int64_t size) {
  double total = 0.0;
  for (int64_t i = 0; i < size; i++) {
    total += values[i];
  }
  return total;
}

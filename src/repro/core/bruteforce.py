"""Exhaustive reference solver for the φ-BIC problem.

The paper notes (Section 2) that a brute-force enumeration of all
``Theta(n^k)`` subsets is possible but exorbitant for large ``k``.  For the
test-suite, however, it is the perfect ground truth: on small trees it
certifies that SOAR's dynamic program is optimal, for both budget
semantics ("at most k" and "exactly k").
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

from repro.core.cost import utilization_cost
from repro.core.tree import NodeId, TreeNetwork
from repro.exceptions import InvalidBudgetError


@dataclass(frozen=True)
class BruteForceSolution:
    """Optimal placement found by exhaustive enumeration."""

    blue_nodes: frozenset[NodeId]
    cost: float
    budget: int
    subsets_examined: int


def solve_bruteforce(
    tree: TreeNetwork,
    budget: int,
    exact_k: bool = False,
    max_subsets: int = 2_000_000,
) -> BruteForceSolution:
    """Enumerate placements and return the cheapest one.

    Parameters
    ----------
    tree:
        The tree network.
    budget:
        The bound ``k`` on the number of blue nodes.
    exact_k:
        When ``True`` only subsets of size exactly ``min(k, |Λ|)`` are
        considered (Eq. 2); otherwise all subsets of size ``<= k``.
    max_subsets:
        Safety valve: raise if the enumeration would examine more subsets
        than this, to keep accidental misuse from hanging the test-suite.

    Returns
    -------
    BruteForceSolution
        The minimizing subset, its cost, and how many subsets were examined.
    """
    if budget < 0:
        raise InvalidBudgetError(f"budget must be non-negative, got {budget}")

    available = sorted(tree.available, key=repr)
    effective = min(int(budget), len(available))
    sizes = [effective] if exact_k else list(range(effective + 1))

    best_cost = float("inf")
    best_set: frozenset[NodeId] = frozenset()
    examined = 0
    for size in sizes:
        for subset in combinations(available, size):
            examined += 1
            if examined > max_subsets:
                raise InvalidBudgetError(
                    f"brute force would examine more than {max_subsets} subsets; "
                    "use SOAR for instances of this size"
                )
            candidate = frozenset(subset)
            cost = utilization_cost(tree, candidate, validate=False)
            if cost < best_cost:
                best_cost = cost
                best_set = candidate
    return BruteForceSolution(
        blue_nodes=best_set,
        cost=float(best_cost),
        budget=effective,
        subsets_examined=examined,
    )
